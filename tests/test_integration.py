"""End-to-end integration tests across the whole library.

These tests exercise the complete chain the paper describes: behavioural
converters driven with ramps, the on-chip BIST processing, the conventional
histogram baseline, and the statistical error model — all against each other.
"""

import numpy as np
import pytest

from repro.adc import (
    DevicePopulation,
    FlashADC,
    IdealADC,
    PopulationSpec,
    SarADC,
    StuckBitADC,
    make_faulty_batch,
)
from repro.analysis import (
    DynamicAnalyzer,
    ErrorModel,
    HistogramTest,
    estimate_error_probabilities,
)
from repro.analysis.error_model import delta_s_for_counter
from repro.core import BistConfig, BistEngine
from repro.economics import ParallelTestSchedule


class TestBistVsHistogramAgreement:
    """The paper's central comparison: the BIST decision should match the
    conventional histogram test, especially with a 7-bit counter."""

    @pytest.mark.parametrize("seed", range(8))
    def test_seven_bit_counter_matches_histogram_per_device(self, seed):
        adc = FlashADC.from_sigma(6, 0.21, seed=seed)
        spec = 1.0
        bist = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=spec))
        histogram = HistogramTest(samples_per_code=256, dnl_spec_lsb=spec)
        assert bist.run(adc).passed == histogram.run(adc, rng=seed).passed

    def test_agreement_rate_over_population_stringent_spec(self):
        population = DevicePopulation(PopulationSpec(size=80, seed=3))
        spec = 0.5
        bist = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=spec))
        histogram = HistogramTest(samples_per_code=256, dnl_spec_lsb=spec)
        agree = 0
        for i, device in enumerate(population):
            bist_pass = bist.run(device, rng=i).passed
            hist_pass = histogram.run(device, rng=i).passed
            agree += int(bist_pass == hist_pass)
        # Near-boundary devices can flip either way; the vast majority agree.
        assert agree / len(population) > 0.9

    def test_measured_dnl_tracks_histogram_dnl(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=42)
        bist = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=1.0))
        histogram = HistogramTest(samples_per_code=256, dnl_spec_lsb=1.0)
        bist_dnl = bist.run(adc).measured_dnl_lsb
        hist_dnl = histogram.run(adc, rng=0).linearity.dnl_lsb
        assert np.corrcoef(bist_dnl, hist_dnl)[0, 1] > 0.95


class TestGrossDefectScreening:
    """The paper argues spot defects are caught by the BIST as well."""

    def test_every_gross_defect_is_rejected(self):
        base = FlashADC.from_sigma(6, 0.1, seed=1)
        engine = BistEngine(BistConfig(counter_bits=6, dnl_spec_lsb=1.0,
                                       inl_spec_lsb=1.0))
        # Shallow "bubble" errors are corrected by the thermometer encoder
        # into borderline-within-spec behaviour and pure offset shifts do
        # not change any code width, so neither is a linearity defect; every
        # width-affecting spot-defect kind must be caught.
        kinds = ["missing_code", "wide_code", "shorted_resistor",
                 "open_resistor", "gain_error"]
        batch = make_faulty_batch(base, rng=7, count=24, kinds=kinds)
        rejected = [not engine.run(device, rng=i).passed
                    for i, device in enumerate(batch)]
        assert all(rejected)

    def test_pure_offset_error_escapes_the_linearity_bist(self):
        """A moderate offset shift leaves every code width untouched, so the
        width-counting BIST accepts it — offset must be tested separately,
        exactly as the paper scopes its method to linearity and
        functionality."""
        from repro.adc import inject_offset_shift
        base = IdealADC(6)
        engine = BistEngine(BistConfig(counter_bits=6, dnl_spec_lsb=1.0,
                                       inl_spec_lsb=1.0))
        shifted = inject_offset_shift(base, shift_lsb=1.5)
        assert engine.run(shifted).passed
        # The histogram baseline (which also only sees widths) agrees.
        histogram = HistogramTest(samples_per_code=64, dnl_spec_lsb=1.0)
        assert histogram.run(shifted, rng=0).passed

    def test_deep_bubble_error_is_rejected(self):
        """A bubble deeper than two codes erases a code even after
        thermometer correction, which the BIST catches."""
        from repro.adc import inject_non_monotonic
        base = IdealADC(6)
        engine = BistEngine(BistConfig(counter_bits=6, dnl_spec_lsb=1.0,
                                       inl_spec_lsb=1.0))
        faulty = inject_non_monotonic(base, code=40, depth_lsb=2.6)
        assert not engine.run(faulty).passed

    def test_stuck_bits_rejected_for_every_bit(self):
        base = IdealADC(6)
        engine = BistEngine(BistConfig(counter_bits=6, dnl_spec_lsb=1.0))
        for bit in range(6):
            for value in (0, 1):
                device = StuckBitADC(base, bit=bit, stuck_value=value)
                assert not engine.run(device).passed, (
                    f"stuck bit {bit}={value} escaped the BIST")


class TestAnalyticVsBehaviouralErrorRates:
    """Cross-validation of the three levels of modelling: closed-form,
    vectorised Monte-Carlo counting, and the full sampled BIST engine."""

    def test_closed_form_vs_vectorised_mc_at_all_counter_sizes(self):
        for bits in (4, 5, 6, 7):
            ds = delta_s_for_counter(bits, 0.5)
            analytic = ErrorModel(dnl_spec_lsb=0.5, counter_bits=bits).device(62)
            mc = estimate_error_probabilities(
                n_devices=30000, n_codes=62, sigma_lsb=0.21,
                dnl_spec_lsb=0.5, delta_s_lsb=ds, counter_bits=bits,
                rng=bits)
            assert mc.type_i == pytest.approx(analytic.type_i, abs=0.015)
            assert mc.type_ii == pytest.approx(analytic.type_ii, abs=0.015)

    def test_sampled_engine_vs_analytic_on_paper_batch(self):
        """The MEAS.-column experiment: 364 simulated devices through the
        sampled BIST, compared with the analytic SIM column."""
        population = DevicePopulation.paper_batch(size=120, seed=1997)
        engine = BistEngine(BistConfig(counter_bits=5, dnl_spec_lsb=0.5))
        measured = engine.run_population(population, rng=0)
        analytic = ErrorModel(dnl_spec_lsb=0.5, counter_bits=5).device(62)
        # With only 120 devices the rates are noisy; the paper itself sees a
        # factor-two gap between measurement and simulation.  Check the same
        # order of magnitude and the same direction.
        assert measured.p_good == pytest.approx(analytic.p_good, abs=0.15)
        assert measured.type_i < 0.15
        assert measured.type_ii < 0.15


class TestArchitectureIndependence:
    """The BIST only looks at output codes, so it works for any converter
    architecture."""

    def test_sar_converter_within_spec_passes(self):
        adc = SarADC(6, unit_cap_sigma_rel=0.005, rng=2)
        assert adc.max_dnl() < 1.0
        engine = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=1.0))
        assert engine.run(adc).passed

    def test_sar_converter_with_large_mismatch_fails(self):
        adc = SarADC(6, unit_cap_sigma_rel=0.2, rng=11)
        if adc.max_dnl() <= 1.0:
            pytest.skip("this mismatch draw happens to stay within spec")
        engine = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=1.0))
        assert not engine.run(adc).passed


class TestStaticAndDynamicTogether:
    def test_static_pass_does_not_imply_dynamic_quality(self):
        """A converter can meet a loose DNL spec and still lose ENOB —
        the reason the paper lists both static and dynamic tests."""
        adc = FlashADC.from_sigma(6, 0.21, seed=77, sample_rate=1e6)
        bist = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=1.0))
        dynamic = DynamicAnalyzer(n_samples=4096, window="rect")
        static_result = bist.run(adc)
        dynamic_result = dynamic.measure(adc, seed=0)
        assert static_result.passed
        assert dynamic_result.enob < 6.0

    def test_parallel_test_time_budget_consistent_with_bist(self):
        """Link the engine's sample count to the economics model."""
        adc = IdealADC(6, sample_rate=1e6)
        engine = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=1.0))
        result = engine.run(adc)
        pass_time = result.samples_taken / adc.sample_rate
        conventional = ParallelTestSchedule(
            n_converters=256, bits_per_converter=6, tester_channels=64,
            time_per_pass_s=pass_time)
        full_bist = ParallelTestSchedule(
            n_converters=256, bits_per_converter=1, tester_channels=64,
            time_per_pass_s=pass_time)
        assert full_bist.total_time_s < conventional.total_time_s
        assert full_bist.speedup_over(conventional) == pytest.approx(6.0,
                                                                     rel=0.2)
