"""Property-based tests (hypothesis) for the core data structures and maths."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.adc.transfer import (
    TransferFunction,
    code_widths_from_transitions,
    transitions_from_code_widths,
)
from repro.analysis.error_model import (
    ErrorModel,
    acceptance_probability,
    count_limits,
    delta_s_for_counter,
)
from repro.analysis.linearity import linearity_from_code_widths
from repro.analysis.montecarlo import simulate_counts
from repro.core.bist_scheme import nl_budget, qmin
from repro.core.counter import SaturatingCounter
from repro.core.deglitch import DeglitchFilter
from repro.core.lsb_processor import LsbProcessor
from repro.core.limits import CountLimits


# --------------------------------------------------------------------------- #
# Transfer-function geometry
# --------------------------------------------------------------------------- #

@st.composite
def code_width_vectors(draw, n_bits=st.integers(min_value=2, max_value=7)):
    """Random positive code-width vectors for a random resolution."""
    bits = draw(n_bits)
    n_widths = (1 << bits) - 2
    widths = draw(hnp.arrays(
        dtype=float, shape=n_widths,
        elements=st.floats(min_value=0.01, max_value=3.0,
                           allow_nan=False, allow_infinity=False)))
    return bits, widths


class TestTransferFunctionProperties:
    @given(code_width_vectors())
    @settings(max_examples=60, deadline=None)
    def test_width_transition_round_trip(self, data):
        bits, widths_lsb = data
        lsb = 1.0 / (1 << bits)
        tf = TransferFunction.from_code_widths(bits, widths_lsb * lsb)
        assert np.allclose(tf.code_widths_lsb, widths_lsb, rtol=1e-9,
                           atol=1e-9)

    @given(code_width_vectors())
    @settings(max_examples=60, deadline=None)
    def test_transitions_are_cumulative_widths(self, data):
        bits, widths_lsb = data
        transitions = transitions_from_code_widths(widths_lsb,
                                                   first_transition=0.5)
        recovered = code_widths_from_transitions(transitions)
        assert np.allclose(recovered, widths_lsb, rtol=1e-9, atol=1e-9)

    @given(code_width_vectors())
    @settings(max_examples=60, deadline=None)
    def test_conversion_is_monotone_for_monotone_curves(self, data):
        bits, widths_lsb = data
        lsb = 1.0 / (1 << bits)
        tf = TransferFunction.from_code_widths(bits, widths_lsb * lsb)
        voltages = np.linspace(-0.5, tf.transitions[-1] + 0.5, 257)
        codes = tf.convert(voltages)
        assert np.all(np.diff(codes) >= 0)
        assert codes.min() >= 0
        assert codes.max() <= tf.n_codes - 1

    @given(code_width_vectors())
    @settings(max_examples=60, deadline=None)
    def test_inl_is_cumsum_of_dnl(self, data):
        bits, widths_lsb = data
        lsb = 1.0 / (1 << bits)
        tf = TransferFunction.from_code_widths(bits, widths_lsb * lsb)
        assert np.allclose(tf.inl(), np.cumsum(tf.dnl()), atol=1e-9)

    @given(code_width_vectors(),
           st.floats(min_value=-0.1, max_value=0.1),
           st.floats(min_value=0.8, max_value=1.2))
    @settings(max_examples=40, deadline=None)
    def test_endpoint_dnl_invariant_under_offset_and_gain(self, data, shift,
                                                          gain):
        bits, widths_lsb = data
        lsb = 1.0 / (1 << bits)
        tf = TransferFunction.from_code_widths(bits, widths_lsb * lsb)
        transformed = tf.shifted(shift).scaled(gain)
        assert np.allclose(transformed.dnl(), tf.dnl(), atol=1e-7)


class TestLinearityProperties:
    @given(hnp.arrays(dtype=float, shape=st.integers(2, 100),
                      elements=st.floats(0.01, 3.0)))
    @settings(max_examples=60, deadline=None)
    def test_endpoint_dnl_sums_to_zero(self, widths):
        result = linearity_from_code_widths(widths)
        assert result.dnl_lsb.sum() == pytest.approx(0.0, abs=1e-6)
        # Consequently the INL returns to zero at the top of the range.
        assert result.inl_lsb[-1] == pytest.approx(0.0, abs=1e-6)

    @given(hnp.arrays(dtype=float, shape=st.integers(2, 100),
                      elements=st.floats(0.01, 3.0)),
           st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_dnl_is_scale_invariant(self, widths, scale):
        a = linearity_from_code_widths(widths)
        b = linearity_from_code_widths(widths * scale)
        assert np.allclose(a.dnl_lsb, b.dnl_lsb, atol=1e-7)


# --------------------------------------------------------------------------- #
# Error-model mathematics
# --------------------------------------------------------------------------- #

class TestErrorModelProperties:
    @given(st.floats(min_value=0.0, max_value=3.0),
           st.floats(min_value=0.01, max_value=0.3),
           st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=40))
    @settings(max_examples=200, deadline=None)
    def test_acceptance_probability_is_a_probability(self, width, ds, i_min,
                                                     extra):
        h = acceptance_probability(width, ds, i_min, i_min + extra)
        assert 0.0 <= float(h) <= 1.0

    @given(st.floats(min_value=0.01, max_value=0.3),
           st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=40))
    @settings(max_examples=100, deadline=None)
    def test_acceptance_probability_monotone_on_ramps(self, ds, i_min, extra):
        i_max = i_min + extra
        rising = np.linspace((i_min - 1) * ds, i_min * ds, 20)
        falling = np.linspace(i_max * ds, (i_max + 1) * ds, 20)
        h_rising = acceptance_probability(rising, ds, i_min, i_max)
        h_falling = acceptance_probability(falling, ds, i_min, i_max)
        assert np.all(np.diff(h_rising) >= -1e-12)
        assert np.all(np.diff(h_falling) <= 1e-12)

    @given(st.floats(min_value=0.005, max_value=0.4),
           st.floats(min_value=0.1, max_value=1.5))
    @settings(max_examples=100, deadline=None)
    def test_count_limits_bracket_the_spec_window(self, ds, spec):
        try:
            i_min, i_max = count_limits(ds, spec)
        except ValueError:
            assume(False)
        dv_min = max(0.0, 1.0 - spec)
        dv_max = 1.0 + spec
        assert i_min * ds >= dv_min - 1e-9
        assert i_max * ds <= dv_max + 1e-9

    @given(st.integers(min_value=3, max_value=10),
           st.floats(min_value=0.1, max_value=1.5))
    @settings(max_examples=60, deadline=None)
    def test_delta_s_uses_full_counter_range(self, bits, spec):
        ds = delta_s_for_counter(bits, spec)
        i_min, i_max = count_limits(ds, spec, counter_max=1 << bits)
        assert i_max == 1 << bits

    @given(st.integers(min_value=4, max_value=9),
           st.floats(min_value=0.3, max_value=1.2),
           st.floats(min_value=0.05, max_value=0.35))
    @settings(max_examples=40, deadline=None)
    def test_per_code_probabilities_consistent(self, bits, spec, sigma):
        from repro.analysis.distributions import CodeWidthDistribution
        model = ErrorModel(distribution=CodeWidthDistribution(sigma),
                           dnl_spec_lsb=spec, counter_bits=bits)
        pc = model.per_code()
        assert 0.0 <= pc.p_good <= 1.0
        assert 0.0 <= pc.p_accept <= 1.0 + 1e-9
        assert pc.p_good_and_accept <= pc.p_good + 1e-12
        assert pc.p_good_and_accept <= pc.p_accept + 1e-12
        assert pc.type_i >= 0.0
        assert pc.type_ii >= 0.0


# --------------------------------------------------------------------------- #
# Counting process
# --------------------------------------------------------------------------- #

class TestCountingProperties:
    @given(hnp.arrays(dtype=float, shape=(5, 20),
                      elements=st.floats(0.0, 3.0)),
           st.floats(min_value=0.02, max_value=0.5),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_sequential_counts_sum_to_total_samples_in_span(self, widths, ds,
                                                            seed):
        counts = simulate_counts(widths, ds, phase_model="sequential",
                                 rng=seed)
        span = widths.sum(axis=1)
        assert np.all(np.abs(counts.sum(axis=1) - span / ds) <= 1.0 + 1e-9)

    @given(hnp.arrays(dtype=float, shape=(3, 15),
                      elements=st.floats(0.0, 3.0)),
           st.floats(min_value=0.02, max_value=0.5),
           st.integers(min_value=0, max_value=2 ** 31 - 1),
           st.sampled_from(["sequential", "independent"]))
    @settings(max_examples=60, deadline=None)
    def test_counts_bracket_true_width(self, widths, ds, seed, phase_model):
        counts = simulate_counts(widths, ds, phase_model=phase_model,
                                 rng=seed)
        expected = widths / ds
        assert np.all(counts >= np.floor(expected) - 1e-9)
        assert np.all(counts <= np.ceil(expected) + 1e-9)

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=10000))
    @settings(max_examples=100, deadline=None)
    def test_counter_reading_never_exceeds_effective_max(self, bits, events):
        counter = SaturatingCounter(bits)
        reading = counter.count_events(events)
        assert 0 <= reading <= counter.effective_max
        if events <= counter.max_value:
            assert reading == events

    @given(hnp.arrays(dtype=np.int8, shape=st.integers(2, 400),
                      elements=st.integers(0, 1)),
           st.integers(min_value=1, max_value=4),
           st.sampled_from(["hysteresis", "majority"]))
    @settings(max_examples=80, deadline=None)
    def test_deglitch_never_increases_toggles(self, stream, depth, mode):
        filt = DeglitchFilter(depth=depth, mode=mode)
        assert (filt.count_toggles(filt.apply(stream))
                <= filt.count_toggles(stream))

    @given(hnp.arrays(dtype=np.int8, shape=st.integers(2, 400),
                      elements=st.integers(0, 1)),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_deglitch_output_is_binary_and_same_length(self, stream, depth):
        filtered = DeglitchFilter(depth=depth).apply(stream)
        assert filtered.size == stream.size
        assert set(np.unique(filtered)).issubset({0, 1})

    @given(st.lists(st.integers(min_value=1, max_value=40), min_size=1,
                    max_size=30),
           st.integers(min_value=4, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_lsb_processor_recovers_exact_segment_lengths(self, counts, bits):
        limits = CountLimits.for_counter(bits, dnl_spec_lsb=1.0,
                                         delta_s_lsb=0.05)
        stream = []
        level = 0
        stream.extend([level] * 3)
        level ^= 1
        for count in counts:
            stream.extend([level] * count)
            level ^= 1
        stream.extend([level] * 3)
        result = LsbProcessor(limits).process(np.array(stream, dtype=np.int8))
        assert list(result.counts) == counts


# --------------------------------------------------------------------------- #
# Partial-BIST partition
# --------------------------------------------------------------------------- #

class TestQminProperties:
    @given(st.floats(min_value=1e-3, max_value=1e5),
           st.floats(min_value=1e3, max_value=1e8),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=150, deadline=None)
    def test_qmin_within_bounds(self, f_stim, f_sample, n_bits):
        q = qmin(f_stim, f_sample, n_bits)
        assert 1 <= q <= n_bits

    @given(st.floats(min_value=1e-3, max_value=1e3),
           st.floats(min_value=1e3, max_value=1e8),
           st.integers(min_value=2, max_value=12))
    @settings(max_examples=100, deadline=None)
    def test_qmin_monotone_in_stimulus_frequency(self, f_stim, f_sample,
                                                 n_bits):
        q_slow = qmin(f_stim, f_sample, n_bits)
        q_fast = qmin(f_stim * 4.0, f_sample, n_bits)
        assert q_fast >= q_slow

    @given(st.integers(min_value=1, max_value=12),
           st.floats(min_value=0.0, max_value=4.0),
           st.floats(min_value=0.0, max_value=4.0))
    @settings(max_examples=100, deadline=None)
    def test_nl_budget_is_bounded_by_both_terms(self, q, dnl, inl):
        budget = nl_budget(q, dnl, inl)
        assert budget <= dnl * 2 ** (q - 1) + 1e-12
        assert budget <= inl * 2 + 1e-12
