"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bist_defaults(self):
        args = build_parser().parse_args(["bist"])
        assert args.bits == 6
        assert args.counter_bits == 7

    def test_qmin_requires_frequencies(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["qmin"])


class TestCommands:
    def test_bist_pass(self, capsys):
        exit_code = main(["bist", "--sigma", "0.1", "--seed", "3",
                          "--dnl-spec", "1.0"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "PASS" in out

    def test_bist_fail_returns_nonzero(self, capsys):
        exit_code = main(["bist", "--sigma", "0.5", "--seed", "1",
                          "--dnl-spec", "0.25", "--counter-bits", "6"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "FAIL" in out

    def test_bist_with_histogram_comparison(self, capsys):
        main(["bist", "--sigma", "0.1", "--seed", "3",
              "--compare-histogram"])
        out = capsys.readouterr().out
        assert "histogram" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "counter bits" in out
        assert "±0.5" in out
        assert "meas" not in out  # Monte-Carlo columns are opt-in

    def test_table1_monte_carlo_columns(self, capsys):
        assert main(["table1", "--devices", "300", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "meas type I" in out
        assert "meas type II" in out
        assert "300 devices, seed 7" in out

    def test_table1_monte_carlo_follows_codes(self, capsys):
        # 30 codes = a 5-bit converter; the MEAS. wafer must match it.
        assert main(["table1", "--devices", "200", "--codes", "30"]) == 0
        out = capsys.readouterr().out
        assert "meas type I" in out
        with pytest.raises(ValueError):
            main(["table1", "--devices", "200", "--codes", "50"])

    def test_lot(self, capsys):
        assert main(["lot", "--wafers", "1", "--devices", "200",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Screening results per lot" in out
        assert "Station totals" in out
        assert "Quality bins" in out
        assert "devices screened: 200" in out

    def test_lot_with_retest_and_noise(self, capsys):
        assert main(["lot", "--wafers", "1", "--devices", "150",
                     "--noise", "0.02", "--deglitch", "2",
                     "--retest", "1", "--tester", "mixed"]) == 0
        out = capsys.readouterr().out
        assert "retest" in out

    def test_lot_partial_arch_and_chips(self, capsys):
        assert main(["lot", "--wafers", "1", "--devices", "200",
                     "--arch", "sar", "--q", "2", "--per-ic", "4"]) == 0
        out = capsys.readouterr().out
        assert "partial BIST, q=2" in out
        assert "sar/partial q=2" in out
        assert "chips screened" in out

    def test_lot_pipeline_architecture(self, capsys):
        assert main(["lot", "--wafers", "1", "--devices", "150",
                     "--arch", "pipeline"]) == 0
        out = capsys.readouterr().out
        assert "pipeline/full" in out

    def test_lot_histogram_method(self, capsys):
        assert main(["lot", "--wafers", "1", "--devices", "200",
                     "--method", "histogram", "--dnl-spec", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "conventional histogram test" in out
        assert "flash/histogram" in out

    def test_lot_dynamic_method(self, capsys):
        assert main(["lot", "--wafers", "1", "--devices", "60",
                     "--method", "dynamic"]) == 0
        out = capsys.readouterr().out
        assert "dynamic FFT suite" in out
        assert "flash/dynamic" in out

    def test_lot_method_rejects_partial_q(self):
        with pytest.raises(ValueError):
            main(["lot", "--wafers", "1", "--devices", "100",
                  "--method", "histogram", "--q", "2"])

    def test_lot_workers_defaults(self):
        args = build_parser().parse_args(["lot"])
        assert args.workers is None
        assert args.chunk_size is None

    def test_observability_defaults(self):
        # Every batch command carries the telemetry surface, off by
        # default so reports stay byte-identical to the quiet CLI.
        for command in ("lot", "partial", "compare", "campaign"):
            args = build_parser().parse_args([command])
            assert args.verbose is False
            assert args.progress is False
            assert args.metrics is None

    def test_metrics_json_schema(self, tmp_path, capsys):
        import json

        path = tmp_path / "out.json"
        assert main(["lot", "--wafers", "1", "--devices", "200",
                     "--seed", "5", "--metrics", str(path)]) == 0
        assert f"wrote metrics to {path}" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.metrics/1"
        assert doc["context"]["command"] == "lot"
        assert doc["counters"]["line.devices"] == 200
        # Wall-clock data is isolated under the one non-deterministic key.
        assert set(doc) == {"schema", "context", "counters", "timing"}

    def test_verbose_epilogue(self, capsys):
        assert main(["partial", "--devices", "100", "--q", "2", "-v"]) == 0
        out = capsys.readouterr().out
        assert "elapsed:" in out
        assert "engine.partial.devices = 100" in out

    def test_progress_alone_raises_log_level(self):
        # --progress without -v must still lift the repro hierarchy to
        # INFO (the shard lines are emitted through it), and a quiet run
        # must drop it back.
        import logging

        assert main(["partial", "--devices", "50", "--q", "2",
                     "--progress"]) == 0
        assert logging.getLogger("repro").level == logging.INFO
        assert main(["partial", "--devices", "50", "--q", "2"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING

    def test_progress_lines_reach_the_executor_logger(self):
        import logging

        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        logger = logging.getLogger("repro.executor")
        handler = Capture()
        logger.addHandler(handler)
        try:
            assert main(["lot", "--wafers", "1", "--devices", "300",
                         "--workers", "1", "--chunk-size", "50",
                         "--progress"]) == 0
        finally:
            logger.removeHandler(handler)
        assert any(message.startswith("shard") for message in records)

    def test_lot_report_byte_identical_across_workers(self, capsys):
        """The scale-out acceptance criterion at the CLI surface: the
        floor report of a noisy lot must be byte-identical for any
        (workers, chunk-size), with --workers 1 as the serial reference.
        Only the wall-clock simulation line may differ."""

        def run(extra):
            assert main(["lot", "--wafers", "1", "--devices", "300",
                         "--noise", "0.05", "--deglitch", "3",
                         "--retest", "1", "--seed", "11"] + extra) == 0
            out = capsys.readouterr().out
            return "\n".join(line for line in out.splitlines()
                             if "devices/s (batched engine)" not in line)

        reference = run(["--workers", "1", "--chunk-size", "64"])
        assert run(["--workers", "2", "--chunk-size", "64"]) == reference
        assert run(["--workers", "4", "--chunk-size", "29"]) == reference
        assert run(["--workers", "2", "--chunk-size", "128"]) == reference

    def test_partial_with_workers(self, capsys):
        assert main(["partial", "--devices", "200", "--q", "2",
                     "--workers", "2", "--chunk-size", "50"]) == 0
        out = capsys.readouterr().out
        assert "accept fraction" in out

    def test_compare_bist_vs_histogram(self, capsys):
        assert main(["compare", "--devices", "400", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "one shared wafer draw" in out
        assert "full BIST" in out
        assert "conventional histogram" in out
        assert "Screening methods compared" in out
        assert "type II (escapes)" in out

    def test_compare_with_partial_and_dynamic(self, capsys):
        assert main(["compare", "--devices", "200", "--seed", "3",
                     "--q", "2", "--dynamic"]) == 0
        out = capsys.readouterr().out
        assert "partial BIST q=2" in out
        assert "dynamic FFT" in out

    def test_partial_monte_carlo(self, capsys):
        assert main(["partial", "--devices", "300", "--q", "2",
                     "--arch", "sar"]) == 0
        out = capsys.readouterr().out
        assert "q = 2" in out
        assert "accept fraction" in out
        assert "reconstruction error rate" in out
        assert "tester data reduction" in out

    def test_partial_breakdown_reports_errors(self, capsys):
        """A too-fast ramp with q=1 must show reconstruction failures."""
        assert main(["partial", "--devices", "100", "--q", "1",
                     "--samples-per-code", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "devices with exact reconstruction" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "x1e-5" in out

    def test_figure7(self, capsys):
        assert main(["figure7", "--points", "12"]) == 0
        out = capsys.readouterr().out
        assert "P(type I)" in out
        assert "*" in out  # the ASCII plot

    def test_qmin_slow_and_fast(self, capsys):
        assert main(["qmin", "--f-stimulus", "1", "--f-sample", "1000000",
                     "--dnl-spec", "0.5", "--inl-spec", "0.5"]) == 0
        slow_out = capsys.readouterr().out
        assert "q_min = 1" in slow_out
        assert main(["qmin", "--f-stimulus", "500000",
                     "--f-sample", "1000000"]) == 0
        fast_out = capsys.readouterr().out
        assert "q_min = 6" in fast_out

    def test_yield(self, capsys):
        assert main(["yield"]) == 0
        out = capsys.readouterr().out
        assert "P(device good)" in out


class TestCampaignCommand:
    def test_grid_table(self, capsys):
        assert main(["campaign", "--arch", "flash,sar",
                     "--method", "bist,histogram", "--q", "4,8",
                     "--devices", "120"]) == 0
        out = capsys.readouterr().out
        # The q axis collapses for the histogram method: 2x2x2 -> 6.
        assert "6 scenarios" in out
        assert "Campaign results per scenario" in out
        assert "flash/partial q=4" in out
        assert "sar/histogram" in out
        assert "devices screened: 720" in out

    def test_q_full_keyword(self, capsys):
        assert main(["campaign", "--q", "full,2", "--devices", "80"]) == 0
        out = capsys.readouterr().out
        assert "flash/full" in out
        assert "flash/partial q=2" in out

    def test_report_byte_identical_across_workers(self, capsys):
        """The tentpole acceptance criterion at the CLI surface: a noisy
        campaign grid sharded over workers prints byte-for-byte the
        serial report (no filtering needed — the campaign output carries
        no wall-clock lines)."""

        def run(extra):
            assert main(["campaign", "--arch", "flash,sar",
                         "--method", "bist,histogram", "--q", "4,8",
                         "--devices", "90", "--noise", "0.05",
                         "--retest", "1", "--seed", "13"] + extra) == 0
            return capsys.readouterr().out

        reference = run(["--workers", "1", "--chunk-size", "32"])
        assert run(["--workers", "4", "--chunk-size", "32"]) == reference
        assert run(["--workers", "2", "--chunk-size", "17"]) == reference

    def test_json_export(self, capsys):
        import json

        assert main(["campaign", "--q", "2,4", "--devices", "60",
                     "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [r["label"] for r in records] == ["flash/partial q=2",
                                                 "flash/partial q=4"]
        assert all(r["devices"] == 60 for r in records)

    def test_csv_export(self, tmp_path, capsys):
        path = tmp_path / "grid.csv"
        assert main(["campaign", "--q", "2,4", "--devices", "60",
                     "--csv", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote 2 scenario records to {path}" in out
        lines = path.read_text().splitlines()
        assert lines[0].startswith("label,architecture,method")
        assert len(lines) == 3

    def test_campaign_workers_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.workers is None and args.chunk_size is None
        assert args.bits == 8
        assert args.arch == ["flash"] and args.q == [None]

    def test_axis_typos_are_clean_usage_errors(self, capsys):
        """Grid axes validate like the sibling commands' choices= args:
        a typo is an argparse usage error, not a raw traceback."""
        for argv in (["campaign", "--arch", "flahs"],
                     ["campaign", "--method", "histgram"],
                     ["campaign", "--q", "4.5"],
                     ["campaign", "--q", ","]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(argv)
            assert "usage:" in capsys.readouterr().err
