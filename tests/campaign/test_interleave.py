"""Cross-scenario interleaving invariance suite.

The campaign driver's headline invariant, extended across *scenarios*:
a multi-scenario campaign whose shards are interleaved into one
persistent worker pool is byte-identical — reports, merged ledger,
rendered tables — to the sequential per-scenario execution, for every
``(workers, chunk_size, shard_devices)`` geometry, including noisy
draws, chip-aligned shards (``devices_per_ic``) and shared-wafer mode.
Interleaving must be pure scheduling; these tests are the proof the CI
``pool-smoke`` job re-runs.
"""

import pytest

from repro.campaign import Campaign, Scenario
from repro.production import ExecutionPlan
from repro.production.pool import close_default_pool
from repro.telemetry import Telemetry, metrics_document, telemetry_session

#: (workers, chunk_size) geometries the campaign grid sweeps against the
#: sequential ``workers=1`` reference, at each shard size.  The shard
#: size is held fixed within a comparison: per-shard-index seed spawning
#: makes noisy results a function of the shard *boundaries* (that is the
#: determinism contract), while workers and chunk size are pure
#: scheduling and must never matter.
WORKER_GRID = [(2, None), (2, 23), (4, None)]
SHARD_SIZES = [64, 31]


def _scenarios():
    """Two deliberately different scenarios: a noisy full BIST (stream
    path, per-shard seed spawning) and the conventional histogram."""
    return [
        Scenario(architecture="flash", method="bist", n_bits=6, q=2,
                 n_devices=240, transition_noise_lsb=0.05),
        Scenario(architecture="flash", method="histogram", n_bits=6,
                 n_devices=240),
    ]


def _digest(result) -> str:
    """Everything observable about a campaign run, as one string."""
    rows = []
    for report in result.reports:
        rows.append((report.n_devices, report.n_accepted, report.type_i,
                     report.type_ii, report.tester_seconds,
                     tuple(report.bin_counts)))
    return "\n".join([
        repr(rows),
        repr(result.seeds),
        result.store.campaign_table(),
        result.store.lot_table(),
        result.to_json(),
    ])


@pytest.fixture(autouse=True)
def _close_pool():
    yield
    close_default_pool()


class TestInterleavedCampaignInvariance:
    @pytest.mark.parametrize("shard", SHARD_SIZES)
    def test_grid_matches_sequential_reference(self, shard):
        scenarios = _scenarios()
        reference = _digest(Campaign(scenarios, seed=7).run(
            plan=ExecutionPlan(workers=1, shard_devices=shard)))
        for workers, chunk in WORKER_GRID:
            candidate = _digest(Campaign(scenarios, seed=7).run(
                plan=ExecutionPlan(workers=workers, chunk_size=chunk,
                                   shard_devices=shard)))
            assert candidate == reference, (workers, chunk, shard)

    def test_cold_pool_matches_interleaved(self):
        scenarios = _scenarios()
        warm = _digest(Campaign(scenarios, seed=7).run(
            plan=ExecutionPlan(workers=2, shard_devices=64)))
        cold = _digest(Campaign(scenarios, seed=7).run(
            plan=ExecutionPlan(workers=2, shard_devices=64,
                               reuse_pool=False)))
        assert warm == cold

    def test_chip_aligned_scenarios(self):
        """Chip-mode scenarios shard on IC boundaries; interleaving must
        respect the alignment and stay byte-identical."""
        scenarios = [
            Scenario(architecture="flash", method="bist", n_bits=6, q=2,
                     n_devices=240, devices_per_ic=4,
                     transition_noise_lsb=0.05),
            Scenario(architecture="flash", method="bist", n_bits=6, q=4,
                     n_devices=240, devices_per_ic=4,
                     transition_noise_lsb=0.05),
        ]
        reference = _digest(Campaign(scenarios, seed=11).run(
            plan=ExecutionPlan(workers=1, shard_devices=64)))
        for workers in (2, 4):
            candidate = _digest(Campaign(scenarios, seed=11).run(
                plan=ExecutionPlan(workers=workers, shard_devices=64)))
            assert candidate == reference, workers

    def test_shared_wafer_campaign(self):
        """Shared-wafer mode re-homes the one wafer into shared memory
        for the interleaved run; results must not notice."""
        scenarios = [
            Scenario(architecture="flash", method="bist", n_bits=6, q=2,
                     n_devices=240, transition_noise_lsb=0.05),
            Scenario(architecture="flash", method="bist", n_bits=6, q=4,
                     n_devices=240, transition_noise_lsb=0.05),
        ]
        reference = _digest(Campaign(scenarios, seed=7,
                                     shared_wafer=True).run(
            plan=ExecutionPlan(workers=1, shard_devices=64)))
        for workers, chunk in WORKER_GRID:
            candidate = _digest(Campaign(scenarios, seed=7,
                                         shared_wafer=True).run(
                plan=ExecutionPlan(workers=workers, chunk_size=chunk,
                                   shard_devices=64)))
            assert candidate == reference, (workers, chunk)


def _flow_scenarios():
    """Adaptive-flow grid: every excursion under the SPRT flow plus the
    fixed-flow clean reference — the tentpole's determinism surface."""
    base = Scenario(architecture="flash", method="bist", n_bits=6,
                    n_devices=240, n_wafers=2)
    return (base.grid(flow=["fixed", "sprt"],
                      excursion=[None, "drift", "spatial", "burst"]))


class TestAdaptiveFlowInvariance:
    """Excursed populations and SPRT/SPC decisions are drawn and decided
    in the parent, so the whole adaptive grid — including mid-wafer
    aborts — must stay byte-identical across every scheduling geometry
    and across a warm pool."""

    def test_flow_grid_matches_sequential_reference(self):
        scenarios = _flow_scenarios()
        reference = _digest(Campaign(scenarios, seed=13).run(
            plan=ExecutionPlan(workers=1, shard_devices=64)))
        for workers, chunk in WORKER_GRID:
            candidate = _digest(Campaign(scenarios, seed=13).run(
                plan=ExecutionPlan(workers=workers, chunk_size=chunk,
                                   shard_devices=64)))
            assert candidate == reference, (workers, chunk)

    def test_flow_grid_warm_pool_matches_cold(self):
        scenarios = _flow_scenarios()
        plan = ExecutionPlan(workers=2, shard_devices=64)
        cold = _digest(Campaign(scenarios, seed=13).run(plan=plan))
        # The pool is still warm from the first run; results must not
        # notice the reused workers.
        warm = _digest(Campaign(scenarios, seed=13).run(plan=plan))
        assert warm == cold

    def test_excursed_draws_byte_identical_across_geometry(self):
        # The generators run at draw time in the parent; the execution
        # plan must not even be able to influence the population bytes.
        scenario = Scenario(architecture="flash", method="bist", n_bits=6,
                            n_devices=240, n_wafers=3, seed=13,
                            excursion="spatial")
        reference = [w.transitions.tobytes()
                     for w in scenario.draw_lot()]
        again = [w.transitions.tobytes() for w in scenario.draw_lot()]
        assert again == reference

    def test_flow_counters_identical_outside_timing(self):
        def document(workers):
            with telemetry_session(Telemetry()) as t:
                Campaign(_flow_scenarios(), seed=13).run(
                    plan=ExecutionPlan(workers=workers, shard_devices=64))
            return metrics_document(t)

        serial = document(1)
        interleaved = document(2)
        assert serial["counters"] == interleaved["counters"]
        assert any(name.startswith("flow.")
                   for name in serial["counters"])


class TestInterleaveTelemetry:
    def _document(self, workers: int):
        with telemetry_session(Telemetry()) as t:
            Campaign(_scenarios(), seed=7).run(
                plan=ExecutionPlan(workers=workers, shard_devices=64))
        return metrics_document(t)

    def test_counters_identical_outside_timing(self):
        serial = self._document(1)
        interleaved = self._document(2)
        assert serial["counters"] == interleaved["counters"]
        assert serial["schema"] == interleaved["schema"]

    def test_interleaved_run_span_and_scheduling_counters(self):
        doc = self._document(2)
        runs = [s for s in doc["timing"]["spans"]
                if s["name"] == "campaign.run"]
        assert len(runs) == 1
        assert runs[0]["attrs"]["interleaved"] is True
        scenario_spans = [s for s in doc["timing"]["spans"]
                         if s["name"] == "campaign.scenario"]
        assert len(scenario_spans) == 2
        # Scenario threads re-parent under the campaign.run span.
        assert all(s["parent_id"] == runs[0]["span_id"]
                   for s in scenario_spans)
        assert doc["timing"]["scheduling"]["pool.tasks_dispatched"] > 0
        assert "pool.queue_depth" in doc["timing"]["gauges"]

    def test_sequential_run_span_is_not_interleaved(self):
        doc = self._document(1)
        runs = [s for s in doc["timing"]["spans"]
                if s["name"] == "campaign.run"]
        assert runs[0]["attrs"]["interleaved"] is False
