"""ScenarioSubmitter failure semantics and the campaign's fast-fail path.

The regression targets: a scenario that raises mid-campaign must abort
its sibling scenario threads *promptly* (not let them screen to
completion while the error waits), and a :class:`PoolBrokenError` must
be retried against a rebuilt pool exactly ``pool_retries`` times — with
the journal's run numbering realigned per attempt — before propagating.
"""

import threading
import time

import pytest

from repro.campaign import (
    Campaign,
    LabelDeduper,
    Scenario,
    ScenarioSubmitter,
)
from repro.campaign import driver as driver_module
from repro.production import ExecutionPlan, PoolBrokenError
from repro.production.execution import ExecutionAborted, current_abort
from repro.production.pool import close_default_pool


@pytest.fixture(autouse=True)
def _clean_default_pool():
    close_default_pool()
    yield
    close_default_pool()


def _scenarios():
    return [
        Scenario(architecture="flash", method="bist", n_bits=6, q=2,
                 n_devices=240),
        Scenario(architecture="flash", method="histogram", n_bits=6,
                 n_devices=240),
    ]


class TestLabelDeduper:
    def test_matches_batch_labels_claimed_incrementally(self):
        scenarios = _scenarios() + _scenarios()
        batch = Campaign(scenarios, seed=1).labels()
        deduper = LabelDeduper()
        streamed = [deduper.claim(s.resolved_label) for s in scenarios]
        assert streamed == batch
        assert len(set(streamed)) == len(streamed)

    def test_suffix_collision_with_explicit_label(self):
        deduper = LabelDeduper()
        assert deduper.claim("row [2]") == "row [2]"
        assert deduper.claim("row") == "row"
        # The natural second occurrence "row [2]" is taken; skip past it.
        assert deduper.claim("row") == "row [3]"


class TestPromptSiblingAbort:
    def test_failing_scenario_aborts_sibling_promptly(self, monkeypatch):
        """The first failure must cancel the sibling, not wait it out.

        The sibling stub blocks on the submitter's abort event with a
        10 s ceiling; if the campaign's failure handling did not signal
        it, the run would take the full ceiling and the elapsed-time
        assertion fails.
        """
        scenarios = _scenarios()
        fail_label = Campaign(scenarios, seed=7).labels()[0]
        sibling_signalled = threading.Event()

        def fake_screen(label, seed, line, lot, plan=None,
                        parent_span_id=None):
            if label == fail_label:
                time.sleep(0.05)  # let the sibling reach its wait
                raise RuntimeError("injected scenario failure")
            event = current_abort()
            assert event is not None, "submitter did not install abort"
            if not event.wait(timeout=10.0):
                raise AssertionError("sibling was never aborted")
            sibling_signalled.set()
            raise ExecutionAborted("aborted by sibling failure")

        monkeypatch.setattr(driver_module, "screen_scenario", fake_screen)
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="injected scenario failure"):
            Campaign(scenarios, seed=7).run(
                plan=ExecutionPlan(workers=2, shard_devices=64))
        elapsed = time.monotonic() - start
        assert sibling_signalled.is_set()
        assert elapsed < 8.0, f"abort was not prompt: {elapsed:.1f}s"

    def test_queued_submissions_are_cancelled(self, monkeypatch):
        """With one submission thread, the queued scenario never starts."""
        scenarios = _scenarios()
        started = []

        def fake_screen(label, seed, line, lot, plan=None,
                        parent_span_id=None):
            started.append(label)
            raise RuntimeError("first scenario fails")

        monkeypatch.setattr(driver_module, "screen_scenario", fake_screen)
        plan = ExecutionPlan(workers=1)
        with ScenarioSubmitter(plan, max_threads=1) as submitter:
            futures = [
                submitter.submit(f"s{i}", i, line=None, lot=None)
                for i in range(3)
            ]
            done_first = futures[0].exception(timeout=10)
            assert isinstance(done_first, RuntimeError)
            submitter.abort()
            for future in futures[1:]:
                future.cancel()
        # Cancellation raced thread pickup; at minimum the abort event
        # stops anything that did start, and nothing ran to completion.
        assert all(f.done() for f in futures)
        assert len(started) <= 3


class TestPoolRetry:
    def test_broken_pool_retries_and_succeeds(self, monkeypatch):
        calls = []

        def fake_screen(label, seed, line, lot, plan=None,
                        parent_span_id=None):
            calls.append(label)
            if len(calls) == 1:
                raise PoolBrokenError("injected worker death")
            return "report", "store"

        monkeypatch.setattr(driver_module, "screen_scenario", fake_screen)
        rebuilt = []
        monkeypatch.setattr(driver_module, "get_default_pool",
                            lambda workers: rebuilt.append(workers))
        plan = ExecutionPlan(workers=1)
        with ScenarioSubmitter(plan, max_threads=1,
                               pool_retries=1) as submitter:
            future = submitter.submit("lbl", 3, line=None, lot=None)
            assert future.result(timeout=10) == ("report", "store")
        assert calls == ["lbl", "lbl"]
        assert rebuilt == [1]

    def test_retries_exhausted_propagates_typed_error(self, monkeypatch):
        calls = []

        def fake_screen(label, seed, line, lot, plan=None,
                        parent_span_id=None):
            calls.append(label)
            raise PoolBrokenError("still broken")

        monkeypatch.setattr(driver_module, "screen_scenario", fake_screen)
        monkeypatch.setattr(driver_module, "get_default_pool",
                            lambda workers: None)
        plan = ExecutionPlan(workers=1)
        with ScenarioSubmitter(plan, max_threads=1,
                               pool_retries=2) as submitter:
            future = submitter.submit("lbl", 3, line=None, lot=None)
            with pytest.raises(PoolBrokenError):
                future.result(timeout=10)
        assert calls == ["lbl"] * 3  # initial + 2 retries

    def test_default_zero_retries_propagates_immediately(self, monkeypatch):
        calls = []

        def fake_screen(label, seed, line, lot, plan=None,
                        parent_span_id=None):
            calls.append(label)
            raise PoolBrokenError("worker died")

        monkeypatch.setattr(driver_module, "screen_scenario", fake_screen)
        plan = ExecutionPlan(workers=1)
        with ScenarioSubmitter(plan, max_threads=1) as submitter:
            future = submitter.submit("lbl", 3, line=None, lot=None)
            with pytest.raises(PoolBrokenError):
                future.result(timeout=10)
        assert calls == ["lbl"]

    def test_retry_realigns_journal_attempt(self, monkeypatch):
        events = []

        class StubJournal:
            def begin_attempt(self):
                events.append("begin_attempt")

            def begin_run(self, n_tasks):
                return 0

            def lookup(self, run, index):
                return False, None

            def record(self, run, index, value):
                events.append(("record", run, index))

        def fake_screen(label, seed, line, lot, plan=None,
                        parent_span_id=None):
            events.append("screen")
            if events.count("screen") == 1:
                raise PoolBrokenError("injected")
            return "report", "store"

        monkeypatch.setattr(driver_module, "screen_scenario", fake_screen)
        monkeypatch.setattr(driver_module, "get_default_pool",
                            lambda workers: None)
        plan = ExecutionPlan(workers=1)
        with ScenarioSubmitter(plan, max_threads=1,
                               pool_retries=1) as submitter:
            future = submitter.submit("lbl", 3, line=None, lot=None,
                                      journal=StubJournal())
            assert future.result(timeout=10) == ("report", "store")
        # The retry re-screens from the top with the run counter reset.
        assert events == ["screen", "begin_attempt", "screen"]

    def test_validation(self):
        with pytest.raises(ValueError, match="max_threads"):
            ScenarioSubmitter(ExecutionPlan(workers=1), max_threads=0)
        with pytest.raises(ValueError, match="pool_retries"):
            ScenarioSubmitter(ExecutionPlan(workers=1), pool_retries=-1)

    def test_submit_outside_context_raises(self):
        submitter = ScenarioSubmitter(ExecutionPlan(workers=1))
        with pytest.raises(RuntimeError, match="outside the context"):
            submitter.submit("lbl", 3, line=None, lot=None)
