"""Campaign driver tests: bit-identity, scale-out invariance, merging.

The acceptance contract of the campaign layer: ``Campaign.run`` is nothing
but per-scenario ``ScreeningLine.screen_lot`` calls under deterministic
per-scenario seeds, shard-merged — so a campaign report is bit-identical
to the hand-rolled loop, and byte-identical for any worker count.
"""

import dataclasses

import pytest

from repro.campaign import Campaign, Scenario, scenario_child_seed
from repro.production import ExecutionPlan, ResultStore, ScreeningLine


def _strip_wall(report):
    """Reports modulo the one wall-clock (non-deterministic) field."""
    return dataclasses.replace(report, wall_seconds=0.0)


@pytest.fixture
def grid():
    """A 2x2(x q) scenario grid with acquisition noise and retest."""
    return Scenario(n_bits=8, n_devices=120, transition_noise_lsb=0.05,
                    retest_attempts=1, dnl_spec_lsb=0.5).grid(
        architecture=["flash", "sar"], method=["bist", "histogram"],
        q=[4, 8])


class TestDeterminism:
    def test_child_seeds_are_pure_functions(self):
        assert scenario_child_seed(7, 3) == scenario_child_seed(7, 3)
        assert scenario_child_seed(7, 3) != scenario_child_seed(7, 4)
        assert scenario_child_seed(7, 3) != scenario_child_seed(8, 3)

    def test_run_is_reproducible(self, grid):
        first = Campaign(grid, seed=11).run()
        second = Campaign(grid, seed=11).run()
        assert first.table() == second.table()
        assert first.records() == second.records()

    def test_campaign_pins_to_per_scenario_screen_lot(self, grid):
        """The acceptance criterion: Campaign.run == the hand-rolled
        per-scenario ScreeningLine.screen_lot loop with the same seeds."""
        campaign = Campaign(grid, seed=11)
        result = campaign.run()
        for scenario, label, seed, report in zip(
                grid, campaign.labels(), campaign.seeds(), result.reports):
            line = ScreeningLine.from_scenario(scenario)
            reference = line.screen_lot(
                scenario.draw_lot(seed=seed, lot_id=label), rng=seed)
            assert _strip_wall(report) == _strip_wall(reference)

    def test_explicit_scenario_seed_wins(self):
        pinned = Scenario(n_devices=50, seed=99)
        campaign = Campaign([pinned, pinned.derive(q=2, seed=None)],
                            seed=1)
        assert campaign.seeds() == [99, scenario_child_seed(1, 1)]


class TestScaleOutInvariance:
    def test_report_identical_for_any_worker_count(self, grid):
        """A noisy campaign grid at workers 2/4 is byte-identical to the
        serial workers=1 reference — the scale-out acceptance criterion
        at the campaign surface."""
        reference = Campaign(grid, seed=11).run(
            plan=ExecutionPlan(workers=1, chunk_size=64))
        for plan in (ExecutionPlan(workers=2, chunk_size=64),
                     ExecutionPlan(workers=4, chunk_size=29)):
            result = Campaign(grid, seed=11).run(plan=plan)
            assert result.table() == reference.table()
            assert result.to_json() == reference.to_json()
            assert result.store.summary() == reference.store.summary()
            for got, want in zip(result.reports, reference.reports):
                assert _strip_wall(got) == _strip_wall(want)


class TestSharedWafer:
    def test_all_methods_screen_identical_dies(self):
        base = Scenario(n_bits=6, n_devices=100, dnl_spec_lsb=0.5,
                        seed=3)
        scenarios = [base.derive(label="full"),
                     base.derive(q=2, label="partial"),
                     base.derive(method="histogram", label="histogram")]
        result = Campaign(scenarios, seed=3, shared_wafer=True).run()
        # One shared draw: the truth (true yield) is common to every row.
        p_good = {r.p_good for r in result.reports}
        assert len(p_good) == 1
        assert [r.lot_id for r in result.reports] == [
            "full", "partial", "histogram"]

    def test_mismatched_specs_are_rejected(self):
        base = Scenario(n_devices=100)
        with pytest.raises(ValueError):
            Campaign([base, base.derive(architecture="sar")],
                     shared_wafer=True)


class TestLabelsAndExport:
    def test_duplicate_labels_get_occurrence_suffixes(self):
        base = Scenario(n_devices=50)
        campaign = Campaign([base, base.derive(transition_noise_lsb=0.05),
                             base.derive(q=2)])
        assert campaign.labels() == ["flash/full", "flash/full [2]",
                                     "flash/partial q=2"]

    def test_suffix_never_collides_with_explicit_labels(self):
        """An explicit label that looks like a generated suffix must not
        merge a distinct scenario into its campaign_table row."""
        base = Scenario(n_devices=50)
        campaign = Campaign([base.derive(label="dup"),
                             base.derive(q=2, label="dup"),
                             base.derive(q=4, n_bits=8, label="dup [2]")])
        labels = campaign.labels()
        assert labels == ["dup", "dup [2]", "dup [2] [2]"]
        assert len(set(labels)) == len(labels)

    def test_records_and_csv(self, tmp_path):
        grid = Scenario(n_devices=60, n_bits=8).grid(q=[2, 4])
        result = Campaign(grid, seed=5).run()
        records = result.records()
        assert [r["label"] for r in records] == ["flash/partial q=2",
                                                 "flash/partial q=4"]
        assert all(r["devices"] == 60 for r in records)
        path = tmp_path / "campaign.csv"
        assert result.write_csv(str(path)) == 2
        lines = path.read_text().splitlines()
        assert lines[0].startswith("label,architecture,method")
        assert len(lines) == 3

    def test_single_scenario_accepted(self):
        result = Campaign(Scenario(n_devices=40), seed=2).run()
        assert len(result.reports) == 1

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError):
            Campaign([])

    def test_store_argument_receives_reports(self):
        ledger = ResultStore()
        Campaign(Scenario(n_devices=40), seed=2).run(store=ledger)
        assert len(ledger) == 1
