"""Unit tests for the declarative Scenario value object."""

import dataclasses

import pytest

from repro.campaign import AUTO_Q, Scenario, default_tester, make_engine
from repro.core import BistConfig
from repro.production import (
    BatchBistEngine,
    BatchDynamicSuite,
    BatchHistogramTest,
    BatchPartialBistEngine,
    ScreeningLine,
)


class TestValidation:
    def test_defaults_are_valid(self):
        scenario = Scenario()
        assert scenario.architecture == "flash"
        assert scenario.method == "bist"
        assert scenario.is_full_bist

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            Scenario(architecture="delta-sigma")

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            Scenario(method="shmoo")

    def test_q_requires_bist(self):
        with pytest.raises(ValueError):
            Scenario(method="histogram", q=2)

    def test_q_bounds(self):
        with pytest.raises(ValueError):
            Scenario(q=0)
        with pytest.raises(ValueError):
            Scenario(n_bits=6, q=7)
        assert Scenario(n_bits=6, q=6).q == 6
        assert Scenario(q=AUTO_Q).q == AUTO_Q

    def test_q_is_coerced_to_int(self):
        assert Scenario(q="4").q == 4

    def test_deglitch_only_on_full_bist(self):
        Scenario(deglitch_depth=2)  # full BIST: fine
        with pytest.raises(ValueError):
            Scenario(deglitch_depth=2, q=2)
        with pytest.raises(ValueError):
            Scenario(deglitch_depth=2, method="histogram")

    def test_chips_must_divide_wafer(self):
        with pytest.raises(ValueError):
            Scenario(n_devices=100, devices_per_ic=3)
        assert Scenario(n_devices=100, devices_per_ic=4) is not None

    def test_bin_edges_must_ascend(self):
        with pytest.raises(ValueError):
            Scenario(bin_edges_lsb=(0.5, 0.25))

    def test_bin_edges_coerced_to_tuple(self):
        scenario = Scenario(bin_edges_lsb=[0.1, 0.2])
        assert scenario.bin_edges_lsb == (0.1, 0.2)
        assert isinstance(hash(scenario), int)  # stays hashable

    def test_unknown_tester(self):
        with pytest.raises(ValueError):
            Scenario(tester="quantum")


class TestIdentity:
    def test_names(self):
        assert Scenario().name == "flash/full"
        assert Scenario(q=4, n_bits=8).name == "flash/partial q=4"
        assert Scenario(architecture="sar",
                        method="histogram").name == "sar/histogram"

    def test_resolved_label_prefers_explicit(self):
        assert Scenario(label="baseline").resolved_label == "baseline"
        assert Scenario().resolved_label == "flash/full"

    def test_mode(self):
        assert Scenario().mode == "full"
        assert Scenario(q=2).mode == "partial"
        assert Scenario(method="dynamic").mode == "dynamic"


class TestDerive:
    def test_derive_changes_and_revalidates(self):
        base = Scenario(n_bits=6)
        derived = base.derive(q=3)
        assert derived.q == 3 and base.q is None
        with pytest.raises(ValueError):
            base.derive(q=9)

    def test_derive_clears_explicit_label(self):
        base = Scenario(label="baseline")
        assert base.derive(q=2).label is None
        assert base.derive(q=2, label="kept").label == "kept"


class TestGrid:
    def test_row_major_product(self):
        grid = Scenario(n_bits=8).grid(architecture=["flash", "sar"],
                                       q=[4, 8])
        assert [s.name for s in grid] == [
            "flash/partial q=4", "flash/partial q=8",
            "sar/partial q=4", "sar/partial q=8"]

    def test_q_axis_collapses_for_non_bist_methods(self):
        grid = Scenario(n_bits=8).grid(method=["bist", "histogram"],
                                       q=[4, 8])
        assert [s.name for s in grid] == [
            "flash/partial q=4", "flash/partial q=8", "flash/histogram"]

    def test_scalar_axis_values(self):
        grid = Scenario(n_bits=8).grid(architecture="sar", q=[2, 4])
        assert [s.name for s in grid] == ["sar/partial q=2",
                                          "sar/partial q=4"]

    def test_unknown_axis(self):
        with pytest.raises(ValueError):
            Scenario().grid(flavour=["vanilla"])

    def test_empty_axis(self):
        with pytest.raises(ValueError):
            Scenario().grid(q=[])


class TestMaterialisation:
    def test_wafer_spec_mapping(self):
        spec = Scenario(architecture="sar", n_bits=8, n_devices=123,
                        sigma_code_width_lsb=0.18).wafer_spec()
        assert (spec.architecture, spec.n_bits, spec.n_devices,
                spec.sigma_code_width_lsb) == ("sar", 8, 123, 0.18)

    def test_bist_config_mapping(self):
        config = Scenario(n_bits=8, counter_bits=5, dnl_spec_lsb=0.5,
                          inl_spec_lsb=0.75, transition_noise_lsb=0.05,
                          deglitch_depth=3).bist_config()
        assert isinstance(config, BistConfig)
        assert (config.n_bits, config.counter_bits, config.dnl_spec_lsb,
                config.inl_spec_lsb, config.transition_noise_lsb,
                config.deglitch_depth) == (8, 5, 0.5, 0.75, 0.05, 3)

    def test_draw_lot_is_reproducible(self):
        scenario = Scenario(n_devices=50, n_wafers=2, seed=9,
                            label="L")
        lot_a, lot_b = scenario.draw_lot(), scenario.draw_lot()
        assert lot_a.lot_id == "L"
        assert len(lot_a) == 2
        for wafer_a, wafer_b in zip(lot_a, lot_b):
            assert (wafer_a.transitions == wafer_b.transitions).all()

    def test_draw_without_seed_raises(self):
        with pytest.raises(ValueError):
            Scenario().draw_lot()
        assert Scenario().draw_lot(seed=3).n_devices == 2000 * 1


class TestFactory:
    def test_engine_per_method(self):
        assert isinstance(make_engine(Scenario()), BatchBistEngine)
        assert isinstance(make_engine(Scenario(q=2)),
                          BatchPartialBistEngine)
        assert isinstance(make_engine(Scenario(method="histogram")),
                          BatchHistogramTest)
        assert isinstance(make_engine(Scenario(method="dynamic")),
                          BatchDynamicSuite)

    def test_auto_q_derives_equation_one_minimum(self):
        engine = make_engine(Scenario(q=AUTO_Q, samples_per_code=1.0))
        assert engine.config.q is None  # resolved per stimulus at run time

    def test_config_override_rides_through(self):
        config = BistConfig(n_bits=6, counter_bits=4, dnl_spec_lsb=0.5)
        engine = make_engine(Scenario(), config=config)
        assert engine.config is config

    def test_partial_rejects_deglitch_config(self):
        config = BistConfig(n_bits=6, deglitch_depth=2)
        with pytest.raises(ValueError):
            make_engine(Scenario(q=2), config=config)

    def test_default_tester_economics(self):
        assert default_tester(Scenario()).name == "digital ATE"
        assert default_tester(Scenario(q=2)).name == "mixed-signal ATE"
        assert default_tester(
            Scenario(method="histogram")).name == "mixed-signal ATE"
        assert default_tester(
            Scenario(tester="mixed")).name == "mixed-signal ATE"
        assert default_tester(
            Scenario(q=2, tester="digital")).name == "digital ATE"


class TestLineFromScenario:
    def test_line_matches_hand_built(self):
        scenario = Scenario(q=2, n_bits=6, counter_bits=7,
                            dnl_spec_lsb=1.0, retest_attempts=1,
                            devices_per_ic=4, n_devices=100, seed=1)
        line = ScreeningLine.from_scenario(scenario)
        reference = ScreeningLine(
            BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0),
            retest_attempts=1, devices_per_ic=4, partial_q=2)
        assert line.describe() == reference.describe()
        assert line.tester.name == reference.tester.name
        assert line.q == reference.q and line.mode == reference.mode
        assert line.scenario is scenario

    def test_line_rejects_auto_q(self):
        with pytest.raises(ValueError):
            ScreeningLine.from_scenario(Scenario(q=AUTO_Q))

    def test_line_still_rejects_nonpositive_devices_per_ic(self):
        # Construction-time validation must not regress to a late failure
        # deep inside the economics after a whole lot has been screened.
        with pytest.raises(ValueError):
            ScreeningLine(BistConfig(n_bits=6), devices_per_ic=0)
        with pytest.raises(ValueError):
            ScreeningLine(BistConfig(n_bits=6), devices_per_ic=-3)

    def test_screen_lot_matches_legacy_construction(self):
        scenario = Scenario(method="histogram", n_devices=80, seed=5,
                            dnl_spec_lsb=0.5, samples_per_code=8.0,
                            label="H")
        report = ScreeningLine.from_scenario(scenario).screen_lot(
            scenario.draw_lot(), rng=scenario.seed)
        legacy = ScreeningLine(
            BistConfig(n_bits=6, dnl_spec_lsb=0.5), method="histogram",
            samples_per_code=8.0).screen_lot(
                scenario.draw_lot(), rng=scenario.seed)
        assert dataclasses.replace(report, wall_seconds=0.0) == \
            dataclasses.replace(legacy, wall_seconds=0.0)
