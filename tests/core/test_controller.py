"""Unit tests for the multi-converter BIST controller."""

import pytest

from repro.adc import FlashADC, IdealADC, inject_missing_code
from repro.core import BistConfig, MultiAdcBistController


@pytest.fixture
def controller():
    return MultiAdcBistController(BistConfig(counter_bits=6,
                                             dnl_spec_lsb=1.0))


def _chip(n_converters: int, seed_offset: int = 0):
    return [FlashADC.from_sigma(6, 0.21, seed=seed_offset + i)
            for i in range(n_converters)]


class TestChipLevelRuns:
    def test_all_good_chip_passes(self, controller):
        result = controller.run_chip(_chip(4), rng=1)
        assert result.n_converters == 4
        assert result.passed
        assert result.result_register == 0b1111
        assert result.failing_converters == []

    def test_one_bad_converter_flags_the_chip(self, controller):
        converters = _chip(4)
        converters[2] = inject_missing_code(IdealADC(6), code=10)
        result = controller.run_chip(converters, rng=1)
        assert not result.passed
        assert result.failing_converters == [2]
        assert not (result.result_register >> 2) & 1
        assert (result.result_register >> 0) & 1

    def test_parallel_test_time_is_one_ramp(self, controller):
        small = controller.run_chip(_chip(1), rng=2)
        large = controller.run_chip(_chip(8), rng=2)
        # The shared ramp means the chip test time does not grow with the
        # converter count (the paper's parallelism argument).
        assert large.test_time_s == pytest.approx(small.test_time_s,
                                                  rel=0.01)
        assert large.parallel_speedup == pytest.approx(8.0, rel=0.05)

    def test_serial_readout_is_tiny(self, controller):
        result = controller.run_chip(_chip(8), rng=3)
        assert result.serial_readout_bits == 9

    def test_reproducible(self, controller):
        chip = _chip(3)
        a = controller.run_chip(chip, rng=7)
        b = controller.run_chip(chip, rng=7)
        assert a.result_register == b.result_register

    def test_empty_chip_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.run_chip([])


class TestHardwareCost:
    def test_gate_count_scales_with_converter_count(self, controller):
        one = controller.gate_count(1)
        four = controller.gate_count(4)
        assert four > 3 * one
        assert four < 5 * one

    def test_invalid_converter_count(self, controller):
        with pytest.raises(ValueError):
            controller.gate_count(0)


class TestLotLevelRuns:
    def test_lot_summary(self, controller):
        lot = [_chip(2, seed_offset=10 * i) for i in range(5)]
        summary = controller.run_lot(lot, rng=5)
        assert summary["chips_tested"] == 5
        assert 0 <= summary["chips_passed"] <= 5
        assert 0.0 <= summary["converter_fallout"] <= 1.0
        assert summary["total_test_time_s"] > 0

    def test_empty_lot_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.run_lot([])
