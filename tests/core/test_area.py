"""Unit tests for the area / cost model (Figure 1 trade-off)."""

import pytest

from repro.core import AreaModel


class TestAreaModel:
    def test_estimate_fields(self):
        model = AreaModel(n_bits=6)
        estimate = model.estimate(counter_bits=4, dnl_spec_lsb=1.0)
        assert estimate.gate_count > 0
        assert estimate.area_mm2 > 0
        assert 0 < estimate.area_overhead < 1.0
        assert estimate.max_error_lsb > 0
        assert 0 <= estimate.defect_probability < 1.0

    def test_bigger_counter_costs_more_but_measures_better(self):
        model = AreaModel(n_bits=6)
        small = model.estimate(4, dnl_spec_lsb=1.0)
        large = model.estimate(7, dnl_spec_lsb=1.0)
        assert large.gate_count > small.gate_count
        assert large.max_error_lsb < small.max_error_lsb
        assert large.defect_probability > small.defect_probability

    def test_inl_accumulator_adds_area(self):
        model = AreaModel(n_bits=6)
        without = model.estimate(5, dnl_spec_lsb=1.0)
        with_inl = model.estimate(5, dnl_spec_lsb=1.0, inl_spec_lsb=1.0)
        assert with_inl.gate_count > without.gate_count

    def test_deglitch_filter_adds_area(self):
        model = AreaModel(n_bits=6)
        without = model.estimate(5, dnl_spec_lsb=1.0)
        with_filter = model.estimate(5, dnl_spec_lsb=1.0, deglitch_depth=3)
        assert with_filter.gate_count > without.gate_count

    def test_msb_checker_optional(self):
        model = AreaModel(n_bits=6)
        with_checker = model.estimate(5, dnl_spec_lsb=1.0)
        without = model.estimate(5, dnl_spec_lsb=1.0,
                                 include_msb_checker=False)
        assert with_checker.gate_count > without.gate_count

    def test_sweep(self):
        model = AreaModel(n_bits=6)
        estimates = model.sweep_counter_bits(range(4, 8), dnl_spec_lsb=0.5)
        assert len(estimates) == 4
        gate_counts = [e.gate_count for e in estimates]
        assert gate_counts == sorted(gate_counts)

    def test_overhead_scales_with_core_area(self):
        small_core = AreaModel(n_bits=6, adc_core_area_mm2=0.1)
        large_core = AreaModel(n_bits=6, adc_core_area_mm2=1.0)
        assert (small_core.estimate(5, 1.0).area_overhead
                > large_core.estimate(5, 1.0).area_overhead)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AreaModel(n_bits=1)
        with pytest.raises(ValueError):
            AreaModel(adc_core_area_mm2=0.0)
        with pytest.raises(ValueError):
            AreaModel(defects_per_mm2=-1.0)
