"""Unit tests for the LSB processing block (Figure 4)."""

import numpy as np
import pytest

from repro.adc import IdealADC, inject_missing_code, inject_wide_code
from repro.core import CountLimits, DeglitchFilter, LsbProcessor
from repro.signals import RampStimulus


def _lsb_stream_from_counts(counts, lead=3, tail=3):
    """Build an LSB sample stream whose inner segments have given lengths."""
    stream = []
    level = 0
    stream.extend([level] * lead)
    level ^= 1
    for count in counts:
        stream.extend([level] * count)
        level ^= 1
    stream.extend([level] * tail)
    return np.array(stream, dtype=np.int8)


class TestSyntheticStreams:
    def test_counts_recovered_exactly(self):
        limits = CountLimits.for_counter(6, dnl_spec_lsb=1.0,
                                         delta_s_lsb=0.1)
        processor = LsbProcessor(limits)
        counts = [10, 11, 9, 10, 12, 8]
        result = processor.process(_lsb_stream_from_counts(counts))
        assert list(result.counts) == counts

    def test_all_in_limit_passes(self):
        limits = CountLimits.for_counter(6, dnl_spec_lsb=0.5,
                                         delta_s_lsb=0.1)
        processor = LsbProcessor(limits)
        result = processor.process(_lsb_stream_from_counts([10] * 14),
                                   n_bits=4)
        assert result.dnl_passed
        assert result.passed

    def test_too_narrow_code_fails(self):
        limits = CountLimits.for_counter(6, dnl_spec_lsb=0.5,
                                         delta_s_lsb=0.1)
        processor = LsbProcessor(limits)
        counts = [10] * 6 + [3] + [10] * 7
        result = processor.process(_lsb_stream_from_counts(counts), n_bits=4)
        assert not result.dnl_passed
        assert list(result.failing_codes()) == [6]

    def test_too_wide_code_fails(self):
        limits = CountLimits.for_counter(6, dnl_spec_lsb=0.5,
                                         delta_s_lsb=0.1)
        processor = LsbProcessor(limits)
        counts = [10] * 6 + [17] + [10] * 7
        result = processor.process(_lsb_stream_from_counts(counts), n_bits=4)
        assert not result.dnl_passed

    def test_counter_saturation_rejects_very_wide_code(self):
        # A 4-bit counter saturates at 16; a 40-sample code must fail even
        # though the stored value stays at 15.
        limits = CountLimits.for_counter(4, dnl_spec_lsb=0.5,
                                         delta_s_lsb=0.1)
        processor = LsbProcessor(limits)
        counts = [10] * 6 + [40] + [10] * 7
        result = processor.process(_lsb_stream_from_counts(counts), n_bits=4)
        assert not result.dnl_passed
        assert result.counter_readings[6] == 16

    def test_missing_transition_detected(self):
        limits = CountLimits.for_counter(6, dnl_spec_lsb=1.0,
                                         delta_s_lsb=0.1)
        processor = LsbProcessor(limits)
        # Only 10 segments where a 4-bit converter should give 14.
        result = processor.process(_lsb_stream_from_counts([10] * 10),
                                   n_bits=4)
        assert not result.transitions_ok
        assert not result.passed

    def test_inl_accumulation_and_limits(self):
        limits = CountLimits.for_counter(6, dnl_spec_lsb=1.0,
                                         inl_spec_lsb=0.5, delta_s_lsb=0.1)
        processor = LsbProcessor(limits)
        # Every code slightly wide: individually inside the DNL limits but
        # the accumulated deviation drifts past the INL limit (5 counts).
        counts = [12] * 14
        result = processor.process(_lsb_stream_from_counts(counts), n_bits=4)
        assert result.dnl_passed
        assert not result.inl_passed
        assert not result.passed

    def test_inl_ignored_without_spec(self):
        limits = CountLimits.for_counter(6, dnl_spec_lsb=1.0,
                                         delta_s_lsb=0.1)
        processor = LsbProcessor(limits)
        result = processor.process(_lsb_stream_from_counts([12] * 14),
                                   n_bits=4)
        assert result.inl_passed

    def test_measured_widths_and_dnl(self):
        limits = CountLimits.for_counter(6, dnl_spec_lsb=1.0,
                                         delta_s_lsb=0.1)
        processor = LsbProcessor(limits)
        result = processor.process(_lsb_stream_from_counts([10, 15, 10, 5]))
        assert result.measured_widths_lsb == pytest.approx(
            [1.0, 1.5, 1.0, 0.5])
        assert result.measured_dnl_lsb[1] > 0
        assert result.measured_dnl_lsb[3] < 0

    def test_deglitch_filter_integrated(self, rng):
        limits = CountLimits.for_counter(6, dnl_spec_lsb=0.5,
                                         delta_s_lsb=0.1)
        stream = _lsb_stream_from_counts([10] * 14)
        # Inject isolated glitches away from the real edges.
        noisy = stream.copy()
        glitch_positions = [17, 43, 71, 99, 123]
        for pos in glitch_positions:
            noisy[pos] ^= 1
        raw = LsbProcessor(limits).process(noisy, n_bits=4)
        filtered = LsbProcessor(limits,
                                deglitch=DeglitchFilter(depth=2)).process(
                                    noisy, n_bits=4)
        assert not raw.passed
        assert filtered.passed

    def test_empty_and_short_streams(self):
        limits = CountLimits.for_counter(4, dnl_spec_lsb=0.5)
        processor = LsbProcessor(limits)
        result = processor.process(np.zeros(10, dtype=int))
        assert result.n_codes_measured == 0
        assert not result.passed

    def test_rejects_2d_input(self):
        limits = CountLimits.for_counter(4, dnl_spec_lsb=0.5)
        with pytest.raises(ValueError):
            LsbProcessor(limits).process(np.zeros((3, 3)))


class TestWithRealConverters:
    def test_ideal_converter_passes(self, ideal_adc):
        limits = CountLimits.for_counter(6, dnl_spec_lsb=0.5)
        processor = LsbProcessor(limits)
        ramp = RampStimulus.from_delta_s(
            limits.delta_s_lsb * ideal_adc.lsb, ideal_adc.sample_rate,
            start_voltage=-2 * ideal_adc.lsb)
        record = ideal_adc.sample(ramp,
                                  n_samples=ramp.n_samples_for_adc(ideal_adc))
        result = processor.process(record.lsb_waveform, n_bits=6)
        assert result.n_codes_measured == 62
        assert result.passed

    def test_wide_code_device_fails(self, ideal_adc):
        faulty = inject_wide_code(ideal_adc, code=30, extra_lsb=1.0)
        limits = CountLimits.for_counter(6, dnl_spec_lsb=0.5)
        processor = LsbProcessor(limits)
        ramp = RampStimulus.from_delta_s(
            limits.delta_s_lsb * faulty.lsb, faulty.sample_rate,
            start_voltage=-2 * faulty.lsb)
        record = faulty.sample(ramp,
                               n_samples=ramp.n_samples_for_adc(faulty))
        result = processor.process(record.lsb_waveform, n_bits=6)
        assert not result.passed

    def test_missing_code_device_fails(self, ideal_adc):
        faulty = inject_missing_code(ideal_adc, code=20)
        limits = CountLimits.for_counter(6, dnl_spec_lsb=0.5)
        processor = LsbProcessor(limits)
        ramp = RampStimulus.from_delta_s(
            limits.delta_s_lsb * faulty.lsb, faulty.sample_rate,
            start_voltage=-2 * faulty.lsb)
        record = faulty.sample(ramp,
                               n_samples=ramp.n_samples_for_adc(faulty))
        result = processor.process(record.lsb_waveform, n_bits=6)
        assert not result.passed

    def test_gate_count_scales_with_counter(self):
        small = LsbProcessor(CountLimits.for_counter(4, 0.5)).gate_count()
        large = LsbProcessor(CountLimits.for_counter(7, 0.5)).gate_count()
        assert large > small
