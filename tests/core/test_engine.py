"""Unit and integration tests for the complete BIST engine."""

import numpy as np
import pytest

from repro.adc import (
    DevicePopulation,
    FlashADC,
    IdealADC,
    PopulationSpec,
    StuckBitADC,
    inject_missing_code,
    inject_wide_code,
)
from repro.core import BistConfig, BistEngine


class TestBistConfig:
    def test_default_step_from_counter(self):
        config = BistConfig(counter_bits=4, dnl_spec_lsb=0.5)
        assert config.resolved_delta_s_lsb() == pytest.approx(0.091,
                                                              abs=0.001)

    def test_explicit_step_wins(self):
        config = BistConfig(counter_bits=4, dnl_spec_lsb=0.5,
                            delta_s_lsb=0.08)
        assert config.resolved_delta_s_lsb() == pytest.approx(0.08)

    def test_limits_consistent_with_counter(self):
        config = BistConfig(counter_bits=5, dnl_spec_lsb=1.0)
        limits = config.limits()
        assert limits.counter_bits == 5
        assert limits.i_max <= 32

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BistConfig(n_bits=1)
        with pytest.raises(ValueError):
            BistConfig(counter_bits=0)
        with pytest.raises(ValueError):
            BistConfig(dnl_spec_lsb=-0.5)
        with pytest.raises(ValueError):
            BistConfig(delta_s_lsb=-0.1).resolved_delta_s_lsb()


class TestSingleDeviceRuns:
    def test_ideal_converter_passes(self, ideal_adc, relaxed_engine):
        result = relaxed_engine.run(ideal_adc)
        assert result.passed
        assert result.lsb.n_codes_measured == 62
        assert result.msb is not None and result.msb.passed

    def test_wrong_resolution_rejected(self, relaxed_engine):
        with pytest.raises(ValueError):
            relaxed_engine.run(IdealADC(8))

    def test_within_spec_flash_device_passes(self, relaxed_engine):
        adc = FlashADC.from_sigma(6, 0.1, seed=3)
        assert adc.max_dnl() < 0.9
        assert relaxed_engine.run(adc).passed

    def test_gross_defect_missing_code_rejected(self, ideal_adc,
                                                relaxed_engine):
        faulty = inject_missing_code(ideal_adc, code=25)
        assert not relaxed_engine.run(faulty).passed

    def test_gross_defect_wide_code_rejected(self, ideal_adc, relaxed_engine):
        faulty = inject_wide_code(ideal_adc, code=25, extra_lsb=2.5)
        assert not relaxed_engine.run(faulty).passed

    def test_stuck_output_bit_rejected_by_msb_check(self, ideal_adc,
                                                    relaxed_engine):
        faulty = StuckBitADC(ideal_adc, bit=4, stuck_value=0)
        result = relaxed_engine.run(faulty)
        assert not result.passed
        assert not result.msb.passed

    def test_measured_dnl_close_to_true_dnl(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=17)
        engine = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=1.0))
        result = engine.run(adc)
        measured = result.measured_dnl_lsb
        true_dnl = adc.dnl()
        assert measured.size == true_dnl.size
        # A 7-bit counter resolves about 1/64 LSB; allow a few steps.
        assert np.max(np.abs(measured - true_dnl)) < 0.06

    def test_keep_record_flag(self, ideal_adc, relaxed_engine):
        with_record = relaxed_engine.run(ideal_adc, keep_record=True)
        without_record = relaxed_engine.run(ideal_adc, keep_record=False)
        assert with_record.record is not None
        assert without_record.record is None

    def test_off_chip_bits_reported(self, ideal_adc, relaxed_engine):
        result = relaxed_engine.run(ideal_adc)
        assert result.off_chip_bits_transferred == result.samples_taken

    def test_reproducible_with_seed(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=5)
        config = BistConfig(counter_bits=4, dnl_spec_lsb=0.5, seed=9,
                            transition_noise_lsb=0.05, deglitch_depth=2)
        a = BistEngine(config).run(adc)
        b = BistEngine(config).run(adc)
        assert np.array_equal(a.lsb.counts, b.lsb.counts)

    def test_noise_with_deglitch_still_passes(self, ideal_adc):
        """Transition noise below the step size is fully absorbed by a
        shallow deglitch filter; noise above the step needs a deeper one."""
        mild = BistConfig(counter_bits=6, dnl_spec_lsb=1.0,
                          transition_noise_lsb=0.02, deglitch_depth=2,
                          seed=1)
        strong = BistConfig(counter_bits=6, dnl_spec_lsb=1.0,
                            transition_noise_lsb=0.05, deglitch_depth=4,
                            seed=1)
        assert BistEngine(mild).run(ideal_adc).passed
        assert BistEngine(strong).run(ideal_adc).passed

    def test_noise_without_deglitch_fails(self, ideal_adc):
        """Without the digital filter the LSB toggles break the measurement —
        the reason the paper calls for the filter in the first place."""
        config = BistConfig(counter_bits=6, dnl_spec_lsb=1.0,
                            transition_noise_lsb=0.05, deglitch_depth=0,
                            seed=1)
        result = BistEngine(config).run(ideal_adc)
        assert not result.lsb.transitions_ok
        assert not result.passed

    def test_inl_check_enforced(self):
        """A device with small DNL but accumulating INL fails only when the
        INL check is enabled."""
        from repro.adc import TableADC, TransferFunction
        widths = np.ones(62)
        widths[:31] += 0.25
        widths[31:] -= 0.25  # keep the curve inside the conversion range
        device = TableADC(TransferFunction.from_code_widths(6, widths / 64))
        dnl_only = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=0.5))
        with_inl = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=0.5,
                                         inl_spec_lsb=1.0))
        assert dnl_only.run(device).passed
        assert not with_inl.run(device).passed

    def test_gate_count_reported(self, relaxed_engine, stringent_engine):
        assert relaxed_engine.gate_count() > 0
        assert relaxed_engine.gate_count() > stringent_engine.gate_count()

    def test_slope_error_changes_measurement(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=23)
        nominal = BistEngine(BistConfig(counter_bits=4, dnl_spec_lsb=0.5))
        steep = BistEngine(BistConfig(counter_bits=4, dnl_spec_lsb=0.5,
                                      slope_error=0.05))
        counts_nominal = nominal.run(adc).lsb.counts
        counts_steep = steep.run(adc).lsb.counts
        # A steeper ramp yields fewer samples per code on average.
        assert counts_steep.mean() < counts_nominal.mean()


class TestPopulationRuns:
    def test_population_result_bookkeeping(self, small_population,
                                           relaxed_engine):
        result = relaxed_engine.run_population(small_population, rng=0)
        assert result.n_devices == len(small_population)
        assert 0.0 <= result.p_accept <= 1.0
        assert 0.0 <= result.p_good <= 1.0
        assert result.type_i + result.type_ii <= 1.0
        assert result.agreement >= 1.0 - result.type_i - result.type_ii - 1e-9

    def test_actual_spec_accepts_nearly_all(self, small_population,
                                            relaxed_engine):
        result = relaxed_engine.run_population(small_population, rng=0)
        # At ±1 LSB nearly every parametric device is good and accepted.
        assert result.p_accept > 0.9
        assert result.type_ii < 0.1

    def test_stringent_spec_rejects_many(self, small_population,
                                         stringent_engine):
        result = stringent_engine.run_population(small_population, rng=0)
        # At ±0.5 LSB only a minority of devices is good (paper: ~30 %).
        assert result.p_good < 0.7
        assert result.p_accept < 0.9

    def test_bigger_counter_improves_agreement(self):
        population = DevicePopulation(PopulationSpec(size=60, seed=31))
        coarse = BistEngine(BistConfig(counter_bits=4, dnl_spec_lsb=0.5))
        fine = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=0.5))
        agreement_coarse = coarse.run_population(population, rng=1).agreement
        agreement_fine = fine.run_population(population, rng=1).agreement
        # Allow a small sampling fluctuation on the 60-device batch.
        assert agreement_fine >= agreement_coarse - 0.05

    def test_conditional_rates_derive_from_joint(self, small_population,
                                                 stringent_engine):
        result = stringent_engine.run_population(small_population, rng=0)
        # type_i/type_ii are the joint (Table 1) fractions; the conditional
        # rates divide by the respective prior.
        assert 0.0 < result.p_good < 1.0
        assert result.p_reject_given_good == pytest.approx(
            result.type_i / result.p_good)
        assert result.p_accept_given_faulty == pytest.approx(
            result.type_ii / (1.0 - result.p_good))
        assert result.p_reject_given_good >= result.type_i
        assert result.p_accept_given_faulty >= result.type_ii

    def test_conditional_rates_degenerate_priors(self):
        from repro.core.engine import PopulationBistResult

        all_good = PopulationBistResult(
            n_devices=4,
            accepted=np.array([True, True, False, True]),
            truly_good=np.ones(4, dtype=bool))
        assert all_good.p_accept_given_faulty == 0.0
        assert all_good.p_reject_given_good == pytest.approx(0.25)
        all_bad = PopulationBistResult(
            n_devices=4,
            accepted=np.array([True, False, False, False]),
            truly_good=np.zeros(4, dtype=bool))
        assert all_bad.p_reject_given_good == 0.0
        assert all_bad.p_accept_given_faulty == pytest.approx(0.25)


class TestTrueGoodness:
    def test_matches_transfer_function(self, flash_adc):
        from repro.core import true_goodness

        tf = flash_adc.transfer_function()
        assert true_goodness(flash_adc, 2.0) is True
        assert true_goodness(flash_adc, tf.max_dnl() / 2) is False
        # The INL spec tightens the classification.
        assert true_goodness(flash_adc, 2.0,
                             inl_spec_lsb=tf.max_inl() / 2) is False
