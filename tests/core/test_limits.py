"""Unit tests for the count-limit computation (Equations (3) – (5))."""

import pytest

from repro.core import CountLimits


class TestCountLimitsForCounter:
    def test_paper_4bit_stringent_configuration(self):
        limits = CountLimits.for_counter(4, dnl_spec_lsb=0.5)
        assert limits.delta_s_lsb == pytest.approx(0.091, abs=0.001)
        assert limits.i_min == 6
        assert limits.i_max == 16

    def test_upper_limit_never_exceeds_counter_range(self):
        for bits in range(3, 10):
            limits = CountLimits.for_counter(bits, dnl_spec_lsb=1.0)
            assert limits.i_max <= (1 << bits)

    def test_explicit_step_size(self):
        limits = CountLimits.for_counter(5, dnl_spec_lsb=0.5,
                                         delta_s_lsb=0.05)
        assert limits.i_min == 10
        assert limits.i_max == 30

    def test_ideal_count(self):
        limits = CountLimits.for_counter(4, dnl_spec_lsb=0.5)
        assert limits.ideal_count == pytest.approx(1.0 / limits.delta_s_lsb)
        assert limits.samples_per_code == limits.ideal_count

    def test_max_error_is_one_step(self):
        limits = CountLimits.for_counter(6, dnl_spec_lsb=1.0)
        assert limits.max_error_lsb == pytest.approx(limits.delta_s_lsb)

    def test_accepts_decision(self):
        limits = CountLimits.for_counter(4, dnl_spec_lsb=0.5)
        assert limits.accepts(limits.i_min)
        assert limits.accepts(limits.i_max)
        assert not limits.accepts(limits.i_min - 1)
        assert not limits.accepts(limits.i_max + 1)

    def test_inl_limits_require_spec(self):
        without = CountLimits.for_counter(5, dnl_spec_lsb=0.5)
        with pytest.raises(ValueError):
            without.inl_count_limits()
        with_spec = CountLimits.for_counter(5, dnl_spec_lsb=0.5,
                                            inl_spec_lsb=1.0)
        lo, hi = with_spec.inl_count_limits()
        assert lo == pytest.approx(-hi)
        assert hi == pytest.approx(1.0 / with_spec.delta_s_lsb)

    def test_describe_mentions_key_numbers(self):
        limits = CountLimits.for_counter(4, dnl_spec_lsb=0.5,
                                         inl_spec_lsb=1.0)
        text = limits.describe()
        assert "4-bit" in text
        assert "6..16" in text
        assert "INL" in text

    def test_invalid_counter_bits(self):
        with pytest.raises(ValueError):
            CountLimits.for_counter(0, dnl_spec_lsb=0.5)


class TestCountLimitsForDeltaS:
    def test_counter_sized_to_fit(self):
        limits = CountLimits.for_delta_s(0.091, dnl_spec_lsb=0.5)
        assert limits.counter_bits == 4
        assert limits.i_max <= (1 << limits.counter_bits)

    def test_finer_step_needs_bigger_counter(self):
        coarse = CountLimits.for_delta_s(0.09, dnl_spec_lsb=0.5)
        fine = CountLimits.for_delta_s(0.012, dnl_spec_lsb=0.5)
        assert fine.counter_bits > coarse.counter_bits

    def test_frozen_dataclass(self):
        limits = CountLimits.for_counter(4, dnl_spec_lsb=0.5)
        with pytest.raises(AttributeError):
            limits.i_min = 3
