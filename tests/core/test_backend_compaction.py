"""Overflow safety of the dtype-compaction backend.

The ``numpy-compact`` backend narrows the large persistent matrices —
code matrices, crossing-index matrices, histograms — to the smallest
dtype that holds them with ×2 headroom, while every reduction stays
int64.  These tests pin the three places that could silently wrap:

* dtype *selection* at the capacity boundaries (maximum ``n_bits``,
  maximum sample counts, the uint32 histogram boundary) — pure helper
  arithmetic, so the extremes are testable without allocating the
  matrices they describe;
* end-to-end kernel values at the top of each dtype's usable range
  (codes touching the int16 ceiling's headroom, histogram counts equal
  to the full sample count);
* the backend registry / scope machinery those guarantees hang off.
"""

import numpy as np
import pytest

from repro.core.backend import (
    CHUNK_BUDGET_BYTES,
    CHUNK_CAP,
    CHUNK_FLOOR,
    BackendUnavailableError,
    KernelBackend,
    auto_chunk_size,
    available_backends,
    backend_names,
    backend_scope,
    current_backend,
    get_backend,
    resolve_backend_name,
)
from repro.core.kernel import (
    batch_code_histogram,
    batch_quantise_shared,
    batch_reconstruct_codes,
    batch_shared_ramp_histogram,
    packed_crossing_events,
    shared_crossing_indices,
)

I16 = np.iinfo(np.int16).max
I32 = np.iinfo(np.int32).max
U32 = np.iinfo(np.uint32).max


class TestRegistry:
    def test_shipping_backends_registered(self):
        names = backend_names()
        assert "numpy" in names
        assert "numpy-compact" in names
        assert "numba" in names

    def test_numpy_backends_always_available(self):
        assert "numpy" in available_backends()
        assert "numpy-compact" in available_backends()

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cupy")

    def test_unavailable_backend_raises(self):
        ghost = KernelBackend(name="ghost", requires="no_such_module_xyz")
        assert not ghost.available
        with pytest.raises(BackendUnavailableError):
            ghost.require_available()

    def test_scope_is_ambient_and_restores(self):
        assert current_backend().name == "numpy"
        with backend_scope("numpy-compact"):
            assert current_backend().name == "numpy-compact"
            assert resolve_backend_name(None) == "numpy-compact"
        assert current_backend().name == "numpy"

    def test_resolve_validates_explicit_name(self):
        assert resolve_backend_name("numpy-compact") == "numpy-compact"
        with pytest.raises(ValueError):
            resolve_backend_name("not-a-backend")


class TestDtypeSelectionBoundaries:
    """Capacity boundaries of the three dtype helpers, with ×2 headroom."""

    def setup_method(self):
        self.compact = get_backend("numpy-compact")
        self.plain = get_backend("numpy")

    def test_plain_backend_never_narrows(self):
        for n in (1, 1 << 8, 1 << 20, 1 << 40):
            assert self.plain.code_dtype(n) == np.int64
            assert self.plain.index_dtype(n) == np.int64
            assert self.plain.hist_dtype(n) == np.int64

    def test_code_dtype_int16_boundary(self):
        # Largest n_levels with in-dtype ×2 headroom gets int16 …
        assert self.compact.code_dtype(I16 // 2) == np.int16
        # … one more level crosses into int32.
        assert self.compact.code_dtype(I16 // 2 + 1) == np.int32

    def test_code_dtype_int32_boundary(self):
        assert self.compact.code_dtype(I32 // 2) == np.int32
        assert self.compact.code_dtype(I32 // 2 + 1) == np.int64

    def test_code_dtype_max_n_bits(self):
        # Scenario.n_bits has no upper bound: a pathological 62-bit
        # converter must fall back to int64, never wrap.
        assert self.compact.code_dtype(1 << 62) == np.int64
        for n_bits in range(2, 63):
            dtype = self.compact.code_dtype(1 << n_bits)
            if dtype != np.int64:
                # Any *narrowed* dtype keeps the ×2 headroom; int64 is
                # the can't-narrow fallback shared with the numpy
                # backend, exact up to the full code range.
                assert 2 * (1 << n_bits) <= np.iinfo(dtype).max
            else:
                assert (1 << n_bits) <= np.iinfo(dtype).max

    def test_index_dtype_boundaries(self):
        # Index values reach n_samples (the "past the end" sentinel),
        # so capacity is checked against n_samples + 1, doubled.
        largest_int32 = I32 // 2 - 1
        assert self.compact.index_dtype(largest_int32) == np.int32
        assert self.compact.index_dtype(largest_int32 + 1) == np.int64
        # No int16 tier: a few-thousand-sample ramp already exceeds it.
        assert self.compact.index_dtype(1 << 12) == np.int32

    def test_hist_dtype_uint32_boundary(self):
        # A single code can absorb every sample, so counts are bounded
        # by n_samples; the uint32 tier holds exactly up to U32 - 1
        # samples (count may equal n_samples + 1 is impossible, but the
        # helper keeps one step of slack for the padded column sums).
        assert self.compact.hist_dtype(U32 - 1) == np.uint32
        assert self.compact.hist_dtype(U32) == np.int64

    def test_float_dtype_is_opt_in(self):
        assert self.compact.float_dtype() == np.float64
        assert KernelBackend(name="x", compact=True,
                             compact_floats=True).float_dtype() == np.float32


class TestAutoChunkSize:
    def test_budget_division(self):
        assert auto_chunk_size(CHUNK_BUDGET_BYTES // 1000) == 1000

    def test_floor_and_cap(self):
        assert auto_chunk_size(CHUNK_BUDGET_BYTES) == CHUNK_FLOOR
        assert auto_chunk_size(1) == CHUNK_CAP

    def test_compact_rows_widen_chunks(self):
        n_samples = 4096
        wide = auto_chunk_size(
            n_samples * get_backend("numpy").code_dtype(64).itemsize)
        narrow = auto_chunk_size(
            n_samples * get_backend("numpy-compact").code_dtype(64).itemsize)
        assert narrow == 4 * wide  # int64 → int16 is a 4x smaller row


def _ramp(n_samples, lo=-0.6, hi=0.6):
    return np.linspace(lo, hi, n_samples)


class TestKernelDtypesEndToEnd:
    """Compact kernels: narrowed dtypes, identical values."""

    def test_quantise_shared_dtypes_and_values(self):
        rng = np.random.default_rng(11)
        transitions = np.sort(rng.uniform(-0.5, 0.5, size=(40, 63)), axis=1)
        voltages = _ramp(700)
        reference = batch_quantise_shared(transitions, voltages)
        with backend_scope("numpy-compact"):
            compact = batch_quantise_shared(transitions, voltages)
        assert reference.dtype == np.int64
        assert compact.dtype == np.int16
        np.testing.assert_array_equal(reference, compact)

    def test_crossing_indices_dtype(self):
        transitions = np.array([[-0.25, 0.0, 0.25]])
        voltages = _ramp(500)
        with backend_scope("numpy-compact"):
            crossing = shared_crossing_indices(transitions, voltages)
        assert crossing.dtype == np.int32
        assert shared_crossing_indices(transitions,
                                       voltages).dtype == np.int64

    def test_histogram_counts_span_the_full_sample_count(self):
        # One device whose transitions all sit above the ramp: every
        # sample lands in code 0, so a count equals n_samples exactly —
        # the value a uint32 histogram must carry without wrapping.
        n_samples = 3000
        transitions = np.full((1, 3), 10.0)
        voltages = _ramp(n_samples)
        reference = batch_shared_ramp_histogram(transitions, voltages)
        with backend_scope("numpy-compact"):
            compact = batch_shared_ramp_histogram(transitions, voltages)
        assert reference.dtype == np.int64
        assert compact.dtype == np.uint32
        np.testing.assert_array_equal(reference, compact)
        assert int(compact[0, 0]) == n_samples
        assert int(compact.sum(dtype=np.int64)) == n_samples

    def test_code_histogram_matches_and_narrows(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 64, size=(25, 900))
        reference = batch_code_histogram(codes, 64)
        with backend_scope("numpy-compact"):
            compact = batch_code_histogram(codes, 64)
        assert compact.dtype == np.uint32
        np.testing.assert_array_equal(reference, compact)

    def test_packed_events_compact_event_columns(self):
        rng = np.random.default_rng(5)
        transitions = np.sort(rng.uniform(-0.5, 0.5, size=(12, 15)), axis=1)
        voltages = _ramp(400)
        crossing = shared_crossing_indices(transitions, voltages)
        ref = packed_crossing_events(np.asarray(crossing, dtype=np.int64),
                                     400)
        with backend_scope("numpy-compact"):
            cmp_ = packed_crossing_events(
                np.asarray(crossing, dtype=np.int64), 400)
        assert cmp_[1].dtype == np.int16   # multiplicities
        assert cmp_[2].dtype == np.int32   # event times
        for a, b in zip(ref, cmp_):
            np.testing.assert_array_equal(a, b)

    def test_reconstruct_codes_headroom_at_the_int16_ceiling(self):
        # A 13-bit staircase (8192 codes → 2 * n_levels = 16384 fits
        # int16) reconstructed from its q-bit capture: the top code sits
        # right at the compaction ceiling and must survive the in-dtype
        # round trip, wrap counting included.
        n_bits, q = 13, 3
        codes = np.arange(1 << n_bits, dtype=np.int64)[None, :]
        lsb = codes & ((1 << q) - 1)
        reference = batch_reconstruct_codes(lsb, q, n_bits,
                                            initial_upper=0)
        with backend_scope("numpy-compact"):
            compact = batch_reconstruct_codes(lsb, q, n_bits,
                                              initial_upper=0)
        assert compact.dtype == np.int16
        np.testing.assert_array_equal(reference, codes)
        np.testing.assert_array_equal(compact, codes)

    def test_compact_backend_near_sample_capacity_falls_back(self):
        # With a sample count past the int32 headroom the index dtype
        # must quietly return to int64 even under the compact backend.
        huge = I32  # 2 * (n_samples + 1) overflows int32
        with backend_scope("numpy-compact"):
            assert current_backend().index_dtype(huge) == np.int64
