"""Unit tests for the on-chip MSB functionality checker."""

import numpy as np
import pytest

from repro.adc import IdealADC, StuckBitADC, inject_non_monotonic
from repro.core import MsbChecker
from repro.signals import RampStimulus


def _ramp_codes(adc, samples_per_code=8):
    ramp = RampStimulus.for_adc(adc, samples_per_code=samples_per_code)
    record = adc.sample(ramp, n_samples=ramp.n_samples_for_adc(adc))
    return record.codes


class TestMsbChecker:
    def test_healthy_converter_passes(self, ideal_adc):
        codes = _ramp_codes(ideal_adc)
        result = MsbChecker(6).check(codes)
        assert result.passed
        assert result.n_mismatches == 0
        assert result.n_clock_events == result.expected_clock_events

    def test_synthetic_counting_sequence_passes(self):
        codes = np.repeat(np.arange(64), 5)
        result = MsbChecker(6).check(codes)
        assert result.passed

    def test_stuck_lsb_detected(self, ideal_adc):
        faulty = StuckBitADC(ideal_adc, bit=0, stuck_value=0)
        ramp = RampStimulus.for_adc(ideal_adc, samples_per_code=8)
        codes = faulty.convert(
            ramp.voltage(np.arange(ramp.n_samples_for_adc(ideal_adc))
                         / ideal_adc.sample_rate))
        result = MsbChecker(6).check(codes)
        # With a stuck LSB the reference counter never advances, while the
        # upper bits do: the functionality check must fail.
        assert not result.passed

    def test_stuck_msb_detected(self, ideal_adc):
        faulty = StuckBitADC(ideal_adc, bit=5, stuck_value=0)
        ramp = RampStimulus.for_adc(ideal_adc, samples_per_code=8)
        codes = faulty.convert(
            ramp.voltage(np.arange(ramp.n_samples_for_adc(ideal_adc))
                         / ideal_adc.sample_rate))
        result = MsbChecker(6).check(codes)
        assert not result.passed
        assert result.first_mismatch_index is not None

    def test_stuck_middle_bit_detected(self, ideal_adc):
        faulty = StuckBitADC(ideal_adc, bit=3, stuck_value=1)
        ramp = RampStimulus.for_adc(ideal_adc, samples_per_code=8)
        codes = faulty.convert(
            ramp.voltage(np.arange(ramp.n_samples_for_adc(ideal_adc))
                         / ideal_adc.sample_rate))
        assert not MsbChecker(6).check(codes).passed

    def test_non_monotonic_is_a_linearity_fault_not_a_functional_one(
            self, ideal_adc):
        """A bubble error hidden by the thermometer encoder still produces a
        monotone code sequence, so the functionality check passes — the
        distorted code widths are the LSB processing block's job."""
        faulty = inject_non_monotonic(ideal_adc, code=30, depth_lsb=2.5)
        codes = _ramp_codes(faulty)
        assert MsbChecker(6).check(codes).passed
        assert faulty.max_dnl() > 1.0

    def test_small_linearity_error_is_ignored(self):
        """The functionality check is linearity-blind — that is the LSB
        processing block's job."""
        from repro.adc import FlashADC
        adc = FlashADC.from_sigma(6, 0.21, seed=3)
        codes = _ramp_codes(adc, samples_per_code=16)
        assert MsbChecker(6).check(codes).passed

    def test_higher_partition_point(self):
        codes = np.repeat(np.arange(64), 4)
        result = MsbChecker(6, q=2).check(codes)
        assert result.passed
        assert result.expected_clock_events == 15

    def test_empty_record(self):
        result = MsbChecker(6).check(np.array([], dtype=int))
        assert result.passed
        assert result.n_samples == 0

    def test_mismatch_fraction(self):
        codes = np.repeat(np.arange(64), 5)
        codes[100:110] ^= 0b100000
        result = MsbChecker(6).check(codes)
        assert result.mismatch_fraction == pytest.approx(10 / codes.size)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MsbChecker(1)
        with pytest.raises(ValueError):
            MsbChecker(6, q=6)
        with pytest.raises(ValueError):
            MsbChecker(6).check(np.zeros((2, 2), dtype=int))

    def test_gate_count_scales_with_width(self):
        assert MsbChecker(10).gate_count() > MsbChecker(4).gate_count()
