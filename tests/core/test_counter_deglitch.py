"""Unit tests for the hardware counter and the LSB deglitch filter."""

import numpy as np
import pytest

from repro.core import DeglitchFilter, SaturatingCounter


class TestSaturatingCounter:
    def test_counts_up(self):
        counter = SaturatingCounter(4)
        counter.reset()
        for expected in range(1, 10):
            assert counter.clock() == expected

    def test_max_and_effective_max(self):
        counter = SaturatingCounter(4)
        assert counter.max_value == 15
        assert counter.effective_max == 16

    def test_saturation(self):
        counter = SaturatingCounter(3)
        counter.count_events(100)
        assert counter.value == 7
        assert counter.overflowed
        assert counter.read() == 8  # effective max via the overflow flag

    def test_wraparound_policy(self):
        counter = SaturatingCounter(3, saturate=False)
        counter.count_events(9)
        assert counter.value == 1
        assert counter.overflowed
        assert counter.read() == 1

    def test_no_overflow_below_capacity(self):
        counter = SaturatingCounter(4)
        counter.count_events(15)
        assert not counter.overflowed
        assert counter.read() == 15

    def test_reset_clears_state(self):
        counter = SaturatingCounter(3)
        counter.count_events(100)
        counter.reset()
        assert counter.value == 0
        assert not counter.overflowed

    def test_batch_increment(self):
        counter = SaturatingCounter(6)
        counter.reset()
        counter.clock(10)
        counter.clock(5)
        assert counter.read() == 15

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)
        counter = SaturatingCounter(4)
        with pytest.raises(ValueError):
            counter.clock(-1)

    def test_gate_count_scales_with_bits(self):
        assert (SaturatingCounter(7).gate_count()
                > SaturatingCounter(4).gate_count())


class TestDeglitchFilter:
    def _noisy_lsb(self, rng, toggles_at=(100, 200, 300), length=400,
                   glitches=20):
        """Build an LSB stream with clean transitions plus isolated glitches."""
        stream = np.zeros(length, dtype=np.int8)
        level = 0
        edges = sorted(toggles_at)
        position = 0
        for edge in edges + [length]:
            stream[position:edge] = level
            level ^= 1
            position = edge
        clean = stream.copy()
        glitch_positions = rng.choice(
            np.setdiff1d(np.arange(5, length - 5), np.array(edges)),
            size=glitches, replace=False)
        for pos in glitch_positions:
            stream[pos] ^= 1
        return clean, stream

    def test_disabled_filter_passes_through(self):
        raw = np.array([0, 1, 0, 1, 1, 0], dtype=np.int8)
        assert np.array_equal(DeglitchFilter(depth=0).apply(raw), raw)

    def test_hysteresis_removes_single_sample_glitches(self, rng):
        clean, noisy = self._noisy_lsb(rng)
        filtered = DeglitchFilter(depth=2, mode="hysteresis").apply(noisy)
        assert DeglitchFilter.count_toggles(filtered) == 3

    def test_majority_removes_single_sample_glitches(self, rng):
        clean, noisy = self._noisy_lsb(rng)
        filtered = DeglitchFilter(depth=2, mode="majority").apply(noisy)
        assert DeglitchFilter.count_toggles(filtered) == 3

    def test_hysteresis_preserves_edge_count_on_clean_stream(self, rng):
        clean, _ = self._noisy_lsb(rng, glitches=0)
        filtered = DeglitchFilter(depth=3, mode="hysteresis").apply(clean)
        assert DeglitchFilter.count_toggles(filtered) == 3

    def test_hysteresis_delays_edges_uniformly(self):
        stream = np.zeros(40, dtype=np.int8)
        stream[10:25] = 1
        filtered = DeglitchFilter(depth=3, mode="hysteresis").apply(stream)
        rising = np.nonzero(np.diff(filtered) == 1)[0]
        falling = np.nonzero(np.diff(filtered) == -1)[0]
        # Both edges delayed by the same amount: segment length preserved.
        assert falling[0] - rising[0] == 15

    def test_majority_preserves_edge_positions(self):
        stream = np.zeros(40, dtype=np.int8)
        stream[10:25] = 1
        filtered = DeglitchFilter(depth=2, mode="majority").apply(stream)
        assert np.array_equal(filtered, stream)

    def test_count_toggles(self):
        assert DeglitchFilter.count_toggles(np.array([0, 0, 1, 1, 0])) == 2
        assert DeglitchFilter.count_toggles(np.array([1])) == 0

    def test_excess_toggles_removed(self, rng):
        _, noisy = self._noisy_lsb(rng)
        filt = DeglitchFilter(depth=2)
        assert filt.excess_toggles_removed(noisy) > 0

    def test_empty_stream(self):
        assert DeglitchFilter(depth=2).apply(np.array([], dtype=int)).size == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DeglitchFilter(depth=-1)
        with pytest.raises(ValueError):
            DeglitchFilter(mode="bogus")
        with pytest.raises(ValueError):
            DeglitchFilter().apply(np.zeros((2, 2)))

    def test_gate_count(self):
        assert DeglitchFilter(depth=0).gate_count() == 0
        assert DeglitchFilter(depth=4).gate_count() > DeglitchFilter(
            depth=2).gate_count()
