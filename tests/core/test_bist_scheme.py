"""Unit tests for the partial-BIST partition (Equations (1) and (2))."""

import pytest

from repro.core import PartialBistPartition, nl_budget, qmin


class TestNlBudget:
    def test_equation_two_minimum(self):
        # NL = min(DNL * 2**(q-1), INL * 2).
        assert nl_budget(1, dnl_spec_lsb=1.0, inl_spec_lsb=1.0) == 1.0
        assert nl_budget(3, dnl_spec_lsb=1.0, inl_spec_lsb=1.0) == 2.0
        assert nl_budget(3, dnl_spec_lsb=0.25, inl_spec_lsb=5.0) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            nl_budget(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            nl_budget(1, -1.0, 1.0)


class TestQmin:
    def test_slow_ramp_needs_only_the_lsb(self):
        """At ramp-like stimulus frequencies q = 1 — the full BIST case."""
        # One ramp spanning 64 codes with 16 samples per code: the stimulus
        # period is ~1000 samples, f_stimulus/f_sample ~ 1e-3.  With the
        # paper's linearity budget below 1 LSB only the LSB must be watched.
        assert qmin(f_stimulus=1.0, f_sample=1024.0, n_bits=6,
                    dnl_spec_lsb=0.5, inl_spec_lsb=0.4) == 1

    def test_faster_stimulus_needs_more_bits(self):
        slow = qmin(f_stimulus=1.0, f_sample=1e6, n_bits=8)
        fast = qmin(f_stimulus=1e5, f_sample=1e6, n_bits=8)
        assert fast > slow

    def test_monotone_in_stimulus_frequency(self):
        values = [qmin(f, 1e6, 8) for f in (1.0, 10.0, 100.0, 1e3, 1e4)]
        assert values == sorted(values)

    def test_never_exceeds_resolution(self):
        assert qmin(f_stimulus=1e6, f_sample=1e6, n_bits=6) <= 6

    def test_at_least_one_bit(self):
        assert qmin(f_stimulus=1e-9, f_sample=1e9, n_bits=6) >= 1

    def test_nyquist_rate_stimulus_requires_everything(self):
        # A stimulus at half the sample rate sweeps the whole range every
        # two samples: every bit must be observable externally.
        assert qmin(f_stimulus=0.5e6, f_sample=1e6, n_bits=6) == 6

    def test_looser_linearity_budget_increases_q(self):
        tight = qmin(200.0, 1e6, 8, dnl_spec_lsb=0.25, inl_spec_lsb=0.25)
        loose = qmin(200.0, 1e6, 8, dnl_spec_lsb=4.0, inl_spec_lsb=4.0)
        assert loose >= tight

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            qmin(0.0, 1e6, 6)
        with pytest.raises(ValueError):
            qmin(1.0, -1e6, 6)
        with pytest.raises(ValueError):
            qmin(1.0, 1e6, 0)


class TestPartialBistPartition:
    def test_bit_bookkeeping(self):
        part = PartialBistPartition(n_bits=8, q=3)
        assert part.off_chip_bits == 3
        assert part.on_chip_bits == 5
        assert not part.is_full_bist

    def test_full_bist_flag(self):
        assert PartialBistPartition(n_bits=6, q=1).is_full_bist

    def test_pin_reduction(self):
        part = PartialBistPartition(n_bits=8, q=2)
        assert part.pin_reduction_factor == pytest.approx(4.0)

    def test_data_reduction(self):
        part = PartialBistPartition(n_bits=6, q=1)
        assert part.test_data_reduction(n_samples=1000) == 5000

    def test_parallel_device_count(self):
        part = PartialBistPartition(n_bits=6, q=1)
        assert part.max_parallel_devices(tester_channels=64) == 64
        conventional = PartialBistPartition(n_bits=6, q=6)
        assert conventional.max_parallel_devices(tester_channels=64) == 10

    def test_for_stimulus_constructor(self):
        part = PartialBistPartition.for_stimulus(1.0, 1e6, 6)
        assert part.q == qmin(1.0, 1e6, 6)

    def test_invalid_partition(self):
        with pytest.raises(ValueError):
            PartialBistPartition(n_bits=6, q=0)
        with pytest.raises(ValueError):
            PartialBistPartition(n_bits=6, q=7)
        with pytest.raises(ValueError):
            PartialBistPartition(n_bits=6, q=1).test_data_reduction(-1)
        with pytest.raises(ValueError):
            PartialBistPartition(n_bits=6, q=1).max_parallel_devices(0)
