"""Unit tests for the partial-BIST engine (Figure 2 with q > 1)."""

import numpy as np
import pytest

from repro.adc import FlashADC, IdealADC, StuckBitADC, inject_wide_code
from repro.core import (
    PartialBistConfig,
    PartialBistEngine,
    reconstruct_codes,
)


class TestReconstructCodes:
    def test_perfect_reconstruction_of_a_counting_sequence(self):
        codes = np.repeat(np.arange(64), 5)
        for q in (1, 2, 3):
            observed = codes & ((1 << q) - 1)
            rebuilt = reconstruct_codes(observed, q, 6)
            assert np.array_equal(rebuilt, codes)

    def test_initial_upper_offset(self):
        codes = np.repeat(np.arange(16, 64), 3)
        q = 2
        observed = codes & 3
        rebuilt = reconstruct_codes(observed, q, 6, initial_upper=16 >> q)
        assert np.array_equal(rebuilt, codes)

    def test_clipping_to_resolution(self):
        observed = np.array([0, 1, 0, 1, 0, 1] * 40)
        rebuilt = reconstruct_codes(observed, 1, 3)
        assert rebuilt.max() <= 7

    def test_empty_input(self):
        assert reconstruct_codes(np.array([], dtype=int), 2, 6).size == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            reconstruct_codes(np.zeros((2, 2), dtype=int), 1, 6)
        with pytest.raises(ValueError):
            reconstruct_codes(np.zeros(4, dtype=int), 0, 6)
        with pytest.raises(ValueError):
            reconstruct_codes(np.zeros(4, dtype=int), 7, 6)


class TestPartialBistConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PartialBistConfig(n_bits=1)
        with pytest.raises(ValueError):
            PartialBistConfig(q=0)
        with pytest.raises(ValueError):
            PartialBistConfig(q=7, n_bits=6)
        with pytest.raises(ValueError):
            PartialBistConfig(samples_per_code=0)


class TestPartialBistEngine:
    def test_ideal_converter_passes_for_every_q(self):
        adc = IdealADC(6)
        for q in (1, 2, 3, 4):
            engine = PartialBistEngine(PartialBistConfig(q=q,
                                                         dnl_spec_lsb=0.5))
            result = engine.run(adc)
            assert result.passed, f"q={q} failed on an ideal converter"
            assert result.reconstruction_error_rate == 0.0
            assert result.partition.q == q

    def test_reconstruction_is_exact_for_slow_ramp(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=5)
        engine = PartialBistEngine(PartialBistConfig(q=2, dnl_spec_lsb=1.0))
        result = engine.run(adc)
        assert result.reconstruction_error_rate == 0.0

    def test_dnl_matches_true_linearity(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=9)
        engine = PartialBistEngine(PartialBistConfig(
            q=2, dnl_spec_lsb=1.0, samples_per_code=200))
        result = engine.run(adc)
        assert result.linearity.max_dnl == pytest.approx(adc.max_dnl(),
                                                         abs=0.05)

    def test_bits_captured_scale_with_q(self):
        adc = IdealADC(6)
        results = {}
        for q in (1, 3):
            engine = PartialBistEngine(PartialBistConfig(q=q,
                                                         dnl_spec_lsb=1.0))
            results[q] = engine.run(adc)
        assert results[3].bits_captured == 3 * results[3].samples_taken
        assert results[1].bits_captured == results[1].samples_taken
        assert results[3].bits_captured > results[1].bits_captured

    def test_out_of_spec_device_fails(self):
        faulty = inject_wide_code(IdealADC(6), code=20, extra_lsb=2.0)
        engine = PartialBistEngine(PartialBistConfig(q=2, dnl_spec_lsb=1.0))
        result = engine.run(faulty)
        assert not result.passed
        assert not result.linearity_passed

    def test_stuck_upper_bit_caught_by_on_chip_check(self):
        faulty = StuckBitADC(IdealADC(6), bit=5, stuck_value=0)
        engine = PartialBistEngine(PartialBistConfig(q=2, dnl_spec_lsb=1.0))
        result = engine.run(faulty)
        assert not result.passed
        assert result.msb is not None and not result.msb.passed

    def test_automatic_partition_uses_equation_one(self):
        adc = IdealADC(6)
        engine = PartialBistEngine(PartialBistConfig(q=None,
                                                     dnl_spec_lsb=0.5,
                                                     inl_spec_lsb=0.5))
        partition = engine.partition_for(adc)
        # A slow ramp needs only the LSB.
        assert partition.q == 1
        fast = engine.partition_for(adc, stimulus_frequency=adc.sample_rate / 4)
        assert fast.q > 1

    def test_wrong_resolution_rejected(self):
        engine = PartialBistEngine(PartialBistConfig(n_bits=6, q=2))
        with pytest.raises(ValueError):
            engine.run(IdealADC(8))

    def test_keep_record_flag(self):
        adc = IdealADC(6)
        engine = PartialBistEngine(PartialBistConfig(q=2))
        assert engine.run(adc, keep_record=True).record is not None
        assert engine.run(adc, keep_record=False).record is None
