"""Kill-and-resume convergence, end to end through the real CLI.

The acceptance artefact of the checkpoint/resume design: a ``repro
serve`` process SIGKILLed mid-stream — no atexit, no cleanup, a torn
journal tail fully possible — restarted with ``--resume``, produces a
final ledger **byte-identical** to an uninterrupted run of the same
request stream.  This is the same drill the CI ``serve-smoke`` job runs.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: Enough work to journal across several shard completions: three noisy
#: full-BIST lots of 4096 devices (four shards each at the default
#: 1024-device shard size).
REQUESTS = "".join(
    json.dumps({"scenario": {
        "architecture": "flash", "method": "bist", "n_bits": 6, "q": q,
        "n_devices": 4096, "transition_noise_lsb": 0.05}}) + "\n"
    for q in (2, 3, 4))


def _serve(extra, stdin_text=None, timeout=180):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "--workers", "2",
         "--seed", "7", *extra],
        input=stdin_text, capture_output=True, text=True, env=env,
        cwd=str(REPO), timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result


class TestKillAndResume:
    def test_sigkilled_server_resumes_to_identical_ledger(self, tmp_path):
        reference = tmp_path / "reference.txt"
        resumed = tmp_path / "resumed.txt"
        ckpt = tmp_path / "serve.ckpt"

        # The uninterrupted reference run.
        _serve(["--ledger", str(reference)], stdin_text=REQUESTS)
        assert reference.read_text().strip()

        # The victim: feed the full stream, hold stdin open so the
        # server keeps serving, SIGKILL as soon as the journal shows all
        # three requests and at least one completed shard.
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        # Own session: the SIGKILL goes to the process *group*, so the
        # forked pool workers die with their parent instead of lingering
        # as orphans (a parent-only SIGKILL cannot reap them).
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--workers", "2",
             "--seed", "7", "--checkpoint", str(ckpt)],
            stdin=subprocess.PIPE, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL, text=True, env=env, cwd=str(REPO),
            start_new_session=True)
        try:
            victim.stdin.write(REQUESTS)
            victim.stdin.flush()
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if ckpt.exists():
                    kinds = []
                    for line in ckpt.read_text().splitlines():
                        try:
                            kinds.append(json.loads(line).get("kind"))
                        except ValueError:
                            pass  # torn in-progress line
                    if (kinds.count("request") >= 3
                            and kinds.count("shard") >= 1):
                        break
                time.sleep(0.02)
            else:
                pytest.fail("journal never reached 3 requests + 1 shard")
        finally:
            # SIGKILL the whole group: no cleanup, no atexit, and no
            # orphaned workers left behind either.
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)

        # The journal survived the SIGKILL with all three requests.
        assert ckpt.exists()

        # Resume: journaled shards replay, unfinished ones dispatch,
        # and the ledger converges byte-for-byte.
        result = _serve(["--resume", str(ckpt), "--ledger", str(resumed)],
                        stdin_text="")
        events = [json.loads(line)
                  for line in result.stdout.splitlines() if line.strip()]
        assert [e for e in events if e["event"] == "resumed"]
        assert not [e for e in events if e["event"] == "error"]
        assert resumed.read_text() == reference.read_text()
