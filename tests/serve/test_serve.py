"""End-to-end serve suite: batch parity, concurrency, kill-and-resume.

The three acceptance properties of the streaming front door:

* a request stream screened by ``ServeServer`` produces a final ledger
  **byte-identical** to the batch :meth:`Campaign.run` of the same
  scenarios;
* concurrent TCP clients interleave through the shared pool without
  changing any result (requests carry explicit seeds, so arrival order
  is provably irrelevant);
* a SIGKILLed server restarted with ``--resume`` replays journaled
  shards, dispatches only unfinished ones, and **converges to the
  byte-identical ledger** — the checkpoint journal itself is the
  observable (resume after a completed run appends zero new shard
  lines; resume after losing k shard lines re-journals exactly those k).
"""

import asyncio
import io
import json

import pytest

from repro.campaign import Campaign, Scenario
from repro.production import ExecutionPlan
from repro.production.pool import close_default_pool
from repro.serve import ServeServer
from repro.telemetry import Telemetry, telemetry_session


@pytest.fixture(autouse=True)
def _clean_default_pool():
    close_default_pool()
    yield
    close_default_pool()


#: The canonical mixed request stream: a noisy full BIST (stream path),
#: the conventional histogram, and a partial BIST at a different q.
SCENARIOS = [
    dict(architecture="flash", method="bist", n_bits=6, q=2,
         n_devices=240, transition_noise_lsb=0.05),
    dict(architecture="flash", method="histogram", n_bits=6,
         n_devices=240),
    dict(architecture="flash", method="bist", n_bits=6, q=4,
         n_devices=240),
]


def _requests(scenarios=None, seeds=None):
    """One JSONL request script (without shutdown: EOF drains)."""
    lines = []
    for i, kwargs in enumerate(scenarios or SCENARIOS):
        obj = {"scenario": kwargs}
        if seeds is not None:
            obj["seed"] = seeds[i]
        lines.append(json.dumps(obj))
    return "\n".join(lines) + "\n"


def _batch_ledger(seed=99, scenarios=None, plan=None):
    """The reference: the batch campaign's ledger for the same stream."""
    result = Campaign([Scenario(**kwargs)
                       for kwargs in (scenarios or SCENARIOS)],
                      seed=seed).run(
        plan=plan or ExecutionPlan(workers=1, shard_devices=64))
    return (result.store.campaign_table() + "\n\n"
            + result.store.summary() + "\n")


def _serve(stdin_text, **kwargs):
    """Run one stdin-fed serve session to completion; returns the server
    and its parsed event stream."""
    out = io.StringIO()
    server = ServeServer(stdin=io.StringIO(stdin_text), out=out, **kwargs)
    assert asyncio.run(server.run()) == 0
    events = [json.loads(line) for line in
              out.getvalue().splitlines() if line.strip()]
    return server, events


def _shard_lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "shard"]


class TestStreamedEqualsBatch:
    def test_ledger_byte_identical_to_campaign(self):
        plan = ExecutionPlan(workers=1, shard_devices=64)
        server, events = _serve(_requests(), plan=plan, seed=99)
        assert server.rolling.ledger() == _batch_ledger(seed=99, plan=plan)

    def test_event_stream_shape_and_campaign_parity(self):
        plan = ExecutionPlan(workers=1, shard_devices=64)
        server, events = _serve(_requests(), plan=plan, seed=99)
        accepted = [e for e in events if e["event"] == "accepted"]
        results = [e for e in events if e["event"] == "result"]
        campaign = Campaign([Scenario(**k) for k in SCENARIOS], seed=99)
        assert [e["label"] for e in accepted] == campaign.labels()
        assert [e["seed"] for e in accepted] == campaign.seeds()
        assert [e["seq"] for e in accepted] == [0, 1, 2]
        assert len(results) == 3
        # Rolling totals are monotonic across result events.
        rolling = [e["rolling"]["requests"] for e in results]
        assert rolling == sorted(rolling) and rolling[-1] == 3
        for event in results:
            assert event["rolling"]["scenario"]["label"] == \
                event["record"]["label"]
        ledger = [e for e in events if e["event"] == "ledger"]
        assert len(ledger) == 1 and ledger[0]["requests"] == 3
        assert ledger[0]["table"] == server.rolling.ledger()

    def test_bad_lines_report_errors_and_serving_continues(self):
        script = "\n".join([
            json.dumps({"scenario": SCENARIOS[0]}),
            "{not json",
            json.dumps({"scenario": {"wafers": 9}}),
            json.dumps({"scenario": SCENARIOS[1]}),
        ]) + "\n"
        plan = ExecutionPlan(workers=1, shard_devices=64)
        with telemetry_session(Telemetry()) as telemetry:
            server, events = _serve(script, plan=plan, seed=99)
        errors = [e for e in events if e["event"] == "error"]
        assert len(errors) == 2
        assert len(server.rolling) == 2  # both good requests screened
        assert telemetry.counters["serve.errors"] == 2
        assert telemetry.counters["serve.results"] == 2
        # Bad lines consume no seq: the good stream still matches batch.
        assert server.rolling.ledger() == _batch_ledger(
            seed=99, scenarios=SCENARIOS[:2], plan=plan)

    def test_shutdown_command_drains_and_ignores_the_rest(self):
        script = "\n".join([
            json.dumps({"scenario": SCENARIOS[0]}),
            json.dumps({"command": "shutdown"}),
            json.dumps({"scenario": SCENARIOS[1]}),  # after shutdown
        ]) + "\n"
        plan = ExecutionPlan(workers=1, shard_devices=64)
        server, events = _serve(script, plan=plan, seed=99)
        assert [e["event"] for e in events].count("draining") == 1
        assert len(server.rolling) == 1
        assert server.rolling.ledger() == _batch_ledger(
            seed=99, scenarios=SCENARIOS[:1], plan=plan)

    def test_ledger_path_artefact(self, tmp_path):
        ledger_file = tmp_path / "ledger.txt"
        plan = ExecutionPlan(workers=1, shard_devices=64)
        server, _ = _serve(_requests(), plan=plan, seed=99,
                           ledger_path=str(ledger_file))
        assert ledger_file.read_text() == server.rolling.ledger()


class TestCheckpointResume:
    def test_full_resume_replays_without_new_work(self, tmp_path):
        """Resume after a *completed* run: every shard replays from the
        journal — zero new shard lines — and the ledger is identical."""
        ckpt = tmp_path / "serve.ckpt"
        plan = ExecutionPlan(workers=1, shard_devices=64)
        first, _ = _serve(_requests(), plan=plan, seed=99,
                          checkpoint=str(ckpt))
        journaled = _shard_lines(ckpt)
        assert journaled  # the run journaled its shards
        with telemetry_session(Telemetry()) as telemetry:
            resumed, events = _serve("", plan=plan, seed=0,
                                     resume=str(ckpt))
        assert [e for e in events if e["event"] == "resumed"]
        assert telemetry.counters["serve.resumed"] == 3
        # Root seed came from the journal, not the constructor.
        assert resumed.seed == 99
        assert resumed.rolling.ledger() == first.rolling.ledger()
        assert _shard_lines(ckpt) == journaled  # nothing recomputed

    def test_partial_resume_recomputes_only_missing_shards(self, tmp_path):
        """Drop k journaled shards (and tear the tail, as a SIGKILL
        would): resume re-journals exactly those k and converges."""
        ckpt = tmp_path / "serve.ckpt"
        plan = ExecutionPlan(workers=1, shard_devices=64)
        first, _ = _serve(_requests(), plan=plan, seed=99,
                          checkpoint=str(ckpt))
        reference = first.rolling.ledger()
        lines = ckpt.read_text().splitlines()
        is_shard = [json.loads(line).get("kind") == "shard"
                    for line in lines]
        shard_indices = [i for i, flag in enumerate(is_shard) if flag]
        assert len(shard_indices) >= 4
        dropped = shard_indices[-3:]  # lose the last three shards
        kept = [line for i, line in enumerate(lines) if i not in dropped]
        lost_keys = {(json.loads(lines[i])["seq"],
                      json.loads(lines[i])["run"],
                      json.loads(lines[i])["shard"]) for i in dropped}
        ckpt.write_text("\n".join(kept) + "\n"
                        + '{"kind": "shard", "torn')  # torn tail
        resumed, _ = _serve("", plan=plan, resume=str(ckpt))
        assert resumed.rolling.ledger() == reference
        recomputed = {(s["seq"], s["run"], s["shard"])
                      for s in _shard_lines(ckpt)} - {
            (s["seq"], s["run"], s["shard"])
            for i, s in enumerate(map(json.loads, kept))
            if s.get("kind") == "shard"}
        assert recomputed == lost_keys

    def test_resume_accepts_new_requests_after_replay(self, tmp_path):
        """A resumed server is a live server: journaled requests replay
        and fresh requests continue the seq numbering seamlessly."""
        ckpt = tmp_path / "serve.ckpt"
        plan = ExecutionPlan(workers=1, shard_devices=64)
        _serve(_requests(scenarios=SCENARIOS[:2]), plan=plan, seed=99,
               checkpoint=str(ckpt))
        resumed, events = _serve(
            json.dumps({"scenario": SCENARIOS[2]}) + "\n",
            plan=plan, resume=str(ckpt))
        accepted = [e for e in events if e["event"] == "accepted"]
        assert [e["seq"] for e in accepted] == [2]  # continues after 0, 1
        assert resumed.rolling.ledger() == _batch_ledger(seed=99,
                                                         plan=plan)

    def test_corrupt_label_mismatch_refuses_resume(self, tmp_path):
        ckpt = tmp_path / "serve.ckpt"
        plan = ExecutionPlan(workers=1, shard_devices=64)
        _serve(_requests(scenarios=SCENARIOS[:1]), plan=plan, seed=99,
               checkpoint=str(ckpt))
        lines = ckpt.read_text().splitlines()
        doctored = []
        for line in lines:
            obj = json.loads(line)
            if obj.get("kind") == "request":
                obj["label"] = "someone else's row"
            doctored.append(json.dumps(obj))
        ckpt.write_text("\n".join(doctored) + "\n")
        out = io.StringIO()
        server = ServeServer(plan=plan, resume=str(ckpt),
                             stdin=io.StringIO(""), out=out)
        with pytest.raises(ValueError, match="checkpoint corrupt"):
            asyncio.run(server.run())


class TestSocketClients:
    """Concurrent TCP clients against one shared pool."""

    # Each client pins explicit seeds, so whichever arrival interleaving
    # the sockets produce, the screened work is identical and the
    # label-sorted ledger must match the batch run of the union.
    CLIENT_A = [(SCENARIOS[0], 101), (SCENARIOS[2], 303)]
    CLIENT_B = [(SCENARIOS[1], 202)]

    async def _client_session(self, port, requests):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        for kwargs, seed in requests:
            writer.write((json.dumps({"scenario": kwargs, "seed": seed})
                          + "\n").encode())
        await writer.drain()
        writer.write_eof()
        results = []
        while len(results) < len(requests):
            line = await asyncio.wait_for(reader.readline(), timeout=60)
            assert line, "server closed before all results arrived"
            event = json.loads(line)
            assert event["event"] != "error", event
            if event["event"] == "result":
                results.append(event)
        writer.close()
        return results

    async def _run_session(self, server, out):
        server_task = asyncio.create_task(server.run())
        for _ in range(600):
            listening = [json.loads(line) for line in
                         out.getvalue().splitlines()
                         if '"listening"' in line]
            if listening:
                break
            await asyncio.sleep(0.05)
        else:
            pytest.fail("server never announced its port")
        port = listening[0]["port"]
        a, b = await asyncio.gather(
            self._client_session(port, self.CLIENT_A),
            self._client_session(port, self.CLIENT_B))
        server._closing.set()  # operator shutdown
        assert await server_task == 0
        return a, b

    def test_concurrent_clients_match_batch(self):
        plan = ExecutionPlan(workers=2, shard_devices=64)
        out = io.StringIO()
        server = ServeServer(plan=plan, seed=5,
                             socket=("127.0.0.1", 0), out=out)
        with telemetry_session(Telemetry()) as telemetry:
            a_results, b_results = asyncio.run(
                self._run_session(server, out))
        # Each client saw exactly its own results, in its arrival order.
        assert [e["record"]["seed"] for e in a_results] == [101, 303]
        assert [e["record"]["seed"] for e in b_results] == [202]
        assert telemetry.counters["serve.clients"] == 2
        assert telemetry.counters["serve.results"] == 3
        scenarios = [Scenario(seed=seed, **kwargs) for kwargs, seed in
                     self.CLIENT_A + self.CLIENT_B]
        reference = Campaign(scenarios, seed=5).run(
            plan=ExecutionPlan(workers=1, shard_devices=64))
        assert server.rolling.ledger() == (
            reference.store.campaign_table() + "\n\n"
            + reference.store.summary() + "\n")
