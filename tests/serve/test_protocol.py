"""Wire-protocol unit suite: parsing, seed/label parity, event rendering.

The protocol's central promise is *campaign parity*: a request stream
resolved one line at a time must land on exactly the seeds and ledger
labels the batch :class:`~repro.campaign.driver.Campaign` would assign
the same scenarios.  That parity — not the JSON plumbing — is what makes
a served stream byte-identical to the batch run.
"""

import json

import numpy as np
import pytest

from repro.campaign import Campaign, LabelDeduper, Scenario
from repro.campaign.driver import scenario_child_seed
from repro.serve.protocol import (
    ProtocolError,
    build_request,
    event_line,
    is_shutdown,
    parse_line,
    scenario_kwargs,
)


class TestParseLine:
    def test_valid_request(self):
        obj = parse_line('{"scenario": {"n_bits": 6}, "seed": 3}')
        assert obj == {"scenario": {"n_bits": 6}, "seed": 3}

    def test_invalid_json(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            parse_line("{not json")

    def test_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_line("[1, 2]")

    def test_unknown_top_level_key(self):
        with pytest.raises(ProtocolError, match="unknown request key"):
            parse_line('{"scenario": {}, "wafers": 3}')


class TestShutdown:
    def test_shutdown_command(self):
        assert is_shutdown({"command": "shutdown"}) is True

    def test_plain_request_is_not_shutdown(self):
        assert is_shutdown({"scenario": {}}) is False

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError, match="unknown command"):
            is_shutdown({"command": "restart"})


class TestBuildRequest:
    def _build(self, obj, seq=0, root_seed=99, deduper=None):
        return build_request(obj, seq=seq, root_seed=root_seed,
                             deduper=deduper or LabelDeduper())

    def test_explicit_request_seed_wins(self):
        request = self._build({"scenario": {"seed": 5}, "seed": 7})
        assert request.seed == 7

    def test_scenario_seed_is_second(self):
        request = self._build({"scenario": {"seed": 5}})
        assert request.seed == 5

    def test_child_seed_matches_campaign(self):
        """Seedless request ``seq`` screens under campaign child ``seq``."""
        scenarios = [Scenario(n_devices=100),
                     Scenario(method="histogram", n_devices=100)]
        campaign = Campaign(scenarios, seed=99)
        deduper = LabelDeduper()
        for seq, scenario in enumerate(scenarios):
            request = self._build({"scenario": scenario_kwargs(scenario)},
                                  seq=seq, deduper=deduper)
            assert request.seed == campaign.seeds()[seq]
            assert request.seed == scenario_child_seed(99, seq)
            assert request.label == campaign.labels()[seq]

    def test_duplicate_labels_deduplicate_like_campaign(self):
        scenarios = [Scenario(n_devices=100), Scenario(n_devices=100)]
        campaign = Campaign(scenarios, seed=1)
        deduper = LabelDeduper()
        labels = [self._build({"scenario": scenario_kwargs(s)}, seq=i,
                              deduper=deduper).label
                  for i, s in enumerate(scenarios)]
        assert labels == campaign.labels()
        assert labels[0] != labels[1]

    def test_request_id_default_and_echo(self):
        assert self._build({"scenario": {}}, seq=4).id == "req-4"
        assert self._build({"scenario": {}, "id": "lot-1"}).id == "lot-1"

    def test_unknown_scenario_field(self):
        with pytest.raises(ProtocolError, match="unknown scenario field"):
            self._build({"scenario": {"wafers": 2}})

    def test_invalid_scenario_value(self):
        with pytest.raises(ProtocolError, match="invalid scenario"):
            self._build({"scenario": {"method": "telepathy"}})

    def test_scenario_must_be_object(self):
        with pytest.raises(ProtocolError, match="'scenario'"):
            self._build({"scenario": [1]})

    def test_auto_q_rejected(self):
        with pytest.raises(ProtocolError, match="concrete q"):
            self._build({"scenario": {"q": "auto"}})

    def test_invalid_seed(self):
        with pytest.raises(ProtocolError, match="invalid seed"):
            self._build({"scenario": {}, "seed": "lucky"})


class TestScenarioKwargs:
    def test_round_trip_rebuilds_exactly(self):
        scenario = Scenario(architecture="flash", method="bist", n_bits=7,
                            q=3, n_devices=320, devices_per_ic=4,
                            transition_noise_lsb=0.05, seed=11,
                            label="custom row")
        kwargs = scenario_kwargs(scenario)
        assert json.loads(json.dumps(kwargs)) == kwargs  # JSON-safe
        assert Scenario(**kwargs) == scenario


class TestEventLine:
    def test_numpy_scalars_and_arrays_serialise(self):
        line = event_line("result", devices=np.int64(12),
                          fraction=np.float64(0.5),
                          bins=np.array([1, 2]))
        assert json.loads(line) == {"event": "result", "devices": 12,
                                    "fraction": 0.5, "bins": [1, 2]}

    def test_unserialisable_value_raises(self):
        with pytest.raises(TypeError, match="not JSON-serialisable"):
            event_line("result", payload=object())
