"""Checkpoint journal unit suite: durability and torn-tail semantics.

The journal is what makes ``repro serve`` SIGKILL-proof, so the failure
modes get the coverage: a torn final line is tolerated (and truncated
away on the next append, so a *twice*-killed server still resumes),
corruption anywhere else is a hard error, and duplicate shard entries —
the pool-broken retry re-recording a shard — keep the last occurrence.
"""

import json

import pytest

from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWriter,
    RequestJournal,
    decode_result,
    encode_result,
    load_checkpoint,
)


def _lines(path):
    return path.read_text().splitlines()


class TestEncode:
    def test_round_trip(self):
        value = {"bins": [1, 2, 3], "report": ("yield", 0.93)}
        text = encode_result(value)
        assert text.isascii() and "\n" not in text
        assert decode_result(text) == value


class TestCheckpointWriter:
    def test_header_then_records(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        writer = CheckpointWriter(str(path), seed=42)
        writer.request(0, "req-0", "row", 7, {"n_bits": 6})
        writer.shard(0, 0, 1, {"accepted": 3})
        writer.close()
        lines = [json.loads(line) for line in _lines(path)]
        assert lines[0] == {"kind": "serve",
                            "version": CHECKPOINT_VERSION, "seed": 42}
        assert lines[1]["kind"] == "request"
        assert lines[2]["kind"] == "shard"
        assert decode_result(lines[2]["data"]) == {"accepted": 3}

    def test_reopen_appends_without_second_header(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        CheckpointWriter(str(path), seed=1).close()
        writer = CheckpointWriter(str(path), seed=999)
        writer.shard(0, 0, 0, "late")
        writer.close()
        kinds = [json.loads(line)["kind"] for line in _lines(path)]
        assert kinds == ["serve", "shard"]
        assert load_checkpoint(str(path)).seed == 1

    def test_reopen_truncates_torn_tail(self, tmp_path):
        """A SIGKILL-torn partial line must not glue onto new records."""
        path = tmp_path / "serve.ckpt"
        writer = CheckpointWriter(str(path), seed=1)
        writer.shard(0, 0, 0, "kept")
        writer.close()
        with open(path, "a") as handle:
            handle.write('{"kind": "shard", "seq": 0, "ru')  # no newline
        writer = CheckpointWriter(str(path), seed=1)
        writer.shard(0, 0, 1, "after-resume")
        writer.close()
        # Every line parses — the torn tail is gone, not merged.
        state = load_checkpoint(str(path))
        assert state.shards[0] == {(0, 0): "kept", (0, 1): "after-resume"}


class TestLoadCheckpoint:
    def _journal(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        writer = CheckpointWriter(str(path), seed=9)
        writer.request(1, "b", "row-b", 21, {"n_bits": 6})
        writer.request(0, "a", "row-a", 20, {"n_bits": 7})
        writer.shard(0, 0, 0, "s00")
        writer.shard(1, 0, 0, "s10")
        writer.close()
        return path

    def test_round_trip_sorted_requests(self, tmp_path):
        state = load_checkpoint(str(self._journal(tmp_path)))
        assert state.seed == 9
        assert [r["seq"] for r in state.requests] == [0, 1]
        assert state.shards == {0: {(0, 0): "s00"}, 1: {(0, 0): "s10"}}

    def test_torn_last_line_tolerated(self, tmp_path):
        path = self._journal(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"kind": "shard", "se')
        state = load_checkpoint(str(path))
        assert len(state.requests) == 2  # everything before the tear

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = self._journal(tmp_path)
        lines = _lines(path)
        lines[2] = "garbage {"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt checkpoint.*line 3"):
            load_checkpoint(str(path))

    def test_unknown_kind_raises(self, tmp_path):
        path = self._journal(tmp_path)
        lines = _lines(path)
        lines.insert(1, '{"kind": "wafer"}')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt checkpoint"):
            load_checkpoint(str(path))

    def test_duplicate_shard_keeps_last(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        writer = CheckpointWriter(str(path), seed=1)
        writer.shard(0, 0, 0, "first")
        writer.shard(0, 0, 0, "retry")
        writer.close()
        assert load_checkpoint(str(path)).shards[0][(0, 0)] == "retry"


class TestRequestJournal:
    def test_records_replay_and_runs_count(self, tmp_path):
        path = tmp_path / "serve.ckpt"
        writer = CheckpointWriter(str(path), seed=1)
        journal = RequestJournal(writer, seq=3)
        assert journal.begin_run(2) == 0
        assert journal.lookup(0, 0) == (False, None)
        journal.record(0, 0, "value")
        assert journal.lookup(0, 0) == (True, "value")
        assert journal.begin_run(1) == 1
        writer.close()
        state = load_checkpoint(str(path))
        assert state.shards == {3: {(0, 0): "value"}}

    def test_begin_attempt_resets_runs_keeps_results(self):
        journal = RequestJournal(None, seq=0,
                                 preloaded={(0, 0): "journaled"})
        assert journal.begin_run(1) == 0
        journal.record(0, 1, "fresh")
        journal.begin_attempt()
        assert journal.begin_run(1) == 0  # numbering restarts
        assert journal.lookup(0, 0) == (True, "journaled")
        assert journal.lookup(0, 1) == (True, "fresh")  # kept

    def test_none_writer_is_memory_only(self):
        journal = RequestJournal(None, seq=0)
        journal.record(0, 0, "value")
        assert journal.lookup(0, 0) == (True, "value")
