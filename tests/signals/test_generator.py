"""Unit tests for the on-chip stimulus generator models."""

import numpy as np
import pytest

from repro.adc import IdealADC
from repro.signals import ChargePumpRampGenerator, DeltaSigmaSineGenerator


class TestChargePumpRampGenerator:
    def test_ideal_case_is_linear(self):
        gen = ChargePumpRampGenerator(nominal_slope=100.0, span=1.0)
        t = np.linspace(0, 0.01, 100)
        v = gen.voltage(t)
        assert np.allclose(np.diff(v), np.diff(v)[0])

    def test_initial_slope_matches_nominal(self):
        gen = ChargePumpRampGenerator(nominal_slope=100.0, span=1.0,
                                      span_fraction=0.2)
        t = np.array([0.0, 1e-6])
        v = gen.voltage(t)
        slope = (v[1] - v[0]) / 1e-6
        assert slope == pytest.approx(100.0, rel=0.01)

    def test_finite_output_resistance_bows_the_ramp(self):
        gen = ChargePumpRampGenerator(nominal_slope=100.0, span=1.0,
                                      span_fraction=0.3)
        duration = 1.0 / 100.0
        assert gen.worst_case_nonlinearity(duration) > 0.0

    def test_more_span_fraction_means_more_bow(self):
        duration = 0.01
        small = ChargePumpRampGenerator(nominal_slope=100.0, span=1.0,
                                        span_fraction=0.1)
        large = ChargePumpRampGenerator(nominal_slope=100.0, span=1.0,
                                        span_fraction=0.5)
        assert (large.worst_case_nonlinearity(duration)
                > small.worst_case_nonlinearity(duration))

    def test_slope_error(self):
        gen = ChargePumpRampGenerator(nominal_slope=100.0, span=1.0,
                                      slope_error=0.05)
        assert gen.actual_slope == pytest.approx(105.0)

    def test_noise_reproducibility(self):
        t = np.linspace(0, 0.01, 50)
        a = ChargePumpRampGenerator(100.0, 1.0, noise_sigma=1e-3,
                                    rng=2).voltage(t)
        b = ChargePumpRampGenerator(100.0, 1.0, noise_sigma=1e-3,
                                    rng=2).voltage(t)
        assert np.allclose(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ChargePumpRampGenerator(nominal_slope=0.0, span=1.0)
        with pytest.raises(ValueError):
            ChargePumpRampGenerator(nominal_slope=1.0, span=1.0,
                                    span_fraction=1.0)
        with pytest.raises(ValueError):
            ChargePumpRampGenerator(1.0, 1.0).worst_case_nonlinearity(0.0)

    def test_drives_a_converter(self):
        adc = IdealADC(6)
        delta_s = adc.lsb / 8.0
        gen = ChargePumpRampGenerator(nominal_slope=delta_s * adc.sample_rate,
                                      span=1.1, span_fraction=0.05,
                                      start_voltage=-2 * adc.lsb)
        record = adc.sample(gen, n_samples=700)
        assert record.codes.max() == adc.n_codes - 1


class TestDeltaSigmaSineGenerator:
    def test_reconstructs_a_sine(self):
        gen = DeltaSigmaSineGenerator(frequency=1e3, amplitude=0.4,
                                      offset=0.5, oversample_ratio=128)
        t = np.linspace(0, 4e-3, 2000)
        v = gen.voltage(t)
        ideal = 0.5 + 0.4 * np.sin(2 * np.pi * 1e3 * t)
        # Skip the reconstruction filter's start-up transient (first cycle),
        # then the bit stream should track the ideal sine closely.
        settled = t > 1e-3
        rms = np.sqrt(np.mean((v[settled] - ideal[settled]) ** 2))
        assert rms < 0.08
        assert np.corrcoef(v[settled], ideal[settled])[0, 1] > 0.97

    def test_output_range(self):
        gen = DeltaSigmaSineGenerator(frequency=1e3, amplitude=0.4,
                                      offset=0.5)
        t = np.linspace(0, 2e-3, 500)
        v = gen.voltage(t)
        assert v.min() >= 0.0
        assert v.max() <= 1.0

    def test_empty_time_array(self):
        gen = DeltaSigmaSineGenerator(frequency=1e3)
        assert gen.voltage(np.array([])).size == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DeltaSigmaSineGenerator(frequency=0.0)
        with pytest.raises(ValueError):
            DeltaSigmaSineGenerator(frequency=1e3, oversample_ratio=2)
