"""Unit tests for sine stimuli, sampling clocks and the noise bundle."""

import numpy as np
import pytest

from repro.adc import IdealADC
from repro.signals import (
    NoiseModel,
    SamplingClock,
    SineStimulus,
    coherent_frequency,
    quantization_noise_power,
    snr_ideal_db,
)


class TestCoherentFrequency:
    def test_integer_cycles(self):
        f = coherent_frequency(1000.0, 1e6, 4096)
        cycles = f * 4096 / 1e6
        assert cycles == pytest.approx(round(cycles))

    def test_odd_cycle_count(self):
        f = coherent_frequency(1000.0, 1e6, 4096)
        cycles = round(f * 4096 / 1e6)
        assert cycles % 2 == 1

    def test_close_to_target(self):
        f = coherent_frequency(20e3, 1e6, 4096)
        assert abs(f - 20e3) < 1e6 / 4096

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            coherent_frequency(-1.0, 1e6, 1024)


class TestSineStimulus:
    def test_amplitude_and_offset(self):
        sine = SineStimulus(frequency=100.0, amplitude=0.4, offset=0.5)
        t = np.linspace(0, 0.1, 10000)
        v = sine.voltage(t)
        assert v.max() == pytest.approx(0.9, abs=0.01)
        assert v.min() == pytest.approx(0.1, abs=0.01)

    def test_harmonics_add_distortion(self):
        clean = SineStimulus(frequency=100.0)
        dirty = SineStimulus(frequency=100.0, harmonics={3: 0.1})
        t = np.linspace(0, 0.05, 5000)
        assert not np.allclose(clean.voltage(t), dirty.voltage(t))

    def test_harmonic_order_validation(self):
        with pytest.raises(ValueError):
            SineStimulus(frequency=100.0, harmonics={1: 0.1})

    def test_for_adc_is_coherent_and_in_range(self):
        adc = IdealADC(8)
        sine = SineStimulus.for_adc(adc, 20e3, n_samples=4096)
        t = np.arange(4096) / adc.sample_rate
        v = sine.voltage(t)
        assert v.min() >= 0.0
        assert v.max() <= adc.full_scale
        cycles = sine.frequency * 4096 / adc.sample_rate
        assert cycles == pytest.approx(round(cycles))

    def test_noise_reproducibility(self):
        t = np.linspace(0, 0.01, 100)
        a = SineStimulus(frequency=1e3, noise_sigma=0.01, rng=3).voltage(t)
        b = SineStimulus(frequency=1e3, noise_sigma=0.01, rng=3).voltage(t)
        assert np.allclose(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SineStimulus(frequency=0.0)
        with pytest.raises(ValueError):
            SineStimulus(frequency=1.0, amplitude=-1.0)


class TestSamplingClock:
    def test_ideal_clock_times(self):
        clock = SamplingClock(sample_rate=1e6)
        times = clock.sample_times(5)
        assert np.allclose(times, np.arange(5) / 1e6)

    def test_jitter_perturbs_times(self):
        clock = SamplingClock(sample_rate=1e6, jitter_rms=1e-9, rng=0)
        times = clock.sample_times(1000)
        ideal = np.arange(1000) / 1e6
        deviation = times - ideal
        assert deviation.std() == pytest.approx(1e-9, rel=0.15)

    def test_frequency_error_scales_rate(self):
        clock = SamplingClock(sample_rate=1e6, frequency_error=0.01)
        assert clock.actual_rate == pytest.approx(1.01e6)
        times = clock.sample_times(11)
        assert times[-1] == pytest.approx(10 / 1.01e6)

    def test_start_time(self):
        clock = SamplingClock(sample_rate=1e6, start_time=1.0)
        assert clock.sample_times(1)[0] == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SamplingClock(sample_rate=0.0)
        with pytest.raises(ValueError):
            SamplingClock(sample_rate=1e6, jitter_rms=-1.0)
        with pytest.raises(ValueError):
            SamplingClock(sample_rate=1e6).sample_times(0)


class TestNoiseModel:
    def test_noiseless_default(self):
        assert NoiseModel().is_noiseless

    def test_not_noiseless_with_any_source(self):
        assert not NoiseModel(transition_noise_lsb=0.1).is_noiseless
        assert not NoiseModel(stimulus_noise_lsb=0.1).is_noiseless
        assert not NoiseModel(jitter_rms=1e-9).is_noiseless

    def test_child_generators_are_independent(self):
        model = NoiseModel(transition_noise_lsb=0.1, stimulus_noise_lsb=0.1,
                           seed=1)
        a = model.transition_rng.normal(size=10)
        b = model.stimulus_rng.normal(size=10)
        assert not np.allclose(a, b)

    def test_reproducible_from_seed(self):
        a = NoiseModel(seed=7).transition_rng.normal(size=5)
        b = NoiseModel(seed=7).transition_rng.normal(size=5)
        assert np.allclose(a, b)

    def test_stimulus_noise_volts(self):
        adc = IdealADC(6, full_scale=1.0)
        model = NoiseModel(stimulus_noise_lsb=0.5)
        assert model.stimulus_noise_volts(adc) == pytest.approx(0.5 * adc.lsb)

    def test_clock_factory(self):
        adc = IdealADC(6, sample_rate=2e6)
        clock = NoiseModel(jitter_rms=1e-9, seed=1).clock_for(adc)
        assert clock.sample_rate == pytest.approx(2e6)
        assert clock.jitter_rms == pytest.approx(1e-9)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(transition_noise_lsb=-0.1)


class TestQuantizationHelpers:
    def test_quantization_noise_power(self):
        assert quantization_noise_power(1.0) == pytest.approx(1.0 / 12)

    def test_ideal_snr(self):
        assert snr_ideal_db(8) == pytest.approx(6.02 * 8 + 1.76)
