"""Unit tests for ramp and sawtooth stimuli."""

import numpy as np
import pytest

from repro.adc import IdealADC
from repro.signals import RampStimulus, SawtoothStimulus


class TestRampStimulus:
    def test_linear_ramp_values(self):
        ramp = RampStimulus(slope=2.0, start_voltage=0.5)
        t = np.array([0.0, 0.25, 1.0])
        assert np.allclose(ramp.voltage(t), [0.5, 1.0, 2.5])

    def test_callable_interface(self):
        ramp = RampStimulus(slope=1.0)
        t = np.linspace(0, 1, 11)
        assert np.allclose(ramp(t), ramp.voltage(t))

    def test_slope_must_be_positive(self):
        with pytest.raises(ValueError):
            RampStimulus(slope=0.0)
        with pytest.raises(ValueError):
            RampStimulus(slope=-1.0)

    def test_delta_s_relation_eq5(self):
        # Equation (5): delta_s = slope / f_sample.
        ramp = RampStimulus(slope=100.0)
        assert ramp.delta_s(sample_rate=1e3) == pytest.approx(0.1)

    def test_for_adc_samples_per_code(self):
        adc = IdealADC(6, full_scale=1.0, sample_rate=1e6)
        ramp = RampStimulus.for_adc(adc, samples_per_code=16)
        assert ramp.samples_per_code(adc) == pytest.approx(16.0)
        assert ramp.delta_s_lsb(adc) == pytest.approx(1.0 / 16)

    def test_for_adc_starts_below_range(self):
        adc = IdealADC(6)
        ramp = RampStimulus.for_adc(adc, samples_per_code=8,
                                    start_margin_lsb=2.0)
        assert ramp.start_voltage == pytest.approx(-2.0 * adc.lsb)

    def test_from_delta_s(self):
        ramp = RampStimulus.from_delta_s(delta_s=0.01, sample_rate=1e6)
        assert ramp.slope == pytest.approx(0.01 * 1e6)

    def test_n_samples_covers_full_range(self):
        adc = IdealADC(6)
        ramp = RampStimulus.for_adc(adc, samples_per_code=10)
        n = ramp.n_samples_for_adc(adc)
        record = adc.sample(ramp, n_samples=n)
        assert record.codes.max() == adc.n_codes - 1
        assert record.codes.min() == 0

    def test_duration_for_range(self):
        ramp = RampStimulus(slope=2.0, start_voltage=0.0)
        assert ramp.duration_for_range(0.0, 1.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            ramp.duration_for_range(1.0, 0.5)

    def test_noise_is_reproducible_with_seed(self):
        t = np.linspace(0, 1, 100)
        a = RampStimulus(slope=1.0, noise_sigma=0.01, rng=5).voltage(t)
        b = RampStimulus(slope=1.0, noise_sigma=0.01, rng=5).voltage(t)
        assert np.allclose(a, b)

    def test_noise_changes_output(self):
        t = np.linspace(0, 1, 100)
        clean = RampStimulus(slope=1.0).voltage(t)
        noisy = RampStimulus(slope=1.0, noise_sigma=0.01, rng=1).voltage(t)
        assert not np.allclose(clean, noisy)

    def test_nonlinearity_requires_duration(self):
        with pytest.raises(ValueError):
            RampStimulus(slope=1.0, nonlinearity=0.01)

    def test_nonlinearity_bows_the_ramp(self):
        t = np.linspace(0, 1, 101)
        linear = RampStimulus(slope=1.0).voltage(t)
        bowed = RampStimulus(slope=1.0, nonlinearity=0.01,
                             duration=1.0).voltage(t)
        deviation = bowed - linear
        # Maximum bow at mid ramp, none at the end points.
        assert deviation[50] == pytest.approx(0.01, rel=0.05)
        assert deviation[0] == pytest.approx(0.0, abs=1e-12)
        assert deviation[-1] == pytest.approx(0.0, abs=1e-9)


class TestSawtoothStimulus:
    def test_period_and_range(self):
        saw = SawtoothStimulus(frequency=10.0, low=0.0, high=1.0)
        t = np.linspace(0, 0.0999, 1000)
        v = saw.voltage(t)
        assert v.min() >= 0.0
        assert v.max() <= 1.0

    def test_repeats_each_period(self):
        saw = SawtoothStimulus(frequency=5.0)
        assert saw.voltage(np.array([0.01]))[0] == pytest.approx(
            saw.voltage(np.array([0.21]))[0])

    def test_slope(self):
        saw = SawtoothStimulus(frequency=100.0, low=0.0, high=2.0)
        assert saw.slope() == pytest.approx(200.0)
        assert saw.delta_s(1e6) == pytest.approx(200.0 / 1e6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SawtoothStimulus(frequency=0.0)
        with pytest.raises(ValueError):
            SawtoothStimulus(frequency=1.0, low=1.0, high=0.5)
