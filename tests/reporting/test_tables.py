"""Unit tests for the table / series / ASCII-plot formatting helpers."""

import numpy as np
import pytest

from repro.reporting import ascii_plot, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_float_format(self):
        text = format_table(["x"], [[0.123456]], float_format=".2f")
        assert "0.12" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_mixed_types(self):
        text = format_table(["name", "value"], [["alpha", 1], ["beta", 2.0]])
        assert "alpha" in text and "beta" in text


class TestFormatSeries:
    def test_two_columns(self):
        text = format_series([1, 2, 3], [0.1, 0.2, 0.3], "x", "y")
        assert "x" in text and "y" in text
        assert len(text.splitlines()) == 5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1, 2], [1])


class TestAsciiPlot:
    def test_dimensions(self):
        x = np.linspace(0, 1, 50)
        y = x ** 2
        text = ascii_plot(x, y, width=40, height=10)
        lines = text.splitlines()
        plot_lines = [l for l in lines if l.startswith("|")]
        assert len(plot_lines) == 10
        assert all(len(l) <= 41 for l in plot_lines)

    def test_contains_points(self):
        text = ascii_plot([0, 1], [0, 1], width=20, height=6)
        assert "*" in text

    def test_log_scale(self):
        x = np.linspace(0, 1, 20)
        y = 10.0 ** (-3 * x)
        text = ascii_plot(x, y, logy=True)
        assert "log10" in text

    def test_log_scale_requires_positive_values(self):
        with pytest.raises(ValueError):
            ascii_plot([0, 1], [0.0, -1.0], logy=True)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ascii_plot([1], [1], width=5, height=2)
        with pytest.raises(ValueError):
            ascii_plot([], [])
