"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc import DevicePopulation, FlashADC, IdealADC, PopulationSpec
from repro.core import BistConfig, BistEngine


@pytest.fixture
def ideal_adc() -> IdealADC:
    """A 6-bit ideal converter at 1 MS/s over a 1 V range."""
    return IdealADC(n_bits=6, full_scale=1.0, sample_rate=1e6)


@pytest.fixture
def flash_adc() -> FlashADC:
    """One 6-bit flash device with the paper's worst-case mismatch."""
    return FlashADC.from_sigma(n_bits=6, sigma_code_width_lsb=0.21, seed=7)


@pytest.fixture
def small_population() -> DevicePopulation:
    """A small (40-device) flash population for fast integration tests."""
    return DevicePopulation(PopulationSpec(n_bits=6,
                                           sigma_code_width_lsb=0.21,
                                           size=40, seed=11))


@pytest.fixture
def gaussian_population() -> DevicePopulation:
    """A Gaussian-architecture population (fast bulk statistics)."""
    return DevicePopulation(PopulationSpec(n_bits=6,
                                           sigma_code_width_lsb=0.21,
                                           size=200, seed=5,
                                           architecture="gaussian"))


@pytest.fixture
def relaxed_engine() -> BistEngine:
    """BIST engine at the actual specification (±1 LSB, 7-bit counter)."""
    return BistEngine(BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0))


@pytest.fixture
def stringent_engine() -> BistEngine:
    """BIST engine at the stringent specification (±0.5 LSB, 4-bit counter)."""
    return BistEngine(BistConfig(n_bits=6, counter_bits=4, dnl_spec_lsb=0.5))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test-local randomness."""
    return np.random.default_rng(12345)
