"""Unit tests for gross-defect (spot-defect) injection."""

import numpy as np
import pytest

from repro.adc import (
    FlashADC,
    IdealADC,
    StuckBitADC,
    TransferFunction,
    inject_gain_error,
    inject_missing_code,
    inject_non_monotonic,
    inject_offset_shift,
    inject_open_resistor,
    inject_shorted_resistor,
    inject_wide_code,
    make_faulty_batch,
)


@pytest.fixture
def base():
    return IdealADC(6)


class TestMissingCode:
    def test_creates_zero_width_code(self, base):
        faulty = inject_missing_code(base, code=20)
        assert faulty.transfer_function().code_widths_lsb[19] == pytest.approx(
            0.0, abs=1e-12)

    def test_original_untouched(self, base):
        inject_missing_code(base, code=20)
        assert base.max_dnl() == pytest.approx(0.0, abs=1e-12)

    def test_detected_as_missing(self, base):
        faulty = inject_missing_code(base, code=5)
        assert faulty.transfer_function().has_missing_codes()

    def test_violates_any_reasonable_dnl_spec(self, base):
        faulty = inject_missing_code(base, code=5)
        assert faulty.max_dnl() > 0.9

    def test_invalid_code_rejected(self, base):
        with pytest.raises(ValueError):
            inject_missing_code(base, code=0)
        with pytest.raises(ValueError):
            inject_missing_code(base, code=63)

    def test_fault_descriptor_attached(self, base):
        faulty = inject_missing_code(base, code=12)
        assert faulty.fault.kind == "missing_code"
        assert faulty.fault.location == 12


class TestWideCode:
    def test_width_increases_by_requested_amount(self, base):
        faulty = inject_wide_code(base, code=10, extra_lsb=2.0)
        assert faulty.transfer_function().code_widths_lsb[9] == pytest.approx(
            3.0, abs=1e-9)

    def test_other_widths_preserved(self, base):
        faulty = inject_wide_code(base, code=10, extra_lsb=2.0)
        widths = faulty.transfer_function().code_widths_lsb
        untouched = np.delete(widths, 9)
        assert np.allclose(untouched, 1.0)

    def test_accepts_transfer_function_input(self):
        tf = TransferFunction.ideal(6)
        faulty = inject_wide_code(tf, code=3, extra_lsb=1.0)
        assert faulty.n_bits == 6


class TestResistorFaults:
    def test_short_removes_code(self, base):
        faulty = inject_shorted_resistor(base, code=30)
        assert faulty.transfer_function().code_widths_lsb[29] == pytest.approx(
            0.0, abs=1e-9)

    def test_short_preserves_total_span(self, base):
        before = base.transfer_function()
        faulty = inject_shorted_resistor(base, code=30).transfer_function()
        assert faulty.code_widths.sum() == pytest.approx(
            before.code_widths.sum(), rel=1e-9)

    def test_open_creates_huge_code(self, base):
        faulty = inject_open_resistor(base, code=15, severity_lsb=8.0)
        assert faulty.transfer_function().code_widths_lsb.max() > 4.0

    def test_open_preserves_total_span(self, base):
        before = base.transfer_function()
        faulty = inject_open_resistor(base, code=15).transfer_function()
        assert faulty.code_widths.sum() == pytest.approx(
            before.code_widths.sum(), rel=1e-9)


class TestOffsetGainNonMonotonic:
    def test_offset_shift(self, base):
        faulty = inject_offset_shift(base, shift_lsb=3.0)
        assert faulty.transfer_function().offset_error_lsb() == pytest.approx(
            3.0, abs=1e-9)

    def test_gain_error(self, base):
        faulty = inject_gain_error(base, gain=1.1)
        assert faulty.transfer_function().gain_error_lsb() > 0

    def test_non_monotonic(self, base):
        faulty = inject_non_monotonic(base, code=20)
        assert not faulty.transfer_function().is_monotonic()


class TestStuckBit:
    def test_stuck_low_clears_bit(self, base):
        faulty = StuckBitADC(base, bit=0, stuck_value=0)
        v = np.linspace(0, 1, 500)
        codes = faulty.convert(v)
        assert np.all((codes & 1) == 0)

    def test_stuck_high_sets_bit(self, base):
        faulty = StuckBitADC(base, bit=3, stuck_value=1)
        v = np.linspace(0, 1, 500)
        codes = faulty.convert(v)
        assert np.all((codes >> 3) & 1 == 1)

    def test_analog_transfer_unaffected(self, base):
        faulty = StuckBitADC(base, bit=0, stuck_value=0)
        assert faulty.max_dnl() == pytest.approx(0.0, abs=1e-12)

    def test_invalid_parameters(self, base):
        with pytest.raises(ValueError):
            StuckBitADC(base, bit=6, stuck_value=0)
        with pytest.raises(ValueError):
            StuckBitADC(base, bit=0, stuck_value=2)


class TestFaultyBatch:
    def test_batch_size(self, base):
        batch = make_faulty_batch(base, rng=1, count=25)
        assert len(batch) == 25

    def test_every_device_violates_spec(self, base):
        batch = make_faulty_batch(base, rng=2, count=30)
        for device in batch:
            tf = device.transfer_function()
            violates = (tf.max_dnl() > 0.99 or tf.max_inl() > 0.99
                        or abs(tf.offset_error_lsb()) > 0.99
                        or abs(tf.gain_error_lsb()) > 0.99
                        or not tf.is_monotonic())
            assert violates, f"{device.fault} did not violate any spec"

    def test_restricted_kinds(self, base):
        batch = make_faulty_batch(base, rng=3, count=10,
                                  kinds=["missing_code"])
        assert all(d.fault.kind == "missing_code" for d in batch)

    def test_unknown_kind_rejected(self, base):
        with pytest.raises(ValueError):
            make_faulty_batch(base, kinds=["bogus"])

    def test_reproducible(self, base):
        a = make_faulty_batch(base, rng=7, count=5)
        b = make_faulty_batch(base, rng=7, count=5)
        assert [d.fault.kind for d in a] == [d.fault.kind for d in b]

    def test_works_on_flash_device(self):
        flash = FlashADC.from_sigma(6, 0.1, seed=0)
        batch = make_faulty_batch(flash, rng=4, count=5)
        assert len(batch) == 5
