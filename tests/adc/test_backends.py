"""Tests for the pluggable vectorised transfer backends."""

import numpy as np
import pytest

from repro.adc import (
    FlashLadderBackend,
    PipelineStageBackend,
    SarWeightBackend,
    make_backend,
)
from repro.adc.pipeline import PipelineADC
from repro.adc.population import DevicePopulation, PopulationSpec
from repro.adc.sar import SarADC
from repro.production import BatchBistEngine, Wafer, WaferSpec
from repro.core import BistConfig, BistEngine


class TestBackendShapes:
    @pytest.mark.parametrize("architecture", ["flash", "sar", "pipeline"])
    def test_matrix_shape_and_monotone_majority(self, architecture):
        backend = make_backend(architecture, n_bits=6)
        matrix = backend.draw_transitions(50, rng=0)
        assert matrix.shape == (50, 63)
        # Healthy mismatch levels: most rows are monotone transfer curves.
        monotone = (np.diff(matrix, axis=1) >= 0).all(axis=1)
        assert monotone.mean() > 0.5

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            make_backend("delta-sigma", n_bits=6)

    def test_pipeline_needs_three_bits(self):
        with pytest.raises(ValueError):
            PipelineStageBackend(2)


class TestBackendScalarAgreement:
    """A one-device draw must reproduce the scalar converter models."""

    def test_sar_single_device_matches_scalar_model(self):
        backend = SarWeightBackend(6, unit_cap_sigma_rel=0.05)
        row = backend.draw_transitions(1, rng=123)[0]
        scalar = SarADC(6, unit_cap_sigma_rel=0.05, rng=123)
        np.testing.assert_allclose(
            row, scalar.transfer_function().transitions, rtol=1e-12)

    def test_pipeline_single_device_matches_scalar_model(self):
        backend = PipelineStageBackend(6, gain_error_sigma=0.02,
                                       threshold_sigma_lsb=0.4)
        row = backend.draw_transitions(1, rng=99)[0]
        scalar = PipelineADC(6, gain_error_sigma=0.02,
                             threshold_sigma_lsb=0.4, rng=99)
        np.testing.assert_allclose(
            row, scalar.transfer_function().transitions, rtol=1e-12)

    def test_flash_backend_reproduces_legacy_wafer_draw(self):
        """Seeded flash wafers must be unchanged by the backend refactor."""
        from repro.adc.population import correlated_code_widths
        from repro.adc.transfer import batch_transitions_from_code_widths
        spec = WaferSpec(n_bits=6, sigma_code_width_lsb=0.21, n_devices=30)
        wafer = Wafer.draw(spec, rng=1997)
        widths = correlated_code_widths(30, 62, 0.21, rng=1997)
        legacy = batch_transitions_from_code_widths(
            widths * spec.lsb, first_transition=spec.lsb)
        np.testing.assert_array_equal(wafer.transitions, legacy)


class TestMatrixBackedPopulations:
    @pytest.mark.parametrize("architecture", ["sar", "pipeline"])
    def test_devices_wrap_matrix_rows(self, architecture):
        pop = DevicePopulation(PopulationSpec(
            size=20, seed=7, architecture=architecture))
        matrix = pop.transition_matrix()
        for i in (0, 9, 19):
            np.testing.assert_array_equal(
                pop[i].transfer_function().transitions, matrix[i])
        widths = pop.code_width_matrix_lsb()
        assert widths.shape == (20, 62)

    @pytest.mark.parametrize("architecture", ["sar", "pipeline"])
    def test_scalar_batch_full_bist_equivalence(self, architecture):
        """The full-BIST batch engine stays bit-exact on the new
        architectures (population and wafer paths)."""
        pop = DevicePopulation(PopulationSpec(
            size=80, seed=5, architecture=architecture))
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=0.5)
        scalar = BistEngine(config).run_population(pop, rng=0)
        batch = BatchBistEngine(config).run_population(pop, rng=0)
        np.testing.assert_array_equal(scalar.accepted, batch.accepted)
        np.testing.assert_array_equal(scalar.truly_good, batch.truly_good)
        assert 0.0 < batch.p_accept < 1.0

    def test_wafer_architecture_dispatch(self):
        sar_wafer = Wafer.draw(WaferSpec(n_devices=40, architecture="sar"),
                               rng=3)
        backend_rows = SarWeightBackend(
            6, unit_cap_sigma_rel=0.06).draw_transitions(40, rng=3)
        np.testing.assert_array_equal(sar_wafer.transitions, backend_rows)

    def test_invalid_wafer_architecture(self):
        with pytest.raises(ValueError):
            WaferSpec(architecture="bogus")

    def test_from_population_propagates_mismatch_parameters(self):
        """The wafer spec must describe the matrix it wraps: architecture
        AND the per-architecture mismatch knobs carry over."""
        pop = DevicePopulation(PopulationSpec(
            size=15, seed=3, architecture="sar", unit_cap_sigma_rel=0.12))
        wafer = Wafer.from_population(pop)
        assert wafer.spec.architecture == "sar"
        assert wafer.spec.unit_cap_sigma_rel == 0.12
        np.testing.assert_array_equal(wafer.transitions,
                                      pop.transition_matrix())
        # Re-drawing from the propagated spec uses the same backend knobs.
        redrawn = Wafer.draw(wafer.spec, rng=3)
        np.testing.assert_array_equal(redrawn.transitions,
                                      pop.transition_matrix())


class TestFlashLadderBackendValidation:
    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            FlashLadderBackend(6, sigma_code_width_lsb=-0.1)

    def test_negative_sar_sigma_rejected(self):
        with pytest.raises(ValueError):
            SarWeightBackend(6, unit_cap_sigma_rel=-1.0)
