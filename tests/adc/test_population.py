"""Unit tests for Monte-Carlo device populations."""

import warnings

import numpy as np
import pytest

from repro.adc import DevicePopulation, PopulationSpec
from repro.adc.population import correlated_code_widths


class TestCorrelatedCodeWidths:
    def test_shape(self):
        w = correlated_code_widths(10, 62, 0.21, rng=0)
        assert w.shape == (10, 62)

    def test_mean_is_one_lsb(self):
        w = correlated_code_widths(2000, 62, 0.21, rng=1)
        assert w.mean() == pytest.approx(1.0, abs=0.01)

    def test_sigma_matches_request(self):
        w = correlated_code_widths(2000, 62, 0.21, rng=2)
        assert w.std() == pytest.approx(0.21, abs=0.01)

    def test_default_correlation_is_ladder_value(self):
        w = correlated_code_widths(20000, 62, 0.21, rng=3)
        corr = np.corrcoef(w, rowvar=False)
        n = corr.shape[0]
        mean_off_diag = (corr.sum() - n) / (n * (n - 1))
        assert mean_off_diag == pytest.approx(-1.0 / 63, abs=0.01)

    def test_zero_correlation(self):
        w = correlated_code_widths(20000, 30, 0.2, rho=0.0, rng=4)
        corr = np.corrcoef(w, rowvar=False)
        n = corr.shape[0]
        mean_off_diag = (corr.sum() - n) / (n * (n - 1))
        assert abs(mean_off_diag) < 0.01

    def test_positive_correlation(self):
        w = correlated_code_widths(20000, 30, 0.2, rho=0.3, rng=5)
        corr = np.corrcoef(w, rowvar=False)
        n = corr.shape[0]
        mean_off_diag = (corr.sum() - n) / (n * (n - 1))
        assert mean_off_diag == pytest.approx(0.3, abs=0.02)

    def test_sigma_with_negative_correlation(self):
        w = correlated_code_widths(20000, 62, 0.21, rho=-1.0 / 63, rng=6)
        assert w.std() == pytest.approx(0.21, abs=0.01)

    def test_impossible_correlation_rejected(self):
        with pytest.raises(ValueError):
            correlated_code_widths(10, 10, 0.2, rho=-0.5)
        with pytest.raises(ValueError):
            correlated_code_widths(10, 10, 0.2, rho=1.5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            correlated_code_widths(0, 10, 0.2)
        with pytest.raises(ValueError):
            correlated_code_widths(5, 1, 0.2)


class TestPopulationSpec:
    def test_defaults_match_paper(self):
        spec = PopulationSpec()
        assert spec.n_bits == 6
        assert spec.size == 364
        assert spec.sigma_code_width_lsb == pytest.approx(0.21)

    def test_inner_code_count(self):
        assert PopulationSpec(n_bits=6).n_inner_codes == 62

    def test_invalid_architecture(self):
        with pytest.raises(ValueError):
            PopulationSpec(architecture="bogus")

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PopulationSpec(size=0)


class TestDevicePopulation:
    def test_len_and_iteration(self, small_population):
        assert len(small_population) == 40
        devices = list(small_population)
        assert len(devices) == 40

    def test_indexing_and_caching(self, small_population):
        a = small_population[3]
        b = small_population[3]
        assert a is b

    def test_negative_index(self, small_population):
        assert small_population[-1] is small_population[len(small_population) - 1]

    def test_out_of_range_index(self, small_population):
        with pytest.raises(IndexError):
            small_population[100]

    def test_devices_have_requested_resolution(self, small_population):
        assert all(d.n_bits == 6 for d in small_population.devices([0, 1, 2]))

    def test_width_matrix_shape(self, small_population):
        matrix = small_population.code_width_matrix_lsb()
        assert matrix.shape == (40, 62)

    def test_empirical_sigma_near_target(self, gaussian_population):
        assert gaussian_population.empirical_sigma_lsb() == pytest.approx(
            0.21, abs=0.02)

    def test_flash_empirical_sigma_near_target(self, small_population):
        assert small_population.empirical_sigma_lsb() == pytest.approx(
            0.21, abs=0.03)

    def test_empirical_correlation_is_small_negative(self):
        pop = DevicePopulation(PopulationSpec(size=800, seed=3,
                                              architecture="gaussian"))
        rho = pop.empirical_correlation()
        assert -0.05 < rho < 0.01

    def test_reproducibility(self):
        a = DevicePopulation(PopulationSpec(size=10, seed=42))
        b = DevicePopulation(PopulationSpec(size=10, seed=42))
        assert np.allclose(a.code_width_matrix_lsb(),
                           b.code_width_matrix_lsb())

    def test_different_seeds_differ(self):
        a = DevicePopulation(PopulationSpec(size=10, seed=1))
        b = DevicePopulation(PopulationSpec(size=10, seed=2))
        assert not np.allclose(a.code_width_matrix_lsb(),
                               b.code_width_matrix_lsb())

    def test_yield_at_stringent_spec_near_paper_value(self):
        pop = DevicePopulation(PopulationSpec(size=2000, seed=9,
                                              architecture="gaussian"))
        y = pop.yield_fraction(dnl_spec_lsb=0.5)
        # The paper reports roughly 30 % good at the ±0.5 LSB specification.
        assert 0.2 < y < 0.45

    def test_yield_at_actual_spec_is_high(self, gaussian_population):
        assert gaussian_population.yield_fraction(dnl_spec_lsb=1.0) > 0.99

    def test_good_mask_with_inl(self, gaussian_population):
        mask_dnl = gaussian_population.good_mask(1.0)
        mask_both = gaussian_population.good_mask(1.0, inl_spec_lsb=0.1)
        # Adding an INL constraint can only reject more devices.
        assert mask_both.sum() <= mask_dnl.sum()

    def test_dnl_matrix_consistency(self, gaussian_population):
        dnl = gaussian_population.dnl_matrix()
        per_device = gaussian_population.max_dnl_per_device()
        assert np.allclose(np.abs(dnl).max(axis=1), per_device)

    def test_paper_batch_defaults(self):
        pop = DevicePopulation.paper_batch(size=5)
        assert len(pop) == 5
        assert pop.spec.n_bits == 6


class TestLegacySeedDeprecation:
    def test_legacy_seed_warns_exactly_once_per_construction(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            spec = PopulationSpec(size=4, legacy_seed=True)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "legacy_seed" in str(deprecations[0].message)
        assert spec.legacy_seed is True

    def test_gaussian_legacy_seed_warns_too(self):
        with pytest.warns(DeprecationWarning, match="legacy_seed"):
            PopulationSpec(size=4, architecture="gaussian",
                           legacy_seed=True)

    def test_default_path_is_vectorised_and_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            spec = PopulationSpec(size=4)
        assert spec.legacy_seed is False
        assert spec.matrix_backed is True

    def test_deprecated_path_still_works_under_the_warning(self):
        with pytest.warns(DeprecationWarning):
            spec = PopulationSpec(size=3, legacy_seed=True)
        population = DevicePopulation(spec)
        assert population.transition_matrix().shape == (3, 63)
