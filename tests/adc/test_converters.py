"""Unit tests for the ideal, table, flash, SAR and pipeline converter models."""

import numpy as np
import pytest

from repro.adc import (
    FlashADC,
    IdealADC,
    PipelineADC,
    SarADC,
    TableADC,
    TransferFunction,
)
from repro.signals import RampStimulus


class TestIdealADC:
    def test_zero_linearity_errors(self, ideal_adc):
        assert ideal_adc.max_dnl() == pytest.approx(0.0, abs=1e-12)
        assert ideal_adc.max_inl() == pytest.approx(0.0, abs=1e-12)

    def test_lsb_size(self):
        adc = IdealADC(8, full_scale=2.0)
        assert adc.lsb == pytest.approx(2.0 / 256)
        assert adc.n_codes == 256

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IdealADC(0)
        with pytest.raises(ValueError):
            IdealADC(6, full_scale=-1.0)
        with pytest.raises(ValueError):
            IdealADC(6, sample_rate=0.0)

    def test_ramp_produces_every_code(self, ideal_adc):
        ramp = RampStimulus.for_adc(ideal_adc, samples_per_code=8)
        record = ideal_adc.sample(ramp,
                                  n_samples=ramp.n_samples_for_adc(ideal_adc))
        assert set(np.unique(record.codes)) == set(range(64))

    def test_sample_requires_exactly_one_length_argument(self, ideal_adc):
        ramp = RampStimulus.for_adc(ideal_adc, samples_per_code=4)
        with pytest.raises(ValueError):
            ideal_adc.sample(ramp)
        with pytest.raises(ValueError):
            ideal_adc.sample(ramp, duration=1e-3, n_samples=10)

    def test_sample_accepts_plain_callable(self, ideal_adc):
        record = ideal_adc.sample(lambda t: np.full_like(t, 0.5),
                                  n_samples=16)
        assert np.all(record.codes == 32)

    def test_conversion_record_bits(self, ideal_adc):
        record = ideal_adc.sample(lambda t: np.full_like(t, 0.5 + 0.5 / 64),
                                  n_samples=4)
        # Code 32 has LSB 0 and bit 5 set.
        assert np.all(record.lsb_waveform == 0)
        assert np.all(record.bit(5) == 1)
        assert len(record) == 4

    def test_transition_noise_changes_codes(self, ideal_adc):
        rng = np.random.default_rng(0)
        # A voltage exactly on a transition with noise toggles between codes.
        v = np.full(2000, ideal_adc.lsb * 10)
        codes = ideal_adc.convert(v, rng=rng, transition_noise_lsb=0.3)
        assert len(np.unique(codes)) > 1


class TestTableADC:
    def test_wraps_supplied_transfer(self):
        dnl = np.zeros(62)
        dnl[17] = 0.5
        tf = TransferFunction.from_dnl(6, dnl)
        adc = TableADC(tf, name="test device")
        # End-point normalisation spreads the extra width slightly, so the
        # reported DNL is marginally below the injected 0.5 LSB.
        assert adc.max_dnl() == pytest.approx(0.5, abs=0.02)
        assert adc.name == "test device"

    def test_with_transfer_keeps_rate(self):
        tf = TransferFunction.ideal(6)
        adc = TableADC(tf, sample_rate=2e6)
        replaced = adc.with_transfer(TransferFunction.ideal(6).scaled(1.01))
        assert replaced.sample_rate == 2e6


class TestFlashADC:
    def test_zero_mismatch_is_ideal(self):
        adc = FlashADC(6)
        assert adc.max_dnl() == pytest.approx(0.0, abs=1e-9)

    def test_from_sigma_hits_target_population_sigma(self):
        widths = np.concatenate([
            FlashADC.from_sigma(6, 0.21, seed=s).transfer_function()
            .code_widths_lsb for s in range(40)])
        assert widths.std() == pytest.approx(0.21, abs=0.02)
        assert widths.mean() == pytest.approx(1.0, abs=0.01)

    def test_from_sigma_zero_gives_ideal(self):
        adc = FlashADC.from_sigma(6, 0.0, seed=3)
        assert adc.max_dnl() == pytest.approx(0.0, abs=1e-9)

    def test_seed_reproducibility(self):
        a = FlashADC.from_sigma(6, 0.21, seed=42)
        b = FlashADC.from_sigma(6, 0.21, seed=42)
        assert np.array_equal(a.transfer_function().transitions,
                              b.transfer_function().transitions)

    def test_different_seeds_differ(self):
        a = FlashADC.from_sigma(6, 0.21, seed=1)
        b = FlashADC.from_sigma(6, 0.21, seed=2)
        assert not np.array_equal(a.transfer_function().transitions,
                                  b.transfer_function().transitions)

    def test_seed_and_rng_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            FlashADC.from_sigma(6, 0.21, seed=1, rng=np.random.default_rng(2))

    def test_comparator_fraction_bounds(self):
        with pytest.raises(ValueError):
            FlashADC.from_sigma(6, 0.21, comparator_fraction=1.5)

    def test_comparator_only_variance(self):
        widths = np.concatenate([
            FlashADC.from_sigma(6, 0.21, comparator_fraction=1.0, seed=s)
            .transfer_function().code_widths_lsb for s in range(40)])
        assert widths.std() == pytest.approx(0.21, abs=0.03)

    def test_expected_sigma_matches_request(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=0)
        assert adc.expected_code_width_sigma_lsb() == pytest.approx(0.21,
                                                                    rel=0.02)

    def test_expected_correlation_is_ladder_value(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=0)
        assert adc.expected_width_correlation() == pytest.approx(-1.0 / 64,
                                                                 rel=0.05)

    def test_ladder_taps_are_increasing(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=5)
        assert np.all(np.diff(adc.ladder_taps()) > 0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            FlashADC(6, resistor_sigma_rel=-0.1)


class TestSarADC:
    def test_zero_mismatch_is_nearly_ideal(self):
        adc = SarADC(8)
        assert adc.max_dnl() < 0.05

    def test_mismatch_creates_dnl_at_major_transition(self):
        adc = SarADC(8, unit_cap_sigma_rel=0.05, rng=3)
        dnl = adc.dnl()
        mid = adc.n_codes // 2 - 1  # inner-code index of the MSB transition
        # The largest DNL should be at or near a major carry transition.
        worst = int(np.argmax(np.abs(dnl)))
        major_codes = {mid - 1, mid, mid + 1,
                       adc.n_codes // 4 - 1, adc.n_codes // 4,
                       3 * adc.n_codes // 4 - 1, 3 * adc.n_codes // 4}
        assert worst in major_codes or np.abs(dnl[worst]) < 0.2

    def test_comparator_offset_shifts_curve(self):
        clean = SarADC(6, rng=1)
        shifted = SarADC(6, comparator_offset_lsb=2.0, rng=1)
        delta = (shifted.transfer_function().transitions
                 - clean.transfer_function().transitions)
        assert np.allclose(delta, 2.0 * clean.lsb)

    def test_reproducibility(self):
        a = SarADC(8, unit_cap_sigma_rel=0.02, rng=9)
        b = SarADC(8, unit_cap_sigma_rel=0.02, rng=9)
        assert np.array_equal(a.weights, b.weights)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            SarADC(8, unit_cap_sigma_rel=-0.1)


class TestPipelineADC:
    def test_minimum_resolution(self):
        with pytest.raises(ValueError):
            PipelineADC(2)

    def test_ideal_pipeline_is_reasonably_linear(self):
        adc = PipelineADC(8)
        # The behavioural extraction quantises at 1/64 LSB, allow some slack.
        assert adc.max_dnl() < 0.15

    def test_gain_errors_increase_dnl(self):
        clean = PipelineADC(8, rng=2)
        dirty = PipelineADC(8, gain_error_sigma=0.02, rng=2)
        assert dirty.max_dnl() > clean.max_dnl()

    def test_transfer_is_monotonic(self):
        adc = PipelineADC(8, gain_error_sigma=0.01, rng=4)
        assert adc.transfer_function().is_monotonic()

    def test_reproducibility(self):
        a = PipelineADC(8, gain_error_sigma=0.01, rng=6)
        b = PipelineADC(8, gain_error_sigma=0.01, rng=6)
        assert np.array_equal(a.stage_gains, b.stage_gains)

    def test_codes_cover_range_on_ramp(self):
        adc = PipelineADC(6)
        ramp = RampStimulus.for_adc(adc, samples_per_code=8)
        record = adc.sample(ramp, n_samples=ramp.n_samples_for_adc(adc))
        assert record.codes.min() == 0
        assert record.codes.max() == adc.n_codes - 1
