"""Unit tests for the static transfer-function representation."""

import numpy as np
import pytest

from repro.adc.transfer import (
    TransferFunction,
    code_widths_from_transitions,
    ideal_transitions,
    transitions_from_code_widths,
)


class TestIdealTransitions:
    def test_count(self):
        assert ideal_transitions(6).size == 63

    def test_spacing_is_one_lsb(self):
        t = ideal_transitions(4, full_scale=1.0)
        assert np.allclose(np.diff(t), 1.0 / 16)

    def test_first_transition_at_one_lsb(self):
        t = ideal_transitions(3, full_scale=8.0)
        assert t[0] == pytest.approx(1.0)

    def test_offset_shifts_all(self):
        t0 = ideal_transitions(4)
        t1 = ideal_transitions(4, offset=0.25)
        assert np.allclose(t1 - t0, 0.25)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            ideal_transitions(0)

    def test_rejects_negative_full_scale(self):
        with pytest.raises(ValueError):
            ideal_transitions(4, full_scale=-1.0)


class TestWidthTransitionRoundTrip:
    def test_widths_from_transitions(self):
        t = np.array([0.1, 0.3, 0.6, 1.0])
        assert np.allclose(code_widths_from_transitions(t), [0.2, 0.3, 0.4])

    def test_round_trip(self):
        widths = np.array([0.2, 0.3, 0.4])
        t = transitions_from_code_widths(widths, first_transition=0.1)
        assert np.allclose(code_widths_from_transitions(t), widths)
        assert t[0] == pytest.approx(0.1)

    def test_rejects_too_few_transitions(self):
        with pytest.raises(ValueError):
            code_widths_from_transitions(np.array([0.5]))


class TestTransferFunctionConstruction:
    def test_ideal_has_zero_dnl_inl(self):
        tf = TransferFunction.ideal(6)
        assert tf.max_dnl() == pytest.approx(0.0, abs=1e-12)
        assert tf.max_inl() == pytest.approx(0.0, abs=1e-12)

    def test_ideal_has_zero_offset_and_gain_error(self):
        tf = TransferFunction.ideal(6)
        assert tf.offset_error_lsb() == pytest.approx(0.0, abs=1e-9)
        assert tf.gain_error_lsb() == pytest.approx(0.0, abs=1e-9)

    def test_wrong_transition_count_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction(n_bits=4, transitions=np.arange(10))

    def test_from_code_widths_round_trip(self):
        widths_lsb = np.array([1.1, 0.9, 1.0, 1.2, 0.8, 1.0])
        tf = TransferFunction.from_code_widths(3, widths_lsb / 8.0,
                                               full_scale=1.0)
        assert np.allclose(tf.code_widths_lsb, widths_lsb)

    def test_from_code_widths_wrong_count(self):
        with pytest.raises(ValueError):
            TransferFunction.from_code_widths(3, np.ones(5) / 8.0)

    def test_from_dnl_round_trip(self):
        dnl = np.array([0.1, -0.1, 0.0, 0.2, -0.2, 0.0])
        tf = TransferFunction.from_dnl(3, dnl)
        assert np.allclose(tf.dnl(endpoint=False), dnl)

    def test_lsb_and_code_count(self):
        tf = TransferFunction.ideal(5, full_scale=2.0)
        assert tf.n_codes == 32
        assert tf.lsb == pytest.approx(2.0 / 32)


class TestConversion:
    def test_ideal_staircase(self):
        tf = TransferFunction.ideal(4, full_scale=1.0)
        lsb = 1.0 / 16
        voltages = np.array([0.0, 0.5 * lsb, 1.5 * lsb, 15.5 * lsb, 2.0])
        codes = tf.convert(voltages)
        assert list(codes) == [0, 0, 1, 15, 15]

    def test_mid_code_voltage_maps_to_that_code(self):
        tf = TransferFunction.ideal(6)
        for code in (1, 17, 40, 62):
            v = (code + 0.5) * tf.lsb
            assert tf.convert(np.array([v]))[0] == code

    def test_below_range_gives_code_zero(self):
        tf = TransferFunction.ideal(6)
        assert tf.convert(np.array([-1.0]))[0] == 0

    def test_above_range_gives_top_code(self):
        tf = TransferFunction.ideal(6)
        assert tf.convert(np.array([2.0]))[0] == 63

    def test_callable_matches_convert(self):
        tf = TransferFunction.ideal(4)
        v = np.linspace(-0.1, 1.1, 50)
        assert np.array_equal(tf(v), tf.convert(v))

    def test_non_monotonic_curve_uses_thermometer_count(self):
        tf = TransferFunction.ideal(3)
        transitions = tf.transitions.copy()
        # Swap two transitions to create a non-monotonic curve.
        transitions[2], transitions[3] = transitions[3], transitions[2]
        faulty = tf.with_transitions(transitions)
        assert not faulty.is_monotonic()
        codes = faulty.convert(np.linspace(0, 1, 100))
        # Codes stay within range and reach the top.
        assert codes.min() >= 0
        assert codes.max() == 7


class TestFiguresOfMerit:
    def test_dnl_endpoint_removes_gain_error(self):
        tf = TransferFunction.ideal(6).scaled(1.05)
        # With the end-point convention a pure gain error gives zero DNL.
        assert tf.max_dnl(endpoint=True) == pytest.approx(0.0, abs=1e-9)
        assert tf.max_dnl(endpoint=False) == pytest.approx(0.05, abs=1e-9)

    def test_single_wide_code_dnl(self):
        widths = np.ones(62)
        widths[30] = 1.5
        tf = TransferFunction.from_code_widths(6, widths / 64)
        dnl = tf.dnl(endpoint=False)
        assert dnl[30] == pytest.approx(0.5, abs=1e-9)

    def test_inl_is_cumulative_dnl(self):
        widths = np.ones(14)
        widths[3] = 1.2
        widths[7] = 0.8
        tf = TransferFunction.from_code_widths(4, widths / 16)
        assert np.allclose(tf.inl(), np.cumsum(tf.dnl()))

    def test_offset_error(self):
        tf = TransferFunction.ideal(6).shifted(2.0 / 64)
        assert tf.offset_error_lsb() == pytest.approx(2.0, abs=1e-9)

    def test_gain_error(self):
        tf = TransferFunction.ideal(6).scaled(1.1)
        expected = 62 * 0.1
        assert tf.gain_error_lsb() == pytest.approx(expected, rel=1e-9)

    def test_missing_code_detection(self):
        widths = np.ones(62)
        widths[10] = 0.0
        tf = TransferFunction.from_code_widths(6, widths / 64)
        assert tf.has_missing_codes()
        assert list(tf.missing_codes()) == [11]

    def test_no_missing_codes_on_ideal(self):
        assert not TransferFunction.ideal(6).has_missing_codes()

    def test_meets_spec(self):
        dnl = np.zeros(62)
        dnl[10] = 0.3
        dnl[40] = -0.3
        tf = TransferFunction.from_dnl(6, dnl)
        assert tf.meets_spec(dnl_spec_lsb=0.5, inl_spec_lsb=100.0)
        assert not tf.meets_spec(dnl_spec_lsb=0.2, inl_spec_lsb=100.0)


class TestManipulation:
    def test_shift_then_widths_unchanged(self):
        tf = TransferFunction.ideal(5)
        shifted = tf.shifted(0.01)
        assert np.allclose(shifted.code_widths, tf.code_widths)

    def test_scale_requires_positive_gain(self):
        with pytest.raises(ValueError):
            TransferFunction.ideal(4).scaled(0.0)

    def test_copy_is_independent(self):
        tf = TransferFunction.ideal(4)
        clone = tf.copy()
        clone.transitions[0] += 1.0
        assert tf.transitions[0] != clone.transitions[0]

    def test_equality(self):
        assert TransferFunction.ideal(4) == TransferFunction.ideal(4)
        assert TransferFunction.ideal(4) != TransferFunction.ideal(5)

    def test_transition_accessor_bounds(self):
        tf = TransferFunction.ideal(4)
        assert tf.transition(1) == pytest.approx(tf.transitions[0])
        with pytest.raises(ValueError):
            tf.transition(0)
        with pytest.raises(ValueError):
            tf.transition(16)
