"""Wafer-level SPC: charts, the mid-wafer abort, and its determinism.

The abort path under test: the :class:`SpcMonitor` observes shard
results streaming out of :class:`ShardExecutor` in absolute shard
order, raises the typed :class:`ExcursionAbort` when a chart trips,
the executor cancels the remaining shards and hands back the partial
merged prefix — and because the monitor is fed a contiguous prefix
regardless of worker scheduling, the abort shard (and every report
byte) is identical for every ``(workers, chunk_size)`` geometry.
"""

import numpy as np
import pytest

from repro.campaign import Scenario
from repro.flows.spc import Cusum, PChart, SpcMonitor, monitor_for_model
from repro.production import ExecutionPlan, ScreeningLine
from repro.production.execution import ExcursionAbort
from repro.production.pool import close_default_pool


@pytest.fixture(autouse=True)
def _close_pool():
    yield
    close_default_pool()


class _ShardResult:
    def __init__(self, passed, dnl=None):
        self.passed = np.asarray(passed)
        if dnl is not None:
            self.measured_max_dnl_lsb = np.asarray(dnl, dtype=float)


class TestCharts:
    def test_p_chart_limit_scales_with_sample_size(self):
        wide = PChart.for_sample_size(0.1, 16)
        tight = PChart.for_sample_size(0.1, 4096)
        assert tight.ucl < wide.ucl
        assert not tight.observe(0.1)
        assert tight.observe(1.0)

    def test_p_chart_validates(self):
        with pytest.raises(ValueError):
            PChart(center=1.5, ucl=2.0)
        with pytest.raises(ValueError):
            PChart(center=0.5, ucl=0.1)
        with pytest.raises(ValueError):
            PChart.for_sample_size(0.1, 0)

    def test_cusum_self_calibrates_then_accumulates(self):
        chart = Cusum(slack=0.05, threshold=0.5)
        assert not chart.observe(1.0)      # first finite value = target
        assert chart.target == 1.0
        assert not chart.observe(1.0)      # on target: no accumulation
        signalled = False
        for _ in range(10):
            signalled = signalled or chart.observe(1.2)
        assert signalled                   # persistent +0.15/shard drift

    def test_cusum_ignores_non_finite(self):
        chart = Cusum()
        assert not chart.observe(np.nan)
        assert chart.target is None


class TestMonitor:
    def test_trips_p_chart_on_reject_spike(self):
        monitor = SpcMonitor(p_chart=PChart(center=0.01, ucl=0.1),
                             wafer_id="W1")
        monitor.observe(0, _ShardResult(np.ones(32, dtype=bool)))
        with pytest.raises(ExcursionAbort) as err:
            monitor.observe(1, _ShardResult(np.zeros(32, dtype=bool)))
        assert err.value.statistic == "p_chart"
        assert err.value.shard == 1
        assert err.value.wafer_id == "W1"

    def test_trips_cusum_on_mean_drift(self):
        monitor = SpcMonitor(cusum=Cusum(slack=0.0, threshold=0.2))
        ones = np.ones(8, dtype=bool)
        monitor.observe(0, _ShardResult(ones, dnl=np.full(8, 0.3)))
        with pytest.raises(ExcursionAbort) as err:
            monitor.observe(1, _ShardResult(ones, dnl=np.full(8, 0.6)))
        assert err.value.statistic == "cusum"

    def test_skips_results_without_verdicts(self):
        monitor = SpcMonitor(p_chart=PChart(center=0.0, ucl=0.0))
        monitor.observe(0, object())
        monitor.observe(1, _ShardResult(np.zeros((2, 2), dtype=bool)))
        assert monitor.shards_seen == 0

    def test_model_monitor_passes_clean_baseline(self):
        scenario = Scenario(n_bits=8, sigma_code_width_lsb=0.21,
                            n_devices=256, seed=3, flow="sprt")
        from repro.campaign import sequential_policy
        _, per_code = sequential_policy(scenario)
        spec = scenario.wafer_spec()
        monitor = monitor_for_model(per_code, spec.n_inner_codes, 64)
        wafer = scenario.draw_wafer()
        passed = wafer.good_mask(scenario.dnl_spec_lsb, None)
        for shard, start in enumerate(range(0, 256, 64)):
            monitor.observe(shard, _ShardResult(passed[start:start + 64]))
        assert monitor.shards_seen == 4


def _burst_scenario(**overrides):
    base = dict(n_bits=8, sigma_code_width_lsb=0.21, n_devices=512,
                n_wafers=2, seed=9, flow="sprt", excursion="burst")
    base.update(overrides)
    return Scenario(**base)


class TestLineAbort:
    def test_burst_excursion_aborts_and_rejects_tail(self):
        scenario = _burst_scenario()
        report = ScreeningLine.from_scenario(scenario).screen_lot(
            scenario.draw_lot(),
            plan=ExecutionPlan(workers=1, shard_devices=64))
        assert report.excursions > 0
        assert report.n_aborted > 0
        station = report.stations[0]
        assert station.accounted == report.n_devices - report.n_aborted
        assert station.accounted < station.n_in

    def test_abort_is_geometry_invariant(self):
        scenario = _burst_scenario()
        lot = scenario.draw_lot()

        def digest(workers, chunk):
            line = ScreeningLine.from_scenario(scenario)
            report = line.screen_lot(
                lot, plan=ExecutionPlan(workers=workers, chunk_size=chunk,
                                        shard_devices=64))
            return (report.n_devices, report.n_accepted, report.n_aborted,
                    report.excursions, report.saved_samples,
                    report.tester_seconds, report.type_i, report.type_ii)

        reference = digest(1, None)
        for workers, chunk in [(2, None), (2, 23), (4, None)]:
            assert digest(workers, chunk) == reference, (workers, chunk)

    def test_partial_prefix_carries_real_verdicts(self):
        scenario = _burst_scenario(n_wafers=1, n_devices=1024)
        lot = scenario.draw_lot()
        report = ScreeningLine.from_scenario(scenario).screen_lot(
            lot, plan=ExecutionPlan(workers=1, shard_devices=64))
        done = report.n_devices - report.n_aborted
        # The tested prefix dispositions normally, so some devices of the
        # (mostly good) population must have shipped before the abort.
        assert 0 < done < report.n_devices
        assert report.n_accepted <= done

    def test_clean_lot_never_aborts(self):
        scenario = _burst_scenario(excursion=None)
        report = ScreeningLine.from_scenario(scenario).screen_lot(
            scenario.draw_lot(),
            plan=ExecutionPlan(workers=1, shard_devices=64))
        assert report.excursions == 0
        assert report.n_aborted == 0
