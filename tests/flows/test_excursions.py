"""Excursion generators: determinism, identity edges, seed namespacing.

Excursions are applied at draw time in the parent process, so their
whole determinism story is the generator's: the same ``(name, seed,
wafer_index)`` must produce byte-identical perturbations, the clean
cases must return the *same object* (no accidental copies into the
shared-memory path), and the perturbation streams must not alias the
wafer-draw streams of the same scenario seed.
"""

import numpy as np
import pytest

from repro.campaign import Scenario
from repro.flows.excursions import (
    EXCURSIONS,
    apply_excursion,
    excursion_bounds,
    excursion_rng,
)


@pytest.fixture(scope="module")
def clean():
    """One drawn transition matrix and its LSB size."""
    scenario = Scenario(n_devices=600, seed=21)
    wafer = scenario.draw_wafer()
    return wafer.transitions, wafer.spec.lsb


class TestDeterminism:
    @pytest.mark.parametrize("name", EXCURSIONS)
    def test_same_inputs_byte_identical(self, name, clean):
        transitions, lsb = clean
        first = apply_excursion(name, transitions, lsb, 1, seed=21)
        second = apply_excursion(name, transitions, lsb, 1, seed=21)
        np.testing.assert_array_equal(first, second)
        assert first.tobytes() == second.tobytes()

    @pytest.mark.parametrize("name", EXCURSIONS)
    def test_never_mutates_input(self, name, clean):
        transitions, lsb = clean
        before = transitions.copy()
        apply_excursion(name, transitions, lsb, 1, seed=21)
        np.testing.assert_array_equal(transitions, before)

    @pytest.mark.parametrize("name", EXCURSIONS)
    def test_wafer_indices_perturb_independently(self, name, clean):
        transitions, lsb = clean
        one = apply_excursion(name, transitions, lsb, 1, seed=21)
        two = apply_excursion(name, transitions, lsb, 2, seed=21)
        assert one.tobytes() != two.tobytes()


class TestIdentityEdges:
    def test_none_is_the_same_object(self, clean):
        transitions, lsb = clean
        assert apply_excursion(None, transitions, lsb, 0, 21) \
            is transitions
        assert apply_excursion("none", transitions, lsb, 0, 21) \
            is transitions

    def test_drift_wafer_zero_is_the_same_object(self, clean):
        transitions, lsb = clean
        assert apply_excursion("drift", transitions, lsb, 0, 21) \
            is transitions

    def test_unknown_name_raises(self, clean):
        transitions, lsb = clean
        with pytest.raises(ValueError, match="unknown excursion"):
            apply_excursion("meteor", transitions, lsb, 0, 21)


class TestSeedNamespace:
    def test_disjoint_from_wafer_draw_streams(self):
        # The excursion stream of (seed, wafer 0) must not reproduce any
        # wafer-draw child stream of the same seed — drawing a wafer and
        # then excursing it must not reuse entropy.
        draw = np.random.default_rng(
            np.random.SeedSequence(21).spawn(4)[0]).random(64)
        excursion = excursion_rng(21, 0).random(64)
        assert not np.array_equal(draw, excursion)

    def test_pure_function_of_seed_and_index(self):
        a = excursion_rng(5, 3).random(16)
        b = excursion_rng(5, 3).random(16)
        np.testing.assert_array_equal(a, b)


class TestScenarioIntegration:
    def test_excursed_lot_draw_is_deterministic(self):
        scenario = Scenario(n_devices=300, n_wafers=3, seed=8,
                            excursion="spatial")
        first = scenario.draw_lot()
        second = scenario.draw_lot()
        for wafer_a, wafer_b in zip(first, second):
            assert wafer_a.transitions.tobytes() \
                == wafer_b.transitions.tobytes()

    def test_excursed_lot_differs_from_clean(self):
        clean = Scenario(n_devices=300, n_wafers=2, seed=8)
        excursed = clean.derive(excursion="burst", seed=8)
        lots = (clean.draw_lot(), excursed.draw_lot())
        assert lots[0].wafers[0].transitions.tobytes() \
            != lots[1].wafers[0].transitions.tobytes()

    def test_drift_lot_keeps_wafer_zero_clean(self):
        clean = Scenario(n_devices=300, n_wafers=2, seed=8)
        drifted = clean.derive(excursion="drift", seed=8)
        clean_lot, drift_lot = clean.draw_lot(), drifted.draw_lot()
        assert clean_lot.wafers[0].transitions.tobytes() \
            == drift_lot.wafers[0].transitions.tobytes()
        assert clean_lot.wafers[1].transitions.tobytes() \
            != drift_lot.wafers[1].transitions.tobytes()

    def test_bounds_classify_every_registered_name(self):
        assert excursion_bounds(None) == (False, "no excursion configured")
        for name in EXCURSIONS:
            should_trip, reason = excursion_bounds(name)
            assert should_trip
            assert reason
