"""Sequential (SPRT) station: degeneration, savings and error bounds.

The three contracts of the tentpole's sequential flow:

* the degenerate policy (both Wald boundaries at infinity) reproduces
  the fixed-count decision **bit-exactly** with zero saved samples;
* on the paper's baseline scenario the SPRT saves tester time (>0
  saved tester-seconds through the TesterModel economics) while its
  measured escape/yield-loss stay within the binomial model's
  predicted bounds; and
* the observation stream (:func:`code_pass_matrix`) agrees with the
  engine's noise-free fixed verdict, so the station decides on the
  same physics the full BIST measured.
"""

import numpy as np
import pytest

from repro.analysis.binomial import (
    BinomialDeviceModel,
    sequential_escape_bound,
    wald_error_bounds,
)
from repro.campaign import Scenario, sequential_policy
from repro.campaign.factory import make_engine
from repro.flows.sequential import (
    SequentialPolicy,
    code_pass_matrix,
    sprt_decide,
)
from repro.production import ExecutionPlan, ScreeningLine

#: The baseline process/measurement point every line-level test screens:
#: the paper's process sigma (0.21 LSB) under the repo's default spec
#: (DNL 1.0 LSB, 7-bit counter) — a high-yield production regime, so the
#: analytic escape bound is small enough to be worth asserting against.
BASELINE = dict(n_bits=8, sigma_code_width_lsb=0.21,
                n_devices=400, n_wafers=2, seed=11)


@pytest.fixture(scope="module")
def baseline_reports():
    """(fixed report, sprt report, policy, per_code) on the same lot."""
    fixed = Scenario(label="fixed", flow="fixed", **BASELINE)
    sprt = Scenario(label="sprt", flow="sprt", **BASELINE)
    lot = fixed.draw_lot()
    plan = ExecutionPlan(workers=1, shard_devices=64)
    report_fixed = ScreeningLine.from_scenario(fixed).screen_lot(
        lot, plan=plan)
    report_sprt = ScreeningLine.from_scenario(sprt).screen_lot(
        lot, plan=plan)
    policy, per_code = sequential_policy(sprt)
    return report_fixed, report_sprt, policy, per_code


class TestPolicy:
    def test_paper_policy_orders_hypotheses(self):
        policy = sequential_policy(Scenario(**BASELINE))[0]
        assert policy.p1 < policy.p0
        assert policy.llr_pass < 0.0 < policy.llr_fail
        assert policy.log_accept < 0.0 < policy.log_reject
        assert 1 <= policy.min_accept_codes <= 16

    def test_fixed_policy_never_stops(self):
        policy = SequentialPolicy.fixed()
        assert policy.llr_pass == 0.0 == policy.llr_fail
        assert policy.min_accept_codes == np.inf

    def test_rejects_inverted_probabilities(self):
        with pytest.raises(ValueError):
            SequentialPolicy(p0=0.2, p1=0.9)

    def test_wald_bounds_are_mild_inflations(self):
        alpha_bound, beta_bound = wald_error_bounds(1e-3, 1e-3)
        assert 1e-3 < alpha_bound < 1.1e-3
        assert 1e-3 < beta_bound < 1.1e-3


class TestSprtDecide:
    def test_degenerate_policy_is_bit_exact_fixed(self):
        rng = np.random.default_rng(3)
        code_ok = rng.random((64, 30)) > 0.1
        fixed = rng.random(64) > 0.5
        decision = sprt_decide(code_ok, SequentialPolicy.fixed(),
                               fixed_decision=fixed)
        np.testing.assert_array_equal(decision.accepted, fixed)
        assert decision.saved_codes == 0
        assert decision.n_stopped_early == 0
        assert (decision.stop_codes == 30).all()

    def test_all_pass_device_accepts_at_min_accept_codes(self):
        policy = sequential_policy(Scenario(**BASELINE))[0]
        decision = sprt_decide(np.ones((1, 100), dtype=bool), policy)
        assert bool(decision.accepted[0])
        assert decision.stop_codes[0] == policy.min_accept_codes

    def test_early_fail_rejects_immediately(self):
        policy = sequential_policy(Scenario(**BASELINE))[0]
        code_ok = np.ones((1, 100), dtype=bool)
        code_ok[0, 0] = False
        decision = sprt_decide(code_ok, policy)
        assert not bool(decision.accepted[0])
        assert decision.stop_codes[0] == 1

    def test_quartiles_partition_the_batch(self):
        policy = sequential_policy(Scenario(**BASELINE))[0]
        rng = np.random.default_rng(5)
        code_ok = rng.random((200, 61)) > 0.02
        decision = sprt_decide(code_ok, policy)
        assert decision.stop_quartiles().sum() == 200
        assert decision.observed_codes + decision.saved_codes \
            == decision.total_codes

    def test_empty_batch(self):
        decision = sprt_decide(np.empty((0, 10), dtype=bool),
                               SequentialPolicy.fixed())
        assert decision.n_devices == 0
        assert decision.stop_quartiles().sum() == 0

    def test_rejects_non_matrix_input(self):
        with pytest.raises(ValueError):
            sprt_decide(np.ones(5, dtype=bool), SequentialPolicy.fixed())


class TestObservationStream:
    def test_matches_engine_fixed_verdict_noise_free(self):
        scenario = Scenario(**BASELINE)
        wafer = scenario.draw_wafer()
        engine = make_engine(scenario)
        result = engine.run_wafer(wafer)
        spec = wafer.spec
        ctx = engine.prepare(wafer.transitions, spec.full_scale,
                             spec.sample_rate)
        code_ok = code_pass_matrix(wafer.transitions, ctx.ramp_voltages,
                                   engine.limits,
                                   saturate=scenario.bist_config()
                                   .counter_saturate)
        np.testing.assert_array_equal(code_ok.all(axis=1), result.passed)

    def test_folded_transitions_fail_every_code(self):
        scenario = Scenario(**BASELINE)
        wafer = scenario.draw_wafer()
        engine = make_engine(scenario)
        spec = wafer.spec
        ctx = engine.prepare(wafer.transitions, spec.full_scale,
                             spec.sample_rate)
        broken = wafer.transitions.copy()
        broken[0] = broken[0, ::-1]  # fold the first device's levels
        code_ok = code_pass_matrix(broken, ctx.ramp_voltages,
                                   engine.limits)
        assert not code_ok[0].any()


class TestLineEconomics:
    def test_sprt_saves_tester_seconds_on_baseline(self, baseline_reports):
        report_fixed, report_sprt, _, _ = baseline_reports
        assert report_sprt.flow == "sprt"
        assert report_sprt.saved_samples > 0
        assert report_sprt.saved_tester_seconds > 0.0
        assert report_sprt.tester_seconds < report_fixed.tester_seconds
        assert report_sprt.saved_tester_seconds == pytest.approx(
            report_fixed.tester_seconds - report_sprt.tester_seconds)

    def test_fixed_flow_report_is_unchanged(self, baseline_reports):
        report_fixed, _, _, _ = baseline_reports
        assert report_fixed.flow == "fixed"
        assert report_fixed.saved_samples == 0
        assert report_fixed.saved_tester_seconds == 0.0
        assert report_fixed.n_aborted == 0

    def test_errors_within_binomial_model_bounds(self, baseline_reports):
        report_fixed, report_sprt, policy, per_code = baseline_reports
        n_codes = Scenario(**BASELINE).wafer_spec().n_inner_codes
        escape_bound = sequential_escape_bound(per_code, n_codes,
                                               policy.min_accept_codes)
        assert report_sprt.type_ii <= escape_bound
        # Noise-free, the SPRT rejects at the first failing observation,
        # so it can only reject a subset of what the fixed flow rejects —
        # plus at most Wald's bound on the design alpha.
        alpha_bound, _ = wald_error_bounds(policy.alpha, policy.beta)
        assert report_sprt.type_i <= report_fixed.type_i + alpha_bound

    def test_sequential_station_accounts_economics(self, baseline_reports):
        _, report_sprt, _, _ = baseline_reports
        station = report_sprt.stations[0]
        assert station.name == "sequential"
        assert station.accounted == report_sprt.n_devices
        assert station.tester_seconds == pytest.approx(
            report_sprt.tester_seconds)
        assert np.isfinite(station.devices_per_hour)

    def test_escape_bound_degenerates_to_fixed_model(self):
        per_code = sequential_policy(Scenario(**BASELINE))[1]
        n_codes = 254
        fixed_type_ii = BinomialDeviceModel(per_code, n_codes).device() \
            .type_ii
        assert sequential_escape_bound(per_code, n_codes, np.inf) \
            == pytest.approx(fixed_type_ii)
