"""Smoke tests: every shipped example must run end to end.

The examples double as documentation; if one stops running, the README's
promises are broken.  Each test executes an example as a subprocess (so a
crashed example cannot corrupt the test process) and checks a few key phrases
in its output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: example file -> phrases that must appear in its stdout
EXPECTED_OUTPUT = {
    "quickstart.py": ["BIST verdict", "Conventional histogram test"],
    "lsb_linearity.py": ["LSB transitions seen", "DNL decision"],
    "error_tradeoff.py": ["Figure 7", "counter bits"],
    "partial_bist_partition.py": ["q_min", "full BIST"],
    "production_screening.py": ["Screening", "tester"],
    "multi_adc_chip.py": ["result register", "Partial BIST"],
    "full_static_characterisation.py": ["offset [LSB]", "verdict"],
    "dynamic_test.py": ["THD [dB]", "ENOB"],
    "wafer_screening.py": ["Screening results per lot", "Quality bins",
                           "Station totals", "devices/s"],
    "partial_lot_screening.py": ["partial BIST", "chip yield",
                                 "Screening results per lot",
                                 "verified on-chip"],
    "bist_vs_conventional.py": ["Screening methods compared",
                                "Tester data volume per device",
                                "in favour of the BIST"],
    "campaign_grid.py": ["scenario grid", "Campaign results per scenario",
                         "cheapest screen of the grid"],
}


def _run_example(name: str) -> str:
    script = EXAMPLES_DIR / name
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=420)
    assert completed.returncode == 0, (
        f"{name} exited with {completed.returncode}:\n{completed.stderr}")
    return completed.stdout


def test_every_example_is_covered_here():
    """A new example must be added to EXPECTED_OUTPUT (and thus smoke-run)."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs(name):
    output = _run_example(name)
    for phrase in EXPECTED_OUTPUT[name]:
        assert phrase in output, f"{name}: expected {phrase!r} in the output"
