"""Unit tests for the Monte-Carlo error-probability estimators."""

import numpy as np
import pytest

from repro.analysis import (
    ErrorModel,
    estimate_error_probabilities,
    simulate_counts,
)
from repro.analysis.error_model import delta_s_for_counter


class TestSimulateCounts:
    def test_counts_near_width_over_step(self):
        widths = np.full((1000, 10), 1.0)
        counts = simulate_counts(widths, delta_s_lsb=0.1, rng=0)
        # A 1-LSB code at ds = 0.1 holds 10 samples give or take one.
        assert counts.min() >= 9
        assert counts.max() <= 11
        assert counts.mean() == pytest.approx(10.0, abs=0.2)

    def test_independent_phase_model(self):
        widths = np.full((2000, 5), 0.55)
        counts = simulate_counts(widths, 0.1, phase_model="independent",
                                 rng=1)
        # Expected count 5.5: half the time 5, half the time 6.
        assert counts.mean() == pytest.approx(5.5, abs=0.1)

    def test_sequential_total_matches_ramp_length(self):
        rng = np.random.default_rng(2)
        widths = rng.uniform(0.8, 1.2, size=(200, 62))
        ds = 0.05
        counts = simulate_counts(widths, ds, phase_model="sequential", rng=3)
        # The summed counts must equal the number of sample points falling
        # within the full span, so they can differ from span/ds by at most 1.
        span = widths.sum(axis=1)
        assert np.all(np.abs(counts.sum(axis=1) - span / ds) <= 1.0 + 1e-9)

    def test_zero_width_gives_zero_or_one_count(self):
        widths = np.zeros((500, 3))
        counts = simulate_counts(widths, 0.1, rng=4)
        assert counts.max() <= 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            simulate_counts(np.ones((2, 3)), delta_s_lsb=0.0)
        with pytest.raises(ValueError):
            simulate_counts(-np.ones((2, 3)), delta_s_lsb=0.1)
        with pytest.raises(ValueError):
            simulate_counts(np.ones((2, 3)), 0.1, phase_model="bogus")

    def test_reproducible(self):
        widths = np.full((50, 10), 1.0)
        a = simulate_counts(widths, 0.07, rng=5)
        b = simulate_counts(widths, 0.07, rng=5)
        assert np.array_equal(a, b)


class TestEstimateErrorProbabilities:
    def test_agrees_with_analytic_model_independent_phases(self):
        """The MC estimator with independent phases should reproduce the
        closed-form model within sampling error."""
        bits = 4
        ds = delta_s_for_counter(bits, 0.5)
        analytic = ErrorModel(dnl_spec_lsb=0.5, counter_bits=bits).device(62)
        mc = estimate_error_probabilities(
            n_devices=60000, n_codes=62, sigma_lsb=0.21, dnl_spec_lsb=0.5,
            delta_s_lsb=ds, counter_bits=bits, rho=0.0,
            phase_model="independent", rng=0)
        assert mc.p_good == pytest.approx(analytic.p_good, abs=0.01)
        assert mc.type_i == pytest.approx(analytic.type_i, abs=0.01)
        assert mc.type_ii == pytest.approx(analytic.type_ii, abs=0.01)

    def test_sequential_phase_model_similar(self):
        bits = 5
        ds = delta_s_for_counter(bits, 0.5)
        analytic = ErrorModel(dnl_spec_lsb=0.5, counter_bits=bits).device(62)
        mc = estimate_error_probabilities(
            n_devices=40000, n_codes=62, sigma_lsb=0.21, dnl_spec_lsb=0.5,
            delta_s_lsb=ds, counter_bits=bits,
            phase_model="sequential", rng=1)
        # The analytic approximations hold to within a couple of percent.
        assert mc.type_i == pytest.approx(analytic.type_i, abs=0.02)
        assert mc.p_good == pytest.approx(analytic.p_good, abs=0.03)

    def test_explicit_width_matrix(self):
        widths = np.full((100, 62), 1.0)
        mc = estimate_error_probabilities(
            n_devices=0, n_codes=62, sigma_lsb=0.0, dnl_spec_lsb=0.5,
            delta_s_lsb=0.05, widths_lsb=widths, rng=2)
        assert mc.n_devices == 100
        assert mc.p_good == 1.0
        assert mc.p_accept == 1.0
        assert mc.type_i == 0.0

    def test_conditionals_and_ci(self):
        mc = estimate_error_probabilities(
            n_devices=5000, n_codes=62, sigma_lsb=0.21, dnl_spec_lsb=0.5,
            delta_s_lsb=0.091, counter_bits=4, rng=3)
        lo, hi = mc.confidence_interval("type_i")
        assert lo <= mc.type_i <= hi
        assert 0.0 <= mc.p_reject_given_good <= 1.0
        assert 0.0 <= mc.p_accept_given_faulty <= 1.0
        assert mc.p_faulty == pytest.approx(1 - mc.p_good)

    def test_larger_counter_reduces_type_i(self):
        kwargs = dict(n_devices=30000, n_codes=62, sigma_lsb=0.21,
                      dnl_spec_lsb=0.5, rng=4)
        coarse = estimate_error_probabilities(
            delta_s_lsb=delta_s_for_counter(4, 0.5), counter_bits=4, **kwargs)
        fine = estimate_error_probabilities(
            delta_s_lsb=delta_s_for_counter(7, 0.5), counter_bits=7, **kwargs)
        assert fine.type_i < coarse.type_i
