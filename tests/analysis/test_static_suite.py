"""Unit tests for the complete static test suite."""

import numpy as np
import pytest

from repro.adc import (
    FlashADC,
    IdealADC,
    inject_gain_error,
    inject_missing_code,
    inject_non_monotonic,
    inject_offset_shift,
)
from repro.analysis import StaticSpec, StaticTestSuite, locate_transitions


class TestLocateTransitions:
    def test_ideal_converter_transitions(self, ideal_adc):
        located = locate_transitions(ideal_adc, oversample=64)
        true = ideal_adc.transfer_function().transitions
        assert located.size == 63
        assert np.max(np.abs(located - true)) < ideal_adc.lsb / 32

    def test_accuracy_improves_with_oversampling(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=4)
        true = adc.transfer_function().transitions
        coarse = locate_transitions(adc, oversample=8)
        fine = locate_transitions(adc, oversample=128)
        assert (np.max(np.abs(fine - true))
                <= np.max(np.abs(coarse - true)) + 1e-12)

    def test_averaging_reduces_noise(self):
        adc = IdealADC(6)
        true = adc.transfer_function().transitions
        single = locate_transitions(adc, oversample=64,
                                    transition_noise_lsb=0.2, averages=1,
                                    rng=1)
        averaged = locate_transitions(adc, oversample=64,
                                      transition_noise_lsb=0.2, averages=16,
                                      rng=1)
        assert (np.std(averaged - true) < np.std(single - true))

    def test_invalid_parameters(self, ideal_adc):
        with pytest.raises(ValueError):
            locate_transitions(ideal_adc, oversample=1)
        with pytest.raises(ValueError):
            locate_transitions(ideal_adc, averages=0)


class TestStaticSpec:
    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            StaticSpec(offset_lsb=-1.0)


class TestStaticTestSuite:
    def test_ideal_converter_passes_everything(self, ideal_adc):
        report = StaticTestSuite().run(ideal_adc)
        assert report.passed
        assert report.failures() == []
        assert report.monotonic
        assert report.missing_codes.size == 0
        assert abs(report.offset_lsb) < 0.1
        assert abs(report.gain_error_lsb) < 0.1

    def test_offset_fault_reported(self, ideal_adc):
        shifted = inject_offset_shift(ideal_adc, shift_lsb=3.0)
        report = StaticTestSuite().run(shifted)
        assert not report.passed
        assert "offset" in report.failures()
        assert report.offset_lsb == pytest.approx(3.0, abs=0.1)

    def test_gain_fault_reported(self, ideal_adc):
        scaled = inject_gain_error(ideal_adc, gain=1.1)
        report = StaticTestSuite().run(scaled)
        assert "gain" in report.failures()

    def test_missing_code_reported(self, ideal_adc):
        faulty = inject_missing_code(ideal_adc, code=17)
        report = StaticTestSuite().run(faulty)
        assert not report.passed
        assert 17 in report.missing_codes
        assert "missing codes" in report.failures()

    def test_missing_codes_allowed_when_spec_says_so(self, ideal_adc):
        faulty = inject_missing_code(ideal_adc, code=17)
        spec = StaticSpec(dnl_lsb=1.5, inl_lsb=1.5, allow_missing_codes=True)
        report = StaticTestSuite(spec=spec).run(faulty)
        assert "missing codes" not in report.failures()

    def test_dnl_and_inl_against_true_values(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=6)
        report = StaticTestSuite(oversample=128).run(adc)
        assert report.max_dnl == pytest.approx(adc.max_dnl(), abs=0.05)
        assert report.max_inl == pytest.approx(adc.max_inl(), abs=0.05)

    def test_non_monotonic_bubble_appears_as_a_wide_code(self, ideal_adc):
        """After thermometer correction a bubble error shows up as one code
        of roughly double width (DNL about +1 LSB), so it fails any DNL
        specification tighter than 1 LSB."""
        faulty = inject_non_monotonic(ideal_adc, code=20, depth_lsb=2.6)
        report = StaticTestSuite(
            spec=StaticSpec(dnl_lsb=0.75, inl_lsb=2.0)).run(faulty)
        assert report.max_dnl > 0.9
        assert not report.passed
        assert "dnl" in report.failures()

    def test_noisy_measurement_with_averaging_still_passes(self, ideal_adc):
        suite = StaticTestSuite(transition_noise_lsb=0.1, averages=8, seed=2)
        report = suite.run(ideal_adc)
        assert report.passed
