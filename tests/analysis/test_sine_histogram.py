"""Unit tests for the sine-wave code-density test."""

import numpy as np
import pytest

from repro.adc import FlashADC, IdealADC, inject_wide_code
from repro.analysis import (
    SineHistogramTest,
    expected_sine_histogram,
)


class TestExpectedSineHistogram:
    def test_total_equals_sample_count(self):
        expected = expected_sine_histogram(6, amplitude=0.55, offset=0.5,
                                           full_scale=1.0, n_samples=10000)
        assert expected.sum() == pytest.approx(10000, rel=1e-6)

    def test_bathtub_shape(self):
        """The arcsine density piles up at the extremes of the sine."""
        expected = expected_sine_histogram(6, amplitude=0.55, offset=0.5,
                                           full_scale=1.0, n_samples=10000)
        inner = expected[1:-1]
        assert inner[0] > inner[len(inner) // 2]
        assert inner[-1] > inner[len(inner) // 2]

    def test_symmetry(self):
        expected = expected_sine_histogram(6, amplitude=0.55, offset=0.5,
                                           full_scale=1.0, n_samples=10000)
        assert np.allclose(expected, expected[::-1], rtol=1e-9)

    def test_amplitude_must_be_positive(self):
        with pytest.raises(ValueError):
            expected_sine_histogram(6, amplitude=0.0, offset=0.5,
                                    full_scale=1.0, n_samples=100)


class TestSineHistogramTest:
    def test_ideal_converter_passes_with_small_dnl(self, ideal_adc):
        test = SineHistogramTest(n_samples=65536, dnl_spec_lsb=0.5)
        result = test.run(ideal_adc, rng=0)
        assert result.passed
        assert result.max_dnl < 0.15
        assert result.samples_taken == 65536

    def test_matches_true_dnl_of_a_mismatched_device(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=31)
        test = SineHistogramTest(n_samples=131072, dnl_spec_lsb=1.0)
        result = test.run(adc, rng=1)
        assert result.max_dnl == pytest.approx(adc.max_dnl(), abs=0.12)

    def test_wide_code_detected(self, ideal_adc):
        faulty = inject_wide_code(ideal_adc, code=30, extra_lsb=2.0)
        test = SineHistogramTest(n_samples=65536, dnl_spec_lsb=1.0)
        assert not test.run(faulty, rng=0).passed

    def test_agreement_with_ramp_histogram_verdict(self):
        from repro.analysis import HistogramTest
        adc = FlashADC.from_sigma(6, 0.21, seed=8)
        sine = SineHistogramTest(n_samples=131072, dnl_spec_lsb=0.5)
        ramp = HistogramTest(samples_per_code=512, dnl_spec_lsb=0.5)
        assert sine.run(adc, rng=0).passed == ramp.run(adc, rng=0).passed

    def test_stimulus_overdrives_the_range(self, ideal_adc):
        test = SineHistogramTest(overdrive=0.05)
        stimulus = test.build_stimulus(ideal_adc)
        assert stimulus.amplitude > 0.5 * ideal_adc.full_scale
        assert stimulus.offset == pytest.approx(0.5 * ideal_adc.full_scale)

    def test_reproducible_with_seed(self, flash_adc):
        a = SineHistogramTest(n_samples=16384, seed=5).run(flash_adc)
        b = SineHistogramTest(n_samples=16384, seed=5).run(flash_adc)
        assert np.allclose(a.counts, b.counts)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SineHistogramTest(n_samples=100)
        with pytest.raises(ValueError):
            SineHistogramTest(overdrive=-0.1)
        with pytest.raises(ValueError):
            SineHistogramTest(dnl_spec_lsb=-1.0)
