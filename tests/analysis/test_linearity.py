"""Unit tests for static linearity extraction."""

import numpy as np
import pytest

from repro.analysis import (
    dnl_from_histogram,
    linearity_from_code_widths,
    linearity_from_transitions,
)


class TestLinearityFromCodeWidths:
    def test_uniform_widths_give_zero_dnl(self):
        result = linearity_from_code_widths(np.ones(62))
        assert result.max_dnl == pytest.approx(0.0, abs=1e-12)
        assert result.max_inl == pytest.approx(0.0, abs=1e-12)

    def test_single_wide_code(self):
        widths = np.ones(10)
        widths[4] = 1.5
        result = linearity_from_code_widths(widths, lsb=1.0)
        assert result.dnl_lsb[4] == pytest.approx(0.5)
        assert result.worst_dnl_code == 5

    def test_endpoint_normalisation_removes_gain(self):
        widths = np.full(20, 1.3)
        result = linearity_from_code_widths(widths)
        assert result.max_dnl == pytest.approx(0.0, abs=1e-12)

    def test_explicit_lsb_keeps_gain(self):
        widths = np.full(20, 1.3)
        result = linearity_from_code_widths(widths, lsb=1.0)
        assert result.max_dnl == pytest.approx(0.3)

    def test_inl_is_cumulative(self):
        widths = np.array([1.2, 0.8, 1.0, 1.0])
        result = linearity_from_code_widths(widths, lsb=1.0)
        assert np.allclose(result.inl_lsb, np.cumsum(result.dnl_lsb))

    def test_passes_spec(self):
        widths = np.ones(10)
        widths[2] = 1.4
        result = linearity_from_code_widths(widths, lsb=1.0)
        assert result.passes(0.5)
        assert not result.passes(0.3)

    def test_passes_with_inl_spec(self):
        widths = np.ones(10)
        widths[:5] = 1.2  # INL builds up to 1.0 LSB
        result = linearity_from_code_widths(widths, lsb=1.0)
        assert result.passes(0.5)
        assert not result.passes(0.5, inl_spec_lsb=0.5)

    def test_missing_codes_reported(self):
        widths = np.ones(10)
        widths[7] = 0.0
        result = linearity_from_code_widths(widths, lsb=1.0)
        assert list(result.missing_codes()) == [8]

    def test_rejects_negative_widths(self):
        with pytest.raises(ValueError):
            linearity_from_code_widths(np.array([1.0, -0.1, 1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            linearity_from_code_widths(np.array([]))

    def test_rejects_negative_spec(self):
        result = linearity_from_code_widths(np.ones(5))
        with pytest.raises(ValueError):
            result.passes(-0.1)


class TestLinearityFromTransitions:
    def test_ideal_transitions(self):
        n_bits = 5
        lsb = 1.0 / 32
        transitions = lsb * np.arange(1, 32)
        result = linearity_from_transitions(transitions, full_scale=1.0,
                                            n_bits=n_bits)
        assert result.max_dnl == pytest.approx(0.0, abs=1e-9)
        assert result.offset_lsb == pytest.approx(0.0, abs=1e-9)
        assert result.gain_error_lsb == pytest.approx(0.0, abs=1e-9)

    def test_offset_detected(self):
        lsb = 1.0 / 32
        transitions = lsb * np.arange(1, 32) + 2 * lsb
        result = linearity_from_transitions(transitions, 1.0, 5)
        assert result.offset_lsb == pytest.approx(2.0, abs=1e-9)

    def test_wrong_transition_count(self):
        with pytest.raises(ValueError):
            linearity_from_transitions(np.arange(10), 1.0, 5)


class TestDnlFromHistogram:
    def test_uniform_histogram_gives_zero_dnl(self):
        counts = np.full(64, 100.0)
        result = dnl_from_histogram(counts)
        assert result.max_dnl == pytest.approx(0.0, abs=1e-12)

    def test_end_bins_are_dropped(self):
        counts = np.full(64, 100.0)
        counts[0] = 100000.0
        counts[-1] = 100000.0
        result = dnl_from_histogram(counts)
        assert result.max_dnl == pytest.approx(0.0, abs=1e-12)

    def test_wide_code_detected(self):
        counts = np.full(64, 100.0)
        counts[20] = 150.0
        result = dnl_from_histogram(counts)
        # Bin 20 is inner code 20 (index 19 after dropping the first bin).
        assert result.dnl_lsb[19] == pytest.approx(0.5, abs=0.02)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            dnl_from_histogram(np.array([1.0, -1.0, 1.0, 1.0]))

    def test_rejects_empty_inner_bins(self):
        counts = np.zeros(10)
        counts[0] = 5
        counts[-1] = 5
        with pytest.raises(ValueError):
            dnl_from_histogram(counts)

    def test_keep_end_bins_option(self):
        counts = np.full(8, 10.0)
        counts[0] = 20.0
        with_ends = dnl_from_histogram(counts, drop_end_bins=False)
        without_ends = dnl_from_histogram(counts, drop_end_bins=True)
        assert with_ends.max_dnl > without_ends.max_dnl
