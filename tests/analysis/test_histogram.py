"""Unit tests for the conventional ramp histogram test."""

import numpy as np
import pytest

from repro.adc import FlashADC, IdealADC, inject_wide_code
from repro.analysis import HistogramTest


class TestHistogramTest:
    def test_ideal_converter_passes(self, ideal_adc):
        test = HistogramTest(samples_per_code=64, dnl_spec_lsb=0.5)
        result = test.run(ideal_adc, rng=0)
        assert result.passed
        assert result.max_dnl < 0.1

    def test_counts_cover_all_codes(self, ideal_adc):
        test = HistogramTest(samples_per_code=32)
        result = test.run(ideal_adc, rng=0)
        assert result.counts.size == 64
        assert np.all(result.counts[1:-1] > 0)

    def test_samples_and_bits_accounted(self, ideal_adc):
        test = HistogramTest(samples_per_code=32)
        result = test.run(ideal_adc, rng=0)
        assert result.samples_taken > 0
        assert result.bits_transferred == result.samples_taken * 6

    def test_out_of_spec_device_fails(self, ideal_adc):
        faulty = inject_wide_code(ideal_adc, code=30, extra_lsb=2.0)
        test = HistogramTest(samples_per_code=64, dnl_spec_lsb=1.0)
        assert not test.run(faulty, rng=0).passed

    def test_marginal_device_measured_accurately(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=13)
        test = HistogramTest(samples_per_code=1000, dnl_spec_lsb=0.5)
        result = test.run(adc, rng=0)
        assert result.max_dnl == pytest.approx(adc.max_dnl(), abs=0.03)

    def test_more_samples_give_better_accuracy(self):
        adc = FlashADC.from_sigma(6, 0.21, seed=21)
        true_dnl = adc.max_dnl()
        coarse = HistogramTest(samples_per_code=8).run(adc, rng=0).max_dnl
        fine = HistogramTest(samples_per_code=512).run(adc, rng=0).max_dnl
        assert abs(fine - true_dnl) <= abs(coarse - true_dnl) + 0.02

    def test_inl_spec_enforced(self, ideal_adc):
        # An INL-heavy device: many slightly wide codes in a row.
        widths = np.ones(62)
        widths[:31] += 0.08
        from repro.adc import TableADC, TransferFunction
        device = TableADC(TransferFunction.from_code_widths(6, widths / 64))
        lenient = HistogramTest(samples_per_code=256, dnl_spec_lsb=0.5)
        strict = HistogramTest(samples_per_code=256, dnl_spec_lsb=0.5,
                               inl_spec_lsb=0.5)
        assert lenient.run(device, rng=0).passed
        assert not strict.run(device, rng=0).passed

    def test_evaluate_codes_directly(self):
        codes = np.repeat(np.arange(64), 50)
        test = HistogramTest(dnl_spec_lsb=0.5)
        result = test.evaluate_codes(codes, n_bits=6)
        assert result.passed

    def test_paper_reference_configuration(self):
        test = HistogramTest.paper_reference()
        assert test.samples_per_code == pytest.approx(1000.0)
        assert test.dnl_spec_lsb == pytest.approx(0.5)

    def test_paper_production_configuration(self):
        test = HistogramTest.paper_production(n_bits=6)
        assert test.samples_per_code == pytest.approx(64.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HistogramTest(samples_per_code=0)
        with pytest.raises(ValueError):
            HistogramTest(dnl_spec_lsb=-1.0)

    def test_reproducible_with_seed(self, flash_adc):
        a = HistogramTest(samples_per_code=32, seed=3).run(flash_adc)
        b = HistogramTest(samples_per_code=32, seed=3).run(flash_adc)
        assert np.allclose(a.counts, b.counts)
