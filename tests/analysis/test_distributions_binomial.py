"""Unit tests for code-width distributions and the binomial device model."""

import numpy as np
import pytest

from repro.analysis import (
    BinomialDeviceModel,
    CodeWidthDistribution,
    ErrorModel,
)
from repro.analysis.distributions import EmpiricalCodeWidthDistribution


class TestCodeWidthDistribution:
    def test_paper_worst_case(self):
        dist = CodeWidthDistribution.paper_worst_case()
        assert dist.sigma_lsb == pytest.approx(0.21)
        assert dist.mean_lsb == pytest.approx(1.0)

    def test_pdf_integrates_to_one(self):
        dist = CodeWidthDistribution(0.21)
        x = np.linspace(-1, 3, 20001)
        assert np.trapezoid(dist.pdf(x), x) == pytest.approx(1.0, abs=1e-6)

    def test_cdf_monotone(self):
        dist = CodeWidthDistribution(0.21)
        x = np.linspace(0, 2, 100)
        assert np.all(np.diff(dist.cdf(x)) >= 0)

    def test_spec_window(self):
        dist = CodeWidthDistribution(0.21)
        assert dist.spec_window_lsb(0.5) == (0.5, 1.5)
        assert dist.spec_window_lsb(1.0) == (0.0, 2.0)
        # The lower edge never goes negative.
        assert dist.spec_window_lsb(1.5) == (0.0, 2.5)

    def test_prob_code_good_symmetry(self):
        dist = CodeWidthDistribution(0.21)
        p = dist.prob_code_good(0.5)
        # ±0.5 LSB at sigma 0.21 is about ±2.38 sigma.
        assert p == pytest.approx(0.9826, abs=0.002)
        assert dist.prob_code_faulty(0.5) == pytest.approx(1 - p)

    def test_prob_device_good_at_stringent_spec(self):
        dist = CodeWidthDistribution(0.21)
        # The paper reports roughly 30 % good devices at ±0.5 LSB.
        assert 0.25 < dist.prob_device_good(0.5, 62) < 0.45

    def test_prob_device_faulty_at_actual_spec(self):
        dist = CodeWidthDistribution(0.21)
        # The paper quotes a faulty probability of order 1e-4 at ±1 LSB.
        assert 1e-5 < dist.prob_device_faulty(1.0, 62) < 1e-3

    def test_sampling_statistics(self):
        dist = CodeWidthDistribution(0.21)
        samples = dist.sample(200000, rng=0)
        assert samples.mean() == pytest.approx(1.0, abs=0.005)
        assert samples.std() == pytest.approx(0.21, abs=0.005)

    def test_fit_from_samples(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(1.02, 0.18, size=50000)
        dist = CodeWidthDistribution.from_samples(samples)
        assert dist.mean_lsb == pytest.approx(1.02, abs=0.01)
        assert dist.sigma_lsb == pytest.approx(0.18, abs=0.01)

    def test_ladder_correlation(self):
        dist = CodeWidthDistribution(0.21)
        assert dist.ladder_correlation(64) == pytest.approx(-1.0 / 63)
        with pytest.raises(ValueError):
            dist.ladder_correlation(1)

    def test_zero_sigma_pdf_raises(self):
        with pytest.raises(ValueError):
            CodeWidthDistribution(0.0).pdf(1.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            CodeWidthDistribution(-0.1)


class TestEmpiricalDistribution:
    def test_matches_gaussian_source(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(1.0, 0.21, size=100000)
        emp = EmpiricalCodeWidthDistribution(samples)
        gauss = CodeWidthDistribution(0.21)
        assert emp.prob_code_good(0.5) == pytest.approx(
            gauss.prob_code_good(0.5), abs=0.01)

    def test_cdf_bounds(self):
        emp = EmpiricalCodeWidthDistribution(np.array([0.8, 1.0, 1.2]))
        assert emp.cdf(0.0) == 0.0
        assert emp.cdf(2.0) == 1.0

    def test_to_gaussian(self):
        rng = np.random.default_rng(3)
        emp = EmpiricalCodeWidthDistribution(rng.normal(1.0, 0.2, 20000))
        gauss = emp.to_gaussian()
        assert gauss.sigma_lsb == pytest.approx(0.2, abs=0.01)

    def test_bootstrap_sampling(self):
        emp = EmpiricalCodeWidthDistribution(np.array([0.9, 1.0, 1.1]))
        draws = emp.sample(1000, rng=4)
        assert set(np.unique(draws)).issubset({0.9, 1.0, 1.1})

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            EmpiricalCodeWidthDistribution(np.array([1.0]))


class TestBinomialDeviceModel:
    @pytest.fixture
    def per_code(self):
        return ErrorModel(dnl_spec_lsb=0.5, counter_bits=5).per_code()

    def test_device_probabilities_consistent(self, per_code):
        device = BinomialDeviceModel(per_code, 62).device()
        assert device.p_good == pytest.approx(per_code.p_good ** 62)
        assert device.p_accept == pytest.approx(per_code.p_accept ** 62)
        assert device.type_i >= 0
        assert device.type_ii >= 0
        assert device.p_good_and_accept <= min(device.p_good, device.p_accept)

    def test_conditional_and_ppm_views(self, per_code):
        device = BinomialDeviceModel(per_code, 62).device()
        assert device.p_faulty == pytest.approx(1 - device.p_good)
        assert device.type_ii_ppm == pytest.approx(device.type_ii * 1e6)
        assert 0.0 <= device.p_reject_given_good <= 1.0
        assert 0.0 <= device.p_accept_given_faulty <= 1.0
        assert device.yield_loss == pytest.approx(device.type_i)

    def test_more_codes_means_more_device_errors(self, per_code):
        small = BinomialDeviceModel(per_code, 14).device()
        large = BinomialDeviceModel(per_code, 62).device()
        assert large.type_i > small.type_i

    def test_count_distributions(self, per_code):
        model = BinomialDeviceModel(per_code, 62)
        bad = model.bad_code_count_distribution()
        rejected = model.rejected_code_count_distribution()
        assert bad.pmf(0) == pytest.approx(per_code.p_good ** 62)
        assert rejected.pmf(0) == pytest.approx(per_code.p_accept ** 62)
        assert model.prob_at_least_one_bad_code() == pytest.approx(
            1 - per_code.p_good ** 62)
        assert model.prob_at_least_one_rejected_code() == pytest.approx(
            1 - per_code.p_accept ** 62)

    def test_union_bounds_dominate_exact(self, per_code):
        model = BinomialDeviceModel(per_code, 62)
        device = model.device()
        assert model.type_i_union_bound() >= device.type_i - 1e-12
        assert model.type_ii_union_bound() >= device.type_ii - 1e-12

    def test_correlation_ablation_close_to_independent(self, per_code):
        model = BinomialDeviceModel(per_code, 62)
        independent = model.device().p_good
        correlated = model.device_good_with_correlation(n_mc=40000, seed=1)
        # The ladder correlation is tiny at 6 bits, so Equation (9) is a
        # good approximation (the paper's argument).
        assert correlated == pytest.approx(independent, abs=0.02)

    def test_invalid_code_count(self, per_code):
        with pytest.raises(ValueError):
            BinomialDeviceModel(per_code, 0)
