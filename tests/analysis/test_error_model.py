"""Unit tests for the analytic measurement-error model (paper section 3)."""

import numpy as np
import pytest

from repro.analysis import (
    CodeWidthDistribution,
    ErrorModel,
    acceptance_probability,
    count_limits,
    counter_bits_needed,
    delta_s_for_counter,
    max_measurement_error_lsb,
)


class TestAcceptanceProbability:
    def test_trapezoid_shape(self):
        ds, i_min, i_max = 0.1, 5, 15
        # Zero well below the window.
        assert acceptance_probability(0.3, ds, i_min, i_max) == 0.0
        # One inside the flat region.
        assert acceptance_probability(1.0, ds, i_min, i_max) == 1.0
        # Zero well above the window.
        assert acceptance_probability(1.8, ds, i_min, i_max) == 0.0

    def test_rising_ramp_is_linear(self):
        ds, i_min, i_max = 0.1, 5, 15
        # Halfway between (i_min-1)*ds = 0.4 and i_min*ds = 0.5.
        assert acceptance_probability(0.45, ds, i_min, i_max) == pytest.approx(0.5)
        assert acceptance_probability(0.425, ds, i_min, i_max) == pytest.approx(0.25)

    def test_falling_ramp_is_linear(self):
        ds, i_min, i_max = 0.1, 5, 15
        # Halfway between i_max*ds = 1.5 and (i_max+1)*ds = 1.6.
        assert acceptance_probability(1.55, ds, i_min, i_max) == pytest.approx(0.5)

    def test_corners(self):
        ds, i_min, i_max = 0.1, 5, 15
        assert acceptance_probability((i_min - 1) * ds, ds, i_min, i_max) == 0.0
        assert acceptance_probability(i_min * ds, ds, i_min, i_max) == pytest.approx(1.0)
        assert acceptance_probability(i_max * ds, ds, i_min, i_max) == pytest.approx(1.0)
        assert acceptance_probability((i_max + 1) * ds, ds, i_min, i_max) == 0.0

    def test_vectorised(self):
        widths = np.linspace(0, 2, 101)
        h = acceptance_probability(widths, 0.1, 5, 15)
        assert h.shape == widths.shape
        assert np.all((h >= 0) & (h <= 1))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            acceptance_probability(1.0, 0.0, 5, 15)
        with pytest.raises(ValueError):
            acceptance_probability(1.0, 0.1, 10, 5)


class TestCountLimits:
    def test_equations_three_and_four(self):
        # dv_min = 0.5, dv_max = 1.5, ds = 0.091 -> i_min=6, i_max=16.
        i_min, i_max = count_limits(0.091, 0.5)
        assert i_min == 6
        assert i_max == 16

    def test_exact_division(self):
        i_min, i_max = count_limits(0.1, 0.5)
        assert i_min == 5   # ceil(0.5 / 0.1)
        assert i_max == 15  # floor(1.5 / 0.1)

    def test_counter_max_clips_upper_limit(self):
        _, i_max = count_limits(0.05, 1.0, counter_max=16)
        assert i_max == 16

    def test_too_coarse_step_rejected(self):
        # ds so large that no count satisfies both limits.
        with pytest.raises(ValueError):
            count_limits(1.4, 0.2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            count_limits(-0.1, 0.5)
        with pytest.raises(ValueError):
            count_limits(0.1, -0.5)
        with pytest.raises(ValueError):
            count_limits(0.1, 0.5, counter_max=0)


class TestDeltaSForCounter:
    def test_paper_value_for_4bit_stringent(self):
        # The paper quotes ds = 0.091 LSB for a 4-bit counter at ±0.5 LSB.
        assert delta_s_for_counter(4, 0.5) == pytest.approx(0.091, abs=0.001)

    def test_actual_spec_gives_powers_of_two(self):
        # Table 2's max-error column: roughly 1/8 ... 1/64 LSB.
        for bits, expected in [(4, 1 / 8), (5, 1 / 16), (6, 1 / 32),
                               (7, 1 / 64)]:
            ds = delta_s_for_counter(bits, 1.0)
            assert ds == pytest.approx(expected, rel=0.05)

    def test_halves_per_extra_bit(self):
        ratios = [delta_s_for_counter(b, 0.5) / delta_s_for_counter(b + 1, 0.5)
                  for b in range(4, 8)]
        assert all(1.9 < r < 2.1 for r in ratios)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            delta_s_for_counter(0, 0.5)
        with pytest.raises(ValueError):
            delta_s_for_counter(4, -0.5)


class TestCounterBitsNeeded:
    def test_matches_delta_s_for_counter(self):
        for bits in (4, 5, 6, 7):
            ds = delta_s_for_counter(bits, 0.5)
            assert counter_bits_needed(ds, 0.5) == bits

    def test_max_error(self):
        assert max_measurement_error_lsb(0.1) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            max_measurement_error_lsb(0.0)


class TestErrorModelPerCode:
    def test_requires_step_or_counter(self):
        with pytest.raises(ValueError):
            ErrorModel(dnl_spec_lsb=0.5)

    def test_probabilities_are_consistent(self):
        model = ErrorModel(dnl_spec_lsb=0.5, counter_bits=4)
        pc = model.per_code()
        assert 0.0 <= pc.p_good <= 1.0
        assert 0.0 <= pc.p_accept <= 1.0
        assert pc.p_good_and_accept <= min(pc.p_good, pc.p_accept) + 1e-12
        assert pc.type_i == pytest.approx(pc.p_good - pc.p_good_and_accept)
        assert pc.type_ii == pytest.approx(pc.p_accept - pc.p_good_and_accept)

    def test_analytic_matches_numeric(self):
        for bits in (4, 5, 6, 7):
            model = ErrorModel(dnl_spec_lsb=0.5, counter_bits=bits)
            analytic = model.per_code()
            numeric = model.per_code_numeric()
            assert analytic.p_good == pytest.approx(numeric.p_good, abs=1e-4)
            assert analytic.type_i == pytest.approx(numeric.type_i, abs=1e-4)
            assert analytic.type_ii == pytest.approx(numeric.type_ii, abs=1e-4)

    def test_zero_sigma_distribution(self):
        dist = CodeWidthDistribution(sigma_lsb=0.0)
        model = ErrorModel(distribution=dist, dnl_spec_lsb=0.5,
                           counter_bits=6)
        pc = model.per_code()
        # A perfect 1-LSB code is always good and always accepted.
        assert pc.p_good == pytest.approx(1.0)
        assert pc.p_accept == pytest.approx(1.0)
        assert pc.type_i == pytest.approx(0.0)
        assert pc.type_ii == pytest.approx(0.0)

    def test_conditional_probabilities(self):
        model = ErrorModel(dnl_spec_lsb=0.5, counter_bits=4)
        pc = model.per_code()
        assert 0.0 <= pc.p_accept_given_good <= 1.0
        assert pc.p_reject_given_good == pytest.approx(
            1.0 - pc.p_accept_given_good)
        assert 0.0 <= pc.p_accept_given_faulty <= 1.0

    def test_finer_step_reduces_errors(self):
        coarse = ErrorModel(dnl_spec_lsb=0.5, counter_bits=4).per_code()
        fine = ErrorModel(dnl_spec_lsb=0.5, counter_bits=7).per_code()
        assert fine.type_i < coarse.type_i
        assert fine.type_ii < coarse.type_ii

    def test_acceptance_window_geometry(self):
        model = ErrorModel(dnl_spec_lsb=0.5, counter_bits=4)
        zero_low, one_low, one_high, zero_high = model.accept_window_lsb
        assert zero_low < one_low <= one_high < zero_high
        assert one_low == pytest.approx(model.i_min * model.delta_s_lsb)

    def test_max_error_equals_step(self):
        model = ErrorModel(dnl_spec_lsb=1.0, counter_bits=5)
        assert model.max_error_lsb() == pytest.approx(model.delta_s_lsb)


class TestErrorModelDevice:
    def test_paper_table1_shape(self):
        """Device-level probabilities at the stringent spec (Table 1 SIM)."""
        results = {}
        for bits in (4, 5, 6, 7):
            model = ErrorModel(dnl_spec_lsb=0.5, counter_bits=bits)
            results[bits] = model.device(62)
        # The paper reports roughly 30 % good devices at ±0.5 LSB.
        assert 0.25 < results[4].p_good < 0.45
        # Type I at the 4-bit counter is several percent (paper: 0.065).
        assert 0.03 < results[4].type_i < 0.10
        # Type I decreases monotonically with counter size.
        assert (results[4].type_i > results[5].type_i
                > results[6].type_i > results[7].type_i)
        # Type II also shrinks from 4 to 7 bits.
        assert results[7].type_ii < results[4].type_ii

    def test_paper_table2_shape(self):
        """Device-level probabilities at the actual spec (Table 2)."""
        results = {bits: ErrorModel(dnl_spec_lsb=1.0,
                                    counter_bits=bits).device(62)
                   for bits in (4, 5, 6, 7)}
        # The population is almost entirely good at ±1 LSB (paper: faulty
        # probability about 1.4e-4).
        assert results[4].p_faulty < 5e-4
        # Type II stays within the paper's quality target even at 4 bits
        # (10 – 100 ppm).
        assert results[4].type_ii_ppm < 100.0
        # Both error types decrease with the counter size.
        assert results[7].type_i < results[4].type_i
        assert results[7].type_ii < results[4].type_ii

    def test_type_i_roughly_halves_per_counter_bit(self):
        """The paper's headline scaling claim at the stringent spec."""
        type_i = [ErrorModel(dnl_spec_lsb=0.5, counter_bits=b).device(62).type_i
                  for b in range(4, 9)]
        ratios = [type_i[i] / type_i[i + 1] for i in range(len(type_i) - 1)]
        geometric_mean = np.prod(ratios) ** (1.0 / len(ratios))
        assert 1.5 < geometric_mean < 3.0

    def test_sweep_delta_s_shapes(self):
        ds_values = np.linspace(0.07, 0.12, 30)
        sweep = ErrorModel.sweep_delta_s(ds_values, n_codes=62,
                                         dnl_spec_lsb=0.5)
        assert sweep["delta_s_lsb"].size > 0
        assert sweep["type_i"].shape == sweep["delta_s_lsb"].shape
        assert np.all(sweep["type_i"] >= 0)
        assert np.all(sweep["type_ii"] >= 0)

    def test_sweep_skips_impossible_steps(self):
        ds_values = np.array([0.05, 2.0])
        sweep = ErrorModel.sweep_delta_s(ds_values, n_codes=62,
                                         dnl_spec_lsb=0.5)
        assert sweep["delta_s_lsb"].size == 1
