"""Unit tests for the FFT-based dynamic tests (THD, SNR, SINAD, ENOB, SFDR)."""

import numpy as np
import pytest

from repro.adc import IdealADC, SarADC
from repro.analysis import DynamicAnalyzer
from repro.signals import SineStimulus, snr_ideal_db


class TestSpectrumBasics:
    def test_pure_sine_codes(self):
        """A synthetic, already-quantised sine should give a clean spectrum."""
        n = 4096
        cycles = 101
        t = np.arange(n)
        signal = 32 + 30 * np.sin(2 * np.pi * cycles * t / n)
        codes = np.round(signal).astype(int)
        analyzer = DynamicAnalyzer(n_samples=n, window="rect")
        result = analyzer.spectrum(codes, sample_rate=1e6)
        assert result.fundamental_bin == cycles
        assert result.snr_db > 30.0
        assert result.enob > 4.5

    def test_needs_enough_samples(self):
        analyzer = DynamicAnalyzer(n_samples=1024)
        with pytest.raises(ValueError):
            analyzer.spectrum(np.zeros(100), 1e6)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            DynamicAnalyzer(n_samples=8)
        with pytest.raises(ValueError):
            DynamicAnalyzer(window="bogus")
        with pytest.raises(ValueError):
            DynamicAnalyzer(n_harmonics=0)


class TestIdealConverterMeasurement:
    def test_enob_close_to_resolution(self):
        adc = IdealADC(8, sample_rate=1e6)
        analyzer = DynamicAnalyzer(n_samples=4096, window="rect")
        result = analyzer.measure(adc, seed=0)
        # A near-full-scale coherent sine through an ideal quantiser:
        # ENOB within about half a bit of the nominal resolution.
        assert result.enob == pytest.approx(8.0, abs=0.7)

    def test_sinad_close_to_ideal_snr(self):
        adc = IdealADC(8, sample_rate=1e6)
        analyzer = DynamicAnalyzer(n_samples=4096, window="rect")
        result = analyzer.measure(adc, seed=0)
        assert result.sinad_db == pytest.approx(snr_ideal_db(8), abs=4.0)

    def test_hann_window_also_works(self):
        adc = IdealADC(8, sample_rate=1e6)
        analyzer = DynamicAnalyzer(n_samples=4096, window="hann")
        result = analyzer.measure(adc, seed=0)
        assert result.enob > 7.0

    def test_more_bits_better_enob(self):
        analyzer = DynamicAnalyzer(n_samples=4096, window="rect")
        low = analyzer.measure(IdealADC(6, sample_rate=1e6), seed=0)
        high = analyzer.measure(IdealADC(10, sample_rate=1e6), seed=0)
        assert high.enob > low.enob + 2.0


class TestDistortionDetection:
    def test_distorted_stimulus_degrades_thd(self):
        adc = IdealADC(10, sample_rate=1e6)
        analyzer = DynamicAnalyzer(n_samples=4096, window="rect")
        n = analyzer.n_samples

        clean_stim = SineStimulus.for_adc(adc, 20e3, n)
        dirty_stim = SineStimulus.for_adc(adc, 20e3, n)
        dirty_stim.harmonics[3] = 0.01  # 1 % third harmonic

        clean_rec = adc.sample(clean_stim, n_samples=n)
        dirty_rec = adc.sample(dirty_stim, n_samples=n)
        clean = analyzer.spectrum(clean_rec.codes, adc.sample_rate,
                                  fundamental=clean_stim.frequency)
        dirty = analyzer.spectrum(dirty_rec.codes, adc.sample_rate,
                                  fundamental=dirty_stim.frequency)
        # 1 % HD3 corresponds to THD of about -40 dB.
        assert dirty.thd_db > clean.thd_db + 10.0
        assert dirty.thd_db == pytest.approx(-40.0, abs=3.0)

    def test_nonlinear_converter_degrades_thd(self):
        analyzer = DynamicAnalyzer(n_samples=4096, window="rect")
        ideal = IdealADC(8, sample_rate=1e6)
        nonlinear = SarADC(8, unit_cap_sigma_rel=0.08, rng=5,
                           sample_rate=1e6)
        good = analyzer.measure(ideal, seed=1)
        bad = analyzer.measure(nonlinear, seed=1)
        assert bad.sinad_db < good.sinad_db

    def test_noise_degrades_snr(self):
        adc = IdealADC(10, sample_rate=1e6)
        analyzer = DynamicAnalyzer(n_samples=4096, window="rect")
        quiet = analyzer.measure(adc, transition_noise_lsb=0.0, seed=2)
        noisy = analyzer.measure(adc, transition_noise_lsb=2.0, seed=2)
        assert noisy.snr_db < quiet.snr_db - 6.0

    def test_sfdr_at_least_as_large_as_worst_harmonic(self):
        adc = IdealADC(8, sample_rate=1e6)
        analyzer = DynamicAnalyzer(n_samples=4096, window="rect")
        result = analyzer.measure(adc, seed=3)
        assert result.sfdr_db > 0.0

    def test_power_conservation(self):
        adc = IdealADC(8, sample_rate=1e6)
        analyzer = DynamicAnalyzer(n_samples=4096, window="rect")
        result = analyzer.measure(adc, seed=4)
        assert result.signal_power > 0
        assert result.noise_power >= 0
        assert result.distortion_power >= 0


class TestBatchToneBookkeeping:
    """The vectorised per-tone bookkeeping vs its batch-of-1 wrapper."""

    def _power_matrix(self, n_devices=7, n=1024, seed=3):
        rng = np.random.default_rng(seed)
        analyzer = DynamicAnalyzer(n_samples=n, window="hann")
        t = np.arange(n)
        cycles = 41
        records = (20 + 15 * np.sin(2 * np.pi * cycles * t / n)
                   + rng.normal(0.0, 0.8, size=(n_devices, n)))
        codes = np.round(records)
        return analyzer, analyzer.windowed_power(codes), cycles

    def test_rows_match_scalar_analyze_power(self):
        analyzer, power, cycles = self._power_matrix()
        freqs = np.fft.rfftfreq(analyzer.n_samples, d=1e-6)
        fundamental = cycles / (analyzer.n_samples * 1e-6)
        figures = analyzer.analyze_power_batch(power, freqs, fundamental,
                                               1e6)
        for d in range(power.shape[0]):
            scalar = analyzer.analyze_power(power[d], freqs, fundamental,
                                            1e6)
            assert figures.fundamental_bin[d] == scalar.fundamental_bin
            assert figures.signal_power[d] == scalar.signal_power
            assert figures.noise_power[d] == scalar.noise_power
            assert figures.distortion_power[d] == scalar.distortion_power
            assert figures.thd_db[d] == scalar.thd_db
            assert figures.snr_db[d] == scalar.snr_db
            assert figures.sinad_db[d] == scalar.sinad_db
            assert figures.sfdr_db[d] == scalar.sfdr_db
            assert figures.enob[d] == scalar.enob

    def test_fundamental_located_per_device_without_hint(self):
        analyzer, power, cycles = self._power_matrix()
        freqs = np.fft.rfftfreq(analyzer.n_samples, d=1e-6)
        figures = analyzer.analyze_power_batch(power, freqs, None, 1e6)
        assert np.all(figures.fundamental_bin == cycles)

    def test_passes_batch_matches_scalar_passes(self):
        from repro.analysis import DynamicSpec

        analyzer, power, cycles = self._power_matrix()
        freqs = np.fft.rfftfreq(analyzer.n_samples, d=1e-6)
        fundamental = cycles / (analyzer.n_samples * 1e-6)
        spec = DynamicSpec(min_enob=3.0, max_thd_db=-10.0)
        figures = analyzer.analyze_power_batch(power, freqs, fundamental,
                                               1e6)
        scalar = [spec.passes(analyzer.analyze_power(power[d], freqs,
                                                     fundamental, 1e6))
                  for d in range(power.shape[0])]
        np.testing.assert_array_equal(spec.passes_batch(figures),
                                      np.array(scalar))

    def test_silent_spectrum_edge_cases(self):
        analyzer = DynamicAnalyzer(n_samples=1024)
        power = np.zeros((2, 513))
        figures = analyzer.analyze_power_batch(
            power, np.fft.rfftfreq(1024, 1e-6), None, 1e6)
        # Matches the scalar guard semantics: silent spectra give -inf
        # THD, +inf SNR/SINAD/SFDR and an (infinite) ENOB.
        assert np.all(figures.thd_db == -np.inf)
        assert np.all(figures.snr_db == np.inf)
        assert np.all(figures.enob == np.inf)
