"""Unit tests for the telemetry core: counters, timers, spans, sessions."""

import logging
import threading

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    SCHEMA_VERSION,
    GaugeStat,
    NullTelemetry,
    ShardProgress,
    Telemetry,
    TimerHandle,
    TimerStat,
    current_telemetry,
    get_logger,
    telemetry_session,
)


class TestCounters:
    def test_count_accumulates(self):
        t = Telemetry()
        t.count("a")
        t.count("a", 4)
        t.count("b", 2)
        assert t.counters == {"a": 5, "b": 2}

    def test_counts_are_ints(self):
        t = Telemetry()
        t.count("a", 2.0)
        assert isinstance(t.counters["a"], int)


class TestTimers:
    def test_timer_records_stats(self):
        t = Telemetry()
        with t.timer("x") as handle:
            pass
        with t.timer("x"):
            pass
        stat = t.timers["x"]
        assert stat.count == 2
        assert handle.elapsed_s >= 0.0
        assert stat.total_s >= stat.max_s >= stat.min_s >= 0.0
        assert stat.mean_s == pytest.approx(stat.total_s / 2)

    def test_timer_stat_merge(self):
        a = TimerStat()
        a.record(1.0)
        a.record(3.0)
        b = TimerStat()
        b.record(0.5)
        a.merge(b)
        assert a.count == 3
        assert a.total_s == pytest.approx(4.5)
        assert a.min_s == pytest.approx(0.5)
        assert a.max_s == pytest.approx(3.0)

    def test_timer_stat_round_trips_through_dict(self):
        a = TimerStat()
        a.record(2.0)
        b = TimerStat.from_dict(a.as_dict())
        assert b.count == 1 and b.total_s == pytest.approx(2.0)
        assert b.min_s == pytest.approx(2.0)

    def test_handle_measures_even_without_collector(self):
        # The CLI's devices/s line relies on this: a TimerHandle over the
        # null telemetry still measures wall time, it just records nothing.
        with TimerHandle(NULL_TELEMETRY, "x") as handle:
            pass
        assert handle.elapsed_s >= 0.0
        assert NULL_TELEMETRY.snapshot() == {}


class TestSpans:
    def test_parent_child_nesting(self):
        t = Telemetry()
        with t.span("outer"):
            with t.span("inner", devices=3):
                pass
            with t.span("sibling"):
                pass
        outer, inner, sibling = t.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert inner.attrs == {"devices": 3}
        assert outer.elapsed_s >= inner.elapsed_s >= 0.0

    def test_set_attaches_attributes(self):
        t = Telemetry()
        with t.span("s") as span:
            span.set(extra=1)
        assert t.spans[0].attrs == {"extra": 1}


class TestGauges:
    def test_set_gauge_tracks_last_and_peak(self):
        t = Telemetry()
        t.set_gauge("pool.queue_depth", 3)
        t.set_gauge("pool.queue_depth", 9)
        t.set_gauge("pool.queue_depth", 4)
        stat = t.gauges["pool.queue_depth"]
        assert stat.last == 4.0
        assert stat.max_value == 9.0

    def test_gauge_stat_round_trips_through_dict(self):
        stat = GaugeStat()
        stat.record(5)
        stat.record(2)
        clone = GaugeStat.from_dict(stat.as_dict())
        assert clone.last == 2.0 and clone.max_value == 5.0
        assert GaugeStat().as_dict() == {"last": 0.0, "max": 0.0}

    def test_gauge_merge_keeps_the_peak(self):
        a = GaugeStat()
        a.record(7)
        b = GaugeStat()
        b.record(3)
        a.merge(b)
        assert a.last == 3.0 and a.max_value == 7.0


class TestThreadSafety:
    def test_concurrent_counts_and_spans_under_one_parent(self):
        """Scenario threads interleaving into one collector: counters
        must not lose increments, and spans created on worker threads
        graft under the adopted parent via :meth:`under_span`."""
        t = Telemetry()
        with t.span("campaign.run") as run:
            def work():
                with t.under_span(run.span_id):
                    for _ in range(200):
                        t.count("devices")
                    with t.span("campaign.scenario"):
                        t.set_gauge("depth", 1)

            threads = [threading.Thread(target=work) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert t.counters["devices"] == 800
        scenario_spans = [s for s in t.spans
                         if s.name == "campaign.scenario"]
        assert len(scenario_spans) == 4
        assert all(s.parent_id == run.span_id for s in scenario_spans)
        assert len({s.span_id for s in t.spans}) == len(t.spans)

    def test_under_span_none_is_a_noop(self):
        t = Telemetry()
        with t.under_span(None):
            with t.span("orphan"):
                pass
        assert t.spans[0].parent_id is None


class TestNullTelemetry:
    def test_is_strict_noop(self):
        null = NullTelemetry()
        assert not null.enabled
        assert null.progress_every == 0
        null.count("a", 5)
        null.record_timer("b", 1.0)
        null.set_gauge("g", 1.0)
        with null.timer("c") as timer:
            assert timer.elapsed_s == 0.0
        with null.span("d", x=1) as span:
            span.set(y=2)
            assert span.span_id is None
        with null.under_span(None):
            pass
        assert null.snapshot() == {}

    def test_shared_context_instances(self):
        # The no-op context managers allocate nothing per call.
        null = NullTelemetry()
        assert null.timer("a") is null.timer("b") is null.span("c")


class TestSession:
    def test_default_is_null(self):
        assert current_telemetry() is NULL_TELEMETRY

    def test_session_installs_and_restores(self):
        t = Telemetry()
        with telemetry_session(t) as installed:
            assert installed is t
            assert current_telemetry() is t
            nested = Telemetry()
            with telemetry_session(nested):
                assert current_telemetry() is nested
            assert current_telemetry() is t
        assert current_telemetry() is NULL_TELEMETRY

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry_session(Telemetry()):
                raise RuntimeError("boom")
        assert current_telemetry() is NULL_TELEMETRY


class TestAbsorbWorker:
    def test_merges_counters_timers_and_spans(self):
        worker = Telemetry()
        worker.count("engine.devices", 10)
        worker.record_timer("shard", 0.5)
        with worker.span("outer"):
            with worker.span("inner"):
                pass

        parent = Telemetry()
        parent.count("engine.devices", 5)
        with parent.span("run"):
            parent.absorb_worker(worker.snapshot(), queue_wait_s=0.25)
        assert parent.counters["engine.devices"] == 15
        assert parent.timers["shard"].count == 1
        assert parent.timers["executor.queue_wait"].total_s == \
            pytest.approx(0.25)
        run, outer, inner = parent.spans
        # The worker's span forest is grafted under the active span with
        # fresh ids, preserving its internal parent/child structure.
        assert outer.parent_id == run.span_id
        assert inner.parent_id == outer.span_id
        assert len({s.span_id for s in parent.spans}) == 3

    def test_ignores_transport_keys(self):
        record = Telemetry().snapshot()
        record["pid"] = 123
        record["start_monotonic"] = 1.0
        parent = Telemetry()
        parent.absorb_worker(record)
        assert parent.counters == {} and parent.spans == []


class TestShardProgress:
    def test_logs_on_cadence_and_at_the_end(self):
        logger = logging.getLogger("test.progress.cadence")
        logger.setLevel(logging.INFO)
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        handler = Capture()
        logger.addHandler(handler)
        try:
            progress = ShardProgress(5, every=2, task_sizes=[10] * 5,
                                     logger=logger)
            assert progress.active
            for i in range(5):
                progress.step(i)
        finally:
            logger.removeHandler(handler)
        # shards 2, 4 (cadence) and 5 (final) log; devices/s is rolling.
        assert len(records) == 3
        assert records[0].startswith("shard 2/5 done, 20 devices")
        assert records[-1].startswith("shard 5/5 done, 50 devices")

    def test_zero_cadence_is_inactive(self):
        assert not ShardProgress(5, every=0).active

    def test_schema_version_shape(self):
        assert SCHEMA_VERSION == "repro.metrics/1"

    def test_logger_hierarchy(self):
        assert get_logger().name == "repro"
        assert get_logger("executor").name == "repro.executor"
