"""With telemetry disabled (and enabled), results stay bit-identical.

The acceptance criterion of the observability PR: instrumentation must
never perturb the science.  Every engine's result under an enabled
telemetry session is bit-identical to the uninstrumented run — serial
and sharded over a worker pool — and the CLI's default output carries no
telemetry lines at all.
"""

import numpy as np
import pytest

from repro.analysis import DynamicAnalyzer, DynamicSpec
from repro.cli import main
from repro.core import BistConfig, PartialBistConfig
from repro.production import (
    BatchBistEngine,
    BatchDynamicSuite,
    BatchHistogramTest,
    BatchPartialBistEngine,
    ExecutionPlan,
    Wafer,
    WaferSpec,
)
from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    current_telemetry,
    telemetry_session,
)


def _wafer(n_devices=120, architecture="flash", seed=3):
    return Wafer.draw(WaferSpec(n_bits=6, sigma_code_width_lsb=0.21,
                                n_devices=n_devices,
                                architecture=architecture), rng=seed)


def _engines():
    noise = 0.05
    return [
        ("bist", BatchBistEngine(BistConfig(
            n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
            transition_noise_lsb=noise, deglitch_depth=3))),
        ("partial", BatchPartialBistEngine(PartialBistConfig(
            n_bits=6, q=2, dnl_spec_lsb=1.0,
            transition_noise_lsb=noise))),
        ("histogram", BatchHistogramTest(
            samples_per_code=16.0, dnl_spec_lsb=1.0,
            transition_noise_lsb=noise)),
        ("dynamic", BatchDynamicSuite(
            DynamicAnalyzer(n_samples=256),
            spec=DynamicSpec(min_enob=4.0),
            transition_noise_lsb=noise)),
    ]


def _result_fields(result):
    return {name: value for name, value in vars(result).items()
            if isinstance(value, np.ndarray)}


@pytest.mark.parametrize("name,engine",
                         _engines(), ids=[n for n, _ in _engines()])
@pytest.mark.parametrize("workers", [1, 2])
def test_engine_results_identical_with_telemetry(name, engine, workers):
    wafer = _wafer()
    plan = ExecutionPlan(workers=workers, shard_devices=32)
    baseline = engine.run_wafer(wafer, rng=11, plan=plan)
    assert current_telemetry() is NULL_TELEMETRY
    with telemetry_session(Telemetry(progress_every=1)) as t:
        instrumented = engine.run_wafer(wafer, rng=11, plan=plan)
    for field, value in _result_fields(baseline).items():
        assert np.array_equal(value, getattr(instrumented, field)), field
    assert baseline.n_accepted == instrumented.n_accepted
    # The instrumented run actually collected something.
    assert t.counters[f"engine.{name}.devices"] == len(wafer)
    assert t.counters[f"engine.{name}.shards"] == 4


def test_cli_default_output_carries_no_telemetry(capsys):
    argv = ["campaign", "--q", "full,2", "--devices", "60", "--seed", "9"]
    assert main(argv) == 0
    quiet = capsys.readouterr().out
    assert "elapsed:" not in quiet
    assert "Campaign metrics per scenario" not in quiet
    assert "wrote metrics" not in quiet
    # -v adds the metrics pivot and epilogue *after* the same report.
    assert main(argv + ["-v"]) == 0
    verbose = capsys.readouterr().out
    assert verbose.startswith(quiet.split("\nlots screened")[0])
    assert "Campaign metrics per scenario" in verbose
    assert "elapsed:" in verbose
    assert "campaign.devices = 120" in verbose


def test_metrics_flag_does_not_perturb_stdout(tmp_path, capsys):
    argv = ["lot", "--wafers", "1", "--devices", "150", "--noise", "0.05",
            "--deglitch", "3", "--retest", "1", "--seed", "4"]

    def stable(text):
        # Drop the one wall-clock line, exactly as the CLI identity tests.
        return "\n".join(line for line in text.splitlines()
                         if "devices/s (batched engine)" not in line)

    assert main(argv) == 0
    baseline = stable(capsys.readouterr().out)
    path = tmp_path / "lot.json"
    assert main(argv + ["--metrics", str(path)]) == 0
    out = stable(capsys.readouterr().out)
    assert out == baseline + f"\nwrote metrics to {path}"
    assert path.exists()


def test_session_leaves_no_ambient_state():
    # CLI runs install and tear down the session; library default stays
    # the null object afterwards, so later runs take the seed fast path.
    assert main(["partial", "--devices", "80", "--q", "2"]) == 0
    assert current_telemetry() is NULL_TELEMETRY
