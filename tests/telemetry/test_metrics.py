"""Metrics document and campaign pivot: schema, determinism, export."""

import json

from repro.campaign import Campaign, Scenario
from repro.production import ExecutionPlan
from repro.telemetry import (
    SCHEMA_VERSION,
    MetricsReport,
    Telemetry,
    metrics_document,
    render_metrics,
    telemetry_session,
    write_metrics,
)


def _run_campaign(workers: int) -> Telemetry:
    base = Scenario(n_devices=64, transition_noise_lsb=0.05)
    campaign = Campaign(base.grid(method=["bist", "histogram"]), seed=7)
    with telemetry_session(Telemetry()) as t:
        campaign.run(plan=ExecutionPlan(workers=workers, shard_devices=16))
    return t


class TestMetricsDocument:
    def test_schema_and_shape(self):
        t = Telemetry()
        t.count("b", 2)
        t.count("a", 1)
        with t.timer("x"):
            pass
        with t.span("s"):
            pass
        doc = metrics_document(t, context={"command": "lot"})
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["context"] == {"command": "lot"}
        assert list(doc["counters"]) == ["a", "b"]  # sorted
        assert set(doc["timing"]) == {"timers", "gauges", "scheduling",
                                      "spans"}
        assert doc["timing"]["spans"][0]["name"] == "s"

    def test_pool_counters_route_to_timing_scheduling(self):
        """``pool.*`` counters describe how a run was scheduled, not what
        work was done — they must leave the deterministic top-level
        ``counters`` block and land under ``timing.scheduling``."""
        t = Telemetry()
        t.count("line.devices", 64)
        t.count("pool.workers_spawned", 2)
        t.count("pool.tasks_dispatched", 9)
        doc = metrics_document(t)
        assert doc["counters"] == {"line.devices": 64}
        assert doc["timing"]["scheduling"] == {
            "pool.tasks_dispatched": 9,
            "pool.workers_spawned": 2,
        }

    def test_gauges_land_under_timing(self):
        t = Telemetry()
        t.set_gauge("pool.queue_depth", 3)
        t.set_gauge("pool.queue_depth", 7)
        t.set_gauge("pool.queue_depth", 2)
        doc = metrics_document(t)
        assert doc["counters"] == {}
        assert doc["timing"]["gauges"]["pool.queue_depth"] == {
            "last": 2.0, "max": 7.0}

    def test_render_is_deterministic(self):
        t = Telemetry()
        t.count("z")
        t.count("a")
        text = render_metrics(metrics_document(t))
        assert text == render_metrics(metrics_document(t))
        assert text.index('"a"') < text.index('"z"')
        json.loads(text)  # valid JSON

    def test_non_timing_blocks_identical_across_worker_counts(self):
        """The CI metrics-smoke contract at the library level: counters
        and context are invariant under the execution geometry; only the
        timing block may differ."""
        d1 = metrics_document(_run_campaign(1), context={"seed": 7})
        d2 = metrics_document(_run_campaign(2), context={"seed": 7})
        d1.pop("timing")
        d2.pop("timing")
        assert render_metrics(d1) == render_metrics(d2)
        assert d1["counters"]["campaign.scenarios"] == 2
        assert d1["counters"]["line.devices"] == 128

    def test_write_metrics_file(self, tmp_path):
        t = Telemetry()
        t.count("devices", 3)
        path = tmp_path / "metrics.json"
        write_metrics(str(path), t, context={"command": "campaign"})
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["counters"] == {"devices": 3}


class TestMetricsReport:
    def test_pivot_from_campaign_run(self):
        base = Scenario(n_devices=60)
        campaign = Campaign(base.grid(q=[None, 2]), seed=5)
        result = campaign.run()
        assert result.metrics is not None
        assert [row["label"] for row in result.metrics.rows] == result.labels
        assert result.metrics.total_devices == 120
        table = result.metrics_table()
        assert "Campaign metrics per scenario" in table
        assert "flash/partial q=2" in table
        records = result.metrics.as_records()
        assert all(r["lots"] == 1 for r in records)
        assert all(r["devices"] == 60 for r in records)

    def test_empty_report(self):
        from repro.campaign.driver import CampaignResult

        report = MetricsReport.from_reports([], {})
        assert report.rows == []
        assert report.total_devices == 0
        bare = CampaignResult(scenarios=[], labels=[], seeds=[], reports=[])
        assert bare.metrics is None
        assert bare.metrics_table() == ""
