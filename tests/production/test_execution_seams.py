"""The executor's ambient per-thread seams: abort and shard journaling.

:func:`~repro.production.execution.abort_scope` /
:func:`~repro.production.execution.check_abort` are the cooperative
cancellation a campaign uses to stop sibling scenario threads promptly;
:func:`~repro.production.execution.journal_scope` is the
checkpoint/resume seam of the streaming service.  Both are strictly
opt-in: with neither installed, :meth:`ShardExecutor.map` must behave
exactly as before (the byte-identity suites in ``test_execution.py`` and
``test_pool.py`` pin that side).
"""

import threading

import pytest

from repro.production.execution import (
    ExecutionAborted,
    ExecutionPlan,
    ShardExecutor,
    abort_scope,
    check_abort,
    current_abort,
    current_journal,
    journal_scope,
)


class _MemoryJournal:
    """Minimal in-memory implementation of the journal protocol."""

    def __init__(self, preloaded=None):
        self.results = dict(preloaded or {})
        self.runs = 0
        self.recorded = []

    def begin_attempt(self):
        self.runs = 0

    def begin_run(self, n_tasks):
        run = self.runs
        self.runs += 1
        return run

    def lookup(self, run, index):
        if (run, index) in self.results:
            return True, self.results[(run, index)]
        return False, None

    def record(self, run, index, value):
        self.results[(run, index)] = value
        self.recorded.append((run, index))


def _double(value):
    return value * 2


class TestAbortScope:
    def test_default_is_no_abort(self):
        assert current_abort() is None
        check_abort()  # no-op without an installed event

    def test_none_event_is_noop(self):
        with abort_scope(None):
            assert current_abort() is None

    def test_nesting_and_thread_locality(self):
        outer, inner = threading.Event(), threading.Event()
        with abort_scope(outer):
            assert current_abort() is outer
            with abort_scope(inner):
                assert current_abort() is inner
            assert current_abort() is outer
        assert current_abort() is None
        seen = []
        with abort_scope(outer):
            thread = threading.Thread(
                target=lambda: seen.append(current_abort()))
            thread.start()
            thread.join()
        assert seen == [None]  # another thread never sees our event

    def test_check_abort_raises_when_set(self):
        event = threading.Event()
        with abort_scope(event):
            check_abort()
            event.set()
            with pytest.raises(ExecutionAborted):
                check_abort()

    def test_serial_map_stops_between_tasks(self):
        event = threading.Event()
        executed = []

        def task(i):
            executed.append(i)
            if i == 2:
                event.set()
            return i

        executor = ShardExecutor(ExecutionPlan(workers=1))
        with abort_scope(event):
            with pytest.raises(ExecutionAborted):
                executor.map(task, [(i,) for i in range(10)])
        # Task 2 set the event; task 3 never ran.
        assert executed == [0, 1, 2]

    def test_map_refuses_to_start_when_already_aborted(self):
        event = threading.Event()
        event.set()
        executor = ShardExecutor(ExecutionPlan(workers=1))
        with abort_scope(event):
            with pytest.raises(ExecutionAborted):
                executor.map(_double, [(1,)])


class TestJournalScope:
    def test_default_is_no_journal(self):
        assert current_journal() is None

    def test_records_then_replays(self):
        executor = ShardExecutor(ExecutionPlan(workers=1))
        journal = _MemoryJournal()
        with journal_scope(journal):
            assert executor.map(_double, [(1,), (2,), (3,)]) == [2, 4, 6]
        assert journal.runs == 1
        assert sorted(journal.results) == [(0, 0), (0, 1), (0, 2)]

        calls = []

        def tracked(value):
            calls.append(value)
            return value * 2

        replay = _MemoryJournal(preloaded=journal.results)
        with journal_scope(replay):
            assert executor.map(tracked, [(1,), (2,), (3,)]) == [2, 4, 6]
        assert calls == []  # full replay: nothing recomputed

    def test_partial_replay_dispatches_only_missing(self):
        executor = ShardExecutor(ExecutionPlan(workers=1))
        journal = _MemoryJournal()
        with journal_scope(journal):
            executor.map(_double, [(i,) for i in range(4)])
        # Simulate a crash that lost the middle shards.
        del journal.results[(0, 1)]
        del journal.results[(0, 2)]
        calls = []

        def tracked(value):
            calls.append(value)
            return value * 2

        resumed = _MemoryJournal(preloaded=journal.results)
        with journal_scope(resumed):
            results = executor.map(tracked, [(i,) for i in range(4)])
        assert results == [0, 2, 4, 6]
        assert calls == [1, 2]  # only the lost shards recomputed
        assert resumed.recorded == [(0, 1), (0, 2)]

    def test_run_counter_distinguishes_successive_runs(self):
        executor = ShardExecutor(ExecutionPlan(workers=1))
        journal = _MemoryJournal()
        with journal_scope(journal):
            executor.map(_double, [(1,)])
            executor.map(_double, [(10,)])
        assert journal.results == {(0, 0): 2, (1, 0): 20}
        # begin_attempt resets the numbering for a from-the-top retry.
        journal.begin_attempt()
        calls = []

        def tracked(value):
            calls.append(value)
            return value * 2

        with journal_scope(journal):
            assert executor.map(tracked, [(1,)]) == [2]
            assert executor.map(tracked, [(10,)]) == [20]
        assert calls == []  # both runs replayed under their old indices

    def test_journal_is_thread_local(self):
        journal = _MemoryJournal()
        seen = []
        with journal_scope(journal):
            thread = threading.Thread(
                target=lambda: seen.append(current_journal()))
            thread.start()
            thread.join()
        assert seen == [None]
