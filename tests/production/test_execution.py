"""Shard-invariance suite for the deterministic scale-out layer.

The contract under test is the execution layer's headline invariant: for
any ``(workers, chunk_size)`` plan geometry, a plan-based run of any batch
engine is bit-identical to the serial (``workers=1``) run — including the
noisy stream paths (per-shard-index seed spawning) and the multi-converter
chip modes (per-chip seed spawning).  Plus the plumbing around it: plan
validation, shard bounds, sliced wafer draws, plan-threaded screening
lines and the shard-merge of the result store.
"""

import numpy as np
import pytest

from harness import (
    PLAN_GRID,
    assert_batch_results_identical,
    assert_plan_invariant,
    draw_wafer,
)
from repro.analysis import DynamicAnalyzer, DynamicSpec
from repro.core import BistConfig, PartialBistConfig
from repro.production import (
    BatchBistEngine,
    BatchBistResult,
    BatchDynamicSuite,
    BatchHistogramTest,
    BatchPartialBistEngine,
    ExecutionPlan,
    Lot,
    ResultStore,
    ScreeningLine,
    ShardExecutor,
    Wafer,
    WaferSpec,
)
from repro.production.execution import (
    iter_slices,
    resolve_plan_seed,
    spawn_shard_seeds,
)

#: (architecture, transition_noise_lsb) scenarios the invariance grid
#: sweeps per engine: one event/noise-free path, one noisy stream path.
SCENARIOS = [("flash", 0.0), ("sar", 0.03)]


def _bist_config(noise: float) -> BistConfig:
    return BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                      transition_noise_lsb=noise,
                      deglitch_depth=3 if noise > 0 else 0)


class TestExecutionPlan:
    def test_defaults(self):
        plan = ExecutionPlan()
        assert plan.workers == 1
        assert plan.chunk_size is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionPlan(workers=0)
        with pytest.raises(ValueError):
            ExecutionPlan(chunk_size=0)
        with pytest.raises(ValueError):
            ExecutionPlan(shard_devices=0)

    def test_shard_bounds_cover_the_axis(self):
        bounds = ExecutionPlan(shard_devices=64).shard_bounds(150)
        assert bounds == [(0, 64), (64, 128), (128, 150)]

    def test_shard_bounds_are_worker_independent(self):
        a = ExecutionPlan(workers=1, shard_devices=32).shard_bounds(100)
        b = ExecutionPlan(workers=8, shard_devices=32).shard_bounds(100)
        assert a == b

    def test_shard_bounds_align_to_chips(self):
        bounds = ExecutionPlan(shard_devices=10).shard_bounds(48, align=4)
        assert all(lo % 4 == 0 and hi % 4 == 0 for lo, hi in bounds)
        assert bounds[0] == (0, 12)  # 10 rounded up to a multiple of 4
        with pytest.raises(ValueError):
            ExecutionPlan(shard_devices=10).shard_bounds(49, align=4)

    def test_iter_slices(self):
        assert list(iter_slices(7, 3)) == [(0, 3), (3, 6), (6, 7)]
        assert list(iter_slices(0, 3)) == []
        with pytest.raises(ValueError):
            list(iter_slices(5, 0))


class TestSeedSpawning:
    def test_per_shard_seeds_are_index_deterministic(self):
        a = spawn_shard_seeds(42, 5)
        b = spawn_shard_seeds(42, 3)
        for seq_a, seq_b in zip(a, b):
            assert np.array_equal(
                np.random.default_rng(seq_a).integers(0, 1 << 30, 4),
                np.random.default_rng(seq_b).integers(0, 1 << 30, 4))

    def test_spawning_does_not_mutate_a_reused_seed_sequence(self):
        """Spawning must be stateless: running twice with the same
        SeedSequence object (whose spawn counter root.spawn() would
        advance) has to give the same children — and therefore the same
        noisy plan-based results."""
        root = np.random.SeedSequence(11)
        first = spawn_shard_seeds(root, 3)
        second = spawn_shard_seeds(root, 3)
        for a, b in zip(first, second):
            assert a.spawn_key == b.spawn_key
        wafer = draw_wafer(40, "flash", seed=2)
        engine = BatchBistEngine(_bist_config(0.05))
        shared = np.random.SeedSequence(4)
        plan = ExecutionPlan(workers=1, shard_devices=16)
        r1 = engine.run_wafer(wafer, rng=shared, plan=plan)
        r2 = engine.run_wafer(wafer, rng=shared, plan=plan)
        assert_batch_results_identical(r1, r2)

    def test_generator_rejected_for_plans(self):
        with pytest.raises(ValueError):
            resolve_plan_seed(np.random.default_rng(0), None)
        assert resolve_plan_seed(None, 7) == 7
        assert resolve_plan_seed(3, 7) == 3


@pytest.mark.parametrize("architecture,noise", SCENARIOS)
class TestShardInvarianceGrid:
    """Every engine × (workers × chunk_size), bit-exact vs the serial run."""

    def test_full_bist(self, architecture, noise):
        wafer = draw_wafer(150, architecture, seed=29)
        engine = BatchBistEngine(_bist_config(noise))
        result = assert_plan_invariant(
            lambda plan: engine.run_wafer(wafer, rng=5, plan=plan))
        assert 0 < result.n_accepted <= result.n_devices

    def test_partial_bist(self, architecture, noise):
        wafer = draw_wafer(150, architecture, seed=29)
        engine = BatchPartialBistEngine(PartialBistConfig(
            n_bits=6, q=2, dnl_spec_lsb=1.0, transition_noise_lsb=noise))
        assert_plan_invariant(
            lambda plan: engine.run_wafer(wafer, rng=5, plan=plan))

    def test_histogram(self, architecture, noise):
        wafer = draw_wafer(150, architecture, seed=29)
        test = BatchHistogramTest(samples_per_code=16.0, dnl_spec_lsb=1.0,
                                  transition_noise_lsb=noise)
        assert_plan_invariant(
            lambda plan: test.run_wafer(wafer, rng=5, plan=plan),
            shard_devices=48)

    def test_dynamic(self, architecture, noise):
        wafer = draw_wafer(60, architecture, seed=29)
        suite = BatchDynamicSuite(analyzer=DynamicAnalyzer(n_samples=1024),
                                  spec=DynamicSpec(min_enob=4.0),
                                  transition_noise_lsb=noise)
        assert_plan_invariant(
            lambda plan: suite.run_wafer(wafer, rng=5, plan=plan),
            shard_devices=16)

    def test_full_bist_chip_mode(self, architecture, noise):
        wafer = draw_wafer(144, architecture, seed=29)
        engine = BatchBistEngine(_bist_config(noise))
        result = assert_plan_invariant(
            lambda plan: engine.run_chips(wafer, 4, rng=11, plan=plan),
            shard_devices=48)
        assert result.n_chips == 36

    def test_partial_chip_mode(self, architecture, noise):
        wafer = draw_wafer(144, architecture, seed=29)
        engine = BatchPartialBistEngine(PartialBistConfig(
            n_bits=6, q=2, dnl_spec_lsb=1.0, transition_noise_lsb=noise))
        result = assert_plan_invariant(
            lambda plan: engine.run_chips(wafer, 4, rng=11, plan=plan),
            shard_devices=48)
        assert result.n_chips == 36


class TestPlanMatchesSingleShot:
    """Noise-free plan runs equal the plain single-shot engine runs."""

    @pytest.mark.parametrize("workers,chunk", PLAN_GRID)
    def test_event_path_equals_legacy(self, workers, chunk):
        wafer = draw_wafer(130, "flash", seed=3)
        engine = BatchBistEngine(_bist_config(0.0))
        legacy = engine.run_wafer(wafer)
        planned = engine.run_wafer(
            wafer, plan=ExecutionPlan(workers=workers, chunk_size=chunk,
                                      shard_devices=50))
        assert_batch_results_identical(legacy, planned)

    def test_generator_rejected_with_plan(self):
        wafer = draw_wafer(20, "flash", seed=3)
        engine = BatchBistEngine(_bist_config(0.05))
        with pytest.raises(ValueError):
            engine.run_wafer(wafer, rng=np.random.default_rng(0),
                             plan=ExecutionPlan(workers=2))

    def test_executor_runs_any_conforming_engine(self):
        wafer = draw_wafer(90, "flash", seed=3)
        engine = BatchBistEngine(_bist_config(0.0))
        executor = ShardExecutor(ExecutionPlan(workers=2, shard_devices=40))
        result = executor.run(engine, wafer.transitions,
                              wafer.spec.full_scale, wafer.spec.sample_rate)
        assert isinstance(result, BatchBistResult)
        assert result.n_devices == 90


class TestWaferSliceDraw:
    @pytest.mark.parametrize("architecture", ["flash", "sar", "pipeline"])
    def test_slice_matches_sharded_draw(self, architecture):
        spec = WaferSpec(n_devices=100, architecture=architecture)
        full = Wafer.draw_sharded(spec, seed=9, block_devices=32)
        for lo, hi in [(0, 100), (10, 20), (30, 34), (31, 33), (90, 100)]:
            np.testing.assert_array_equal(
                full.transitions[lo:hi],
                Wafer.draw_slice(spec, lo, hi, seed=9, block_devices=32))

    def test_empty_slice(self):
        spec = WaferSpec(n_devices=10)
        assert Wafer.draw_slice(spec, 4, 4, seed=0).shape == (0, 63)

    def test_invalid_arguments(self):
        spec = WaferSpec(n_devices=10)
        with pytest.raises(ValueError):
            Wafer.draw_slice(spec, 0, 11, seed=0)
        with pytest.raises(ValueError):
            Wafer.draw_slice(spec, 0, 5, seed=None)
        with pytest.raises(ValueError):
            Wafer.draw_slice(spec, 0, 5, seed=0, block_devices=0)

    def test_sharded_draw_is_reproducible(self):
        spec = WaferSpec(n_devices=50)
        a = Wafer.draw_sharded(spec, seed=4, block_devices=16)
        b = Wafer.draw_sharded(spec, seed=4, block_devices=16)
        np.testing.assert_array_equal(a.transitions, b.transitions)


class TestScreeningLinePlan:
    def _line(self) -> ScreeningLine:
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                            transition_noise_lsb=0.05, deglitch_depth=3)
        return ScreeningLine(config, retest_attempts=1)

    def test_reports_identical_across_plan_geometries(self):
        lot = Lot.draw(WaferSpec(n_devices=120), n_wafers=2, seed=6)
        reports = []
        stores = []
        for workers, chunk in [(1, None), (2, 31), (2, None)]:
            store = ResultStore()
            report = self._line().screen_lot(
                lot, rng=9, store=store,
                plan=ExecutionPlan(workers=workers, chunk_size=chunk,
                                   shard_devices=50))
            reports.append(report)
            stores.append(store)
        base = reports[0]
        for report in reports[1:]:
            assert report.n_accepted == base.n_accepted
            assert report.bin_counts == base.bin_counts
            assert report.type_i == base.type_i
            assert report.type_ii == base.type_ii
            assert report.tester_seconds == base.tester_seconds
        for store in stores[1:]:
            assert store.lot_table() == stores[0].lot_table()
            assert store.method_table() == stores[0].method_table()
            assert store.bin_table() == stores[0].bin_table()

    def test_generator_rejected_with_plan(self):
        lot = Lot.draw(WaferSpec(n_devices=40), n_wafers=1, seed=6)
        with pytest.raises(ValueError):
            self._line().screen_lot(lot, rng=np.random.default_rng(0),
                                    plan=ExecutionPlan(workers=2))


class TestResultStoreMerge:
    def test_sharded_stores_merge_to_the_sequential_tables(self):
        spec = WaferSpec(n_devices=80)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=0.5)
        lots = [Lot.draw(spec, n_wafers=1, seed=s, lot_id=f"L{s}")
                for s in (1, 2, 3)]

        sequential = ResultStore()
        partials = []
        for method, lot in zip(("bist", "histogram", "bist"), lots):
            line = ScreeningLine(config, method=method)
            line.screen_lot(lot, rng=0, store=sequential)
            partial = ResultStore()
            line.screen_lot(lot, rng=0, store=partial)
            partials.append(partial)

        merged = ResultStore.merge(partials)
        assert merged.lot_table() == sequential.lot_table()
        assert merged.method_table() == sequential.method_table()
        assert merged.scenario_table() == sequential.scenario_table()
        assert merged.bin_table() == sequential.bin_table()
        assert merged.total_devices == sequential.total_devices

    def test_scenario_table_splits_architectures(self):
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
        store = ResultStore()
        for arch in ("flash", "sar"):
            lot = Lot.draw(WaferSpec(n_devices=40, architecture=arch),
                           n_wafers=1, seed=2, lot_id=arch)
            ScreeningLine(config).screen_lot(lot, rng=0, store=store)
        table = store.scenario_table()
        assert "flash/full" in table
        assert "sar/full" in table


class TestResultMergeClassmethods:
    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            BatchBistResult.merge([])

    def test_mismatched_shards_rejected(self):
        wafer = draw_wafer(40, "flash", seed=1)
        engine = BatchBistEngine(_bist_config(0.0))
        a = engine.run_wafer(wafer)
        b = engine.run_wafer(wafer)
        b.samples_taken += 1
        with pytest.raises(ValueError):
            BatchBistResult.merge([a, b])

    def test_merge_concatenates_in_shard_order(self):
        wafer = draw_wafer(60, "flash", seed=1)
        engine = BatchBistEngine(_bist_config(0.0))
        whole = engine.run_wafer(wafer)
        context = engine.prepare(wafer.transitions)
        parts = [engine.run_shard(context, wafer.transitions[lo:hi])
                 for lo, hi in [(0, 25), (25, 60)]]
        assert_batch_results_identical(whole, BatchBistResult.merge(parts))


class TestBackendChunkDefaults:
    """The backend-derived default chunk size is a pure memory knob.

    ``chunk_size=None`` now resolves to a memory-bandwidth-aware default
    computed from the active backend's per-row bytes; these tests pin
    (a) that the default dispatch stays byte-identical to any explicit
    chunk size, under both the plain and compacted backends, and (b)
    that compacted rows really do widen the default.
    """

    def _run(self, engine, wafer, chunk_size, backend):
        from repro.core.backend import backend_scope

        with backend_scope(backend):
            return engine.run_wafer(wafer, rng=np.random.default_rng(5),
                                    chunk_size=chunk_size)

    @pytest.mark.parametrize("backend", ["numpy", "numpy-compact"])
    def test_default_chunk_is_byte_identical_full_bist(self, backend):
        wafer = draw_wafer(90, "flash", seed=3)
        engine = BatchBistEngine(_bist_config(0.05))
        default = self._run(engine, wafer, None, backend)
        explicit = self._run(engine, wafer, 7, backend)
        assert_batch_results_identical(default, explicit)

    @pytest.mark.parametrize("backend", ["numpy", "numpy-compact"])
    def test_default_chunk_is_byte_identical_histogram(self, backend):
        wafer = draw_wafer(70, "flash", seed=3)
        test = BatchHistogramTest(samples_per_code=16.0, dnl_spec_lsb=0.5,
                                  transition_noise_lsb=0.04)
        default = self._run(test, wafer, None, backend)
        explicit = self._run(test, wafer, 11, backend)
        assert_batch_results_identical(default, explicit)

    def test_plan_default_chunk_matches_serial_reference(self):
        # Warm-dispatch path: plan execution with the default chunk must
        # equal the serial in-process run, compacted backend included.
        from repro.core.backend import backend_scope

        wafer = draw_wafer(120, "flash", seed=3)
        engine = BatchBistEngine(_bist_config(0.0))
        reference = engine.run_wafer(wafer)
        with backend_scope("numpy-compact"):
            planned = engine.run_wafer(
                wafer, plan=ExecutionPlan(workers=2, shard_devices=32))
        assert_batch_results_identical(reference, planned)

    def test_compact_rows_widen_the_event_chunk(self):
        from repro.core.backend import backend_scope
        from repro.production.batch_engine import (
            _event_chunk_size,
            _stream_chunk_size,
        )

        n_transitions, n_samples = 63, 4369
        wide = _event_chunk_size(n_transitions, n_samples)
        with backend_scope("numpy-compact"):
            compact_wide = _event_chunk_size(n_transitions, n_samples)
        assert compact_wide == 2 * wide  # int64 → int32 indices

        narrow = _stream_chunk_size(n_transitions, n_samples)
        with backend_scope("numpy-compact"):
            compact_narrow = _stream_chunk_size(n_transitions, n_samples)
        assert compact_narrow > narrow  # int16 codes shrink the row
