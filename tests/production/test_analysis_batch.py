"""Batched conventional-test analysis: equivalence, properties, line wiring.

The analysis-batch layer's contract mirrors the batch BIST engines': the
same decisions and estimates as the scalar suites, bit for bit, on every
path — plus the statistical property that makes the histogram test a test
at all (estimated code widths converge to the drawn ones as the ramp
densifies), and the screening-line integration that turns both suites into
stations with per-method economics.
"""

import numpy as np
import pytest

from harness import (
    assert_dynamic_equivalent,
    assert_histogram_equivalent,
    draw_wafer,
)
from repro.analysis import DynamicAnalyzer, DynamicSpec, HistogramTest
from repro.core import BistConfig
from repro.economics import TesterModel
from repro.production import (
    BatchDynamicSuite,
    BatchHistogramTest,
    Lot,
    ResultStore,
    ScreeningLine,
    Wafer,
    WaferSpec,
)


class TestBatchHistogramEquivalence:
    def test_1k_device_paper_production_bit_exact(self):
        """The acceptance-criterion case: 1k devices, the paper's
        4096-sample production configuration, bit-exact."""
        wafer = draw_wafer(1000, "flash", seed=1997)
        test = BatchHistogramTest.paper_production(n_bits=6,
                                                   dnl_spec_lsb=0.5)
        _, batch = assert_histogram_equivalent(test, wafer)
        assert 0.0 < batch.accept_fraction < 1.0

    @pytest.mark.parametrize("architecture", ["flash", "sar", "pipeline"])
    @pytest.mark.parametrize("noise", [0.0, 0.05])
    def test_architectures_and_noise(self, architecture, noise):
        wafer = draw_wafer(120, architecture, seed=11)
        test = BatchHistogramTest(samples_per_code=16.0, dnl_spec_lsb=0.5,
                                  inl_spec_lsb=1.0,
                                  transition_noise_lsb=noise)
        assert_histogram_equivalent(test, wafer, rng=3)

    def test_noisy_chunking_preserves_rng_order(self):
        wafer = draw_wafer(50, "flash", seed=3)
        test = BatchHistogramTest(samples_per_code=16.0,
                                  transition_noise_lsb=0.05)
        one = test.run_transitions(wafer.transitions, rng=5, chunk_size=50)
        many = test.run_transitions(wafer.transitions, rng=5, chunk_size=7)
        np.testing.assert_array_equal(one.passed, many.passed)
        np.testing.assert_array_equal(one.counts, many.counts)

    def test_unmeasurable_device_fails_with_nan(self):
        """A die whose curve sits entirely above the ramp never produces
        an inner-bin sample: the scalar test raises, the batch flags it."""
        wafer = draw_wafer(5, "flash", seed=2)
        transitions = wafer.transitions.copy()
        transitions[2] = 10.0  # far above full scale + margin
        test = BatchHistogramTest(samples_per_code=16.0)
        result = test.run_transitions(transitions)
        assert not result.measurable[2]
        assert not result.passed[2]
        assert np.isnan(result.measured_max_dnl_lsb[2])
        with pytest.raises(ValueError):
            test.scalar.evaluate_codes(np.zeros(result.samples_taken,
                                                dtype=int), n_bits=6)
        # The other dies are unaffected.
        reference = test.run_wafer(wafer)
        keep = [0, 1, 3, 4]
        np.testing.assert_array_equal(result.passed[keep],
                                      reference.passed[keep])

    def test_resolution_inferred_from_matrix(self):
        test = BatchHistogramTest()
        with pytest.raises(ValueError):
            test.run_transitions(np.zeros((4, 62)))  # not 2**n - 1
        with pytest.raises(ValueError):
            test.run_transitions(np.zeros(63))  # not a matrix

    def test_data_volume_bookkeeping(self):
        wafer = draw_wafer(10, "flash", seed=1)
        result = BatchHistogramTest(samples_per_code=16.0).run_wafer(wafer)
        assert result.bits_transferred_per_device == result.samples_taken * 6
        assert result.off_chip_bits_transferred == \
            10 * result.bits_transferred_per_device
        assert result.counts.sum() == 10 * result.samples_taken


class TestBatchHistogramConvergence:
    """Estimated code widths must converge to the drawn widths."""

    DENSITIES = (8.0, 64.0, 256.0)

    @pytest.mark.parametrize("architecture", ["flash", "sar", "pipeline"])
    def test_width_estimates_converge(self, architecture):
        wafer = draw_wafer(40, architecture, seed=13)
        # The drawn code-width matrix in LSB (what the backend realised).
        # A histogram estimates *sample occupancy*, which only equals the
        # signed drawn width on monotone curves — non-monotone gross
        # defects (possible for SAR draws) are excluded from the bound.
        drawn = np.diff(wafer.transitions, axis=1) / wafer.spec.lsb
        monotone = (drawn >= 0).all(axis=1)
        assert monotone.sum() >= 35, "the draw should be mostly monotone"
        worst = []
        for samples_per_code in self.DENSITIES:
            result = BatchHistogramTest(
                samples_per_code=samples_per_code).run_wafer(wafer)
            estimated = result.estimated_code_widths_lsb()
            worst.append(np.abs(estimated - drawn)[monotone].max())
        # Each crossing index quantises to one sample, so the width error
        # is below 2 samples = 2 / samples_per_code LSB.
        for samples_per_code, err in zip(self.DENSITIES, worst):
            assert err <= 2.0 / samples_per_code + 1e-9, (
                f"{architecture}: width error {err:.4f} LSB at "
                f"{samples_per_code} samples/code")
        # And the error genuinely shrinks as the ramp densifies.
        assert worst[-1] < worst[0]

    def test_estimates_match_scalar_definition(self):
        """The width estimator is the inner histogram over the density."""
        wafer = draw_wafer(8, "flash", seed=5)
        test = BatchHistogramTest(samples_per_code=32.0)
        result = test.run_wafer(wafer)
        np.testing.assert_allclose(result.estimated_code_widths_lsb(),
                                   result.counts[:, 1:-1] / 32.0)


class TestBatchDynamicEquivalence:
    def test_noise_free_bit_exact(self):
        wafer = draw_wafer(40, "flash", seed=23)
        suite = BatchDynamicSuite(analyzer=DynamicAnalyzer(n_samples=1024),
                                  spec=DynamicSpec(min_enob=5.0))
        _, batch = assert_dynamic_equivalent(suite, wafer)
        assert 0.0 < batch.accept_fraction < 1.0

    def test_noisy_consumes_rng_in_device_order(self):
        wafer = draw_wafer(30, "sar", seed=7)
        suite = BatchDynamicSuite(analyzer=DynamicAnalyzer(n_samples=1024),
                                  spec=DynamicSpec(min_enob=4.5),
                                  transition_noise_lsb=0.3)
        assert_dynamic_equivalent(suite, wafer, rng=17)

    def test_multi_limit_spec(self):
        wafer = draw_wafer(30, "pipeline", seed=9)
        spec = DynamicSpec(min_enob=5.0, max_thd_db=-25.0,
                           min_sfdr_db=30.0)
        suite = BatchDynamicSuite(analyzer=DynamicAnalyzer(n_samples=1024),
                                  spec=spec)
        assert_dynamic_equivalent(suite, wafer)

    def test_default_spec_resolves_from_resolution(self):
        suite = BatchDynamicSuite()
        assert suite.resolved_spec(6).min_enob == pytest.approx(5.0)
        assert suite.resolved_spec(8).min_enob == pytest.approx(7.0)

    def test_spec_requires_a_limit(self):
        with pytest.raises(ValueError):
            DynamicSpec()

    def test_enob_shortfall_is_binning_metric(self):
        wafer = draw_wafer(20, "flash", seed=3)
        suite = BatchDynamicSuite(analyzer=DynamicAnalyzer(n_samples=1024),
                                  spec=DynamicSpec(min_enob=5.0))
        result = suite.run_wafer(wafer)
        np.testing.assert_allclose(
            result.enob_shortfall_lsb,
            np.maximum(6.0 - result.enob, 0.0))
        assert result.bits_transferred_per_device == 1024 * 6


class TestAnalysisScreeningLine:
    def test_histogram_line_matches_engine_decisions(self):
        lot = Lot.draw(WaferSpec(n_devices=300, architecture="sar"),
                       n_wafers=1, seed=31, lot_id="H-31")
        config = BistConfig(n_bits=6, dnl_spec_lsb=0.5)
        line = ScreeningLine(config, method="histogram",
                             samples_per_code=32.0)
        store = ResultStore()
        report = line.screen_lot(lot, rng=0, store=store)
        direct = BatchHistogramTest(samples_per_code=32.0,
                                    dnl_spec_lsb=0.5).run_wafer(
                                        lot.wafers[0])
        assert report.n_accepted == direct.n_accepted
        assert report.method == "histogram"
        assert report.scenario == "sar/histogram"
        assert report.q == 6  # full words captured
        assert "histogram" in store.lot_table()
        assert "histogram" in store.method_table()

    def test_dynamic_line_screens_and_bins(self):
        lot = Lot.draw(WaferSpec(n_devices=120), n_wafers=1, seed=5,
                       lot_id="D-5")
        config = BistConfig(n_bits=6, dnl_spec_lsb=0.5)
        line = ScreeningLine(config, method="dynamic",
                             dynamic_analyzer=DynamicAnalyzer(
                                 n_samples=1024),
                             dynamic_spec=DynamicSpec(min_enob=5.0),
                             bin_edges_lsb=(0.5, 0.8))
        report = line.screen_lot(lot, rng=0)
        assert report.method == "dynamic"
        assert report.samples_per_device == 1024
        assert sum(report.bin_counts.values()) == report.n_accepted
        assert 0 < report.n_accepted < report.n_devices

    def test_histogram_retest_with_noise_recovers(self):
        lot = Lot.draw(WaferSpec(n_devices=250), n_wafers=1, seed=11)
        config = BistConfig(n_bits=6, dnl_spec_lsb=0.5,
                            transition_noise_lsb=0.1)
        line = ScreeningLine(config, method="histogram",
                             samples_per_code=16.0, retest_attempts=1)
        report = line.screen_lot(lot, rng=3)
        retest = [s for s in report.stations if s.name == "retest"]
        assert len(retest) == 1 and retest[0].n_in > 0

    def test_method_economics_defaults(self):
        """Conventional methods need (and are priced on) a mixed-signal
        tester; the full BIST keeps its cheap digital tester."""
        wafer = Wafer.draw(WaferSpec(n_devices=200), rng=7)
        config = BistConfig(n_bits=6, dnl_spec_lsb=1.0)
        bist_line = ScreeningLine(config)
        histogram_line = ScreeningLine(config, method="histogram",
                                       samples_per_code=64.0)
        assert not bist_line.tester.has_mixed_signal
        assert histogram_line.tester.has_mixed_signal
        bist_report = bist_line.screen_lot(wafer, rng=0)
        histogram_report = histogram_line.screen_lot(wafer, rng=0)
        assert histogram_report.cost_per_device > \
            bist_report.cost_per_device
        assert histogram_report.devices_per_hour < \
            bist_report.devices_per_hour

    def test_line_validation(self):
        config = BistConfig(n_bits=6)
        with pytest.raises(ValueError):
            ScreeningLine(config, method="thermal")
        with pytest.raises(ValueError):
            ScreeningLine(config, method="histogram", partial_q=2)
        with pytest.raises(ValueError):
            ScreeningLine(BistConfig(n_bits=6, deglitch_depth=2),
                          method="histogram")

    def test_explicit_tester_still_honoured(self):
        config = BistConfig(n_bits=6)
        line = ScreeningLine(config, method="histogram",
                             tester=TesterModel.mixed_signal())
        assert line.tester.name == "mixed-signal ATE"

    def test_describe_per_method(self):
        config = BistConfig(n_bits=6, dnl_spec_lsb=0.5)
        assert "full BIST" in ScreeningLine(config).describe()
        assert "histogram" in ScreeningLine(
            config, method="histogram").describe()
        assert "ENOB" in ScreeningLine(config, method="dynamic").describe()


class TestSharedWaferComparison:
    def test_bist_and_histogram_screen_the_same_dies(self):
        """The repro-compare contract: one wafer draw, two methods, and
        the decisions refer to the identical transfer curves (so the
        type I/II differences are attributable to the method alone)."""
        wafer = Wafer.draw(WaferSpec(n_devices=400,
                                     sigma_code_width_lsb=0.21), rng=1997)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=0.5)
        store = ResultStore()
        for method in ("bist", "histogram"):
            line = ScreeningLine(config, method=method,
                                 samples_per_code=64.0)
            line.screen_lot(Wafer(wafer.spec, wafer.transitions,
                                  wafer.wafer_id), rng=0, store=store)
        reports = store.reports
        assert reports[0].p_good == reports[1].p_good  # same truth
        # Both methods track the truth closely at the paper's settings.
        for report in reports:
            assert report.type_i + report.type_ii < 0.1
        table = store.method_table()
        assert "bist" in table and "histogram" in table
