"""Tests for the screening line, its stations and the result store."""

import numpy as np
import pytest

from repro.core import BistConfig
from repro.economics import TesterModel
from repro.production import (
    Lot,
    ResultStore,
    ScreeningLine,
    Wafer,
    WaferSpec,
)


@pytest.fixture
def small_lot():
    return Lot.draw(WaferSpec(n_devices=400, sigma_code_width_lsb=0.21),
                    n_wafers=2, seed=3, lot_id="LOT-T")


class TestScreeningLine:
    def test_deterministic_screen(self, small_lot):
        config = BistConfig(n_bits=6, counter_bits=4, dnl_spec_lsb=0.5)
        line = ScreeningLine(config)
        report = line.screen_lot(small_lot, rng=0)
        assert report.lot_id == "LOT-T"
        assert report.n_devices == 800
        assert 0 < report.n_accepted < 800
        assert report.n_accepted + report.n_rejected == 800
        assert report.accept_fraction == pytest.approx(
            report.n_accepted / 800)
        # Station chain: bist then binning (no retest configured).
        names = [s.name for s in report.stations]
        assert names == ["bist", "binning"]
        assert sum(report.bin_counts.values()) == report.n_accepted
        assert report.tester_seconds > 0
        assert report.devices_per_hour > 0
        assert report.cost_per_device > 0

    def test_noise_free_retest_recovers_nothing(self, small_lot):
        config = BistConfig(n_bits=6, counter_bits=4, dnl_spec_lsb=0.5)
        line = ScreeningLine(config, retest_attempts=2)
        report = line.screen_lot(small_lot, rng=0)
        # The BIST is deterministic without noise: retest changes nothing.
        assert report.n_recovered == 0
        retest = [s for s in report.stations if s.name == "retest"][0]
        assert retest.n_accepted == 0
        assert retest.n_in > 0

    def test_noisy_retest_recovers_devices(self, small_lot):
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                            transition_noise_lsb=0.02, deglitch_depth=2)
        baseline = ScreeningLine(config).screen_lot(small_lot, rng=1)
        line = ScreeningLine(config, retest_attempts=1)
        report = line.screen_lot(small_lot, rng=1)
        assert report.n_recovered > 0
        assert report.n_accepted >= baseline.n_accepted

    def test_error_rates_match_batch_engine(self, small_lot):
        config = BistConfig(n_bits=6, counter_bits=4, dnl_spec_lsb=0.5)
        report = ScreeningLine(config).screen_lot(small_lot, rng=0)
        accepted = []
        good = []
        from repro.production import BatchBistEngine
        engine = BatchBistEngine(config)
        for wafer in small_lot:
            accepted.append(engine.run_wafer(wafer).passed)
            good.append(wafer.good_mask(0.5))
        accepted = np.concatenate(accepted)
        good = np.concatenate(good)
        assert report.type_i == pytest.approx(np.mean(good & ~accepted))
        assert report.type_ii == pytest.approx(np.mean(~good & accepted))
        assert report.p_good == pytest.approx(good.mean())

    def test_single_wafer_is_a_lot(self):
        wafer = Wafer.draw(WaferSpec(n_devices=100), rng=2, wafer_id="solo")
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
        report = ScreeningLine(config).screen_lot(wafer, rng=0)
        assert report.lot_id == "solo"
        assert report.n_devices == 100

    def test_binning_edges(self, small_lot):
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
        line = ScreeningLine(config, bin_edges_lsb=(0.4, 0.6, 0.8))
        assert line.bin_names() == ["bin-1", "bin-2", "bin-3", "bin-4"]
        report = line.screen_lot(small_lot, rng=0)
        assert set(report.bin_counts) == set(line.bin_names())
        assert sum(report.bin_counts.values()) == report.n_accepted
        with pytest.raises(ValueError):
            ScreeningLine(config, bin_edges_lsb=(0.5, 0.4))
        with pytest.raises(ValueError):
            ScreeningLine(config, retest_attempts=-1)

    def test_tester_economics_scale(self, small_lot):
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
        digital = ScreeningLine(config, tester=TesterModel.digital_only())
        mixed = ScreeningLine(config, tester=TesterModel.mixed_signal())
        r_dig = digital.screen_lot(small_lot, rng=0)
        r_mix = mixed.screen_lot(small_lot, rng=0)
        # Per-insertion operating cost is higher on the mixed-signal ATE.
        assert r_mix.cost_per_device > r_dig.cost_per_device
        # 128 vs 64 digital channels: the digital floor moves more devices.
        assert r_dig.devices_per_hour > r_mix.devices_per_hour


class TestResultStore:
    def test_accumulation_and_tables(self, small_lot):
        config = BistConfig(n_bits=6, counter_bits=4, dnl_spec_lsb=0.5)
        line = ScreeningLine(config)
        store = ResultStore()
        line.screen_lot(small_lot, rng=0, store=store)
        other = Lot.draw(WaferSpec(n_devices=150), n_wafers=1, seed=9,
                         lot_id="LOT-U")
        line.screen_lot(other, rng=0, store=store)

        assert len(store) == 2
        assert store.total_devices == 950
        assert store.total_accepted == sum(r.n_accepted
                                           for r in store.reports)
        assert 0 < store.overall_accept_fraction < 1
        assert store.total_tester_seconds > 0
        assert store.overall_devices_per_hour > 0
        assert sum(store.bin_totals().values()) == store.total_accepted

        lot_table = store.lot_table()
        assert "LOT-T" in lot_table and "LOT-U" in lot_table
        station_table = store.station_table()
        assert "bist" in station_table and "binning" in station_table
        bin_table = store.bin_table()
        assert "bin-1" in bin_table
        summary = store.summary()
        assert "lots screened: 2" in summary
        assert "devices screened: 950" in summary

    def test_station_totals_merge(self, small_lot):
        config = BistConfig(n_bits=6, counter_bits=4, dnl_spec_lsb=0.5)
        line = ScreeningLine(config, retest_attempts=1)
        store = ResultStore()
        line.screen_lot(small_lot, rng=0, store=store)
        line.screen_lot(small_lot, rng=0, store=store)
        totals = {s.name: s for s in store.station_totals()}
        assert totals["bist"].n_in == 1600
        per_lot = [r for r in store.reports]
        assert totals["retest"].n_in == sum(
            s.n_in for r in per_lot for s in r.stations
            if s.name == "retest")

    def test_bin_table_orders_double_digit_bins_naturally(self, small_lot):
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
        edges = tuple(0.30 + 0.03 * i for i in range(10))
        line = ScreeningLine(config, bin_edges_lsb=edges)
        store = ResultStore()
        line.screen_lot(small_lot, rng=0, store=store)
        table = store.bin_table()
        lines = [row.split()[0] for row in table.splitlines()[3:]]
        assert lines == line.bin_names()  # bin-2 before bin-10, etc.

    def test_empty_store(self):
        store = ResultStore()
        assert store.total_devices == 0
        assert store.overall_accept_fraction == 0.0
        assert "lots screened: 0" in store.summary()
