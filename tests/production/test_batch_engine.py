"""Scalar-vs-batch equivalence and batch LSB-extraction property tests.

The batch engine's contract is exactness: on the same seeded population it
must reproduce the scalar engine's accept/reject decisions bit for bit, on
every execution path (noise-free event path, noisy stream path, deglitch,
non-monotone gross-defect devices).  These tests pin that contract through
the shared differential harness (``harness.py``).
"""

import numpy as np
import pytest

from harness import assert_full_bist_equivalent as _assert_population_equal
from repro.adc import DevicePopulation, PopulationSpec
from repro.core import (
    BistConfig,
    BistEngine,
    CountLimits,
    LsbProcessor,
    MultiAdcBistController,
)
from repro.production import (
    BatchBistEngine,
    BatchLsbProcessor,
    Wafer,
    WaferSpec,
    batch_deglitch,
    chip_grouping,
    chip_noise_seeds,
)
from repro.core.deglitch import DeglitchFilter


class TestScalarBatchEquivalence:
    def test_500_device_seeded_population(self):
        """The acceptance-criterion case: 500 seeded devices, bit-exact."""
        wafer = Wafer.draw(WaferSpec(n_devices=500,
                                     sigma_code_width_lsb=0.21), rng=42)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
        _assert_population_equal(config, wafer, rng=0)

    def test_stringent_spec_small_counter(self):
        wafer = Wafer.draw(WaferSpec(n_devices=300), rng=11)
        config = BistConfig(n_bits=6, counter_bits=4, dnl_spec_lsb=0.5)
        scalar = BistEngine(config).run_population(wafer.devices(), rng=0)
        batch = BatchBistEngine(config).run_population(wafer, rng=0)
        np.testing.assert_array_equal(scalar.accepted, batch.accepted)
        # The stringent spec must actually reject a nontrivial fraction,
        # otherwise this test proves nothing.
        assert 0.0 < scalar.p_accept < 1.0

    def test_inl_specification(self):
        wafer = Wafer.draw(WaferSpec(n_devices=200,
                                     sigma_code_width_lsb=0.3), rng=4)
        config = BistConfig(n_bits=6, counter_bits=6, dnl_spec_lsb=1.0,
                            inl_spec_lsb=0.8)
        _assert_population_equal(config, wafer, rng=0)

    def test_configured_inl_spec_reaches_true_classification(self):
        """A configured INL spec must shape the truly-good reference too
        (not only the BIST decision), for both engines."""
        wafer = Wafer.draw(WaferSpec(n_devices=150,
                                     sigma_code_width_lsb=0.3), rng=4)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                            inl_spec_lsb=0.5)
        expected = wafer.good_mask(1.0, inl_spec_lsb=0.5)
        assert not expected.all(), "the INL spec should bite on this draw"
        batch = BatchBistEngine(config).run_population(wafer, rng=0)
        np.testing.assert_array_equal(batch.truly_good, expected)
        scalar = BistEngine(config).run_population(wafer.devices(), rng=0)
        np.testing.assert_array_equal(scalar.truly_good, expected)

    def test_gross_defect_devices(self):
        """Large sigma: missing codes and non-monotone curves included."""
        wafer = Wafer.draw(WaferSpec(n_devices=250,
                                     sigma_code_width_lsb=0.6), rng=9)
        non_monotone = (np.diff(wafer.transitions, axis=1) < 0).any(axis=1)
        assert non_monotone.any(), "the draw should contain gross defects"
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
        _assert_population_equal(config, wafer, rng=0)

    def test_transition_noise_with_deglitch(self):
        """Stream path: the shared rng must be consumed in device order."""
        wafer = Wafer.draw(WaferSpec(n_devices=60,
                                     sigma_code_width_lsb=0.3), rng=2)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                            transition_noise_lsb=0.02, deglitch_depth=3)
        scalar = BistEngine(config).run_population(wafer.devices(), rng=77)
        batch = BatchBistEngine(config).run_population(wafer, rng=77)
        np.testing.assert_array_equal(scalar.accepted, batch.accepted)
        assert 0.0 < scalar.p_accept

    def test_transition_noise_chunking_preserves_rng_order(self):
        wafer = Wafer.draw(WaferSpec(n_devices=50), rng=3)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                            transition_noise_lsb=0.05, deglitch_depth=2)
        engine = BatchBistEngine(config)
        one_chunk = engine.run_transitions(wafer.transitions, rng=5,
                                           chunk_size=50)
        many_chunks = engine.run_transitions(wafer.transitions, rng=5,
                                             chunk_size=7)
        np.testing.assert_array_equal(one_chunk.passed, many_chunks.passed)

    def test_stimulus_noise(self):
        wafer = Wafer.draw(WaferSpec(n_devices=40), rng=6)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                            stimulus_noise_lsb=0.05, seed=5)
        _assert_population_equal(config, wafer, rng=1)

    def test_majority_deglitch_mode(self):
        wafer = Wafer.draw(WaferSpec(n_devices=40), rng=8)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                            transition_noise_lsb=0.02, deglitch_depth=2,
                            deglitch_mode="majority")
        _assert_population_equal(config, wafer, rng=3)

    def test_wrapping_counter_and_no_msb_check(self):
        wafer = Wafer.draw(WaferSpec(n_devices=150,
                                     sigma_code_width_lsb=0.4), rng=10)
        config = BistConfig(n_bits=6, counter_bits=5, dnl_spec_lsb=1.0,
                            counter_saturate=False, check_msb=False)
        _assert_population_equal(config, wafer, rng=0)

    def test_device_population_gaussian(self):
        pop = DevicePopulation(PopulationSpec(
            size=120, seed=11, architecture="gaussian"))
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
        scalar = BistEngine(config).run_population(pop, rng=0)
        batch = BatchBistEngine(config).run_population(pop, rng=0)
        np.testing.assert_array_equal(scalar.accepted, batch.accepted)
        np.testing.assert_array_equal(scalar.truly_good, batch.truly_good)

    def test_device_population_flash(self):
        pop = DevicePopulation(PopulationSpec(
            size=60, seed=13, architecture="flash"))
        config = BistConfig(n_bits=6, counter_bits=4, dnl_spec_lsb=0.5)
        scalar = BistEngine(config).run_population(pop, rng=0)
        batch = BatchBistEngine(config).run_population(pop, rng=0)
        np.testing.assert_array_equal(scalar.accepted, batch.accepted)
        np.testing.assert_array_equal(scalar.truly_good, batch.truly_good)

    def test_event_chunking_is_invariant(self):
        wafer = Wafer.draw(WaferSpec(n_devices=100), rng=1)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
        engine = BatchBistEngine(config)
        a = engine.run_wafer(wafer)
        b = engine.run_transitions(wafer.transitions, chunk_size=9)
        np.testing.assert_array_equal(a.passed, b.passed)
        np.testing.assert_array_equal(a.n_transitions, b.n_transitions)

    def test_resolution_mismatch_rejected(self):
        engine = BatchBistEngine(BistConfig(n_bits=6))
        with pytest.raises(ValueError):
            engine.run_transitions(np.zeros((4, 255)))


class TestBatchResultBookkeeping:
    def test_counts_and_fractions(self):
        wafer = Wafer.draw(WaferSpec(n_devices=300), rng=11)
        config = BistConfig(n_bits=6, counter_bits=4, dnl_spec_lsb=0.5)
        result = BatchBistEngine(config).run_wafer(wafer)
        assert result.n_devices == 300
        assert result.n_accepted + result.n_rejected == 300
        assert result.accept_fraction == pytest.approx(
            result.n_accepted / 300)
        assert result.off_chip_bits_transferred == 300
        # Noise-free regular devices see every LSB transition.
        assert (result.n_transitions == 63).all()

    def test_measured_dnl_matches_scalar_reconstruction(self):
        wafer = Wafer.draw(WaferSpec(n_devices=20), rng=3)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
        batch = BatchBistEngine(config).run_wafer(wafer)
        scalar = BistEngine(config)
        for i in (0, 7, 19):
            ref = scalar.run(wafer.device(i))
            assert batch.measured_max_dnl_lsb[i] == pytest.approx(
                np.max(np.abs(ref.measured_dnl_lsb)))


class TestBatchLsbProcessorProperties:
    """Property tests: batch extraction vs scalar block on random streams."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_streams_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        streams = (rng.random((40, 400)) < 0.3).astype(np.int8)
        limits = CountLimits.for_counter(5, 1.0, inl_spec_lsb=1.0)
        batch = BatchLsbProcessor(limits).process(streams, n_bits=6)
        scalar = LsbProcessor(limits)
        for d in range(streams.shape[0]):
            ref = scalar.process(streams[d], n_bits=6)
            n = batch.n_counts[d]
            assert n == ref.counts.size
            np.testing.assert_array_equal(batch.counts[d, :n], ref.counts)
            np.testing.assert_array_equal(batch.counter_readings[d, :n],
                                          ref.counter_readings)
            np.testing.assert_array_equal(batch.dnl_pass_per_code[d, :n],
                                          ref.dnl_pass_per_code)
            np.testing.assert_array_equal(batch.inl_pass_per_code[d, :n],
                                          ref.inl_pass_per_code)
            np.testing.assert_allclose(
                batch.inl_deviation_counts[d, :n],
                ref.inl_deviation_counts)
            assert batch.n_transitions[d] == ref.n_transitions
            assert bool(batch.passed[d]) == ref.passed

    @pytest.mark.parametrize("mode,depth", [("hysteresis", 2),
                                            ("majority", 1)])
    def test_deglitched_streams_match_scalar(self, mode, depth):
        rng = np.random.default_rng(99)
        streams = (rng.random((15, 300)) < 0.5).astype(np.int8)
        filt = DeglitchFilter(depth, mode)
        limits = CountLimits.for_counter(4, 0.5)
        batch = BatchLsbProcessor(limits, deglitch=filt).process(streams)
        scalar = LsbProcessor(limits, deglitch=filt)
        for d in range(streams.shape[0]):
            ref = scalar.process(streams[d])
            n = batch.n_counts[d]
            np.testing.assert_array_equal(batch.counts[d, :n], ref.counts)
            assert batch.n_transitions[d] == ref.n_transitions

    def test_constant_and_single_toggle_streams(self):
        limits = CountLimits.for_counter(4, 1.0)
        streams = np.zeros((3, 50), dtype=np.int8)
        streams[1, 25:] = 1          # one edge -> no complete code
        streams[2, 10:20] = 1        # two edges -> one count of 10
        batch = BatchLsbProcessor(limits).process(streams)
        assert list(batch.n_transitions) == [0, 1, 2]
        assert list(batch.n_counts) == [0, 0, 1]
        assert batch.counts[2, 0] == 10
        assert not batch.passed[0] and not batch.passed[1]

    def test_batch_deglitch_matches_scalar_rows(self):
        rng = np.random.default_rng(5)
        streams = (rng.random((20, 200)) < 0.5).astype(np.int8)
        for mode, depth in (("hysteresis", 3), ("majority", 2)):
            filt = DeglitchFilter(depth, mode)
            got = batch_deglitch(streams, filt)
            for d in range(streams.shape[0]):
                np.testing.assert_array_equal(got[d],
                                              filt.apply(streams[d]))


class TestNoisyChipModeControllerParity:
    """The batched chip mode must match MultiAdcBistController with
    per-converter noise seeds — the ROADMAP parity gap, closed."""

    CONFIG = dict(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                  transition_noise_lsb=0.05, deglitch_depth=3)

    def test_noisy_chips_match_controller_bit_for_bit(self):
        wafer = Wafer.draw(WaferSpec(n_devices=24,
                                     sigma_code_width_lsb=0.21), rng=17)
        config = BistConfig(**self.CONFIG)
        batch = BatchBistEngine(config).run_chips(wafer, 4, rng=123)
        controller = MultiAdcBistController(config)
        seeds = chip_noise_seeds(123, 6)
        for chip in range(6):
            devices = [wafer.device(chip * 4 + i) for i in range(4)]
            ref = controller.run_chip(devices, rng=int(seeds[chip]))
            assert bool(batch.chip_passed[chip]) == ref.passed
            assert int(batch.result_registers[chip]) == ref.result_register

    def test_seeded_decisions_pinned(self):
        """Regression pin of the seeded noisy chip run (numpy Generator
        streams are stability-guaranteed, so these numbers are stable)."""
        wafer = Wafer.draw(WaferSpec(n_devices=24,
                                     sigma_code_width_lsb=0.21), rng=17)
        config = BistConfig(**self.CONFIG)
        batch = BatchBistEngine(config).run_chips(wafer, 4, rng=123)
        assert list(map(int, batch.result_registers)) == [15, 3, 11, 7,
                                                          11, 5]
        assert int(batch.n_chips_passed) == 1
        # The shared-stream wafer run is a *different* (single-insertion)
        # noise model; the chip mode must not silently fall back to it.
        shared = BatchBistEngine(config).run_wafer(wafer, rng=123)
        _, shared_registers = chip_grouping(shared.passed, 4)
        assert list(map(int, shared_registers)) != [15, 3, 11, 7, 11, 5]

    def test_noisy_chips_reject_generator_rng(self):
        wafer = Wafer.draw(WaferSpec(n_devices=8), rng=1)
        engine = BatchBistEngine(BistConfig(**self.CONFIG))
        with pytest.raises(ValueError):
            engine.run_chips(wafer, 4, rng=np.random.default_rng(0))

    def test_noisy_chips_chunking_is_invariant(self):
        """Chips spanning chunk boundaries see the same child seeds."""
        wafer = Wafer.draw(WaferSpec(n_devices=40,
                                     sigma_code_width_lsb=0.21), rng=9)
        engine = BatchBistEngine(BistConfig(**self.CONFIG))
        full = engine.run_chips(wafer, 4, rng=7)
        small = engine.run_chips(wafer, 4, rng=7,
                                 chunk_size=5)  # ~1 chip per chunk
        np.testing.assert_array_equal(full.chip_passed, small.chip_passed)
        np.testing.assert_array_equal(full.result_registers,
                                      small.result_registers)

    def test_noise_free_chip_mode_unchanged(self):
        wafer = Wafer.draw(WaferSpec(n_devices=16), rng=2)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
        chips = BatchBistEngine(config).run_chips(wafer, 4, rng=0)
        singles = BatchBistEngine(config).run_wafer(wafer, rng=0)
        expected, _ = chip_grouping(singles.passed, 4)
        np.testing.assert_array_equal(chips.chip_passed, expected)



class TestBatchDeglitchEdgeCases:
    """Degenerate streams must behave exactly like the scalar filter."""

    @pytest.mark.parametrize("mode,depth", [("hysteresis", 1),
                                            ("hysteresis", 4),
                                            ("majority", 1),
                                            ("majority", 3)])
    def test_constant_streams_pass_through(self, mode, depth):
        filt = DeglitchFilter(depth, mode)
        zeros = np.zeros((3, 40), dtype=np.int8)
        ones = np.ones((3, 40), dtype=np.int8)
        np.testing.assert_array_equal(batch_deglitch(zeros, filt), zeros)
        np.testing.assert_array_equal(batch_deglitch(ones, filt), ones)

    @pytest.mark.parametrize("mode", ["hysteresis", "majority"])
    @pytest.mark.parametrize("value", [0, 1])
    def test_single_sample_streams(self, mode, value):
        filt = DeglitchFilter(3, mode)
        streams = np.full((4, 1), value, dtype=np.int8)
        got = batch_deglitch(streams, filt)
        assert got.shape == (4, 1)
        for d in range(4):
            np.testing.assert_array_equal(got[d], filt.apply(streams[d]))

    @pytest.mark.parametrize("mode", ["hysteresis", "majority"])
    def test_empty_streams(self, mode):
        filt = DeglitchFilter(2, mode)
        streams = np.zeros((3, 0), dtype=np.int8)
        assert batch_deglitch(streams, filt).shape == (3, 0)

    @pytest.mark.parametrize("mode", ["hysteresis", "majority"])
    def test_depth_exceeding_stream_length(self, mode):
        """A filter deeper than the record: match the scalar row for row."""
        filt = DeglitchFilter(10, mode)
        rng = np.random.default_rng(8)
        streams = (rng.random((6, 5)) < 0.5).astype(np.int8)
        got = batch_deglitch(streams, filt)
        for d in range(streams.shape[0]):
            np.testing.assert_array_equal(got[d], filt.apply(streams[d]))

    def test_depth_zero_normalises_values(self):
        filt = DeglitchFilter(0)
        streams = np.array([[0, 3, 0, -2, 5]], dtype=np.int64)
        np.testing.assert_array_equal(batch_deglitch(streams, filt),
                                      [[0, 1, 0, 1, 1]])

    def test_rejects_non_matrix_input(self):
        with pytest.raises(ValueError):
            batch_deglitch(np.zeros(10), DeglitchFilter(2))

    @pytest.mark.parametrize("depth", [1, 2, 3, 4, 5, 6])
    def test_hysteresis_random_streams_every_depth(self, depth):
        """The vectorised hysteresis must equal the scalar state machine
        row for row at every filter depth."""
        rng = np.random.default_rng(depth)
        streams = (rng.random((25, 180)) < 0.5).astype(np.int8)
        filt = DeglitchFilter(depth, "hysteresis")
        got = batch_deglitch(streams, filt)
        for d in range(streams.shape[0]):
            np.testing.assert_array_equal(got[d], filt.apply(streams[d]))

    def test_hysteresis_run_exactly_depth_flips(self):
        """A run of exactly ``depth`` equal samples flips the state at its
        last sample; one sample shorter never does."""
        filt = DeglitchFilter(3, "hysteresis")
        flips = np.array([[0, 0, 0, 1, 1, 1, 0, 0, 0, 0]], dtype=np.int8)
        too_short = np.array([[0, 0, 0, 1, 1, 0, 0, 0, 0, 0]],
                             dtype=np.int8)
        np.testing.assert_array_equal(batch_deglitch(flips, filt)[0],
                                      filt.apply(flips[0]))
        # The 1-run qualifies at its third sample (index 5); the trailing
        # 0-run re-qualifies at index 8 and flips the state back.
        np.testing.assert_array_equal(
            batch_deglitch(flips, filt)[0],
            [0, 0, 0, 0, 0, 1, 1, 1, 0, 0])
        np.testing.assert_array_equal(batch_deglitch(too_short, filt)[0],
                                      np.zeros(10, dtype=np.int8))

    def test_hysteresis_alternating_stream_holds_state(self):
        """Pure toggling (every run length 1) never flips a depth>=2
        filter, whichever value each row starts from."""
        filt = DeglitchFilter(2, "hysteresis")
        streams = np.array([[0, 1] * 20, [1, 0] * 20], dtype=np.int8)
        got = batch_deglitch(streams, filt)
        np.testing.assert_array_equal(got[0], np.zeros(40, dtype=np.int8))
        np.testing.assert_array_equal(got[1], np.ones(40, dtype=np.int8))
        for d in range(2):
            np.testing.assert_array_equal(got[d], filt.apply(streams[d]))

    def test_hysteresis_same_value_retrigger_is_harmless(self):
        """Two qualifying runs of the same value with a short opposite
        run between them must not disturb the state."""
        filt = DeglitchFilter(3, "hysteresis")
        stream = np.array([[0, 0, 0, 1, 1, 0, 0, 0, 1, 1, 1, 1]],
                          dtype=np.int8)
        np.testing.assert_array_equal(batch_deglitch(stream, filt)[0],
                                      filt.apply(stream[0]))
