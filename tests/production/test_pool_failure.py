"""Failure-path regression suite for the persistent worker pool.

What a long-running service needs from the pool when a worker dies
(OOM-kill, segfault, SIGKILL): the failure must surface as a *typed,
recoverable* :class:`~repro.production.pool.PoolBrokenError`, the broken
pool must be closed and evicted from both the module default slot and
the ambient :func:`~repro.production.pool.shared_pool` stack (so no
later caller inherits a dead executor), and the very next
``get_default_pool`` dispatch must work on a fresh pool.  Also pinned
here: the instrumented dispatch path resets the ``pool.queue_depth``
gauge when a future fails mid-collection, and ``worker_pids`` never
trips over the executor's on-demand spawn race.

The worker-death injection is deterministic: the dispatched task itself
SIGKILLs its own worker process, so no cross-process timing is involved.
"""

import os
import signal

import pytest

from repro.production import (
    PoolBrokenError,
    WorkerPool,
    close_default_pool,
    current_pool,
    get_default_pool,
    shared_pool,
)
from repro.telemetry import Telemetry, telemetry_session


def _suicide(tag):
    """Kill the worker process executing this task (deterministically)."""
    os.kill(os.getpid(), signal.SIGKILL)


def _boom(tag):
    raise ValueError(f"boom {tag}")


def _identity(value):
    return value


@pytest.fixture(autouse=True)
def _clean_default_pool():
    close_default_pool()
    yield
    close_default_pool()


class TestPoolBrokenError:
    def test_sigkill_worker_surfaces_typed_error(self):
        pool = WorkerPool(2)
        with pytest.raises(PoolBrokenError):
            pool.dispatch(_suicide, [(0,), (1,)])
        assert pool.broken
        assert pool.closed

    def test_broken_pool_refuses_further_dispatch(self):
        pool = WorkerPool(2)
        with pytest.raises(PoolBrokenError):
            pool.dispatch(_suicide, [(0,)])
        # The typed error again — not an opaque BrokenProcessPool or a
        # "pool is closed" RuntimeError.
        with pytest.raises(PoolBrokenError):
            pool.dispatch(_identity, [(1,)])

    def test_instrumented_path_raises_typed_error_and_counts(self):
        telemetry = Telemetry()
        with telemetry_session(telemetry):
            pool = WorkerPool(2)
            with pytest.raises(PoolBrokenError):
                pool.dispatch(_suicide, [(0,), (1,)],
                              metas=[{"shard": 0}, {"shard": 1}])
        assert pool.broken
        assert telemetry.counters.get("pool.broken") == 1
        # The abandoned dispatch must not leave a stale queue depth.
        assert telemetry.gauges["pool.queue_depth"].last == 0.0

    def test_warm_up_on_broken_pool_raises_typed_error(self):
        pool = WorkerPool(2)
        with pytest.raises(PoolBrokenError):
            pool.dispatch(_suicide, [(0,)])
        with pytest.raises(PoolBrokenError):
            pool.warm_up()


class TestBrokenPoolEviction:
    def test_default_pool_evicted_and_next_dispatch_works(self):
        pool = get_default_pool(2)
        with pytest.raises(PoolBrokenError):
            pool.dispatch(_suicide, [(0,), (1,)])
        fresh = get_default_pool(2)
        assert fresh is not pool
        assert not fresh.broken
        assert fresh.dispatch(_identity, [(5,), (6,)]) == [5, 6]

    def test_ambient_pool_evicted(self):
        pool = WorkerPool(2)
        with shared_pool(pool=pool):
            assert current_pool() is pool
            with pytest.raises(PoolBrokenError):
                pool.dispatch(_suicide, [(0,)])
            # Evicted mid-block: nothing inherits the dead executor.
            assert current_pool() is None
        # The shared_pool exit path tolerates the early eviction.
        assert current_pool() is None

    def test_error_message_names_the_recovery(self):
        pool = WorkerPool(2)
        with pytest.raises(PoolBrokenError, match="rebuild"):
            pool.dispatch(_suicide, [(0,)])


class TestGaugeReset:
    def test_failing_future_resets_queue_depth(self):
        """A task exception mid-collection must zero the gauge."""
        telemetry = Telemetry()
        with telemetry_session(telemetry):
            with WorkerPool(2) as pool:
                with pytest.raises(ValueError, match="boom"):
                    pool.dispatch(_boom, [(i,) for i in range(4)],
                                  metas=[{"shard": i} for i in range(4)])
        assert telemetry.gauges["pool.queue_depth"].last == 0.0
        # The gauge did see real depth before the failure.
        assert telemetry.gauges["pool.queue_depth"].max_value >= 1.0

    def test_healthy_dispatch_unaffected(self):
        telemetry = Telemetry()
        with telemetry_session(telemetry):
            with WorkerPool(2) as pool:
                results = pool.dispatch(
                    _identity, [(i,) for i in range(4)],
                    metas=[{"shard": i} for i in range(4)])
        assert results == [0, 1, 2, 3]
        assert telemetry.counters["pool.tasks_dispatched"] == 4


class TestWorkerPids:
    def test_closed_pool_reports_no_pids(self):
        pool = WorkerPool(2)
        pool.warm_up()
        assert len(pool.worker_pids()) == 2
        pool.close()
        assert pool.worker_pids() == []

    def test_unwarmed_pool_never_raises(self):
        with WorkerPool(2) as pool:
            # Workers spawn on demand; before any dispatch the process
            # map may be empty or mid-construction — never an error.
            pids = pool.worker_pids()
            assert isinstance(pids, list)

class TestSweepStaleSegments:
    """Reclaiming /dev/shm segments stranded by SIGKILLed processes.

    A group-SIGKILL takes the multiprocessing resource tracker down with
    the server, so ``repro_<pid>_*`` segments outlive their creator.
    The sweep unlinks only segments whose creating pid is dead — never
    its own, never a live process's, never foreign files.
    """

    def _dead_pid(self):
        import subprocess
        import sys
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_dead_pid_segment_swept(self, tmp_path):
        from repro.production import sweep_stale_segments
        dead = self._dead_pid()
        stale = tmp_path / f"repro_{dead}_0_deadbeef"
        stale.write_bytes(b"x" * 16)
        removed = sweep_stale_segments(shm_dir=str(tmp_path))
        assert removed == [stale.name]
        assert not stale.exists()

    def test_own_and_live_pid_segments_kept(self, tmp_path):
        from repro.production import sweep_stale_segments
        own = tmp_path / f"repro_{os.getpid()}_1_cafef00d"
        own.write_bytes(b"x")
        live = tmp_path / "repro_1_2_00000000"  # pid 1: always alive
        live.write_bytes(b"x")
        assert sweep_stale_segments(shm_dir=str(tmp_path)) == []
        assert own.exists() and live.exists()

    def test_foreign_and_malformed_names_ignored(self, tmp_path):
        from repro.production import sweep_stale_segments
        dead = self._dead_pid()
        keep = [
            tmp_path / "psm_0a1b2c3d",           # not ours
            tmp_path / "repro_notapid_0_aa",     # malformed pid field
            tmp_path / f"repro_{dead}",          # too few fields
        ]
        for path in keep:
            path.write_bytes(b"x")
        assert sweep_stale_segments(shm_dir=str(tmp_path)) == []
        assert all(path.exists() for path in keep)

    def test_missing_directory_is_harmless(self, tmp_path):
        from repro.production import sweep_stale_segments
        assert sweep_stale_segments(shm_dir=str(tmp_path / "gone")) == []
