"""Signature-consistency contract over every WaferEngine implementation.

``make_engine`` (and the screening line behind it) drives all four batch
engines through one calling convention; these tests pin that convention so
a drifting keyword name or parameter order in any engine breaks loudly
here instead of deep inside a campaign run.
"""

import inspect

import pytest

from repro.campaign import Scenario, make_engine
from repro.production import (
    BatchBistEngine,
    BatchDynamicSuite,
    BatchHistogramTest,
    BatchPartialBistEngine,
    Wafer,
    WaferSpec,
)

ENGINE_SCENARIOS = {
    BatchBistEngine: Scenario(),
    BatchPartialBistEngine: Scenario(q=2),
    BatchHistogramTest: Scenario(method="histogram"),
    BatchDynamicSuite: Scenario(method="dynamic"),
}

ENGINES = sorted(ENGINE_SCENARIOS, key=lambda cls: cls.__name__)

#: Methods every engine must expose with identical parameter lists.
UNIFORM_METHODS = {
    "run_wafer": ["self", "wafer", "rng", "chunk_size", "plan"],
    "run_transitions": ["self", "transitions", "full_scale", "sample_rate",
                        "rng", "chunk_size", "plan"],
    "prepare": ["self", "transitions", "full_scale", "sample_rate"],
    "run_shard": ["self", "context", "transitions", "rng", "chunk_size"],
    "merge": ["self", "shard_results"],
}

#: Methods only the BIST engines carry (chip grouping, truth scoring) —
#: also pinned to one shared parameter list.
BIST_ONLY_METHODS = {
    "run_chips": ["self", "wafer", "converters_per_chip", "rng",
                  "chunk_size", "plan"],
    "run_population": ["self", "population", "rng", "dnl_spec_lsb",
                       "inl_spec_lsb", "plan"],
}


def _parameter_names(cls, method):
    return list(inspect.signature(
        inspect.unwrap(getattr(cls, method))).parameters)


class TestSignatureConsistency:
    @pytest.mark.parametrize("method", sorted(UNIFORM_METHODS))
    @pytest.mark.parametrize("engine_cls", ENGINES,
                             ids=lambda cls: cls.__name__)
    def test_uniform_method_signatures(self, engine_cls, method):
        assert _parameter_names(engine_cls, method) == \
            UNIFORM_METHODS[method]

    @pytest.mark.parametrize("method", sorted(BIST_ONLY_METHODS))
    @pytest.mark.parametrize(
        "engine_cls", [BatchBistEngine, BatchPartialBistEngine],
        ids=lambda cls: cls.__name__)
    def test_bist_chip_and_population_signatures(self, engine_cls, method):
        assert _parameter_names(engine_cls, method) == \
            BIST_ONLY_METHODS[method]

    @pytest.mark.parametrize("engine_cls", ENGINES,
                             ids=lambda cls: cls.__name__)
    def test_run_defaults_agree(self, engine_cls):
        """Shared keywords must also share their defaults, so a kwargs
        dict built for one engine means the same thing for every other."""
        params = inspect.signature(engine_cls.run_transitions).parameters
        assert params["full_scale"].default == 1.0
        assert params["sample_rate"].default == 1e6
        for name in ("rng", "chunk_size", "plan"):
            assert params[name].default is None
        wafer_params = inspect.signature(engine_cls.run_wafer).parameters
        for name in ("rng", "chunk_size", "plan"):
            assert wafer_params[name].default is None


class TestUniformDriving:
    def test_one_kwargs_dict_drives_every_engine(self):
        """The property the factory relies on: identical call sites work
        for every engine make_engine can return."""
        wafer = Wafer.draw(WaferSpec(n_bits=6, n_devices=32), rng=4)
        kwargs = dict(rng=7, chunk_size=16, plan=None)
        for engine_cls in ENGINES:
            engine = make_engine(ENGINE_SCENARIOS[engine_cls])
            assert isinstance(engine, engine_cls)
            result = engine.run_wafer(wafer, **kwargs)
            assert result.n_devices == 32
            via_matrix = engine.run_transitions(
                wafer.transitions, full_scale=wafer.spec.full_scale,
                sample_rate=wafer.spec.sample_rate, **kwargs)
            assert (via_matrix.passed == result.passed).all()

    def test_chip_mode_accepts_chunk_size(self):
        """run_chips gained the shared chunk argument: chunking is a pure
        memory knob there too and must never change chip verdicts."""
        wafer = Wafer.draw(WaferSpec(n_bits=6, n_devices=32), rng=4)
        for scenario in (Scenario(transition_noise_lsb=0.05),
                         Scenario(q=2, transition_noise_lsb=0.05)):
            engine = make_engine(scenario)
            reference = engine.run_chips(wafer, 4, rng=11)
            chunked = engine.run_chips(wafer, 4, rng=11, chunk_size=5)
            assert (chunked.chip_passed == reference.chip_passed).all()
