"""Scalar-vs-batch partial-BIST equivalence and chip-mode tests.

The batched partial engine's contract mirrors the full-BIST batch engine's:
on the same population it must reproduce the scalar
:class:`~repro.core.partial_engine.PartialBistEngine` accept/reject
decisions bit for bit — for every architecture, every ``q`` (including the
q-too-small breakdown case of Equation (1)), and with acquisition noise.
The equivalence checks live in the shared differential harness
(``harness.py``).
"""

import numpy as np
import pytest

from harness import assert_partial_equivalent as _assert_batch_matches_scalar
from repro.core import (
    MultiAdcBistController,
    BistConfig,
    PartialBistConfig,
    PartialBistEngine,
)
from repro.production import (
    BatchBistEngine,
    BatchPartialBistEngine,
    Wafer,
    WaferSpec,
    chip_grouping,
)


class TestScalarBatchPartialEquivalence:
    def test_1k_device_population_bit_exact(self):
        """The acceptance-criterion case: >=1k devices, q=2, bit-exact."""
        wafer = Wafer.draw(WaferSpec(n_devices=1000,
                                     sigma_code_width_lsb=0.21), rng=1997)
        config = PartialBistConfig(n_bits=6, q=2, dnl_spec_lsb=0.5)
        scalar, batch = _assert_batch_matches_scalar(config, wafer)
        # The stringent spec must actually reject a nontrivial fraction.
        assert 0.0 < batch.accept_fraction < 1.0

    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_every_q_matches_and_reconstructs(self, q):
        wafer = Wafer.draw(WaferSpec(n_devices=150), rng=11)
        config = PartialBistConfig(n_bits=6, q=q, dnl_spec_lsb=1.0,
                                   inl_spec_lsb=1.0)
        _, batch = _assert_batch_matches_scalar(config, wafer)
        # A 16-samples-per-code ramp satisfies Equation (1) for any q:
        # every device's codes must reconstruct exactly.
        assert (batch.reconstruction_error_rate == 0.0).all()

    def test_reconstructed_codes_bit_exact_per_device(self):
        """Kernel-level check: the batch reconstruction equals the scalar
        one sample for sample, not just in aggregate."""
        from repro.core import (batch_quantise_shared,
                                batch_reconstruct_codes, reconstruct_codes)
        wafer = Wafer.draw(WaferSpec(n_devices=40), rng=13)
        config = PartialBistConfig(n_bits=6, q=3, dnl_spec_lsb=1.0)
        scalar_engine = PartialBistEngine(config)
        records = [scalar_engine.run(d, keep_record=True).record
                   for d in wafer.devices()]
        codes = np.vstack([r.codes for r in records])
        observed = codes & 7
        rebuilt = batch_reconstruct_codes(observed, 3, 6,
                                          initial_upper=codes[:, 0] >> 3)
        for d in range(codes.shape[0]):
            np.testing.assert_array_equal(
                rebuilt[d],
                reconstruct_codes(observed[d], 3, 6,
                                  initial_upper=int(codes[d, 0]) >> 3))
        # And the shared-ramp quantisation reproduces the acquisitions.
        times = records[0].sample_times
        ramp_voltages = records[0].input_voltages
        np.testing.assert_array_equal(
            batch_quantise_shared(wafer.transitions, ramp_voltages), codes)
        assert times.size == codes.shape[1]

    def test_q_too_small_breakdown_matches_scalar(self):
        """A fast stimulus breaks the q=1 reconstruction (Equation (1));
        the batch engine must reproduce the broken decisions bit for bit."""
        wafer = Wafer.draw(WaferSpec(n_devices=200), rng=3)
        config = PartialBistConfig(n_bits=6, q=1, samples_per_code=1.0,
                                   dnl_spec_lsb=1.0)
        _, batch = _assert_batch_matches_scalar(config, wafer)
        assert batch.reconstruction_error_rate.mean() > 0.1
        # A larger q restores exact reconstruction at the same ramp rate.
        config_ok = PartialBistConfig(n_bits=6, q=3, samples_per_code=1.0,
                                      dnl_spec_lsb=1.0)
        _, recovered = _assert_batch_matches_scalar(config_ok, wafer)
        assert (recovered.reconstruction_error_rate == 0.0).all()

    @pytest.mark.parametrize("architecture", ["sar", "pipeline"])
    def test_non_flash_architectures(self, architecture):
        wafer = Wafer.draw(WaferSpec(n_devices=250,
                                     architecture=architecture), rng=21)
        config = PartialBistConfig(n_bits=6, q=2, dnl_spec_lsb=0.5,
                                   inl_spec_lsb=1.0)
        _, batch = _assert_batch_matches_scalar(config, wafer)
        assert 0.0 < batch.accept_fraction < 1.0

    def test_transition_noise_consumes_rng_in_device_order(self):
        wafer = Wafer.draw(WaferSpec(n_devices=60), rng=5)
        config = PartialBistConfig(n_bits=6, q=2, dnl_spec_lsb=1.0,
                                   transition_noise_lsb=0.05)
        _assert_batch_matches_scalar(config, wafer, rng=77)

    def test_chunking_is_invariant(self):
        wafer = Wafer.draw(WaferSpec(n_devices=100), rng=9)
        config = PartialBistConfig(n_bits=6, q=2, dnl_spec_lsb=1.0)
        engine = BatchPartialBistEngine(config)
        one = engine.run_wafer(wafer)
        many = engine.run_transitions(wafer.transitions, chunk_size=7)
        np.testing.assert_array_equal(one.passed, many.passed)
        np.testing.assert_array_equal(one.measured_max_dnl_lsb,
                                      many.measured_max_dnl_lsb)

    def test_run_population_scores_against_truth(self):
        wafer = Wafer.draw(WaferSpec(n_devices=300), rng=2)
        config = PartialBistConfig(n_bits=6, q=2, dnl_spec_lsb=0.5)
        outcome = BatchPartialBistEngine(config).run_population(wafer)
        np.testing.assert_array_equal(outcome.truly_good,
                                      wafer.good_mask(0.5))
        assert outcome.n_devices == 300

    def test_resolution_mismatch_rejected(self):
        engine = BatchPartialBistEngine(PartialBistConfig(n_bits=6, q=2))
        with pytest.raises(ValueError):
            engine.run_transitions(np.zeros((4, 255)))

    def test_bits_captured_bookkeeping(self):
        wafer = Wafer.draw(WaferSpec(n_devices=10), rng=1)
        result = BatchPartialBistEngine(
            PartialBistConfig(n_bits=6, q=3)).run_wafer(wafer)
        assert result.bits_captured_per_device == 3 * result.samples_taken
        assert result.off_chip_bits_transferred == \
            10 * result.bits_captured_per_device


class TestBatchChipMode:
    def test_grouping_matches_controller_noise_free(self):
        """Chip verdicts and registers equal the scalar multi-ADC
        controller's in the deterministic (noise-free) configuration."""
        wafer = Wafer.draw(WaferSpec(n_devices=48,
                                     sigma_code_width_lsb=0.15), rng=17)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=0.5)
        batch = BatchBistEngine(config).run_chips(wafer,
                                                  converters_per_chip=4)
        controller = MultiAdcBistController(config)
        for chip in range(batch.n_chips):
            devices = [wafer.device(chip * 4 + i) for i in range(4)]
            ref = controller.run_chip(devices)
            assert bool(batch.chip_passed[chip]) == ref.passed
            assert int(batch.result_registers[chip]) == ref.result_register
        assert 0 < batch.n_chips_passed < batch.n_chips

    def test_partial_chip_mode(self):
        wafer = Wafer.draw(WaferSpec(n_devices=60, architecture="sar"),
                           rng=23)
        engine = BatchPartialBistEngine(
            PartialBistConfig(n_bits=6, q=2, dnl_spec_lsb=0.5))
        chips = engine.run_chips(wafer, converters_per_chip=4)
        singles = engine.run_wafer(wafer)
        expected, registers = chip_grouping(singles.passed, 4)
        np.testing.assert_array_equal(chips.chip_passed, expected)
        np.testing.assert_array_equal(chips.result_registers, registers)
        assert chips.sequential_test_time_s == pytest.approx(
            4 * chips.test_time_s)

    def test_noisy_partial_chip_mode_matches_scalar_replay(self):
        """Controller-parity seeding: with transition noise, converter
        ``j`` of chip ``c`` must reproduce the scalar partial engine run
        with child ``j`` of ``SeedSequence(chip_noise_seeds(rng)[c])`` —
        the same spawning scheme the full-BIST chip mode (and the
        multi-ADC controller) uses."""
        from repro.production import chip_noise_seeds

        wafer = Wafer.draw(WaferSpec(n_devices=24), rng=5)
        config = PartialBistConfig(n_bits=6, q=2, dnl_spec_lsb=1.0,
                                   transition_noise_lsb=0.02)
        batch = BatchPartialBistEngine(config).run_chips(
            wafer, converters_per_chip=4, rng=77)

        scalar = PartialBistEngine(config)
        seeds = chip_noise_seeds(77, batch.n_chips)
        replay = []
        for chip in range(batch.n_chips):
            children = np.random.SeedSequence(int(seeds[chip])).spawn(4)
            for conv, child in enumerate(children):
                device = wafer.device(chip * 4 + conv)
                replay.append(scalar.run(
                    device, rng=np.random.default_rng(child)).passed)
        np.testing.assert_array_equal(batch.converter_passed,
                                      np.array(replay))

    def test_noisy_partial_chip_mode_regression_vector(self):
        """Pinned outcome of a seeded noisy chip run.

        Any change to the seeding discipline (chip seed derivation,
        per-converter spawning, noise-draw order) shows up here as a
        changed register vector, not as a silent re-draw."""
        wafer = Wafer.draw(WaferSpec(n_devices=24), rng=5)
        config = PartialBistConfig(n_bits=6, q=2, dnl_spec_lsb=1.0,
                                   transition_noise_lsb=0.02)
        result = BatchPartialBistEngine(config).run_chips(
            wafer, converters_per_chip=4, rng=77)
        np.testing.assert_array_equal(
            result.result_registers, [15, 15, 15, 7, 7, 15])
        np.testing.assert_array_equal(
            result.chip_passed, [True, True, True, False, False, True])
        assert result.n_chips_passed == 4

    def test_noisy_chip_mode_rejects_generator(self):
        wafer = Wafer.draw(WaferSpec(n_devices=8), rng=5)
        config = PartialBistConfig(n_bits=6, q=2, dnl_spec_lsb=1.0,
                                   transition_noise_lsb=0.02)
        with pytest.raises(ValueError):
            BatchPartialBistEngine(config).run_chips(
                wafer, 4, rng=np.random.default_rng(0))

    def test_chip_grouping_validation(self):
        with pytest.raises(ValueError):
            chip_grouping(np.ones(10, dtype=bool), 4)
        with pytest.raises(ValueError):
            chip_grouping(np.ones(10, dtype=bool), 0)
        # Registers are packed into int64: 64+ converters would overflow.
        with pytest.raises(ValueError):
            chip_grouping(np.ones(128, dtype=bool), 64)
        _, registers = chip_grouping(np.ones(63, dtype=bool), 63)
        assert registers[0] == (1 << 63) - 1


class TestPartialScreeningLine:
    def test_partial_line_matches_engine_decisions(self):
        from repro.production import Lot, ResultStore, ScreeningLine
        lot = Lot.draw(WaferSpec(n_devices=200, architecture="pipeline"),
                       n_wafers=1, seed=31, lot_id="P-31")
        config = BistConfig(n_bits=6, dnl_spec_lsb=0.5)
        line = ScreeningLine(config, partial_q=2, devices_per_ic=4)
        store = ResultStore()
        report = line.screen_lot(lot, rng=0, store=store)
        engine = BatchPartialBistEngine(PartialBistConfig(
            n_bits=6, q=2, dnl_spec_lsb=0.5))
        direct = engine.run_wafer(lot.wafers[0])
        assert report.n_accepted == direct.n_accepted
        assert report.mode == "partial" and report.q == 2
        assert report.architecture == "pipeline"
        assert report.n_chips == 50
        assert report.chip_yield is not None
        assert "partial q=2" in store.lot_table()
        assert "chips screened" in store.summary()

    def test_line_rejects_non_dividing_chip_size(self):
        """Pricing per-IC insertions while silently skipping chip yield
        would misreport the economics: non-dividing wafers are an error."""
        from repro.production import Lot, ScreeningLine
        lot = Lot.draw(WaferSpec(n_devices=100), n_wafers=1, seed=1)
        line = ScreeningLine(BistConfig(n_bits=6), devices_per_ic=3)
        with pytest.raises(ValueError):
            line.screen_lot(lot)

    def test_partial_line_rejects_deglitch(self):
        """The partial flow has no deglitch filter; a configured one must
        be rejected instead of silently dropped."""
        from repro.production import ScreeningLine
        config = BistConfig(n_bits=6, dnl_spec_lsb=1.0, deglitch_depth=2)
        with pytest.raises(ValueError):
            ScreeningLine(config, partial_q=2)
