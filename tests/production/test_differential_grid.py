"""Standing differential sweep: every batch engine family × the grid.

One parameterised pass over ``harness.DIFFERENTIAL_GRID`` (architecture ×
noise × q × device count) drives all four scalar↔batch contracts — full
BIST, partial BIST, conventional histogram test, dynamic suite — through
the shared harness, so a regression on any execution path of any engine
family shows up as a single failing grid cell.

``TestBackendGrid`` is the kernel-backend sibling: the same grid, each
engine family run under every non-default backend and compared against
the ``numpy`` reference at the backend's registered equivalence tier —
bit-exact for ``numpy-compact`` (dtype compaction must never change a
value), within ``atol`` on float fields for ``numba`` (whose leg skips
when the optional dependency is absent).
"""

import numpy as np
import pytest

from harness import (
    DIFFERENTIAL_GRID,
    assert_backend_equivalent,
    assert_dynamic_equivalent,
    assert_full_bist_equivalent,
    assert_histogram_equivalent,
    assert_partial_equivalent,
    draw_wafer,
)
from repro.analysis import DynamicAnalyzer, DynamicSpec
from repro.core import BistConfig, PartialBistConfig
from repro.core.backend import available_backends, get_backend
from repro.production import (
    BatchBistEngine,
    BatchDynamicSuite,
    BatchHistogramTest,
    BatchPartialBistEngine,
)


@pytest.mark.parametrize("architecture,noise,q,n_devices", DIFFERENTIAL_GRID)
class TestDifferentialGrid:
    def test_full_bist(self, architecture, noise, q, n_devices):
        wafer = draw_wafer(n_devices, architecture, seed=29)
        # Noisy full-BIST runs need the deglitch filter, as on a real chip
        # (without it the transition-count check rejects everything).
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                            transition_noise_lsb=noise,
                            deglitch_depth=3 if noise > 0 else 0)
        assert_full_bist_equivalent(config, wafer, rng=5)

    def test_partial_bist(self, architecture, noise, q, n_devices):
        wafer = draw_wafer(n_devices, architecture, seed=29)
        config = PartialBistConfig(n_bits=6, q=q, dnl_spec_lsb=0.5,
                                   inl_spec_lsb=1.0,
                                   transition_noise_lsb=noise)
        assert_partial_equivalent(config, wafer, rng=5)

    def test_histogram(self, architecture, noise, q, n_devices):
        wafer = draw_wafer(n_devices, architecture, seed=29)
        test = BatchHistogramTest(samples_per_code=16.0, dnl_spec_lsb=0.5,
                                  inl_spec_lsb=1.0,
                                  transition_noise_lsb=noise)
        assert_histogram_equivalent(test, wafer, rng=5)

    def test_dynamic(self, architecture, noise, q, n_devices):
        wafer = draw_wafer(min(n_devices, 60), architecture, seed=29)
        suite = BatchDynamicSuite(
            analyzer=DynamicAnalyzer(n_samples=1024),
            spec=DynamicSpec(min_enob=5.0),
            transition_noise_lsb=noise)
        assert_dynamic_equivalent(suite, wafer, rng=5)


#: Non-default backends swept against the numpy reference; the numba leg
#: only runs where the optional dependency is installed (CI matrix).
CANDIDATE_BACKENDS = [
    pytest.param("numpy-compact", id="numpy-compact"),
    pytest.param("numba", id="numba", marks=pytest.mark.skipif(
        "numba" not in available_backends(),
        reason="optional numba backend not installed")),
]


def _tier(candidate: str) -> dict:
    """The registered equivalence tier of a backend, as harness kwargs."""
    backend = get_backend(candidate)
    return {"bit_exact": backend.equivalence == "bit-exact",
            "atol": backend.atol}


@pytest.mark.parametrize("candidate", CANDIDATE_BACKENDS)
@pytest.mark.parametrize("architecture,noise,q,n_devices", DIFFERENTIAL_GRID)
class TestBackendGrid:
    """numpy vs each other backend, engine family × grid cell."""

    def test_full_bist(self, architecture, noise, q, n_devices, candidate):
        wafer = draw_wafer(n_devices, architecture, seed=29)
        config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                            transition_noise_lsb=noise,
                            deglitch_depth=3 if noise > 0 else 0)
        assert_backend_equivalent(
            lambda: BatchBistEngine(config).run_population(wafer, rng=5),
            candidate, **_tier(candidate))

    def test_partial_bist(self, architecture, noise, q, n_devices,
                          candidate):
        wafer = draw_wafer(n_devices, architecture, seed=29)
        config = PartialBistConfig(n_bits=6, q=q, dnl_spec_lsb=0.5,
                                   inl_spec_lsb=1.0,
                                   transition_noise_lsb=noise)
        assert_backend_equivalent(
            lambda: BatchPartialBistEngine(config).run_wafer(
                wafer, rng=np.random.default_rng(5)),
            candidate, **_tier(candidate))

    def test_histogram(self, architecture, noise, q, n_devices, candidate):
        wafer = draw_wafer(n_devices, architecture, seed=29)
        assert_backend_equivalent(
            lambda: BatchHistogramTest(
                samples_per_code=16.0, dnl_spec_lsb=0.5,
                inl_spec_lsb=1.0,
                transition_noise_lsb=noise).run_wafer(
                    wafer, rng=np.random.default_rng(5)),
            candidate, **_tier(candidate))

    def test_dynamic(self, architecture, noise, q, n_devices, candidate):
        wafer = draw_wafer(min(n_devices, 60), architecture, seed=29)
        assert_backend_equivalent(
            lambda: BatchDynamicSuite(
                analyzer=DynamicAnalyzer(n_samples=1024),
                spec=DynamicSpec(min_enob=5.0),
                transition_noise_lsb=noise).run_wafer(
                    wafer, rng=np.random.default_rng(5)),
            candidate, **_tier(candidate))
