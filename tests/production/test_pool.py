"""Persistent-pool and zero-copy shared-wafer suite.

The contract under test: the :class:`~repro.production.pool.WorkerPool` /
:class:`~repro.production.pool.SharedWaferBuffer` substrate is *purely a
scheduling layer*.  A warm pool, a cold pool, a shared-memory wafer and a
worker-side regenerated slice all produce byte-identical engine results —
and the lifecycle is airtight: closing a pool kills its workers, closing
a buffer leaves nothing in ``/dev/shm``, and the whole suite runs clean
under ``warnings.simplefilter("error")`` (a leaked segment would surface
as a ``resource_tracker`` UserWarning at interpreter exit; here we assert
the stronger property that the name is gone immediately).
"""

import glob
import os
import threading
import time
import warnings

import numpy as np
import pytest

from harness import assert_batch_results_identical, draw_wafer
from repro.core import BistConfig
from repro.production import (
    AUTO_SHARE_MIN_BYTES,
    BatchBistEngine,
    ExecutionPlan,
    SharedWaferBuffer,
    SliceRef,
    Wafer,
    WaferSpec,
    WorkerPool,
    as_slice_ref,
    close_default_pool,
    current_pool,
    get_default_pool,
    share_wafer,
    shared_pool,
)
from repro.production.pool import _SEGMENTS, draw_slice_ref


def _bist_config(noise: float = 0.05) -> BistConfig:
    return BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                      transition_noise_lsb=noise,
                      deglitch_depth=3 if noise > 0 else 0)


def _repro_shm_entries():
    return glob.glob("/dev/shm/repro_*")


def _assert_processes_gone(pids, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    for pid in pids:
        while True:
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, OSError):
                break
            if time.monotonic() > deadline:
                pytest.fail(f"worker {pid} survived pool close")
            time.sleep(0.05)


@pytest.fixture(autouse=True)
def _clean_pool_state():
    """Every test starts and ends with no default pool and no segments."""
    close_default_pool()
    yield
    close_default_pool()
    assert not _SEGMENTS
    assert not _repro_shm_entries()


class TestSharedWaferBuffer:
    def test_from_array_round_trip(self):
        matrix = np.random.default_rng(3).normal(size=(40, 63))
        with SharedWaferBuffer.from_array(matrix) as buffer:
            assert buffer.name.startswith("repro_")
            np.testing.assert_array_equal(buffer.array, matrix)

    def test_draw_sharded_matches_wafer_draw_sharded(self):
        spec = WaferSpec(n_devices=100, architecture="sar")
        reference = Wafer.draw_sharded(spec, seed=9, block_devices=32)
        with SharedWaferBuffer.draw_sharded(spec, seed=9,
                                            block_devices=32) as buffer:
            np.testing.assert_array_equal(buffer.array,
                                          reference.transitions)

    def test_ref_resolves_to_the_same_rows(self):
        matrix = np.random.default_rng(5).normal(size=(30, 63))
        with SharedWaferBuffer.from_array(matrix) as buffer:
            ref = buffer.ref(7, 19)
            assert ref.kind == "shm"
            assert ref.n_devices == 12
            np.testing.assert_array_equal(ref.resolve(), matrix[7:19])
            with pytest.raises(ValueError):
                buffer.ref(0, 31)

    def test_draw_ref_matches_draw_slice(self):
        spec = WaferSpec(n_devices=50)
        ref = draw_slice_ref(spec, 4, 10, 30, block_devices=16)
        np.testing.assert_array_equal(
            ref.resolve(),
            Wafer.draw_slice(spec, 10, 30, seed=4, block_devices=16))

    def test_as_slice_ref_detects_segment_views_only(self):
        private = np.random.default_rng(1).normal(size=(20, 63))
        assert as_slice_ref(private) is None
        with SharedWaferBuffer.from_array(private) as buffer:
            view = buffer.array[3:9]
            ref = as_slice_ref(view)
            assert isinstance(ref, SliceRef)
            np.testing.assert_array_equal(ref.resolve(), private[3:9])
            # Non-contiguous views must ship by value, not descriptor.
            assert as_slice_ref(buffer.array[:, ::2]) is None
            assert as_slice_ref(private.copy()) is None

    def test_shared_wafer_round_trips_through_slice_refs(self):
        wafer = draw_wafer(60, "flash", seed=8)
        buffer, shared = share_wafer(wafer)
        with buffer:
            assert shared.wafer_id == wafer.wafer_id
            np.testing.assert_array_equal(shared.transitions,
                                          wafer.transitions)
            ref = as_slice_ref(shared.transitions[10:20])
            assert ref is not None and ref.name == buffer.name

    def test_wafer_to_shared_is_the_same_door(self):
        wafer = draw_wafer(40, "flash", seed=8)
        buffer, shared = wafer.to_shared()
        with buffer:
            assert as_slice_ref(shared.transitions[:16]) is not None

    def test_close_is_idempotent_and_invalidates_views(self):
        buffer = SharedWaferBuffer.from_array(np.ones((10, 63)))
        name = buffer.name
        buffer.close()
        buffer.close()
        assert buffer.closed
        assert name not in _SEGMENTS
        with pytest.raises(ValueError):
            _ = buffer.array
        with pytest.raises(ValueError):
            buffer.ref(0, 1)

    def test_slice_ref_pickles_by_value(self):
        import pickle

        ref = draw_slice_ref(WaferSpec(n_devices=20), 3, 0, 8, 16)
        clone = pickle.loads(pickle.dumps(ref))
        np.testing.assert_array_equal(ref.resolve(), clone.resolve())
        with pytest.raises(ValueError):
            SliceRef("bogus")


class TestWorkerPool:
    def test_workers_persist_across_dispatches(self):
        wafer = draw_wafer(256, "flash", seed=2)
        engine = BatchBistEngine(_bist_config())
        plan = ExecutionPlan(workers=2, shard_devices=64)
        first = engine.run_wafer(wafer, rng=0, plan=plan)
        pool = current_pool() or get_default_pool(2)
        pids = sorted(pool.worker_pids())
        assert len(pids) == 2
        second = engine.run_wafer(wafer, rng=0, plan=plan)
        assert sorted(pool.worker_pids()) == pids
        assert_batch_results_identical(first, second)

    def test_close_kills_workers(self):
        pool = WorkerPool(2).warm_up()
        pids = pool.worker_pids()
        assert pids
        pool.close()
        assert pool.closed
        _assert_processes_gone(pids)
        with pytest.raises(RuntimeError):
            pool.dispatch(sorted, [((3, 1, 2),)])

    def test_dispatch_preserves_order(self):
        with WorkerPool(2) as pool:
            results = pool.dispatch(len, [(("a" * n),) for n in range(8)])
            assert results == list(range(8))

    def test_shared_pool_installs_and_restores_ambient(self):
        assert current_pool() is None
        with shared_pool(workers=2) as pool:
            assert current_pool() is pool
            with shared_pool(pool=pool):
                assert current_pool() is pool
        assert current_pool() is None
        assert pool.closed

    def test_borrowed_pool_survives_the_block(self):
        with WorkerPool(1) as pool:
            with shared_pool(pool=pool):
                pass
            assert not pool.closed
        with pytest.raises(ValueError):
            with shared_pool():
                pass

    def test_default_pool_grows_but_never_shrinks(self):
        small = get_default_pool(1)
        assert get_default_pool(1) is small
        large = get_default_pool(2)
        assert large is not small and small.closed
        assert get_default_pool(1) is large
        assert large.workers == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestPoolIsScheduling:
    """Warm, cold, shared-memory, 4-worker: all byte-identical."""

    def test_cold_pool_matches_warm_pool(self):
        wafer = draw_wafer(200, "sar", seed=6)
        engine = BatchBistEngine(_bist_config())
        warm = engine.run_wafer(wafer, rng=1, plan=ExecutionPlan(
            workers=2, shard_devices=50))
        cold = engine.run_wafer(wafer, rng=1, plan=ExecutionPlan(
            workers=2, shard_devices=50, reuse_pool=False))
        serial = engine.run_wafer(wafer, rng=1, plan=ExecutionPlan(
            workers=1, shard_devices=50))
        assert_batch_results_identical(serial, warm)
        assert_batch_results_identical(serial, cold)

    def test_four_worker_grid_matches_serial(self):
        wafer = draw_wafer(260, "flash", seed=12)
        engine = BatchBistEngine(_bist_config())
        serial = engine.run_wafer(wafer, rng=3, plan=ExecutionPlan(
            workers=1, shard_devices=32))
        for chunk in (None, 23):
            candidate = engine.run_wafer(wafer, rng=3, plan=ExecutionPlan(
                workers=4, chunk_size=chunk, shard_devices=32))
            assert_batch_results_identical(serial, candidate)

    def test_shared_memory_wafer_matches_private_wafer(self):
        wafer = draw_wafer(180, "flash", seed=4)
        engine = BatchBistEngine(_bist_config())
        plan = ExecutionPlan(workers=2, shard_devices=48)
        private = engine.run_wafer(wafer, rng=2, plan=plan)
        buffer, shared = share_wafer(wafer)
        with buffer:
            zero_copy = engine.run_wafer(shared, rng=2, plan=plan)
        assert_batch_results_identical(private, zero_copy)

    def test_large_private_matrices_are_auto_staged(self):
        """A multi-worker run of a big private wafer stages it into a
        transient segment (and cleans it up) without changing results."""
        n_devices = AUTO_SHARE_MIN_BYTES // (63 * 8) + 64
        wafer = draw_wafer(n_devices, "flash", seed=9)
        assert wafer.transitions.nbytes >= AUTO_SHARE_MIN_BYTES
        engine = BatchBistEngine(_bist_config(0.0))
        serial = engine.run_wafer(wafer, rng=0, plan=ExecutionPlan(
            workers=1, shard_devices=128))
        staged = engine.run_wafer(wafer, rng=0, plan=ExecutionPlan(
            workers=2, shard_devices=128))
        assert_batch_results_identical(serial, staged)
        assert not _repro_shm_entries()


class TestThreadSafety:
    """Interleaved scenario threads mutate the module globals while
    other threads read them — the exact traffic pattern of an
    interleaved multi-scenario campaign with auto-staged wafers."""

    def test_warm_up_forks_every_worker(self):
        """warm_up must leave *all* workers forked, not just the first —
        on 3.9/3.10 the executor spawns on demand, so a lazy warm-up
        would fork the rest mid-campaign, after threads exist."""
        with WorkerPool(4) as pool:
            pool.warm_up()
            assert len(pool.worker_pids()) == 4

    def test_as_slice_ref_survives_concurrent_registration(self):
        """Registering/unregistering segments on some threads while
        others iterate the registry must never raise 'dictionary
        changed size during iteration'."""
        stop = threading.Event()
        errors = []

        def churn():
            try:
                while not stop.is_set():
                    with SharedWaferBuffer.from_array(np.zeros((4, 63))):
                        pass
            except Exception as exc:  # pragma: no cover - regression
                errors.append(exc)

        def probe():
            private = np.zeros((2, 63))
            try:
                while not stop.is_set():
                    as_slice_ref(private)
            except Exception as exc:  # pragma: no cover - regression
                errors.append(exc)

        threads = ([threading.Thread(target=churn) for _ in range(2)]
                   + [threading.Thread(target=probe) for _ in range(2)])
        for thread in threads:
            thread.start()
        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors

    def test_concurrent_default_pool_requests_share_one_pool(self):
        """Two threads racing get_default_pool must not each create a
        pool (the loser would leak its workers until atexit)."""
        n = 8
        pools = [None] * n
        barrier = threading.Barrier(n)

        def grab(i):
            barrier.wait()
            pools[i] = get_default_pool(2)

        threads = [threading.Thread(target=grab, args=(i,))
                   for i in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(pool is pools[0] for pool in pools)

    def test_shared_pool_blocks_interleave_across_threads(self):
        """Concurrent shared_pool blocks on different threads exit by
        identity, so one thread's pop can never evict another's pool."""
        with WorkerPool(1) as keeper, WorkerPool(1) as other:
            release = threading.Event()
            entered = threading.Event()

            def hold():
                with shared_pool(pool=other):
                    entered.set()
                    release.wait(5.0)

            thread = threading.Thread(target=hold)
            with shared_pool(pool=keeper):
                thread.start()
                assert entered.wait(5.0)
                # Inner (other thread's) block exits first; ours must
                # still be installed afterwards.
                release.set()
                thread.join()
                assert current_pool() is keeper
            assert current_pool() is None


class TestNoLeaks:
    def test_lifecycle_is_warning_clean(self):
        """Pool + shared-buffer lifecycle under an escalated warning
        filter: a resource_tracker complaint (leaked segment, double
        unlink) would fail the test immediately."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            wafer = draw_wafer(120, "flash", seed=1)
            engine = BatchBistEngine(_bist_config())
            buffer, shared = share_wafer(wafer)
            with buffer, shared_pool(workers=2) as pool:
                pool.warm_up()
                pids = pool.worker_pids()
                result = engine.run_wafer(shared, rng=0, plan=ExecutionPlan(
                    workers=2, shard_devices=30))
            assert result.n_devices == 120
            _assert_processes_gone(pids)
            close_default_pool()
        assert not _repro_shm_entries()
        assert not _SEGMENTS

    def test_garbage_collected_buffer_unlinks_its_segment(self):
        buffer = SharedWaferBuffer.from_array(np.ones((8, 63)))
        name = buffer.name
        assert os.path.exists(f"/dev/shm/{name}")
        del buffer
        import gc

        gc.collect()
        assert not os.path.exists(f"/dev/shm/{name}")
        assert name not in _SEGMENTS
