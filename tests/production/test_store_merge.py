"""ResultStore.merge edge cases: the shard-merge contract of the ledger.

A campaign merges one child store per scenario ("parallel lot streams");
these tests pin the edges of that operation — empty stores, single-store
merges, duplicate scenario labels — and the invariant every aggregate
rendering depends on: merging the same reports in any order produces the
same tables.
"""

import itertools

import pytest

from repro.campaign import Campaign, Scenario
from repro.production import ResultStore


def _store_for(scenario, seed):
    """One single-lot child store, as a campaign worker would fill it."""
    result = Campaign(scenario, seed=seed).run()
    return result.store


@pytest.fixture(scope="module")
def child_stores():
    """Three heterogeneous single-lot stores (methods, archs, retest)."""
    scenarios = [
        Scenario(n_devices=60, dnl_spec_lsb=0.5),
        Scenario(n_devices=60, method="histogram", dnl_spec_lsb=0.5,
                 architecture="sar"),
        Scenario(n_devices=60, q=2, transition_noise_lsb=0.05,
                 retest_attempts=1, dnl_spec_lsb=0.5),
    ]
    return [_store_for(scenario, seed=i) for i, scenario in
            enumerate(scenarios)]


AGGREGATE_TABLES = ("method_table", "scenario_table", "campaign_table",
                    "station_table", "bin_table", "summary")


class TestMergeEdges:
    def test_merge_of_nothing_is_empty(self):
        merged = ResultStore.merge([])
        assert len(merged) == 0
        assert merged.total_devices == 0
        assert merged.overall_accept_fraction == 0.0
        # Every rendering must still produce a (headers-only) table.
        for table in AGGREGATE_TABLES + ("lot_table",):
            assert isinstance(getattr(merged, table)(), str)

    def test_merge_of_empty_stores_is_empty(self):
        assert len(ResultStore.merge([ResultStore(), ResultStore()])) == 0

    def test_single_store_merge_is_identity(self, child_stores):
        store = child_stores[0]
        merged = ResultStore.merge([store])
        assert merged.reports == store.reports
        for table in AGGREGATE_TABLES + ("lot_table",):
            assert getattr(merged, table)() == getattr(store, table)()

    def test_merge_does_not_alias_children(self, child_stores):
        merged = ResultStore.merge(child_stores)
        before = len(child_stores[0])
        merged.add(child_stores[1].reports[0])
        assert len(child_stores[0]) == before

    def test_duplicate_scenario_labels_aggregate(self):
        scenario = Scenario(n_devices=60, label="dup")
        merged = ResultStore.merge([_store_for(scenario, seed=1),
                                    _store_for(scenario, seed=2)])
        assert merged.total_devices == 120
        table = merged.campaign_table()
        # One aggregated, device-weighted row — not two rows racing for
        # the same key.
        assert table.count("dup") == 1
        assert " 120 " in table


class TestMergeOrderInvariance:
    def test_every_aggregate_table_is_order_invariant(self, child_stores):
        reference = ResultStore.merge(child_stores)
        for permutation in itertools.permutations(child_stores):
            merged = ResultStore.merge(permutation)
            for table in AGGREGATE_TABLES:
                assert getattr(merged, table)() == \
                    getattr(reference, table)(), table

    def test_lot_table_rows_are_order_covariant_but_complete(
            self, child_stores):
        """The per-lot ledger keeps arrival order (it is a log, not an
        aggregate); any merge order carries the same multiset of rows."""
        reference = sorted(
            ResultStore.merge(child_stores).lot_table().splitlines())
        for permutation in itertools.permutations(child_stores):
            rows = ResultStore.merge(permutation).lot_table().splitlines()
            assert sorted(rows) == reference

    def test_station_totals_have_canonical_order(self, child_stores):
        # bist/histogram screening stations first (alphabetically), then
        # retest, then binning — independent of merge order.
        for permutation in itertools.permutations(child_stores):
            names = [s.name for s in
                     ResultStore.merge(permutation).station_totals()]
            assert names == ["bist", "histogram", "retest", "binning"]


def _sequential_report(lot_id, n_devices, n_aborted, saved_seconds,
                       excursions=0):
    """A hand-built sprt-flow report, as `screen_lot(flow="sprt")` emits:
    the sequential station accounts only the non-aborted prefix."""
    from repro.production.line import LotScreeningReport, StationStats
    accounted = n_devices - n_aborted
    accepted = max(accounted - 1, 0)
    seconds = 0.001 * accounted
    return LotScreeningReport(
        lot_id=lot_id, n_devices=n_devices, n_accepted=accepted,
        n_recovered=0, bin_counts={"bin-1": accepted},
        stations=[
            StationStats("sequential", n_devices, accepted, seconds,
                         n_accounted=accounted),
            StationStats("binning", accepted, accepted, 0.0),
        ],
        tester_seconds=seconds, cost_per_device=1e-6, p_good=1.0,
        type_i=0.0, type_ii=0.0, samples_per_device=1000,
        flow="sprt", saved_samples=accounted * 10,
        saved_tester_seconds=saved_seconds, n_aborted=n_aborted,
        excursions=excursions)


class TestSequentialStationMerge:
    """station_totals over adaptive stations: the n_accounted contract."""

    def _totals(self, reports):
        store = ResultStore()
        for report in reports:
            store.add(report)
        return {s.name: s for s in store.station_totals()}

    def test_accounted_sums_across_lots(self):
        totals = self._totals([
            _sequential_report("L0", 100, 20, 0.5, excursions=1),
            _sequential_report("L1", 100, 0, 0.7),
        ])
        station = totals["sequential"]
        assert station.n_in == 200
        assert station.n_accounted == 180
        assert station.accounted == 180

    def test_merge_order_does_not_double_count(self):
        reports = [_sequential_report(f"L{i}", 100, 10 * i, 0.1)
                   for i in range(3)]
        for ordering in itertools.permutations(reports):
            station = self._totals(list(ordering))["sequential"]
            assert station.n_accounted == 270, \
                [r.lot_id for r in ordering]

    def test_fixed_stations_keep_none_accounted(self, child_stores):
        merged = ResultStore.merge(child_stores)
        for station in merged.station_totals():
            assert station.n_accounted is None
            assert station.accounted == station.n_in

    def test_mixed_none_and_explicit_accounted(self):
        from repro.production.line import LotScreeningReport, StationStats
        plain = LotScreeningReport(
            lot_id="F0", n_devices=50, n_accepted=50, n_recovered=0,
            bin_counts={}, stations=[StationStats("sequential", 50, 50,
                                                  0.05)],
            tester_seconds=0.05, cost_per_device=1e-6, p_good=1.0,
            type_i=0.0, type_ii=0.0, samples_per_device=1000)
        totals = self._totals([plain,
                               _sequential_report("L0", 100, 40, 0.2)])
        station = totals["sequential"]
        # The None entry falls back to its full n_in (50), the adaptive
        # entry contributes its explicit prefix (60).
        assert station.n_accounted == 110

    def test_all_aborted_lot_merges_finite(self):
        report = _sequential_report("L0", 80, 80, 0.0, excursions=1)
        station = self._totals([report])["sequential"]
        assert station.n_accounted == 0
        assert station.tester_seconds == 0.0
        assert station.devices_per_hour == float("inf")
        assert report.n_accepted == 0


class TestMetricsReportSequentialFields:
    def test_rows_sum_saved_seconds_and_aborts(self):
        from repro.telemetry.metrics import MetricsReport
        reports = [
            _sequential_report("L0", 100, 20, 0.5, excursions=1),
            _sequential_report("L1", 100, 0, 0.7),
        ]
        pivot = MetricsReport.from_reports(["sprt"], {"sprt": reports})
        (row,) = pivot.rows
        assert row["saved_tester_seconds"] == pytest.approx(1.2)
        assert row["aborted"] == 20
        assert row["devices"] == 200
        assert "saved [s]" in pivot.table()

    def test_empty_label_row_is_all_zero(self):
        from repro.telemetry.metrics import MetricsReport
        pivot = MetricsReport.from_reports(["ghost"], {})
        (row,) = pivot.rows
        assert row["devices"] == 0
        assert row["saved_tester_seconds"] == 0.0
        assert row["aborted"] == 0
        assert row["cost_per_device"] == 0.0

    def test_all_aborted_lot_row(self):
        from repro.telemetry.metrics import MetricsReport
        reports = [_sequential_report("L0", 80, 80, 0.0, excursions=1)]
        pivot = MetricsReport.from_reports(["dead"], {"dead": reports})
        (row,) = pivot.rows
        assert row["accepted"] == 0
        assert row["tester_seconds"] == 0.0
        assert row["aborted"] == 80

    def test_legacy_reports_without_flow_fields(self):
        from repro.telemetry.metrics import MetricsReport

        class Legacy:
            n_devices = 10
            n_accepted = 9
            tester_seconds = 0.5
            type_i = 0.0
            type_ii = 0.0
            cost_per_device = 1e-6

        pivot = MetricsReport.from_reports(["old"], {"old": [Legacy()]})
        (row,) = pivot.rows
        assert row["saved_tester_seconds"] == 0.0
        assert row["aborted"] == 0
