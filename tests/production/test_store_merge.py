"""ResultStore.merge edge cases: the shard-merge contract of the ledger.

A campaign merges one child store per scenario ("parallel lot streams");
these tests pin the edges of that operation — empty stores, single-store
merges, duplicate scenario labels — and the invariant every aggregate
rendering depends on: merging the same reports in any order produces the
same tables.
"""

import itertools

import pytest

from repro.campaign import Campaign, Scenario
from repro.production import ResultStore


def _store_for(scenario, seed):
    """One single-lot child store, as a campaign worker would fill it."""
    result = Campaign(scenario, seed=seed).run()
    return result.store


@pytest.fixture(scope="module")
def child_stores():
    """Three heterogeneous single-lot stores (methods, archs, retest)."""
    scenarios = [
        Scenario(n_devices=60, dnl_spec_lsb=0.5),
        Scenario(n_devices=60, method="histogram", dnl_spec_lsb=0.5,
                 architecture="sar"),
        Scenario(n_devices=60, q=2, transition_noise_lsb=0.05,
                 retest_attempts=1, dnl_spec_lsb=0.5),
    ]
    return [_store_for(scenario, seed=i) for i, scenario in
            enumerate(scenarios)]


AGGREGATE_TABLES = ("method_table", "scenario_table", "campaign_table",
                    "station_table", "bin_table", "summary")


class TestMergeEdges:
    def test_merge_of_nothing_is_empty(self):
        merged = ResultStore.merge([])
        assert len(merged) == 0
        assert merged.total_devices == 0
        assert merged.overall_accept_fraction == 0.0
        # Every rendering must still produce a (headers-only) table.
        for table in AGGREGATE_TABLES + ("lot_table",):
            assert isinstance(getattr(merged, table)(), str)

    def test_merge_of_empty_stores_is_empty(self):
        assert len(ResultStore.merge([ResultStore(), ResultStore()])) == 0

    def test_single_store_merge_is_identity(self, child_stores):
        store = child_stores[0]
        merged = ResultStore.merge([store])
        assert merged.reports == store.reports
        for table in AGGREGATE_TABLES + ("lot_table",):
            assert getattr(merged, table)() == getattr(store, table)()

    def test_merge_does_not_alias_children(self, child_stores):
        merged = ResultStore.merge(child_stores)
        before = len(child_stores[0])
        merged.add(child_stores[1].reports[0])
        assert len(child_stores[0]) == before

    def test_duplicate_scenario_labels_aggregate(self):
        scenario = Scenario(n_devices=60, label="dup")
        merged = ResultStore.merge([_store_for(scenario, seed=1),
                                    _store_for(scenario, seed=2)])
        assert merged.total_devices == 120
        table = merged.campaign_table()
        # One aggregated, device-weighted row — not two rows racing for
        # the same key.
        assert table.count("dup") == 1
        assert " 120 " in table


class TestMergeOrderInvariance:
    def test_every_aggregate_table_is_order_invariant(self, child_stores):
        reference = ResultStore.merge(child_stores)
        for permutation in itertools.permutations(child_stores):
            merged = ResultStore.merge(permutation)
            for table in AGGREGATE_TABLES:
                assert getattr(merged, table)() == \
                    getattr(reference, table)(), table

    def test_lot_table_rows_are_order_covariant_but_complete(
            self, child_stores):
        """The per-lot ledger keeps arrival order (it is a log, not an
        aggregate); any merge order carries the same multiset of rows."""
        reference = sorted(
            ResultStore.merge(child_stores).lot_table().splitlines())
        for permutation in itertools.permutations(child_stores):
            rows = ResultStore.merge(permutation).lot_table().splitlines()
            assert sorted(rows) == reference

    def test_station_totals_have_canonical_order(self, child_stores):
        # bist/histogram screening stations first (alphabetically), then
        # retest, then binning — independent of merge order.
        for permutation in itertools.permutations(child_stores):
            names = [s.name for s in
                     ResultStore.merge(permutation).station_totals()]
            assert names == ["bist", "histogram", "retest", "binning"]
