"""Tests for the wafer/lot device-matrix models."""

import numpy as np
import pytest

from repro.adc import DevicePopulation, PopulationSpec
from repro.production import Lot, Wafer, WaferSpec


class TestWaferSpec:
    def test_defaults(self):
        spec = WaferSpec()
        assert spec.n_codes == 64
        assert spec.n_inner_codes == 62
        assert spec.lsb == pytest.approx(1.0 / 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            WaferSpec(n_bits=1)
        with pytest.raises(ValueError):
            WaferSpec(n_devices=0)
        with pytest.raises(ValueError):
            WaferSpec(sigma_code_width_lsb=-0.1)
        with pytest.raises(ValueError):
            WaferSpec(full_scale=0.0)


class TestWafer:
    def test_draw_is_reproducible(self):
        spec = WaferSpec(n_devices=50)
        a = Wafer.draw(spec, rng=7)
        b = Wafer.draw(spec, rng=7)
        assert np.array_equal(a.transitions, b.transitions)
        c = Wafer.draw(spec, rng=8)
        assert not np.array_equal(a.transitions, c.transitions)

    def test_shape_validation(self):
        spec = WaferSpec(n_devices=10)
        with pytest.raises(ValueError):
            Wafer(spec, np.zeros((10, 10)))

    def test_statistics_match_spec(self):
        spec = WaferSpec(n_devices=4000, sigma_code_width_lsb=0.21)
        wafer = Wafer.draw(spec, rng=3)
        widths_lsb = np.diff(wafer.transitions, axis=1) / spec.lsb
        assert widths_lsb.mean() == pytest.approx(1.0, abs=0.01)
        assert widths_lsb.std() == pytest.approx(0.21, abs=0.01)

    def test_device_matches_matrix_row(self):
        wafer = Wafer.draw(WaferSpec(n_devices=5), rng=1)
        device = wafer.device(3)
        assert np.array_equal(device.transfer_function().transitions,
                              wafer.transitions[3])
        assert device.sample_rate == wafer.spec.sample_rate
        with pytest.raises(IndexError):
            wafer.device(5)

    def test_good_mask_matches_scalar_classification(self):
        from repro.core import true_goodness

        wafer = Wafer.draw(WaferSpec(n_devices=100,
                                     sigma_code_width_lsb=0.3), rng=5)
        mask = wafer.good_mask(0.5, inl_spec_lsb=1.0)
        scalar = [true_goodness(wafer.device(i), 0.5, 1.0)
                  for i in range(len(wafer))]
        assert np.array_equal(mask, np.asarray(scalar))
        assert wafer.yield_fraction(0.5, 1.0) == pytest.approx(mask.mean())

    def test_from_population_gaussian(self):
        pop = DevicePopulation(PopulationSpec(
            size=30, seed=2, architecture="gaussian"))
        wafer = Wafer.from_population(pop)
        assert np.array_equal(wafer.transitions, pop.transition_matrix())
        assert np.array_equal(
            wafer.transitions[7],
            pop[7].transfer_function().transitions)

    def test_from_population_flash(self):
        pop = DevicePopulation(PopulationSpec(size=10, seed=2,
                                              architecture="flash"))
        wafer = Wafer.from_population(pop)
        assert np.array_equal(
            wafer.transitions[4],
            pop[4].transfer_function().transitions)


class TestLot:
    def test_draw(self):
        spec = WaferSpec(n_devices=20)
        lot = Lot.draw(spec, n_wafers=3, seed=1, lot_id="L1")
        assert len(lot) == 3
        assert lot.n_devices == 60
        assert lot.spec == spec
        ids = [w.wafer_id for w in lot]
        assert ids == ["L1/W0", "L1/W1", "L1/W2"]
        # Wafers differ from each other but the lot is reproducible.
        assert not np.array_equal(lot.wafers[0].transitions,
                                  lot.wafers[1].transitions)
        again = Lot.draw(spec, n_wafers=3, seed=1, lot_id="L1")
        assert np.array_equal(lot.wafers[2].transitions,
                              again.wafers[2].transitions)

    def test_validation(self):
        with pytest.raises(ValueError):
            Lot([])
        with pytest.raises(ValueError):
            Lot.draw(WaferSpec(), n_wafers=0)
        w_a = Wafer.draw(WaferSpec(n_devices=5), rng=0)
        w_b = Wafer.draw(WaferSpec(n_devices=6), rng=0)
        with pytest.raises(ValueError):
            Lot([w_a, w_b])
