"""Shared scalar↔batch differential-test harness.

Every batch engine in :mod:`repro.production` carries the same contract:
on the same population it must reproduce its scalar counterpart's
decisions (and estimates) bit for bit, on every execution path.  The
helpers here state that contract once, per engine family, so the
equivalence suites — full BIST, partial BIST, and the conventional
histogram/dynamic analysis layer — all pin it through one door instead of
re-deriving the scalar loop in every test file.

Conventions shared by all helpers:

* the scalar reference is an explicit Python loop over
  ``wafer.devices()``, consuming one shared ``numpy`` generator in device
  order — exactly the stream discipline the batch engines implement;
* every helper asserts decision equality (and the family's estimate
  arrays) with exact ``assert_array_equal``, never ``allclose``: the
  engines share kernels, so the numbers must be identical, not close;
* helpers return ``(scalar, batch)`` so callers can layer scenario-
  specific assertions (accept-fraction sanity, reconstruction quality, …)
  on top.

``DIFFERENTIAL_GRID`` is the standing parameter grid (architecture ×
noise × q × device count) that ``test_differential_grid.py`` sweeps over
all engine families.  ``PLAN_GRID`` is its scale-out sibling: the
(workers × chunk_size) execution geometries every engine must be
bit-invariant under, swept by ``test_execution.py`` through
:func:`assert_plan_invariant`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import (
    BistConfig,
    BistEngine,
    PartialBistConfig,
    PartialBistEngine,
)
from repro.core.backend import backend_scope
from repro.production import (
    BatchBistEngine,
    BatchDynamicSuite,
    BatchHistogramTest,
    BatchPartialBistEngine,
    ExecutionPlan,
    Wafer,
    WaferSpec,
)

#: (architecture, transition_noise_lsb, q, n_devices) scenarios every
#: engine family is swept over.  Noise 0 exercises the event fast paths,
#: noise > 0 the stream paths; q only applies to the partial BIST.
DIFFERENTIAL_GRID = [
    ("flash", 0.0, 1, 120),
    ("flash", 0.05, 2, 60),
    ("sar", 0.0, 2, 90),
    ("sar", 0.03, 3, 50),
    ("pipeline", 0.0, 3, 90),
    ("pipeline", 0.05, 1, 50),
]

#: (workers, chunk_size) execution geometries every engine must be
#: bit-invariant under.  The first entry is the serial reference; a small
#: shard size in the plans (set by assert_plan_invariant) forces several
#: shards even on the small test wafers.
PLAN_GRID = [
    (1, None),
    (1, 17),
    (2, None),
    (2, 23),
]


def assert_batch_results_identical(reference, candidate) -> None:
    """Field-wise bit-exact equality of two batch result dataclasses.

    Array fields must be identical (NaNs compare positionally equal, as a
    rejected device's NaN estimate must survive sharding too); scalar and
    nested-dataclass fields must compare equal.
    """
    assert type(reference) is type(candidate)
    for field in dataclasses.fields(reference):
        a = getattr(reference, field.name)
        b = getattr(candidate, field.name)
        if isinstance(a, np.ndarray):
            np.testing.assert_array_equal(a, b, err_msg=field.name)
        else:
            assert a == b, field.name


def assert_batch_results_close(reference, candidate,
                               atol: float) -> None:
    """Tolerance-tier equality of two batch result dataclasses.

    The contract of backends registered with ``equivalence="tolerance"``
    (the JIT backend): integer/bool arrays and scalars stay bit-exact,
    float arrays may differ by ``atol`` (JIT loops can re-associate float
    sums).  NaNs still compare positionally equal.
    """
    assert type(reference) is type(candidate)
    for field in dataclasses.fields(reference):
        a = getattr(reference, field.name)
        b = getattr(candidate, field.name)
        if isinstance(a, np.ndarray) and np.issubdtype(a.dtype,
                                                       np.floating):
            np.testing.assert_allclose(a, b, rtol=0.0, atol=atol,
                                       equal_nan=True,
                                       err_msg=field.name)
        elif isinstance(a, np.ndarray):
            np.testing.assert_array_equal(a, b, err_msg=field.name)
        else:
            assert a == b, field.name


def assert_backend_equivalent(run, candidate: str,
                              reference: str = "numpy", *,
                              bit_exact: bool = True,
                              atol: float = 0.0):
    """One engine run must agree between two kernel backends.

    ``run`` is a callable taking no arguments and returning a batch
    result; it is invoked once under :func:`backend_scope(reference)
    <repro.core.backend.backend_scope>` and once under the candidate
    backend, so engines constructed inside it (with ``backend=None``)
    resolve the ambient backend under test.

    ``bit_exact=True`` asserts the ``numpy``/``numpy-compact`` tier:
    every field identical value for value (compaction may narrow dtypes,
    never change values).  ``bit_exact=False`` asserts the tolerance
    tier of JIT backends: integer fields exact, float arrays within
    ``atol``.  Returns ``(reference_result, candidate_result)``.
    """
    with backend_scope(reference):
        ref = run()
    with backend_scope(candidate):
        cand = run()
    if bit_exact:
        assert_batch_results_identical(ref, cand)
    else:
        assert_batch_results_close(ref, cand, atol=atol)
    return ref, cand


def assert_plan_invariant(run, shard_devices: int = 64,
                          plan_grid=PLAN_GRID):
    """One engine run must be bit-identical across the whole plan grid.

    ``run`` is a callable taking an :class:`ExecutionPlan` (with
    ``chunk_size`` already folded in) and returning a batch result; the
    grid's first geometry is the serial reference the others are compared
    against, field for field.  Returns the reference result so callers
    can layer scenario assertions on top.
    """
    workers0, chunk0 = plan_grid[0]
    reference = run(ExecutionPlan(workers=workers0, chunk_size=chunk0,
                                  shard_devices=shard_devices))
    for workers, chunk in plan_grid[1:]:
        candidate = run(ExecutionPlan(workers=workers, chunk_size=chunk,
                                      shard_devices=shard_devices))
        assert_batch_results_identical(reference, candidate)
    return reference


def draw_wafer(n_devices: int = 150, architecture: str = "flash",
               seed: int = 7, sigma: float = 0.21,
               n_bits: int = 6) -> Wafer:
    """A seeded wafer of the requested architecture and size."""
    return Wafer.draw(WaferSpec(n_bits=n_bits,
                                sigma_code_width_lsb=sigma,
                                n_devices=n_devices,
                                architecture=architecture), rng=seed)


def _generator(rng):
    """A fresh generator from a seed, or None passed through."""
    if rng is None:
        return None
    return np.random.default_rng(rng)


def assert_full_bist_equivalent(config: BistConfig, wafer: Wafer,
                                rng=0):
    """Scalar loop and batched full BIST must agree device for device."""
    scalar = BistEngine(config).run_population(wafer.devices(), rng=rng)
    batch = BatchBistEngine(config).run_population(wafer, rng=rng)
    np.testing.assert_array_equal(scalar.accepted, batch.accepted)
    np.testing.assert_array_equal(scalar.truly_good, batch.truly_good)
    assert scalar.n_devices == batch.n_devices
    return scalar, batch


def scalar_partial_results(config: PartialBistConfig, wafer: Wafer,
                           rng=None):
    """Per-device scalar partial-BIST results under the shared-rng loop."""
    engine = PartialBistEngine(config)
    generator = _generator(rng)
    return [engine.run(device, rng=generator)
            for device in wafer.devices()]


def assert_partial_equivalent(config: PartialBistConfig, wafer: Wafer,
                              rng=None):
    """Scalar loop and batched partial BIST must agree on everything."""
    scalar = scalar_partial_results(config, wafer, rng=rng)
    batch = BatchPartialBistEngine(config).run_wafer(
        wafer, rng=_generator(rng))
    np.testing.assert_array_equal(
        np.array([r.passed for r in scalar]), batch.passed)
    np.testing.assert_array_equal(
        np.array([r.linearity_passed for r in scalar]),
        batch.linearity_passed)
    np.testing.assert_array_equal(
        np.array([r.reconstruction_error_rate for r in scalar]),
        batch.reconstruction_error_rate)
    np.testing.assert_array_equal(
        np.array([r.linearity.max_dnl for r in scalar]),
        batch.measured_max_dnl_lsb)
    assert scalar[0].samples_taken == batch.samples_taken
    assert scalar[0].partition == batch.partition
    return scalar, batch


def assert_histogram_equivalent(test: BatchHistogramTest, wafer: Wafer,
                                rng=None):
    """Scalar loop and batched histogram test must agree on everything."""
    generator = _generator(rng)
    scalar = [test.scalar.run(device, rng=generator)
              for device in wafer.devices()]
    batch = test.run_wafer(wafer, rng=_generator(rng))
    np.testing.assert_array_equal(
        np.array([r.passed for r in scalar]), batch.passed)
    np.testing.assert_array_equal(
        np.vstack([r.counts for r in scalar]), batch.counts)
    np.testing.assert_array_equal(
        np.array([r.max_dnl for r in scalar]),
        batch.measured_max_dnl_lsb)
    np.testing.assert_array_equal(
        np.array([r.max_inl for r in scalar]),
        batch.measured_max_inl_lsb)
    assert scalar[0].samples_taken == batch.samples_taken
    assert scalar[0].bits_transferred == batch.bits_transferred_per_device
    return scalar, batch


def assert_dynamic_equivalent(suite: BatchDynamicSuite, wafer: Wafer,
                              rng=None):
    """Scalar loop and batched dynamic suite must agree on everything."""
    generator = _generator(rng)
    analyzer = suite.analyzer
    scalar = [analyzer.measure(device,
                               target_frequency=suite.target_frequency,
                               amplitude_fraction=suite.amplitude_fraction,
                               transition_noise_lsb=suite.transition_noise_lsb,
                               rng=generator)
              for device in wafer.devices()]
    batch = suite.run_wafer(wafer, rng=_generator(rng))
    spec = suite.resolved_spec(wafer.spec.n_bits)
    np.testing.assert_array_equal(
        np.array([r.enob for r in scalar]), batch.enob)
    np.testing.assert_array_equal(
        np.array([r.sinad_db for r in scalar]), batch.sinad_db)
    np.testing.assert_array_equal(
        np.array([r.snr_db for r in scalar]), batch.snr_db)
    np.testing.assert_array_equal(
        np.array([r.thd_db for r in scalar]), batch.thd_db)
    np.testing.assert_array_equal(
        np.array([r.sfdr_db for r in scalar]), batch.sfdr_db)
    np.testing.assert_array_equal(
        np.array([spec.passes(r) for r in scalar]), batch.passed)
    assert batch.samples_taken == analyzer.n_samples
    return scalar, batch
