"""Unit tests for the outgoing-quality and cost-optimisation models."""

import pytest

from repro.analysis import ErrorModel
from repro.economics import CostBreakdown, OutgoingQuality
from repro.economics import TestCostOptimizer as CostOptimizer


class TestOutgoingQuality:
    def test_from_error_model(self):
        device = ErrorModel(dnl_spec_lsb=1.0, counter_bits=5).device(62)
        quality = OutgoingQuality.from_device_probabilities(device)
        assert quality.p_good == pytest.approx(device.p_good)
        assert quality.shipped_dppm == pytest.approx(
            1e6 * device.type_ii / quality.p_ship)

    def test_ship_fraction(self):
        quality = OutgoingQuality(p_good=0.9, type_i=0.05, type_ii=0.02)
        assert quality.p_ship == pytest.approx(0.87)
        assert quality.yield_loss_ppm == pytest.approx(5e4)

    def test_perfect_test(self):
        quality = OutgoingQuality(p_good=0.95, type_i=0.0, type_ii=0.0)
        assert quality.shipped_dppm == 0.0
        assert quality.meets_quality_target(10.0)

    def test_quality_target(self):
        good = OutgoingQuality(p_good=0.999, type_i=1e-4, type_ii=5e-5)
        bad = OutgoingQuality(p_good=0.999, type_i=1e-4, type_ii=5e-3)
        assert good.meets_quality_target(100.0)
        assert not bad.meets_quality_target(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OutgoingQuality(p_good=1.5, type_i=0.0, type_ii=0.0)
        with pytest.raises(ValueError):
            OutgoingQuality(p_good=0.9, type_i=0.0,
                            type_ii=0.0).meets_quality_target(-1.0)


class TestCostOptimizerSuite:
    def test_evaluate_breakdown_fields(self):
        optimizer = CostOptimizer()
        breakdown = optimizer.evaluate(5)
        assert isinstance(breakdown, CostBreakdown)
        assert breakdown.counter_bits == 5
        assert breakdown.silicon_cost > 0
        assert breakdown.total >= breakdown.silicon_cost

    def test_bigger_counter_costs_more_silicon_fewer_escapes(self):
        optimizer = CostOptimizer()
        small = optimizer.evaluate(4)
        large = optimizer.evaluate(8)
        assert large.silicon_cost > small.silicon_cost
        assert large.escape_cost < small.escape_cost
        assert large.quality.shipped_dppm < small.quality.shipped_dppm

    def test_sweep_and_best(self):
        optimizer = CostOptimizer()
        sweep = optimizer.sweep(range(4, 9))
        assert set(sweep) == {4, 5, 6, 7, 8}
        best = optimizer.best(range(4, 9))
        assert best.counter_bits in sweep
        assert best.quality.meets_quality_target(100.0)

    def test_best_without_quality_target_minimises_total(self):
        optimizer = CostOptimizer()
        best = optimizer.best(range(4, 9), dppm_target=None)
        sweep = optimizer.sweep(range(4, 9))
        assert best.total == pytest.approx(
            min(b.total for b in sweep.values()))

    def test_unreachable_target_returns_lowest_dppm(self):
        optimizer = CostOptimizer(dnl_spec_lsb=0.5)
        best = optimizer.best(range(4, 6), dppm_target=1e-6)
        sweep = optimizer.sweep(range(4, 6))
        assert best.quality.shipped_dppm == pytest.approx(
            min(b.quality.shipped_dppm for b in sweep.values()))

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            CostOptimizer().best([])

    def test_validation(self):
        with pytest.raises(ValueError):
            CostOptimizer(n_codes=0)
        with pytest.raises(ValueError):
            CostOptimizer(device_cost=-1.0)
