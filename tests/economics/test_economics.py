"""Unit tests for the test-economics models."""

import pytest

from repro.economics import (
    ParallelTestSchedule,
    compare_schedules,
    cost_per_device,
)
from repro.economics import TestPlan as Plan
from repro.economics import TesterModel as Ate


class TestTesterModel:
    def test_factories(self):
        ms = Ate.mixed_signal()
        digital = Ate.digital_only()
        assert ms.has_mixed_signal
        assert not digital.has_mixed_signal
        assert digital.capital_cost < ms.capital_cost

    def test_validation(self):
        with pytest.raises(ValueError):
            Ate("x", digital_channels=0, has_mixed_signal=True,
                        capital_cost=1.0, cost_per_second=0.1)
        with pytest.raises(ValueError):
            Ate("x", digital_channels=8, has_mixed_signal=True,
                        capital_cost=-1.0, cost_per_second=0.1)


class TestTestPlan:
    def test_conventional_plan(self):
        plan = Plan.conventional_histogram(n_bits=6, samples=4096,
                                               sample_rate=1e6)
        assert plan.data_volume_bits == 4096 * 6
        assert plan.acquisition_time_s == pytest.approx(4096e-6)
        assert plan.needs_mixed_signal_tester
        assert plan.channels_needed() == 6

    def test_partial_bist_plan(self):
        plan = Plan.partial_bist(n_bits=6, q=2, samples=4096)
        assert plan.data_volume_bits == 4096 * 2
        assert plan.channels_needed() == 2

    def test_full_bist_plan(self):
        plan = Plan.full_bist(n_bits=6, samples=4096)
        assert plan.data_volume_bits == 0
        assert plan.channels_needed() == 1
        assert not plan.needs_mixed_signal_tester

    def test_full_bist_without_on_chip_generation(self):
        plan = Plan.full_bist(n_bits=6, samples=4096,
                                  on_chip_generation=False)
        assert plan.needs_mixed_signal_tester

    def test_validation(self):
        with pytest.raises(ValueError):
            Plan(n_bits=6, samples=0, observed_bits_per_sample=6,
                     sample_rate=1e6)
        with pytest.raises(ValueError):
            Plan(n_bits=6, samples=10, observed_bits_per_sample=7,
                     sample_rate=1e6)


class TestCostPerDevice:
    def test_bist_is_cheaper_than_conventional(self):
        tester = Ate.mixed_signal()
        conventional = Plan.conventional_histogram()
        bist = Plan.full_bist(n_bits=6, samples=4096,
                                  on_chip_generation=False)
        assert (cost_per_device(bist, tester)
                < cost_per_device(conventional, tester))

    def test_full_bist_runs_on_digital_tester(self):
        digital = Ate.digital_only()
        bist = Plan.full_bist(n_bits=6, samples=4096)
        assert cost_per_device(bist, digital) > 0.0

    def test_conventional_needs_mixed_signal_tester(self):
        digital = Ate.digital_only()
        conventional = Plan.conventional_histogram()
        with pytest.raises(ValueError):
            cost_per_device(conventional, digital)

    def test_multiple_converters_share_insertion(self):
        tester = Ate.mixed_signal()
        plan = Plan.conventional_histogram()
        single = cost_per_device(plan, tester, devices_per_ic=1, sites=1)
        quad = cost_per_device(plan, tester, devices_per_ic=4, sites=1)
        assert quad == pytest.approx(single / 4)

    def test_site_limit_enforced(self):
        tester = Ate.mixed_signal()  # 64 channels
        plan = Plan.conventional_histogram()  # 6 channels each
        with pytest.raises(ValueError):
            cost_per_device(plan, tester, sites=11)

    def test_default_sites_maximises_parallelism(self):
        tester = Ate.mixed_signal()
        plan = Plan.conventional_histogram()
        auto = cost_per_device(plan, tester)
        explicit = cost_per_device(plan, tester, sites=10)
        assert auto == pytest.approx(explicit)


class TestParallelTestSchedule:
    def test_converters_per_pass(self):
        schedule = ParallelTestSchedule(n_converters=100,
                                        bits_per_converter=6,
                                        tester_channels=64,
                                        time_per_pass_s=0.01)
        assert schedule.converters_per_pass == 10
        assert schedule.n_passes == 10
        assert schedule.total_time_s == pytest.approx(0.1)

    def test_bist_schedules_are_faster(self):
        conventional, partial, full = compare_schedules(
            n_converters=1000, n_bits=6, q=2, tester_channels=64,
            time_per_pass_s=0.01)
        assert partial.total_time_s < conventional.total_time_s
        assert full.total_time_s <= partial.total_time_s
        assert full.speedup_over(conventional) >= 5.0

    def test_speedup_definition(self):
        a = ParallelTestSchedule(100, 6, 64, 0.01)
        b = ParallelTestSchedule(100, 1, 64, 0.01)
        assert b.speedup_over(a) == pytest.approx(a.total_time_s
                                                  / b.total_time_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelTestSchedule(0, 6, 64, 0.01)
        with pytest.raises(ValueError):
            ParallelTestSchedule(10, 6, 4, 0.01)
        with pytest.raises(ValueError):
            compare_schedules(10, 6, 7, 64, 0.01)
