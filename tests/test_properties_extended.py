"""Property-based tests for the extension modules (partial BIST, sine
histogram, outgoing quality, reporting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.sine_histogram import expected_sine_histogram
from repro.core.partial_engine import reconstruct_codes
from repro.economics.quality import OutgoingQuality
from repro.reporting import format_table


class TestReconstructionProperties:
    @given(st.integers(min_value=3, max_value=10),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_round_trip_on_monotone_code_sequences(self, n_bits, q, repeat,
                                                   seed):
        """Reconstruction from q LSBs is exact for any monotone, gap-free
        code sequence (the situation Equation (1) guarantees)."""
        q = min(q, n_bits)
        codes = np.repeat(np.arange(1 << n_bits), repeat)
        observed = codes & ((1 << q) - 1)
        rebuilt = reconstruct_codes(observed, q, n_bits)
        assert np.array_equal(rebuilt, codes)

    @given(st.integers(min_value=3, max_value=8),
           st.integers(min_value=1, max_value=4),
           hnp.arrays(dtype=np.int64, shape=st.integers(1, 200),
                      elements=st.integers(0, 255)))
    @settings(max_examples=80, deadline=None)
    def test_reconstruction_stays_within_range(self, n_bits, q, raw):
        q = min(q, n_bits)
        observed = raw & ((1 << q) - 1)
        rebuilt = reconstruct_codes(observed, q, n_bits)
        assert rebuilt.min() >= 0
        assert rebuilt.max() <= (1 << n_bits) - 1
        # Wherever the reconstruction did not have to clip at the top of the
        # range, the observed field is preserved exactly.
        not_clipped = rebuilt < (1 << n_bits) - 1
        assert np.array_equal(rebuilt[not_clipped] & ((1 << q) - 1),
                              observed[not_clipped])


class TestSineHistogramProperties:
    @given(st.integers(min_value=3, max_value=10),
           st.floats(min_value=0.3, max_value=1.0),
           st.integers(min_value=1000, max_value=10 ** 6))
    @settings(max_examples=60, deadline=None)
    def test_expected_histogram_sums_to_sample_count(self, n_bits, amplitude,
                                                     n_samples):
        expected = expected_sine_histogram(n_bits, amplitude=amplitude,
                                           offset=0.5, full_scale=1.0,
                                           n_samples=n_samples)
        assert expected.size == 1 << n_bits
        assert np.all(expected >= -1e-9)
        assert expected.sum() == pytest.approx(n_samples, rel=1e-9)

    @given(st.integers(min_value=3, max_value=9),
           st.floats(min_value=0.51, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_expected_histogram_is_symmetric(self, n_bits, amplitude):
        expected = expected_sine_histogram(n_bits, amplitude=amplitude,
                                           offset=0.5, full_scale=1.0,
                                           n_samples=10000)
        assert np.allclose(expected, expected[::-1], atol=1e-6)


class TestOutgoingQualityProperties:
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_derived_quantities_are_consistent(self, p_good, f_i, f_ii):
        # Type I cannot exceed P(good); type II cannot exceed P(faulty).
        type_i = p_good * f_i
        type_ii = (1.0 - p_good) * f_ii
        quality = OutgoingQuality(p_good=p_good, type_i=type_i,
                                  type_ii=type_ii)
        assert 0.0 <= quality.p_ship <= 1.0 + 1e-12
        assert quality.shipped_dppm >= 0.0
        if quality.p_ship > 0:
            assert quality.shipped_dppm <= 1e6 + 1e-6
        assert quality.yield_loss_ppm == pytest.approx(1e6 * type_i)


class TestReportingProperties:
    @given(st.lists(st.lists(st.floats(allow_nan=False,
                                       allow_infinity=False,
                                       min_value=-1e6, max_value=1e6),
                             min_size=3, max_size=3),
                    min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_format_table_aligns_all_rows(self, rows):
        text = format_table(["a", "b", "c"], rows)
        lines = text.splitlines()
        assert len(lines) == len(rows) + 2
        # Every line has the same width (alignment invariant).
        assert len({len(line) for line in lines}) == 1
