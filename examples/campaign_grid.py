"""One front door: a declarative scenario grid through the Campaign API.

Every earlier example wires engines, lines and stores by hand.  This one
shows the single public path that replaced all of that plumbing: describe
*what* to screen as frozen :class:`~repro.campaign.Scenario` values, let
:meth:`Scenario.grid` expand the comparison axes (normalising away
combinations that do not exist — ``q`` means nothing to the histogram
test), and let :class:`~repro.campaign.Campaign` screen the whole grid
under deterministic per-scenario child seeds, shard-merging one
:class:`~repro.production.ResultStore` ledger.

The same grid is one CLI call:

    repro campaign --arch flash,sar --method bist,histogram --q 4,8

and because every scenario runs under the deterministic scale-out layer,
adding ``--workers 8`` changes nothing but the wall clock.
"""

from repro.campaign import Campaign, Scenario
from repro.production import ExecutionPlan

# ---------------------------------------------------------------------- #
# 1. Declare the comparison: one base scenario, three grid axes.
#    8-bit dies leave headroom for the q axis; the actual +-1 LSB spec
#    keeps yields realistic across architectures.
# ---------------------------------------------------------------------- #
base = Scenario(n_bits=8, n_devices=1500, dnl_spec_lsb=1.0,
                transition_noise_lsb=0.02, retest_attempts=1)
grid = base.grid(architecture=["flash", "sar"],
                 method=["bist", "histogram"],
                 q=[4, 8])
print(f"scenario grid ({len(grid)} scenarios after normalisation):")
for scenario in grid:
    print(f"  {scenario.name:>20}: method={scenario.method}, "
          f"q={scenario.q}, tester="
          f"{'digital' if scenario.is_full_bist else 'mixed-signal'}")
print()

# ---------------------------------------------------------------------- #
# 2. Run the campaign.  Scenario i screens under child seed i of the
#    root seed — a pure function of (seed, i) — and the execution plan
#    shards every wafer over worker processes without changing a byte.
# ---------------------------------------------------------------------- #
campaign = Campaign(grid, seed=1997)
result = campaign.run(plan=ExecutionPlan(workers=2))

# ---------------------------------------------------------------------- #
# 3. One ledger for the whole grid: the per-scenario pivot carries the
#    paper's argument (yield, escapes, tester time, cost) across every
#    (architecture, method, q) point at once.
# ---------------------------------------------------------------------- #
print(result.table())
print()
print(result.store.method_table())
print()
print(result.store.summary())

# The records export (repro campaign --json/--csv) is plain dicts:
cheapest = min(result.records(), key=lambda r: r["cost_per_device"])
print()
print(f"cheapest screen of the grid: {cheapest['label']} at "
      f"{cheapest['cost_per_device']:.2e} per device")
