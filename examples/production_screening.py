"""Production screening scenario: a wafer batch through BIST and ATE.

The paper motivates its method with production economics: many converters per
IC, expensive mixed-signal testers, and stringent escape (type II) targets of
10–100 ppm.  This example plays that scenario end to end on a simulated
production batch:

* generate a batch of flash converters with process variation plus a handful
  of spot-defect (gross-fault) devices,
* screen the batch with the on-chip BIST (4-bit and 7-bit counter variants)
  and with the conventional histogram test,
* count escapes and yield loss against the true device quality,
* compare tester time and cost for the three screening flows.

Run with:  python examples/production_screening.py
"""

from __future__ import annotations

import numpy as np

from repro.adc import DevicePopulation, PopulationSpec, make_faulty_batch
from repro.analysis import HistogramTest
from repro.core import BistConfig, BistEngine
from repro.economics import TestPlan, TesterModel, compare_schedules, cost_per_device
from repro.reporting import format_table


def build_batch(n_parametric: int = 150, n_defective: int = 8, seed: int = 2):
    """A production batch: parametric devices plus a few spot defects."""
    population = DevicePopulation(PopulationSpec(
        n_bits=6, sigma_code_width_lsb=0.21, size=n_parametric, seed=seed))
    healthy = population.devices()
    defective = make_faulty_batch(
        healthy[0], rng=seed, count=n_defective,
        kinds=["missing_code", "wide_code", "shorted_resistor",
               "open_resistor"])
    return healthy + defective


def screen(devices, dnl_spec_lsb: float = 1.0):
    """Run the three screening flows over the batch and tabulate quality."""
    flows = {
        "BIST, 4-bit counter": BistEngine(BistConfig(
            counter_bits=4, dnl_spec_lsb=dnl_spec_lsb, inl_spec_lsb=1.0)),
        "BIST, 7-bit counter": BistEngine(BistConfig(
            counter_bits=7, dnl_spec_lsb=dnl_spec_lsb, inl_spec_lsb=1.0)),
        "conventional histogram": HistogramTest.paper_production(
            n_bits=6, dnl_spec_lsb=dnl_spec_lsb, inl_spec_lsb=1.0),
    }

    truly_good = np.array([
        device.transfer_function().meets_spec(dnl_spec_lsb, 1.0)
        for device in devices])

    rows = []
    for name, flow in flows.items():
        accepted = np.array([flow.run(device, rng=i).passed
                             for i, device in enumerate(devices)])
        escapes = int(np.sum(~truly_good & accepted))
        yield_loss = int(np.sum(truly_good & ~accepted))
        rows.append([name, int(accepted.sum()), escapes, yield_loss])

    print(format_table(
        ["screening flow", "devices accepted", "escapes (type II)",
         "good rejected (type I)"],
        rows,
        title=f"Screening {len(devices)} devices "
              f"({int(truly_good.sum())} truly good) at ±{dnl_spec_lsb} LSB"))


def economics(sample_rate: float = 1e6, samples: int = 4096) -> None:
    """Tester time and cost for one lot of 10 000 converters."""
    mixed_signal = TesterModel.mixed_signal()
    digital = TesterModel.digital_only()

    conventional = TestPlan.conventional_histogram(
        n_bits=6, samples=samples, sample_rate=sample_rate)
    partial = TestPlan.partial_bist(n_bits=6, q=1, samples=samples,
                                    sample_rate=sample_rate)
    full = TestPlan.full_bist(n_bits=6, samples=samples,
                              sample_rate=sample_rate)

    rows = [
        ["conventional on MS tester", mixed_signal.name,
         conventional.data_volume_bits,
         cost_per_device(conventional, mixed_signal) * 1e3],
        ["partial BIST (q=1) on MS tester", mixed_signal.name,
         partial.data_volume_bits,
         cost_per_device(partial, mixed_signal) * 1e3],
        ["full BIST on digital tester", digital.name,
         full.data_volume_bits,
         cost_per_device(full, digital) * 1e3],
    ]
    print(format_table(
        ["flow", "tester", "bits captured / device", "cost / device [m$]"],
        rows, title="Per-device tester cost (maximum parallel sites)"))

    print()
    schedules = compare_schedules(n_converters=10_000, n_bits=6, q=1,
                                  tester_channels=64,
                                  time_per_pass_s=samples / sample_rate)
    labels = ["conventional (6 pins/device)", "partial BIST (1 pin/device)",
              "full BIST (pass/fail flag)"]
    rows = [[label, sched.converters_per_pass, sched.n_passes,
             sched.total_time_s]
            for label, sched in zip(labels, schedules)]
    print(format_table(
        ["flow", "devices per pass", "passes", "total tester time [s]"],
        rows, title="Testing a lot of 10 000 converters on a 64-channel "
                    "tester"))


def main() -> None:
    devices = build_batch()
    screen(devices, dnl_spec_lsb=1.0)
    print()
    economics()


if __name__ == "__main__":
    main()
