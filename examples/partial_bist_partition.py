"""How many bits must stay observable? The partial-BIST partition (EQ 1–2).

At higher stimulus frequencies the output codes can no longer be
reconstructed from the LSB alone: Shannon's criterion applied to bit ``q``
gives the paper's Equation (1) for the minimum number of externally
monitored bits.  This example sweeps the stimulus frequency for a 6-bit and a
10-bit converter, prints the resulting partition, and translates it into the
tester-resource numbers the paper's introduction argues about: output pins
per device, captured data volume, and how many converters fit on a tester in
parallel.

Run with:  python examples/partial_bist_partition.py
"""

from __future__ import annotations

from repro.core import PartialBistPartition, qmin
from repro.reporting import format_table


def partition_sweep(n_bits: int, f_sample: float = 1e6,
                    dnl_spec_lsb: float = 0.5,
                    inl_spec_lsb: float = 0.5) -> None:
    """Print q_min and its consequences over a stimulus-frequency sweep."""
    frequencies = [f_sample * r for r in
                   (1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5)]
    n_samples = 4096
    rows = []
    for f_stimulus in frequencies:
        q = qmin(f_stimulus, f_sample, n_bits,
                 dnl_spec_lsb=dnl_spec_lsb, inl_spec_lsb=inl_spec_lsb)
        partition = PartialBistPartition(n_bits=n_bits, q=q)
        rows.append([
            f"{f_stimulus / f_sample:.0e}",
            q,
            partition.on_chip_bits,
            "yes" if partition.is_full_bist else "no",
            partition.test_data_reduction(n_samples),
            partition.max_parallel_devices(tester_channels=64),
        ])
    print(format_table(
        ["f_stim / f_sample", "q_min", "bits tested on-chip", "full BIST?",
         "bits saved per device", "devices in parallel (64 ch)"],
        rows,
        title=f"{n_bits}-bit converter, DNL ±{dnl_spec_lsb} LSB, "
              f"INL ±{inl_spec_lsb} LSB, {n_samples}-sample acquisition"))


def main() -> None:
    partition_sweep(n_bits=6)
    print()
    partition_sweep(n_bits=10)
    print()
    print("At ramp-slow stimulus frequencies only the LSB must be observed "
          "(q = 1): the static-linearity test becomes a full BIST, which is "
          "the configuration the rest of the paper analyses.  Faster "
          "(dynamic) test stimuli push q up, trading off pin reduction "
          "against stimulus bandwidth.")


if __name__ == "__main__":
    main()
