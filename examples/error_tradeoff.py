"""Counter size versus test quality: the paper's central trade-off.

The accuracy of the counting BIST is set by one number — the size of the
counter in the LSB processing block — because the counter size fixes how many
samples can be taken per code (the ramp must not overflow it).  This example
regenerates the paper's analysis of that trade-off:

* the type I / type II error probabilities as a function of the step size
  ``ds`` (Figure 7),
* the same probabilities per counter size at the stringent ±0.5 LSB
  specification (Table 1's SIM columns) and the actual ±1 LSB specification
  (Table 2),
* the silicon cost of each counter size from the area model, completing the
  four-way trade-off of the paper's Figure 1.

Run with:  python examples/error_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ErrorModel
from repro.core import AreaModel
from repro.reporting import ascii_plot, format_table


def figure7_sweep() -> None:
    """Type I / II probability versus step size (Figure 7)."""
    ds_values = np.linspace(0.070, 0.115, 46)
    sweep = ErrorModel.sweep_delta_s(ds_values, n_codes=62,
                                     dnl_spec_lsb=0.5)
    print(ascii_plot(sweep["delta_s_lsb"], sweep["type_i"],
                     title="Figure 7 (reproduced): P(type I) vs step size "
                           "ds [LSB], DNL spec ±0.5 LSB", logy=False))
    print()
    print(ascii_plot(sweep["delta_s_lsb"], sweep["type_ii"],
                     title="Figure 7 (reproduced): P(type II) vs step size "
                           "ds [LSB]", logy=False))


def counter_size_tables() -> None:
    """Tables 1 (SIM) and 2, plus the area cost per counter size."""
    area_model = AreaModel(n_bits=6)

    rows_stringent = []
    rows_actual = []
    rows_area = []
    for bits in (4, 5, 6, 7):
        stringent = ErrorModel(dnl_spec_lsb=0.5, counter_bits=bits)
        actual = ErrorModel(dnl_spec_lsb=1.0, counter_bits=bits)
        dev_s = stringent.device(62)
        dev_a = actual.device(62)
        rows_stringent.append([bits, dev_s.type_i, dev_s.type_ii,
                               stringent.max_error_lsb()])
        rows_actual.append([bits, dev_a.type_i * 1e5, dev_a.type_ii * 1e5,
                            actual.max_error_lsb()])
        estimate = area_model.estimate(bits, dnl_spec_lsb=1.0,
                                       inl_spec_lsb=1.0)
        rows_area.append([bits, estimate.gate_count,
                          100 * estimate.area_overhead,
                          estimate.max_error_lsb])

    print(format_table(
        ["counter bits", "P(type I)", "P(type II)", "max error [LSB]"],
        rows_stringent,
        title="Stringent DNL spec ±0.5 LSB (paper Table 1, SIM columns)"))
    print()
    print(format_table(
        ["counter bits", "type I x1e-5", "type II x1e-5", "max error [LSB]"],
        rows_actual,
        title="Actual DNL spec ±1 LSB (paper Table 2)"))
    print()
    print(format_table(
        ["counter bits", "gate equivalents", "area overhead [%]",
         "max error [LSB]"],
        rows_area,
        title="Silicon cost of the BIST logic (Figure 1 trade-off)"))


def main() -> None:
    figure7_sweep()
    print()
    counter_size_tables()
    print()
    print("Reading the tables: every extra counter bit roughly halves the "
          "type I error and the measurement error, at the cost of a slightly "
          "larger (but still tiny) on-chip test circuit — the paper's "
          "conclusion that a 7-bit counter matches the conventional "
          "histogram test while a 4-bit counter already meets the 10-100 ppm "
          "type II requirement at the actual specification.")


if __name__ == "__main__":
    main()
