"""A chip with many A/D converters: parallel BIST and the partial-BIST option.

The paper's strongest economic argument is for ICs carrying several
converters: with the BIST each converter needs at most one observable pin, so
all of them can be tested during a single shared ramp.  This example builds a
simulated 8-converter IC and

* tests the whole chip with the on-chip BIST controller (one ramp, one
  pass/fail register),
* shows how a single defective converter is flagged,
* compares the chip test time with testing the converters one after another,
* demonstrates the partial BIST (q = 2) flow for a faster stimulus, including
  the off-chip code reconstruction from the two observed LSBs,
* prices the on-chip test hardware with the area model and the cost
  optimiser.

Run with:  python examples/multi_adc_chip.py
"""

from __future__ import annotations

from repro.adc import FlashADC, inject_missing_code
from repro.core import (
    AreaModel,
    BistConfig,
    MultiAdcBistController,
    PartialBistConfig,
    PartialBistEngine,
)
from repro.economics import TestCostOptimizer
from repro.reporting import format_table


def chip_level_bist() -> None:
    converters = [FlashADC.from_sigma(6, 0.21, seed=100 + i)
                  for i in range(8)]
    # Converter 5 carries a spot defect (missing code).
    converters[5] = inject_missing_code(converters[5], code=40)

    controller = MultiAdcBistController(BistConfig(counter_bits=6,
                                                   dnl_spec_lsb=1.0,
                                                   inl_spec_lsb=1.0))
    result = controller.run_chip(converters, rng=1)

    rows = [[i, "pass" if r.passed else "FAIL",
             r.lsb.n_codes_measured, int(r.lsb.counts.max(initial=0))]
            for i, r in enumerate(result.per_converter)]
    print(format_table(
        ["converter", "verdict", "codes measured", "widest code [counts]"],
        rows, title="Chip with 8 converters, one shared test ramp"))
    print(f"\nchip pass/fail flag      : "
          f"{'PASS' if result.passed else 'FAIL'}")
    print(f"result register          : {result.result_register:#010b}")
    print(f"failing converters       : {result.failing_converters}")
    print(f"chip test time           : {result.test_time_s * 1e3:.2f} ms "
          f"(shared ramp)")
    print(f"sequential test time     : "
          f"{result.sequential_test_time_s * 1e3:.2f} ms")
    print(f"parallel speed-up        : {result.parallel_speedup:.1f}x")
    print(f"serial read-out          : {result.serial_readout_bits} bits")
    print(f"test logic for the chip  : "
          f"{controller.gate_count(len(converters))} gate equivalents")


def partial_bist_flow() -> None:
    print("\nPartial BIST (q = 2): two LSBs observed, upper bits checked "
          "on-chip")
    adc = FlashADC.from_sigma(6, 0.21, seed=11)
    engine = PartialBistEngine(PartialBistConfig(q=2, dnl_spec_lsb=1.0,
                                                 samples_per_code=32))
    result = engine.run(adc)
    rows = [
        ["verdict", "PASS" if result.passed else "FAIL"],
        ["observed bits per sample", result.partition.q],
        ["bits captured by tester", result.bits_captured],
        ["code reconstruction errors",
         f"{result.reconstruction_error_rate:.2%}"],
        ["measured max |DNL| [LSB]", f"{result.linearity.max_dnl:.3f}"],
        ["true max |DNL| [LSB]", f"{adc.max_dnl():.3f}"],
    ]
    print(format_table(["quantity", "value"], rows))


def cost_optimisation() -> None:
    print("\nChoosing the counter size on cost grounds")
    optimizer = TestCostOptimizer(dnl_spec_lsb=1.0,
                                  area_model=AreaModel(n_bits=6))
    rows = []
    for bits, breakdown in optimizer.sweep(range(4, 9)).items():
        rows.append([bits, breakdown.silicon_cost * 1e3,
                     breakdown.yield_loss_cost * 1e3,
                     breakdown.escape_cost * 1e3,
                     breakdown.total * 1e3,
                     breakdown.quality.shipped_dppm])
    print(format_table(
        ["counter bits", "silicon [m$]", "yield loss [m$]",
         "escape risk [m$]", "total [m$]", "shipped DPPM"],
        rows, title="Cost per shipped device versus counter size"))
    best = optimizer.best(range(4, 9))
    print(f"\ncheapest configuration meeting the 100 DPPM target: "
          f"{best.counter_bits}-bit counter "
          f"({best.quality.shipped_dppm:.1f} DPPM shipped)")


def main() -> None:
    chip_level_bist()
    partial_bist_flow()
    cost_optimisation()


if __name__ == "__main__":
    main()
