"""Dynamic (FFT) testing of converters: THD, SNR, SINAD, ENOB, SFDR.

Section 2 of the paper names Total Harmonic Distortion and noise power as the
dynamic test parameters covered by the same partial-BIST partition.  This
example runs the dynamic measurement side on three converters — an ideal one,
a flash device with process mismatch, and a SAR device with capacitor
mismatch — using both an ideal bench-style sine source and the behavioural
on-chip delta-sigma sine generator, so the cost of moving the stimulus on
chip is visible too.

Run with:  python examples/dynamic_test.py
"""

from __future__ import annotations

from repro.adc import FlashADC, IdealADC, SarADC
from repro.analysis import DynamicAnalyzer
from repro.reporting import format_table
from repro.signals import DeltaSigmaSineGenerator, SineStimulus, snr_ideal_db


def measure_with_ideal_source(adc, analyzer, seed=0):
    """Coherent bench-grade sine through the converter."""
    return analyzer.measure(adc, seed=seed)


def measure_with_on_chip_source(adc, analyzer):
    """The Roberts-style on-chip delta-sigma sine generator as stimulus."""
    reference = SineStimulus.for_adc(adc, adc.sample_rate / 50.0,
                                     analyzer.n_samples)
    generator = DeltaSigmaSineGenerator(frequency=reference.frequency,
                                        amplitude=reference.amplitude,
                                        offset=reference.offset,
                                        oversample_ratio=64)
    record = adc.sample(generator, n_samples=analyzer.n_samples)
    return analyzer.spectrum(record.codes, adc.sample_rate,
                             fundamental=reference.frequency)


def main() -> None:
    analyzer = DynamicAnalyzer(n_samples=4096, window="hann")
    devices = {
        "ideal 8-bit": IdealADC(8, sample_rate=1e6),
        "flash 6-bit (sigma 0.21 LSB)": FlashADC.from_sigma(
            6, 0.21, seed=5, sample_rate=1e6),
        "SAR 8-bit (3% unit caps)": SarADC(8, unit_cap_sigma_rel=0.03,
                                           rng=5, sample_rate=1e6),
    }

    rows = []
    for name, adc in devices.items():
        result = measure_with_ideal_source(adc, analyzer)
        rows.append([name, result.thd_db, result.snr_db, result.sinad_db,
                     result.enob, snr_ideal_db(adc.n_bits)])
    print(format_table(
        ["device", "THD [dB]", "SNR [dB]", "SINAD [dB]", "ENOB [bit]",
         "ideal SNR [dB]"],
        rows, title="Dynamic test with an ideal (bench) sine source",
        float_format=".1f"))

    print()
    rows = []
    for name, adc in devices.items():
        result = measure_with_on_chip_source(adc, analyzer)
        rows.append([name, result.thd_db, result.snr_db, result.sinad_db,
                     result.enob])
    print(format_table(
        ["device", "THD [dB]", "SNR [dB]", "SINAD [dB]", "ENOB [bit]"],
        rows,
        title="Dynamic test with the on-chip delta-sigma sine generator",
        float_format=".1f"))
    print()
    print("The on-chip generator's shaped quantisation noise costs a few dB "
          "of SNR/SINAD — the price of removing the precision analog "
          "instrument from the tester, which is exactly the trade the "
          "paper's BIST philosophy makes for the static test.")


if __name__ == "__main__":
    main()
