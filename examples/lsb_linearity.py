"""The LSB carries the linearity information (paper Figures 3 and 4).

This example makes the paper's core observation concrete: when a slow ramp is
applied, every transition of the least-significant bit marks a code boundary,
so the time (number of samples) between two LSB transitions measures that
code's width.  The script

* applies a ramp to a converter with one deliberately widened and one
  deliberately narrowed code,
* prints a strip of the LSB waveform so the long/short periods are visible,
* runs the LSB processing block and shows how the per-code counts expose the
  two defects, and
* demonstrates the deglitch filter on a noisy LSB.

Run with:  python examples/lsb_linearity.py
"""

from __future__ import annotations

import numpy as np

from repro.adc import IdealADC, inject_missing_code, inject_wide_code
from repro.core import CountLimits, DeglitchFilter, LsbProcessor
from repro.reporting import format_table
from repro.signals import RampStimulus


def waveform_strip(bits: np.ndarray, start: int, length: int) -> str:
    """Render a slice of a 0/1 waveform as a text strip."""
    section = bits[start:start + length]
    return "".join("▔" if b else "▁" for b in section)


def main() -> None:
    # A 4-bit converter keeps the printout small; the mechanics are the same
    # as for the paper's 6-bit devices.
    base = IdealADC(n_bits=4, full_scale=1.0, sample_rate=1e6)
    device = inject_wide_code(base, code=5, extra_lsb=0.8)
    device = inject_missing_code(device, code=11)

    limits = CountLimits.for_counter(counter_bits=5, dnl_spec_lsb=0.5,
                                     delta_s_lsb=1.0 / 12)
    processor = LsbProcessor(limits)

    ramp = RampStimulus.from_delta_s(limits.delta_s_lsb * device.lsb,
                                     device.sample_rate,
                                     start_voltage=-2 * device.lsb)
    record = device.sample(ramp, n_samples=ramp.n_samples_for_adc(device))

    print("LSB waveform during the ramp (one step per sample):")
    lsb = record.lsb_waveform
    for start in range(0, min(len(lsb), 216), 72):
        print("  " + waveform_strip(lsb, start, 72))

    result = processor.process(lsb, n_bits=device.n_bits)
    print(f"\nLSB transitions seen: {result.n_transitions} "
          f"(a healthy 4-bit converter gives "
          f"{result.expected_transitions})")

    rows = []
    for index, (count, width, ok) in enumerate(zip(
            result.counts, result.measured_widths_lsb,
            result.dnl_pass_per_code)):
        rows.append([index + 1, int(count), width,
                     "pass" if ok else "FAIL"])
    print()
    print(format_table(
        ["segment", "samples counted", "width [LSB]", "DNL decision"],
        rows,
        title=f"LSB processing block output "
              f"(accept {limits.i_min}..{limits.i_max} counts)"))
    print(f"\nOverall static-linearity verdict: "
          f"{'PASS' if result.passed else 'FAIL'}")
    print("Note how the widened code shows up as a too-long LSB period and "
          "the missing code removes two transitions entirely.")

    # ------------------------------------------------------------------ #
    # Transition noise and the deglitch filter.
    # ------------------------------------------------------------------ #
    noisy_record = base.sample(ramp,
                               n_samples=ramp.n_samples_for_adc(base),
                               rng=np.random.default_rng(3),
                               transition_noise_lsb=0.04)
    noisy_lsb = noisy_record.lsb_waveform
    filt = DeglitchFilter(depth=2)
    print(f"\nWith 0.04 LSB transition noise the raw LSB toggles "
          f"{DeglitchFilter.count_toggles(noisy_lsb)} times; "
          f"after the depth-2 deglitch filter it toggles "
          f"{DeglitchFilter.count_toggles(filt.apply(noisy_lsb))} times "
          f"(ideal: {base.n_codes - 1}).")


if __name__ == "__main__":
    main()
