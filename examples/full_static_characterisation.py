"""Full static characterisation: BIST verdict next to the bench numbers.

The BIST answers one question — does the converter meet its DNL/INL spec and
does its digital side work — with a single flag.  A characterisation bench
answers many: offset, gain, the full DNL/INL curves, missing codes,
monotonicity, and the two conventional histogram linearity tests (ramp and
sine).  This example runs the whole battery on one device so the numbers can
be compared side by side, which is also how the library is validated against
itself.

Run with:  python examples/full_static_characterisation.py
"""

from __future__ import annotations

import numpy as np

from repro.adc import FlashADC, inject_gain_error, inject_offset_shift
from repro.analysis import (
    HistogramTest,
    SineHistogramTest,
    StaticSpec,
    StaticTestSuite,
)
from repro.core import BistConfig, BistEngine
from repro.reporting import format_table


def characterise(name: str, adc) -> None:
    print(f"=== {name} ===")

    static = StaticTestSuite(spec=StaticSpec(offset_lsb=2.0,
                                             gain_error_lsb=2.0,
                                             dnl_lsb=1.0, inl_lsb=1.0),
                             oversample=128).run(adc)
    bist = BistEngine(BistConfig(counter_bits=7, dnl_spec_lsb=1.0,
                                 inl_spec_lsb=1.0)).run(adc)
    ramp_hist = HistogramTest(samples_per_code=256, dnl_spec_lsb=1.0,
                              inl_spec_lsb=1.0).run(adc, rng=0)
    sine_hist = SineHistogramTest(n_samples=65536, dnl_spec_lsb=1.0,
                                  inl_spec_lsb=1.0).run(adc, rng=0)

    rows = [
        ["offset [LSB]", f"{static.offset_lsb:+.3f}", "-", "-", "-"],
        ["gain error [LSB]", f"{static.gain_error_lsb:+.3f}", "-", "-", "-"],
        ["max |DNL| [LSB]", f"{static.max_dnl:.3f}",
         f"{np.max(np.abs(bist.measured_dnl_lsb)):.3f}",
         f"{ramp_hist.max_dnl:.3f}", f"{sine_hist.max_dnl:.3f}"],
        ["max |INL| [LSB]", f"{static.max_inl:.3f}", "-",
         f"{ramp_hist.max_inl:.3f}", f"{sine_hist.max_inl:.3f}"],
        ["missing codes", str(len(static.missing_codes)), "-", "-", "-"],
        ["verdict",
         "PASS" if static.passed else f"FAIL ({', '.join(static.failures())})",
         "PASS" if bist.passed else "FAIL",
         "PASS" if ramp_hist.passed else "FAIL",
         "PASS" if sine_hist.passed else "FAIL"],
    ]
    print(format_table(
        ["parameter", "bench (transitions)", "on-chip BIST",
         "ramp histogram", "sine histogram"], rows))
    print()


def main() -> None:
    healthy = FlashADC.from_sigma(6, 0.21, seed=7)
    characterise("6-bit flash with process mismatch", healthy)

    offset_fault = inject_offset_shift(healthy, shift_lsb=3.0)
    characterise("same device with a 3-LSB offset fault", offset_fault)

    gain_fault = inject_gain_error(healthy, gain=1.08)
    characterise("same device with an 8 % gain fault", gain_fault)

    print("Note how the width-based tests (BIST and both histogram tests) "
          "are blind to the pure offset fault and only the INL check "
          "responds to the gain fault — offset and gain remain bench "
          "parameters, exactly the division of labour the paper assumes.")


if __name__ == "__main__":
    main()
