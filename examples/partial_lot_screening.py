"""Screening a lot of SAR converters with the batched partial BIST.

The paper's claims span three test configurations: the full BIST (q = 1),
the partial BIST with q LSBs captured off-chip (Equation (1)), and the
parallel test of multi-converter ICs.  This example exercises all three at
production scale on a *non-flash* architecture:

1. a lot of SAR converter wafers is drawn through the vectorised transfer
   backend (binary-weighted capacitor mismatch — no per-die objects),
2. the screening line runs the batched partial BIST with q = 2 LSBs
   off-chip, grouping four converters per IC,
3. the same lot is screened with the full BIST (q = 1) for comparison,
4. the floor report shows yield, chip-level yield, quality bins,
   throughput and cost for both scenarios.
"""

from repro.core import BistConfig, PartialBistConfig
from repro.production import (
    BatchPartialBistEngine,
    Lot,
    ResultStore,
    ScreeningLine,
    WaferSpec,
)


def main() -> None:
    spec = WaferSpec(n_bits=6, n_devices=1500, architecture="sar",
                     unit_cap_sigma_rel=0.06)
    lot = Lot.draw(spec, n_wafers=2, seed=42, lot_id="SAR-42")
    config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)

    store = ResultStore()

    # --- scenario 1: partial BIST, q = 2, four converters per IC -------- #
    partial_line = ScreeningLine(config, partial_q=2, devices_per_ic=4)
    print(f"scenario A: {partial_line.describe()}, 4 converters/IC")
    report = partial_line.screen_lot(lot, rng=0, store=store)
    print(f"  accept fraction: {report.accept_fraction:.1%}, "
          f"chip yield: {report.chip_yield:.1%}")
    print(f"  simulation: {report.simulated_devices_per_second:,.0f} "
          f"devices/s (batched engine)")

    # --- scenario 2: full BIST on the same lot -------------------------- #
    full_line = ScreeningLine(config)
    print(f"scenario B: {full_line.describe()}")
    report_full = full_line.screen_lot(lot, rng=0, store=store)
    print(f"  accept fraction: {report_full.accept_fraction:.1%}")

    # --- the floor report ----------------------------------------------- #
    print()
    print(store.lot_table())
    print()
    print(store.station_table())
    print()
    print(store.bin_table())
    print()
    print(store.summary())

    # --- Equation (1) context: what q = 2 buys ------------------------- #
    engine = BatchPartialBistEngine(PartialBistConfig(n_bits=6, q=2))
    partition = engine.partition_for(spec.full_scale, spec.sample_rate)
    print()
    print(f"partition: q = {partition.q} of {partition.n_bits} bits "
          f"off-chip, pin reduction {partition.pin_reduction_factor:.1f}x, "
          f"{partition.on_chip_bits} bits verified on-chip")


if __name__ == "__main__":
    main()
