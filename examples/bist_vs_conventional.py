"""Reproduce the paper's BIST-vs-conventional trade-off at production scale.

The paper's concluding claim is a comparison: the quality of the BIST with
a 7-bit counter matches the conventional production histogram test — at a
fraction of the tester data volume and cost.  PR 1/PR 2 made the BIST side
run wafer-wide; with the batched analysis layer the *conventional* side
does too, so the comparison can be staged the way a tester floor would see
it:

1. draw ONE wafer of dies (the shared population: every method screens the
   identical transfer curves, so outcome differences are attributable to
   the test method alone),
2. screen it on three :class:`~repro.production.ScreeningLine`
   configurations — the full BIST, the conventional 64-samples-per-code
   histogram test, and the single-tone dynamic FFT suite,
3. print yield, truth-referenced error rates, tester time and cost per
   method, plus the per-device data-volume table that carries the paper's
   economic argument.
"""

import numpy as np

from repro.core import BistConfig
from repro.production import (
    ResultStore,
    ScreeningLine,
    Wafer,
    WaferSpec,
)
from repro.reporting import format_table

# ---------------------------------------------------------------------- #
# 1. One shared wafer draw: 2000 six-bit flash dies at the paper's
#    worst-case mismatch, judged at the stringent ±0.5 LSB spec.
# ---------------------------------------------------------------------- #
spec = WaferSpec(n_bits=6, sigma_code_width_lsb=0.21, n_devices=2000)
wafer = Wafer.draw(spec, rng=1997, wafer_id="CMP-1997")
config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=0.5)
print(f"shared wafer {wafer.wafer_id}: {len(wafer)} dies, "
      f"true yield at ±0.5 LSB DNL = {wafer.yield_fraction(0.5):.1%}")
print()

# ---------------------------------------------------------------------- #
# 2. Three screening lines over the same dies.
# ---------------------------------------------------------------------- #
lines = [
    ScreeningLine(config, method="bist"),
    ScreeningLine(config, method="histogram", samples_per_code=64.0),
    ScreeningLine(config, method="dynamic"),
]
store = ResultStore()
for line in lines:
    print(f"{line.method:>9}: {line.describe()}")
    # A fresh Wafer wrapper per line keeps the shared transition matrix
    # while giving each report its own lot id.
    line.screen_lot(Wafer(spec, wafer.transitions,
                          f"{wafer.wafer_id}/{line.method}"),
                    rng=0, store=store)
print()

# ---------------------------------------------------------------------- #
# 3. The trade-off: yield/escapes/cost per method, and data volume.
# ---------------------------------------------------------------------- #
print(store.lot_table())
print()
print(store.method_table())
print()

volume_rows = []
for line, report in zip(lines, store.reports):
    plan = line.test_plan(spec.n_bits, report.samples_per_device,
                          spec.sample_rate)
    volume_rows.append([line.method, report.samples_per_device,
                        plan.data_volume_bits,
                        report.cost_per_device])
print(format_table(
    ["method", "samples/device", "bits captured/device", "cost/device"],
    volume_rows, title="Tester data volume per device"))

bist, histogram = store.reports[0], store.reports[1]
assert bist.p_good == histogram.p_good  # same shared draw
print()
print(f"BIST vs histogram on the shared draw: "
      f"type II {bist.type_ii:.3f} vs {histogram.type_ii:.3f}, "
      f"cost ratio {histogram.cost_per_device / bist.cost_per_device:,.0f}x "
      f"in favour of the BIST")
