"""Walk a production lot through the batched BIST screening line.

The paper's economics only materialise at scale: a tester floor screens
wafers of converters, not single dies.  This example drives the
:mod:`repro.production` subsystem end to end:

1. draw a lot of wafers whose code-width statistics match the paper's
   worst-case process (sigma 0.21 LSB, ladder correlation ``-1/(N-1)``),
2. screen it on a :class:`~repro.production.ScreeningLine` — batched BIST,
   one retest insertion for rejected dies, quality binning on the measured
   linearity — with a small amount of acquisition noise so the retest
   station actually earns its keep,
3. cross-check one die against the scalar engine (the batch decisions are
   bit-identical to running every die individually),
4. print the floor report accumulated in the
   :class:`~repro.production.ResultStore`.
"""

import numpy as np

from repro.core import BistConfig, BistEngine
from repro.production import (
    BatchBistEngine,
    Lot,
    ResultStore,
    ScreeningLine,
    WaferSpec,
)

# ---------------------------------------------------------------------- #
# 1. The lot: 3 wafers x 1200 dies of 6-bit flash converters.
# ---------------------------------------------------------------------- #
spec = WaferSpec(n_bits=6, sigma_code_width_lsb=0.21, n_devices=1200)
lot = Lot.draw(spec, n_wafers=3, seed=1997, lot_id="LOT-1997")
print(f"lot {lot.lot_id}: {len(lot)} wafers, {lot.n_devices} dies")
for wafer in lot:
    print(f"  {wafer.wafer_id}: true yield at +/-1.0 LSB DNL = "
          f"{wafer.yield_fraction(1.0):.1%}")

# ---------------------------------------------------------------------- #
# 2. The line: BIST -> retest -> binning, on a low-cost digital tester.
# ---------------------------------------------------------------------- #
config = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0,
                    transition_noise_lsb=0.02, deglitch_depth=2)
line = ScreeningLine(config, retest_attempts=1,
                     bin_edges_lsb=(0.45, 0.7))
store = ResultStore()
report = line.screen_lot(lot, rng=42, store=store)
print()
print(f"screened {report.n_devices} dies in {report.wall_seconds:.2f} s "
      f"wall clock ({report.simulated_devices_per_second:,.0f} devices/s "
      f"through the batched engine)")
print(f"retest recovered {report.n_recovered} borderline dies")

# ---------------------------------------------------------------------- #
# 3. Spot-check: the batch decision equals the scalar engine's.
# ---------------------------------------------------------------------- #
noise_free = BistConfig(n_bits=6, counter_bits=7, dnl_spec_lsb=1.0)
wafer = lot.wafers[0]
batch = BatchBistEngine(noise_free).run_wafer(wafer)
scalar = BistEngine(noise_free)
die = 17
single = scalar.run(wafer.device(die))
agree = single.passed == bool(batch.passed[die])
print()
print(f"die {die}: scalar verdict "
      f"{'PASS' if single.passed else 'FAIL'}, batch verdict "
      f"{'PASS' if batch.passed[die] else 'FAIL'} "
      f"({'agree' if agree else 'DISAGREE'})")
assert agree

# ---------------------------------------------------------------------- #
# 4. The floor report.
# ---------------------------------------------------------------------- #
print()
print(store.lot_table())
print()
print(store.station_table())
print()
print(store.bin_table())
print()
print(store.summary())

# The same lot on a mixed-signal tester would cost more per insertion;
# the full BIST is what lets the cheap digital tester do the job.
print()
print(f"cost per device on the digital tester: "
      f"{report.cost_per_device:.2e} currency units "
      f"({np.ceil(report.tester_seconds):.0f} s of tester time for the lot)")
