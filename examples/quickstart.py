"""Quickstart: test one flash A/D converter with the on-chip BIST.

This example walks through the paper's full-BIST flow on a single simulated
6-bit flash converter:

1. build a device with realistic process mismatch (code-width sigma 0.21 LSB,
   the paper's worst case),
2. run the BIST — a slow ramp, the LSB processing block with a 7-bit counter,
   and the on-chip functionality check of the upper bits,
3. compare the decision and the measured DNL with the conventional
   histogram test a production tester would run.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BistConfig, BistEngine, FlashADC
from repro.analysis import HistogramTest
from repro.reporting import format_table


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A device under test: 6-bit flash with process mismatch.
    # ------------------------------------------------------------------ #
    adc = FlashADC.from_sigma(n_bits=6, sigma_code_width_lsb=0.21, seed=7)
    print("Device under test:", adc)
    print(f"  true max |DNL| = {adc.max_dnl():.3f} LSB, "
          f"max |INL| = {adc.max_inl():.3f} LSB")

    # ------------------------------------------------------------------ #
    # 2. The BIST measurement (paper section 2, Figures 2 and 4).
    # ------------------------------------------------------------------ #
    config = BistConfig(n_bits=6, counter_bits=7,
                        dnl_spec_lsb=1.0, inl_spec_lsb=1.0)
    engine = BistEngine(config)
    print("\nBIST configuration:", engine.limits.describe())
    print(f"  estimated on-chip test logic: {engine.gate_count()} gate eq.")

    result = engine.run(adc)
    print(f"\nBIST verdict: {'PASS' if result.passed else 'FAIL'}")
    print(f"  codes measured           : {result.lsb.n_codes_measured}")
    print(f"  samples taken            : {result.samples_taken}")
    print(f"  functionality (MSB) check: "
          f"{'PASS' if result.msb.passed else 'FAIL'}")
    print(f"  measured max |DNL|       : "
          f"{np.max(np.abs(result.measured_dnl_lsb)):.3f} LSB")

    # ------------------------------------------------------------------ #
    # 3. The conventional histogram test for comparison.
    # ------------------------------------------------------------------ #
    histogram = HistogramTest.paper_production(n_bits=6, dnl_spec_lsb=1.0)
    reference = histogram.run(adc, rng=0)
    print(f"\nConventional histogram test verdict: "
          f"{'PASS' if reference.passed else 'FAIL'}")
    print(f"  measured max |DNL|  : {reference.max_dnl:.3f} LSB")
    print(f"  data sent to tester : {reference.bits_transferred} bits "
          f"(BIST: 1 pass/fail flag)")

    # Worst five codes side by side.
    bist_dnl = result.measured_dnl_lsb
    hist_dnl = reference.linearity.dnl_lsb
    true_dnl = adc.dnl()
    worst = np.argsort(-np.abs(true_dnl))[:5]
    rows = [[int(code) + 1, true_dnl[code], bist_dnl[code], hist_dnl[code]]
            for code in sorted(worst)]
    print()
    print(format_table(
        ["inner code", "true DNL [LSB]", "BIST DNL [LSB]", "hist. DNL [LSB]"],
        rows, title="Worst codes, three measurements compared",
        float_format="+.3f"))


if __name__ == "__main__":
    main()
