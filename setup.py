"""Setup shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The build environment used for this reproduction has no network access and no
``wheel`` package, so PEP 660 editable installs are unavailable; this shim
lets ``setup.py develop`` based editable installs work instead.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
