"""Monte-Carlo estimation of the BIST measurement-error probabilities.

The analytic model of :mod:`repro.analysis.error_model` rests on two
approximations the paper states explicitly: the sampling phase is uniform and
independent per code, and the code widths are independent across codes.  The
estimators here relax both by actually *simulating* the counting measurement
on populations of devices:

* the **sequential** phase model places a single sample grid over the whole
  ramp, so the phase seen by one code is determined by the accumulated widths
  of all previous codes (this is what physically happens during one ramp),
* the **independent** phase model draws a fresh uniform phase for every code
  (this is exactly the analytic assumption, so comparing the two quantifies
  the approximation error).

The estimators work directly on (devices x codes) width matrices, so they run
in vectorised NumPy and can handle millions of simulated devices; the full
sample-by-sample BIST engine in :mod:`repro.core.engine` is used for the
smaller, behaviourally detailed runs (the "measurement" column of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.adc.population import correlated_code_widths
from repro.analysis.error_model import count_limits

__all__ = ["MonteCarloResult", "simulate_counts", "estimate_error_probabilities"]

RngLike = Union[int, np.random.Generator, None]


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


@dataclass(frozen=True)
class MonteCarloResult:
    """Estimated device-level probabilities from a Monte-Carlo run.

    Attributes
    ----------
    n_devices:
        Number of simulated devices.
    p_good:
        Fraction of devices truly meeting the DNL spec.
    p_accept:
        Fraction of devices the simulated BIST accepted.
    type_i:
        Fraction of devices that were good but rejected.
    type_ii:
        Fraction of devices that were faulty but accepted.
    """

    n_devices: int
    p_good: float
    p_accept: float
    type_i: float
    type_ii: float

    @property
    def p_faulty(self) -> float:
        """Fraction of devices violating the spec."""
        return 1.0 - self.p_good

    @property
    def p_reject_given_good(self) -> float:
        """Conditional type I estimate."""
        return self.type_i / self.p_good if self.p_good else 0.0

    @property
    def p_accept_given_faulty(self) -> float:
        """Conditional type II estimate."""
        return self.type_ii / self.p_faulty if self.p_faulty else 0.0

    def confidence_interval(self, which: str = "type_i",
                            z: float = 1.96) -> Tuple[float, float]:
        """Wilson score interval for one of the estimated probabilities.

        Parameters
        ----------
        which:
            One of ``"type_i"``, ``"type_ii"``, ``"p_good"``, ``"p_accept"``.
        z:
            Normal quantile; 1.96 for a 95 % interval.
        """
        p = getattr(self, which)
        n = self.n_devices
        if n == 0:
            return 0.0, 1.0
        denom = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denom
        margin = z * np.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denom
        return max(0.0, centre - margin), min(1.0, centre + margin)


def simulate_counts(widths_lsb: np.ndarray, delta_s_lsb: float,
                    phase_model: str = "sequential",
                    rng: RngLike = None) -> np.ndarray:
    """Simulate the per-code sample counts of the BIST counting process.

    Parameters
    ----------
    widths_lsb:
        Code widths in LSB, shape ``(n_devices, n_codes)``.
    delta_s_lsb:
        Voltage step per sample, in LSB.
    phase_model:
        ``"sequential"`` — one sample grid per device spanning the whole
        ramp (physically accurate); ``"independent"`` — a fresh uniform
        phase per code (the analytic assumption).
    rng:
        Seed or generator for the random phases.

    Returns
    -------
    numpy.ndarray
        Integer counts with the same shape as ``widths_lsb``.
    """
    widths = np.atleast_2d(np.asarray(widths_lsb, dtype=float))
    if delta_s_lsb <= 0:
        raise ValueError("delta_s_lsb must be positive")
    if np.any(widths < 0):
        raise ValueError("code widths cannot be negative")
    generator = _as_rng(rng)
    n_devices, n_codes = widths.shape

    if phase_model == "independent":
        phases = generator.random(size=widths.shape)
        counts = np.floor(widths / delta_s_lsb + phases).astype(np.int64)
    elif phase_model == "sequential":
        # Transition positions along the ramp for every device; the sample
        # grid starts at a random phase within the first step.
        start = generator.random(size=(n_devices, 1)) * delta_s_lsb
        upper = np.cumsum(widths, axis=1) + start
        lower = upper - widths
        counts = (np.floor(upper / delta_s_lsb)
                  - np.floor(lower / delta_s_lsb)).astype(np.int64)
    else:
        raise ValueError(
            f"unknown phase_model {phase_model!r}; "
            f"expected 'sequential' or 'independent'")
    return counts


def estimate_error_probabilities(
        n_devices: int,
        n_codes: int,
        sigma_lsb: float,
        dnl_spec_lsb: float,
        delta_s_lsb: float,
        counter_bits: Optional[int] = None,
        rho: Optional[float] = None,
        phase_model: str = "sequential",
        widths_lsb: Optional[np.ndarray] = None,
        rng: RngLike = None) -> MonteCarloResult:
    """Monte-Carlo estimate of the device-level type I/II probabilities.

    Parameters
    ----------
    n_devices:
        Number of devices to simulate (ignored when ``widths_lsb`` is given).
    n_codes:
        Inner codes per device (62 for the paper's 6-bit flash).
    sigma_lsb:
        Code-width sigma in LSB (ignored when ``widths_lsb`` is given).
    dnl_spec_lsb:
        Symmetric DNL specification in LSB.
    delta_s_lsb:
        Voltage step per sample in LSB.
    counter_bits:
        Optional counter size; clips the upper count limit to ``2**bits``.
    rho:
        Pairwise width correlation (default: the ladder value ``-1/(N-1)``).
    phase_model:
        Passed to :func:`simulate_counts`.
    widths_lsb:
        Optional explicit width matrix (e.g. from a
        :class:`~repro.adc.population.DevicePopulation`); overrides the
        synthetic Gaussian draw.
    rng:
        Seed or generator.
    """
    generator = _as_rng(rng)
    if widths_lsb is None:
        widths = correlated_code_widths(n_devices, n_codes, sigma_lsb,
                                        rho=rho, rng=generator)
    else:
        widths = np.atleast_2d(np.asarray(widths_lsb, dtype=float))
    widths = np.clip(widths, 0.0, None)
    n_devices = widths.shape[0]

    counter_max = (1 << counter_bits) if counter_bits is not None else None
    i_min, i_max = count_limits(delta_s_lsb, dnl_spec_lsb,
                                counter_max=counter_max)

    counts = simulate_counts(widths, delta_s_lsb, phase_model=phase_model,
                             rng=generator)
    accepted_codes = (counts >= i_min) & (counts <= i_max)
    accepted = accepted_codes.all(axis=1)

    dv_lo = max(0.0, 1.0 - dnl_spec_lsb)
    dv_hi = 1.0 + dnl_spec_lsb
    good_codes = (widths >= dv_lo) & (widths <= dv_hi)
    good = good_codes.all(axis=1)

    type_i = float(np.mean(good & ~accepted))
    type_ii = float(np.mean(~good & accepted))
    return MonteCarloResult(n_devices=n_devices,
                            p_good=float(good.mean()),
                            p_accept=float(accepted.mean()),
                            type_i=type_i,
                            type_ii=type_ii)
