"""Whole-device probabilities from per-code probabilities (EQ 8 – 12).

The paper treats the converter as good only when *every* code width meets the
DNL specification, and accepted only when every code is accepted by the
counting process.  Under the approximation that the code widths are
independent and identically distributed (justified in the paper for 6 bits
and up because the ladder correlation ``-1/(N-1)`` is small — Equations (9)
and (10)), the device-level probabilities are products of the per-code ones:

* ``P(good)_device      = p_good ** N``                      (Equation (9))
* ``P(accept)_device    = p_accept ** N``
* ``P(good & accept)    = p_(good & accept) ** N``
* ``type I  = P(good & reject)  = P(good) - P(good & accept)``
* ``type II = P(faulty & accept) = P(accept) - P(good & accept)``

The module also provides the binomial *count* distribution of bad codes per
device (the "binomial distributions given in (EQ 11) and (EQ 12)") and the
first-order union-bound approximations ``N * p`` that are often quoted for
small probabilities, so the benchmarks can show all three levels of
approximation next to each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats

from repro.analysis.error_model import PerCodeProbabilities

__all__ = ["DeviceProbabilities", "BinomialDeviceModel",
           "wald_error_bounds", "sequential_escape_bound"]


@dataclass(frozen=True)
class DeviceProbabilities:
    """Device-level outcome probabilities of one BIST measurement.

    Attributes
    ----------
    n_codes:
        Number of inner codes the device-level numbers refer to.
    p_good:
        Probability the device truly meets the DNL specification.
    p_accept:
        Probability the BIST accepts the device.
    p_good_and_accept:
        Probability the device is good and the BIST accepts it.
    type_i:
        ``P(good and rejected)`` — a good device lost to the test.
    type_ii:
        ``P(faulty and accepted)`` — a test escape.
    """

    n_codes: int
    p_good: float
    p_accept: float
    p_good_and_accept: float
    type_i: float
    type_ii: float

    @property
    def p_faulty(self) -> float:
        """Probability the device violates the specification."""
        return 1.0 - self.p_good

    @property
    def p_reject_given_good(self) -> float:
        """Conditional type I probability ``P(reject | good)``."""
        if self.p_good == 0.0:
            return 0.0
        return self.type_i / self.p_good

    @property
    def p_accept_given_faulty(self) -> float:
        """Conditional type II probability ``P(accept | faulty)``."""
        if self.p_faulty == 0.0:
            return 0.0
        return self.type_ii / self.p_faulty

    @property
    def type_ii_ppm(self) -> float:
        """Test escapes in parts per million of all tested devices.

        The paper's quality requirement is 10–100 ppm.
        """
        return self.type_ii * 1e6

    @property
    def yield_loss(self) -> float:
        """Fraction of all devices rejected although they are good."""
        return self.type_i


class BinomialDeviceModel:
    """Combine per-code probabilities into device-level probabilities.

    Parameters
    ----------
    per_code:
        The per-code probabilities from
        :meth:`repro.analysis.error_model.ErrorModel.per_code`.
    n_codes:
        Number of inner codes of the converter (``2**n - 2``; the paper's
        6-bit flash has 62).
    """

    def __init__(self, per_code: PerCodeProbabilities, n_codes: int) -> None:
        if n_codes < 1:
            raise ValueError("n_codes must be positive")
        self.per_code = per_code
        self.n_codes = int(n_codes)

    # ------------------------------------------------------------------ #
    # Exact (independence) product model
    # ------------------------------------------------------------------ #

    def device(self) -> DeviceProbabilities:
        """Device-level probabilities under the independence approximation."""
        n = self.n_codes
        pc = self.per_code
        p_good = pc.p_good ** n
        p_accept = pc.p_accept ** n
        p_both = pc.p_good_and_accept ** n
        return DeviceProbabilities(
            n_codes=n,
            p_good=p_good,
            p_accept=p_accept,
            p_good_and_accept=p_both,
            type_i=max(0.0, p_good - p_both),
            type_ii=max(0.0, p_accept - p_both))

    # ------------------------------------------------------------------ #
    # Binomial count distributions (EQ 11 / 12 view)
    # ------------------------------------------------------------------ #

    def bad_code_count_distribution(self) -> stats.rv_discrete:
        """Binomial distribution of the number of out-of-spec codes."""
        return stats.binom(self.n_codes, 1.0 - self.per_code.p_good)

    def rejected_code_count_distribution(self) -> stats.rv_discrete:
        """Binomial distribution of the number of codes the BIST rejects."""
        return stats.binom(self.n_codes, 1.0 - self.per_code.p_accept)

    def prob_at_least_one_bad_code(self) -> float:
        """``P(device faulty)`` via the binomial count (1 - P(zero bad))."""
        return float(1.0 - (self.per_code.p_good ** self.n_codes))

    def prob_at_least_one_rejected_code(self) -> float:
        """``P(device rejected)`` via the binomial count."""
        return float(1.0 - (self.per_code.p_accept ** self.n_codes))

    # ------------------------------------------------------------------ #
    # First-order (union bound) approximations
    # ------------------------------------------------------------------ #

    def type_i_union_bound(self) -> float:
        """Union-bound approximation ``N * P(type I per code)``.

        Accurate when the per-code probability is small; overestimates
        otherwise.  Useful as the "back of the envelope" the paper's ppm
        discussion implies.
        """
        return min(1.0, self.n_codes * self.per_code.type_i)

    def type_ii_union_bound(self) -> float:
        """Union-bound approximation ``N * P(type II per code)``."""
        return min(1.0, self.n_codes * self.per_code.type_ii)

    # ------------------------------------------------------------------ #
    # Correlation sensitivity (ablation of EQ 9)
    # ------------------------------------------------------------------ #

    def device_good_with_correlation(self, rho: Optional[float] = None,
                                     n_mc: int = 200_000,
                                     seed: int = 0) -> float:
        """``P(device good)`` without the independence approximation.

        Draws correlated Gaussian code-width vectors (uniform pairwise
        correlation ``rho``; default the ladder value ``-1/(N-1)`` over
        ``N = n_codes + 2`` codes) and evaluates how often every width stays
        within the spec window implied by the per-code good probability.
        This quantifies the error made by Equation (9) and is used by the
        correlation-ablation benchmark.
        """
        from repro.adc.population import correlated_code_widths

        pc = self.per_code
        if pc.p_good <= 0.0 or pc.p_good >= 1.0:
            return self.device().p_good
        # Invert the per-code good probability into a symmetric z-window.
        z = stats.norm.ppf(0.5 + pc.p_good / 2.0)
        widths = correlated_code_widths(n_mc, self.n_codes, sigma_lsb=1.0,
                                        rho=rho, rng=seed)
        deviations = np.abs(widths - 1.0)
        all_good = np.all(deviations <= z, axis=1)
        return float(all_good.mean())


# ---------------------------------------------------------------------- #
# Sequential (SPRT) flow bounds
# ---------------------------------------------------------------------- #

def wald_error_bounds(alpha: float, beta: float) -> "tuple[float, float]":
    """Wald's bounds on the realised error rates of an SPRT.

    A sequential probability-ratio test designed for nominal strengths
    ``(alpha, beta)`` realises error rates ``(alpha', beta')`` bounded by

    * ``alpha' <= alpha / (1 - beta)``  (false reject), and
    * ``beta'  <= beta  / (1 - alpha)`` (false accept),

    because overshoot past the log boundaries only makes the test more
    conservative.  Returns ``(alpha_bound, beta_bound)``.
    """
    if not (0.0 < alpha < 1.0 and 0.0 < beta < 1.0):
        raise ValueError("need 0 < alpha < 1 and 0 < beta < 1")
    return alpha / (1.0 - beta), beta / (1.0 - alpha)


def sequential_escape_bound(per_code: PerCodeProbabilities, n_codes: int,
                            min_accept_codes: float) -> float:
    """Upper bound on the sequential flow's device escape (type II) rate.

    The deterministic per-code accept stream feeding
    :func:`repro.flows.sequential.sprt_decide` rejects at the first
    failing code (the reject log-likelihood step dwarfs the boundary), so
    the sequential test can only *add* escapes relative to the fixed
    full-length test by accepting early: a device accepted after ``m``
    codes ships with ``n_codes - m`` widths unobserved, each bad with
    probability ``1 - p_good``.  Union-bounding that tail over the
    earliest possible stop ``m = min_accept_codes`` gives

    ``type_ii(sprt) <= type_ii(fixed) + (1 - p_good ** (n_codes - m))``

    where ``type_ii(fixed)`` is the binomial device model's escape rate.
    The bound is loose (it charges every device the worst-case untested
    tail) but it is computable from the scenario alone, which is what the
    flow benchmarks assert against.
    """
    if n_codes < 1:
        raise ValueError("n_codes must be positive")
    device = BinomialDeviceModel(per_code, n_codes).device()
    if not np.isfinite(min_accept_codes):
        return device.type_ii
    m = int(np.clip(np.ceil(min_accept_codes), 0, n_codes))
    tail = 1.0 - per_code.p_good ** (n_codes - m)
    return float(min(1.0, device.type_ii + tail))
