"""Code-width distribution models.

The statistical heart of the paper is the distribution ``f(dV)`` of a single
code width (Figure 6a).  For the flash converters used in the experiments the
distribution is Gaussian with mean 1 LSB and a standard deviation between
0.16 and 0.21 LSB (circuit simulation), and neighbouring widths carry the
weak negative correlation ``rho = -1/(N-1)``.

:class:`CodeWidthDistribution` is the analytic (Gaussian) model used by the
closed-form error analysis; :class:`EmpiricalCodeWidthDistribution` wraps
measured or Monte-Carlo width samples so the same error-model code can be
evaluated against a non-Gaussian population (e.g. one containing spot
defects).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import stats

__all__ = ["CodeWidthDistribution", "EmpiricalCodeWidthDistribution"]


@dataclass
class CodeWidthDistribution:
    """Gaussian model of a single code width, in LSB.

    Parameters
    ----------
    sigma_lsb:
        Standard deviation of the code width in LSB (paper: 0.16–0.21).
    mean_lsb:
        Mean code width in LSB; 1.0 for a converter without gain error.
    """

    sigma_lsb: float = 0.21
    mean_lsb: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma_lsb < 0:
            raise ValueError("sigma_lsb must be non-negative")

    # ------------------------------------------------------------------ #
    # Elementary functions
    # ------------------------------------------------------------------ #

    def pdf(self, width_lsb: np.ndarray) -> np.ndarray:
        """Probability density ``f(dV)`` evaluated at ``width_lsb`` (LSB)."""
        if self.sigma_lsb == 0.0:
            raise ValueError("pdf undefined for a zero-sigma distribution")
        return stats.norm.pdf(width_lsb, loc=self.mean_lsb,
                              scale=self.sigma_lsb)

    def cdf(self, width_lsb: np.ndarray) -> np.ndarray:
        """Cumulative distribution evaluated at ``width_lsb`` (LSB)."""
        if self.sigma_lsb == 0.0:
            return (np.asarray(width_lsb, float)
                    >= self.mean_lsb).astype(float)
        return stats.norm.cdf(width_lsb, loc=self.mean_lsb,
                              scale=self.sigma_lsb)

    def sample(self, size, rng=None) -> np.ndarray:
        """Draw code-width samples (LSB)."""
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        return generator.normal(self.mean_lsb, self.sigma_lsb, size=size)

    # ------------------------------------------------------------------ #
    # Spec-related probabilities
    # ------------------------------------------------------------------ #

    def spec_window_lsb(self, dnl_spec_lsb: float) -> Tuple[float, float]:
        """Return ``(dV_min, dV_max)`` in LSB for a symmetric DNL spec.

        A DNL specification of ±``dnl_spec_lsb`` LSB allows code widths
        between ``1 - dnl_spec_lsb`` and ``1 + dnl_spec_lsb`` LSB (clipped
        below at zero — a width cannot be negative).
        """
        if dnl_spec_lsb < 0:
            raise ValueError("dnl_spec_lsb must be non-negative")
        return max(0.0, 1.0 - dnl_spec_lsb), 1.0 + dnl_spec_lsb

    def prob_code_good(self, dnl_spec_lsb: float) -> float:
        """Probability that one code width meets the DNL spec."""
        lo, hi = self.spec_window_lsb(dnl_spec_lsb)
        return float(self.cdf(hi) - self.cdf(lo))

    def prob_code_faulty(self, dnl_spec_lsb: float) -> float:
        """Probability that one code width violates the DNL spec."""
        return 1.0 - self.prob_code_good(dnl_spec_lsb)

    def prob_device_good(self, dnl_spec_lsb: float, n_codes: int) -> float:
        """Probability that all ``n_codes`` inner codes meet the spec (EQ 9).

        Uses the paper's independence approximation, valid when the
        correlation ``-1/(N-1)`` is small (6 bits and up).
        """
        if n_codes < 1:
            raise ValueError("n_codes must be positive")
        return self.prob_code_good(dnl_spec_lsb) ** n_codes

    def prob_device_faulty(self, dnl_spec_lsb: float, n_codes: int) -> float:
        """Probability that at least one code violates the spec."""
        return 1.0 - self.prob_device_good(dnl_spec_lsb, n_codes)

    # ------------------------------------------------------------------ #
    # Calibration helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def paper_worst_case(cls) -> "CodeWidthDistribution":
        """The worst-case sigma the paper uses for its simulations (0.21 LSB)."""
        return cls(sigma_lsb=0.21)

    @classmethod
    def from_samples(cls, widths_lsb: np.ndarray) -> "CodeWidthDistribution":
        """Fit the Gaussian model to measured width samples (in LSB)."""
        widths = np.asarray(widths_lsb, dtype=float)
        if widths.size < 2:
            raise ValueError("need at least two samples to fit")
        return cls(sigma_lsb=float(widths.std(ddof=1)),
                   mean_lsb=float(widths.mean()))

    def ladder_correlation(self, n_codes: int) -> float:
        """The paper's Equation (10): ``rho = -1/(N-1)``."""
        if n_codes < 2:
            raise ValueError("n_codes must be at least 2")
        return -1.0 / (n_codes - 1)


class EmpiricalCodeWidthDistribution:
    """A code-width distribution backed by samples.

    Provides the same probability interface as
    :class:`CodeWidthDistribution` but computed from an empirical sample
    (kernel-free: plain empirical CDF), so the analytic error model can be
    evaluated against arbitrary, possibly non-Gaussian, populations.
    """

    def __init__(self, widths_lsb: np.ndarray) -> None:
        widths = np.sort(np.asarray(widths_lsb, dtype=float).ravel())
        if widths.size < 2:
            raise ValueError("need at least two samples")
        self.widths_lsb = widths

    @property
    def mean_lsb(self) -> float:
        """Sample mean width in LSB."""
        return float(self.widths_lsb.mean())

    @property
    def sigma_lsb(self) -> float:
        """Sample standard deviation in LSB."""
        return float(self.widths_lsb.std(ddof=1))

    def cdf(self, width_lsb) -> np.ndarray:
        """Empirical CDF evaluated at ``width_lsb``."""
        width_lsb = np.asarray(width_lsb, dtype=float)
        ranks = np.searchsorted(self.widths_lsb, width_lsb, side="right")
        return ranks / self.widths_lsb.size

    def spec_window_lsb(self, dnl_spec_lsb: float) -> Tuple[float, float]:
        """Same spec window convention as the Gaussian model."""
        if dnl_spec_lsb < 0:
            raise ValueError("dnl_spec_lsb must be non-negative")
        return max(0.0, 1.0 - dnl_spec_lsb), 1.0 + dnl_spec_lsb

    def prob_code_good(self, dnl_spec_lsb: float) -> float:
        """Fraction of sampled widths meeting the DNL spec."""
        lo, hi = self.spec_window_lsb(dnl_spec_lsb)
        inside = (self.widths_lsb >= lo) & (self.widths_lsb <= hi)
        return float(inside.mean())

    def prob_code_faulty(self, dnl_spec_lsb: float) -> float:
        """Fraction of sampled widths violating the DNL spec."""
        return 1.0 - self.prob_code_good(dnl_spec_lsb)

    def sample(self, size, rng=None) -> np.ndarray:
        """Bootstrap-resample widths from the empirical sample."""
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(rng))
        return generator.choice(self.widths_lsb, size=size, replace=True)

    def to_gaussian(self) -> CodeWidthDistribution:
        """Return the Gaussian model fitted to this sample."""
        return CodeWidthDistribution(sigma_lsb=self.sigma_lsb,
                                     mean_lsb=self.mean_lsb)
