"""Sine-wave code-density (histogram) linearity test.

The ramp histogram test needs a very linear ramp; production testing often
uses a *sine* stimulus instead because a high-purity sine is easier to
generate, and corrects for its non-uniform amplitude distribution
analytically (Doernberg et al., "Full-Speed Testing of A/D Converters",
reference [11] of the paper).  The expected number of hits in a code bin is
proportional to the arcsine-weighted probability of the sine dwelling in
that bin; dividing the measured histogram by that expectation yields the
code widths and hence DNL/INL.

This module provides that second conventional baseline so the BIST can be
compared against both industry-standard histogram methods, and so the
dynamic-stimulus side of the library has a linearity test to pair with the
FFT metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.adc.base import ADC
from repro.analysis.linearity import LinearityResult, linearity_from_code_widths
from repro.signals.sine import SineStimulus, coherent_frequency

__all__ = ["SineHistogramTest", "SineHistogramResult",
           "expected_sine_histogram"]

RngLike = Union[int, np.random.Generator, None]


def expected_sine_histogram(n_bits: int, amplitude: float, offset: float,
                            full_scale: float, n_samples: int) -> np.ndarray:
    """Expected hits per code bin for an ideal converter and an ideal sine.

    The sine ``offset + amplitude*sin(wt)`` spends a fraction of its period
    in the voltage interval ``[a, b]`` equal to
    ``(arcsin((b-offset)/amplitude) - arcsin((a-offset)/amplitude)) / pi``
    (clipped to the ±amplitude range).  Multiplying by ``n_samples`` gives
    the expected bin content for every code of an ideal ``n_bits`` converter.
    """
    if amplitude <= 0:
        raise ValueError("amplitude must be positive")
    n_codes = 1 << n_bits
    lsb = full_scale / n_codes
    edges = np.arange(n_codes + 1) * lsb
    # Probability of the sine being below a voltage v.
    normalised = np.clip((edges - offset) / amplitude, -1.0, 1.0)
    cdf = 0.5 + np.arcsin(normalised) / np.pi
    # The converter clips: everything below the range lands in code 0 and
    # everything above it in the top code, so the outer edges collect the
    # full tails of the sine's amplitude distribution.
    cdf[0] = 0.0
    cdf[-1] = 1.0
    return n_samples * np.diff(cdf)


@dataclass
class SineHistogramResult:
    """Outcome of one sine-histogram linearity test.

    Attributes
    ----------
    counts:
        Measured histogram (one bin per code).
    expected:
        Expected histogram for an ideal converter under the same sine.
    linearity:
        DNL/INL derived from the ratio of measured to expected bins.
    passed:
        Decision against the configured specification.
    samples_taken:
        Number of conversions used.
    """

    counts: np.ndarray
    expected: np.ndarray
    linearity: LinearityResult
    passed: bool
    samples_taken: int

    @property
    def max_dnl(self) -> float:
        """Largest absolute DNL in LSB."""
        return self.linearity.max_dnl

    @property
    def max_inl(self) -> float:
        """Largest absolute INL in LSB."""
        return self.linearity.max_inl


class SineHistogramTest:
    """Sine-wave code-density test of a converter.

    Parameters
    ----------
    n_samples:
        Number of conversions to histogram.  The classic rule of thumb needs
        of the order ``pi * 2**n * samples_per_code`` hits for a given DNL
        resolution; the default suits 6–8 bit converters.
    overdrive:
        Fractional overdrive of the sine beyond the conversion range (a few
        percent guarantees the end codes are exercised and keeps the arcsine
        correction well-conditioned at the extremes).
    dnl_spec_lsb, inl_spec_lsb:
        Specifications for the pass/fail decision.
    transition_noise_lsb:
        Converter input-referred noise during the acquisition.
    seed:
        Acquisition noise / phase seed.
    """

    def __init__(self, n_samples: int = 65536, overdrive: float = 0.05,
                 dnl_spec_lsb: float = 1.0,
                 inl_spec_lsb: Optional[float] = None,
                 transition_noise_lsb: float = 0.0,
                 seed: Optional[int] = None) -> None:
        if n_samples < 1024:
            raise ValueError("n_samples must be at least 1024")
        if overdrive < 0:
            raise ValueError("overdrive must be non-negative")
        if dnl_spec_lsb < 0:
            raise ValueError("dnl_spec_lsb must be non-negative")
        self.n_samples = int(n_samples)
        self.overdrive = float(overdrive)
        self.dnl_spec_lsb = float(dnl_spec_lsb)
        self.inl_spec_lsb = inl_spec_lsb
        self.transition_noise_lsb = float(transition_noise_lsb)
        self.seed = seed

    def build_stimulus(self, adc: ADC) -> SineStimulus:
        """The slightly over-ranged, coherent sine used for the histogram."""
        amplitude = 0.5 * adc.full_scale * (1.0 + self.overdrive)
        frequency = coherent_frequency(adc.sample_rate / 257.0,
                                       adc.sample_rate, self.n_samples)
        return SineStimulus(frequency=frequency, amplitude=amplitude,
                            offset=0.5 * adc.full_scale)

    def run(self, adc: ADC, rng: RngLike = None) -> SineHistogramResult:
        """Acquire the sine record and evaluate the converter's linearity."""
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(
                         rng if rng is not None else self.seed))
        stimulus = self.build_stimulus(adc)
        record = adc.sample(stimulus, n_samples=self.n_samples,
                            rng=generator,
                            transition_noise_lsb=self.transition_noise_lsb)
        counts = np.bincount(np.clip(record.codes, 0, adc.n_codes - 1),
                             minlength=adc.n_codes).astype(float)
        expected = expected_sine_histogram(adc.n_bits, stimulus.amplitude,
                                           stimulus.offset, adc.full_scale,
                                           self.n_samples)
        # Ratio of measured to expected hits estimates the code width; the
        # end bins absorb the overdrive and are dropped as usual.
        with np.errstate(divide="ignore", invalid="ignore"):
            relative_width = np.where(expected > 0, counts / expected, 0.0)
        linearity = linearity_from_code_widths(relative_width[1:-1])
        passed = linearity.passes(self.dnl_spec_lsb, self.inl_spec_lsb)
        return SineHistogramResult(counts=counts, expected=expected,
                                   linearity=linearity, passed=passed,
                                   samples_taken=self.n_samples)
