"""Measurement and statistics substrate.

This subpackage contains every analysis the reproduction needs:

* :mod:`repro.analysis.linearity` — offset/gain/DNL/INL extraction,
* :mod:`repro.analysis.histogram` — the conventional ramp code-density test
  (the paper's baseline),
* :mod:`repro.analysis.dynamic` — FFT-based THD/SNR/SINAD/ENOB/SFDR tests,
* :mod:`repro.analysis.distributions` — code-width distribution models,
* :mod:`repro.analysis.error_model` — the paper's section-3 analysis of the
  counting measurement (acceptance trapezoid, per-code type I/II errors),
* :mod:`repro.analysis.binomial` — device-level probabilities (EQ 8–12),
* :mod:`repro.analysis.montecarlo` — Monte-Carlo estimators that relax the
  analytic assumptions.
"""

from repro.analysis.binomial import BinomialDeviceModel, DeviceProbabilities
from repro.analysis.distributions import (
    CodeWidthDistribution,
    EmpiricalCodeWidthDistribution,
)
from repro.analysis.dynamic import DynamicAnalyzer, DynamicSpec, SpectrumResult
from repro.analysis.error_model import (
    ErrorModel,
    PerCodeProbabilities,
    acceptance_probability,
    count_limits,
    counter_bits_needed,
    delta_s_for_counter,
    max_measurement_error_lsb,
)
from repro.analysis.histogram import HistogramTest, HistogramTestResult
from repro.analysis.linearity import (
    LinearityResult,
    dnl_from_histogram,
    linearity_from_code_widths,
    linearity_from_transitions,
)
from repro.analysis.montecarlo import (
    MonteCarloResult,
    estimate_error_probabilities,
    simulate_counts,
)
from repro.analysis.sine_histogram import (
    SineHistogramResult,
    SineHistogramTest,
    expected_sine_histogram,
)
from repro.analysis.static_suite import (
    StaticSpec,
    StaticTestReport,
    StaticTestSuite,
    locate_transitions,
)

__all__ = [
    "SineHistogramResult",
    "SineHistogramTest",
    "expected_sine_histogram",
    "StaticSpec",
    "StaticTestReport",
    "StaticTestSuite",
    "locate_transitions",
    "BinomialDeviceModel",
    "DeviceProbabilities",
    "CodeWidthDistribution",
    "EmpiricalCodeWidthDistribution",
    "DynamicAnalyzer",
    "DynamicSpec",
    "SpectrumResult",
    "ErrorModel",
    "PerCodeProbabilities",
    "acceptance_probability",
    "count_limits",
    "counter_bits_needed",
    "delta_s_for_counter",
    "max_measurement_error_lsb",
    "HistogramTest",
    "HistogramTestResult",
    "LinearityResult",
    "dnl_from_histogram",
    "linearity_from_code_widths",
    "linearity_from_transitions",
    "MonteCarloResult",
    "estimate_error_probabilities",
    "simulate_counts",
]
