"""The conventional ramp code-density (histogram) test.

This is the production test the paper benchmarks its BIST against ("the
quality of the conventional test, where 4096 samples are taken for the test
of all the codes, can be compared to the BIST with a 7-bit counter").  A slow
ramp is applied, every output code is recorded off-chip, a histogram of code
occurrences is built and the DNL/INL are derived from the (normalised) bin
counts.

Unlike the BIST — which only ever observes the LSB and keeps a single small
counter — the histogram test needs the full output word of every sample,
which is exactly the tester bandwidth and memory cost the paper wants to
remove.  :class:`HistogramTest` therefore also reports the amount of test
data it consumed, so the economics model can compare the two approaches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.adc.base import ADC, ConversionRecord
from repro.analysis.linearity import LinearityResult, dnl_from_histogram
from repro.signals.ramp import RampStimulus

__all__ = ["HistogramTest", "HistogramTestResult"]

RngLike = Union[int, np.random.Generator, None]


@dataclass
class HistogramTestResult:
    """Outcome of one conventional histogram test.

    Attributes
    ----------
    counts:
        Histogram of output codes (length ``2**n_bits``).
    linearity:
        DNL/INL derived from the inner bins.
    passed:
        Pass/fail against the specification the test was run with.
    dnl_spec_lsb, inl_spec_lsb:
        The specification used for the decision.
    samples_taken:
        Number of conversions acquired.
    bits_transferred:
        Number of output bits the tester had to capture
        (``samples_taken * n_bits``) — the data-volume figure the BIST
        reduces.
    """

    counts: np.ndarray
    linearity: LinearityResult
    passed: bool
    dnl_spec_lsb: float
    inl_spec_lsb: Optional[float]
    samples_taken: int
    bits_transferred: int

    @property
    def max_dnl(self) -> float:
        """Largest absolute measured DNL in LSB."""
        return self.linearity.max_dnl

    @property
    def max_inl(self) -> float:
        """Largest absolute measured INL in LSB."""
        return self.linearity.max_inl


class HistogramTest:
    """Conventional ramp histogram test of a converter.

    Parameters
    ----------
    samples_per_code:
        Average number of samples falling into each code bin.  The paper's
        reference measurement uses roughly 1000; its "conventional test"
        comparison point uses 4096 samples over 64 codes (= 64 per code).
    dnl_spec_lsb:
        DNL specification for the pass/fail decision, in LSB.
    inl_spec_lsb:
        Optional INL specification in LSB; omit to decide on DNL only.
    transition_noise_lsb:
        Converter input-referred noise used during the acquisition.
    seed:
        Seed for the acquisition noise.
    """

    def __init__(self, samples_per_code: float = 64.0,
                 dnl_spec_lsb: float = 1.0,
                 inl_spec_lsb: Optional[float] = None,
                 transition_noise_lsb: float = 0.0,
                 seed: Optional[int] = None) -> None:
        if samples_per_code <= 0:
            raise ValueError("samples_per_code must be positive")
        if dnl_spec_lsb < 0:
            raise ValueError("dnl_spec_lsb must be non-negative")
        self.samples_per_code = float(samples_per_code)
        self.dnl_spec_lsb = float(dnl_spec_lsb)
        self.inl_spec_lsb = inl_spec_lsb
        self.transition_noise_lsb = float(transition_noise_lsb)
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Acquisition
    # ------------------------------------------------------------------ #

    def acquire(self, adc: ADC,
                rng: RngLike = None) -> ConversionRecord:
        """Apply the ramp and record every output code."""
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(
                         rng if rng is not None else self.seed))
        ramp = RampStimulus.for_adc(adc, self.samples_per_code)
        n_samples = ramp.n_samples_for_adc(adc)
        return adc.sample(ramp, n_samples=n_samples, rng=generator,
                          transition_noise_lsb=self.transition_noise_lsb)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate_codes(self, codes: np.ndarray,
                       n_bits: int) -> HistogramTestResult:
        """Histogram recorded codes and apply the specification."""
        codes = np.asarray(codes)
        n_codes = 1 << n_bits
        counts = np.bincount(np.clip(codes, 0, n_codes - 1),
                             minlength=n_codes).astype(float)
        linearity = dnl_from_histogram(counts)
        passed = linearity.passes(self.dnl_spec_lsb, self.inl_spec_lsb)
        return HistogramTestResult(
            counts=counts,
            linearity=linearity,
            passed=passed,
            dnl_spec_lsb=self.dnl_spec_lsb,
            inl_spec_lsb=self.inl_spec_lsb,
            samples_taken=int(codes.size),
            bits_transferred=int(codes.size) * n_bits)

    def run(self, adc: ADC, rng: RngLike = None) -> HistogramTestResult:
        """Acquire a ramp record from ``adc`` and evaluate it."""
        record = self.acquire(adc, rng=rng)
        return self.evaluate_codes(record.codes, adc.n_bits)

    # ------------------------------------------------------------------ #
    # Reference configurations from the paper
    # ------------------------------------------------------------------ #

    @classmethod
    def paper_reference(cls, dnl_spec_lsb: float = 0.5,
                        **kwargs) -> "HistogramTest":
        """The ~1000-samples-per-code reference measurement of section 4."""
        return cls(samples_per_code=1000.0, dnl_spec_lsb=dnl_spec_lsb,
                   **kwargs)

    @classmethod
    def paper_production(cls, n_bits: int = 6, dnl_spec_lsb: float = 1.0,
                         **kwargs) -> "HistogramTest":
        """The 4096-sample production test of section 4 (64 codes)."""
        samples_per_code = 4096.0 / (1 << n_bits)
        return cls(samples_per_code=samples_per_code,
                   dnl_spec_lsb=dnl_spec_lsb, **kwargs)
