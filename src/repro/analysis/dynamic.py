"""Dynamic (FFT-based) converter tests: THD, SNR, SINAD, ENOB, SFDR.

Section 2 of the paper names Total Harmonic Distortion and noise power as
the main *dynamic* test parameters and states that the proposed partial-BIST
partition supports them as well (with more LSBs observed externally because
the stimulus frequency is higher — Equation (1)).  This module supplies the
measurement side: a windowed-FFT spectrum analyzer over the output codes of a
converter driven with a (coherent) sine, and the standard single-tone figures
of merit derived from it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.adc.base import ADC
from repro.signals.sine import SineStimulus

__all__ = ["SpectrumResult", "SpectrumFigures", "DynamicAnalyzer",
           "DynamicSpec"]

RngLike = Union[int, np.random.Generator, None]

#: Supported window functions and their generators.
_WINDOWS = {
    "rect": lambda n: np.ones(n),
    "hann": lambda n: np.hanning(n),
    "hamming": lambda n: np.hamming(n),
    "blackman": lambda n: np.blackman(n),
}


@dataclass
class SpectrumResult:
    """Single-tone FFT analysis of a converter output record.

    Attributes
    ----------
    frequencies:
        Frequency of each analysed bin in Hz.
    power:
        Power of each bin (linear, normalised to the fundamental's power
        being the actual signal power).
    fundamental_bin:
        Index of the fundamental in the ``frequencies`` array.
    signal_power, noise_power, distortion_power:
        Power of the fundamental, of the noise floor, and of the summed
        harmonics.
    thd_db:
        Total harmonic distortion in dB (negative; further below zero is
        better).
    snr_db, sinad_db, sfdr_db:
        Signal-to-noise ratio, signal-to-noise-and-distortion and spurious
        free dynamic range in dB.
    enob:
        Effective number of bits, ``(SINAD - 1.76) / 6.02``.
    """

    frequencies: np.ndarray
    power: np.ndarray
    fundamental_bin: int
    signal_power: float
    noise_power: float
    distortion_power: float
    thd_db: float
    snr_db: float
    sinad_db: float
    sfdr_db: float
    enob: float


def _db(ratio: float) -> float:
    """Power ratio in dB, guarding against zero."""
    if ratio <= 0.0:
        return -math.inf
    return 10.0 * math.log10(ratio)


def _db_ratio_rows(numerator: np.ndarray, denominator: np.ndarray,
                   zero_denominator_db: float) -> np.ndarray:
    """Per-device ``10 log10(numerator / denominator)`` with the scalar
    guard semantics: a non-positive ratio gives ``-inf`` and a zero
    denominator gives ``zero_denominator_db`` (``+inf`` for SNR-like
    figures, ``-inf`` for THD)."""
    out = np.full(numerator.shape, float(zero_denominator_db))
    ok = denominator > 0.0
    ratio = np.where(ok, numerator, 0.0) / np.where(ok, denominator, 1.0)
    positive = ratio > 0.0
    with np.errstate(divide="ignore"):
        values = np.where(positive,
                          10.0 * np.log10(np.where(positive, ratio, 1.0)),
                          -np.inf)
    out[ok] = values[ok]
    return out


@dataclass
class SpectrumFigures:
    """Single-tone figures of merit for a whole batch of spectra.

    The vectorised counterpart of :class:`SpectrumResult`: every attribute
    is a per-device array, produced by
    :meth:`DynamicAnalyzer.analyze_power_batch` from a ``(devices, bins)``
    power matrix.  Row ``d`` equals, bit for bit, the figures
    :meth:`DynamicAnalyzer.analyze_power` reports for spectrum ``d`` alone
    (the scalar method is the batch-of-1 wrapper).
    """

    fundamental_bin: np.ndarray
    signal_power: np.ndarray
    noise_power: np.ndarray
    distortion_power: np.ndarray
    thd_db: np.ndarray
    snr_db: np.ndarray
    sinad_db: np.ndarray
    sfdr_db: np.ndarray
    enob: np.ndarray

    @property
    def n_devices(self) -> int:
        """Number of spectra analysed."""
        return int(self.enob.size)


@dataclass(frozen=True)
class DynamicSpec:
    """Pass/fail limits for the single-tone dynamic figures of merit.

    Every limit is optional; only the configured ones are checked, so a
    production dynamic suite can screen on ENOB alone or add THD/SFDR
    floors.  All dB quantities follow the sign conventions of
    :class:`SpectrumResult` (THD is negative, more negative is better).
    """

    min_enob: Optional[float] = None
    min_sinad_db: Optional[float] = None
    min_snr_db: Optional[float] = None
    max_thd_db: Optional[float] = None
    min_sfdr_db: Optional[float] = None

    def __post_init__(self) -> None:
        if all(limit is None for limit in (
                self.min_enob, self.min_sinad_db, self.min_snr_db,
                self.max_thd_db, self.min_sfdr_db)):
            raise ValueError("at least one dynamic limit must be set")

    def passes(self, result: "SpectrumResult") -> bool:
        """True when the measured spectrum meets every configured limit."""
        checks = [
            self.min_enob is None or result.enob >= self.min_enob,
            self.min_sinad_db is None or result.sinad_db >= self.min_sinad_db,
            self.min_snr_db is None or result.snr_db >= self.min_snr_db,
            self.max_thd_db is None or result.thd_db <= self.max_thd_db,
            self.min_sfdr_db is None or result.sfdr_db >= self.min_sfdr_db,
        ]
        return all(checks)

    def passes_batch(self, figures: "SpectrumFigures") -> np.ndarray:
        """Per-device pass vector over a batch of measured figures.

        Row ``d`` equals ``passes(...)`` of device ``d``'s scalar result:
        the same comparisons against the same configured limits, evaluated
        across the device axis.
        """
        passed = np.ones(figures.n_devices, dtype=bool)
        if self.min_enob is not None:
            passed &= figures.enob >= self.min_enob
        if self.min_sinad_db is not None:
            passed &= figures.sinad_db >= self.min_sinad_db
        if self.min_snr_db is not None:
            passed &= figures.snr_db >= self.min_snr_db
        if self.max_thd_db is not None:
            passed &= figures.thd_db <= self.max_thd_db
        if self.min_sfdr_db is not None:
            passed &= figures.sfdr_db >= self.min_sfdr_db
        return passed


class DynamicAnalyzer:
    """FFT-based dynamic test of an A/D converter.

    Parameters
    ----------
    n_samples:
        FFT record length (power of two recommended).
    window:
        Window name: ``"rect"`` (use with coherent sampling), ``"hann"``,
        ``"hamming"`` or ``"blackman"``.
    n_harmonics:
        Number of harmonics (2nd .. n+1th) counted as distortion.
    leakage_bins:
        Number of bins on each side of the fundamental and of each harmonic
        that are attributed to that tone rather than to noise (needed for
        non-rectangular windows).
    """

    def __init__(self, n_samples: int = 4096, window: str = "hann",
                 n_harmonics: int = 5, leakage_bins: int = 3) -> None:
        if n_samples < 16:
            raise ValueError("n_samples must be at least 16")
        if window not in _WINDOWS:
            raise ValueError(
                f"unknown window {window!r}; choose from {sorted(_WINDOWS)}")
        if n_harmonics < 1:
            raise ValueError("n_harmonics must be at least 1")
        if leakage_bins < 0:
            raise ValueError("leakage_bins must be non-negative")
        self.n_samples = int(n_samples)
        self.window = window
        self.n_harmonics = int(n_harmonics)
        self.leakage_bins = int(leakage_bins)

    # ------------------------------------------------------------------ #
    # Spectrum computation
    # ------------------------------------------------------------------ #

    def spectrum(self, codes: np.ndarray, sample_rate: float,
                 fundamental: Optional[float] = None) -> SpectrumResult:
        """Analyse a record of output codes.

        Parameters
        ----------
        codes:
            Converter output codes (``n_samples`` of them are used; the
            record must be at least that long).
        sample_rate:
            Sample rate the codes were taken at, in Hz.
        fundamental:
            Expected fundamental frequency; when omitted the strongest
            non-DC bin is used.
        """
        codes = np.asarray(codes, dtype=float)
        if codes.size < self.n_samples:
            raise ValueError(
                f"need at least {self.n_samples} samples, got {codes.size}")
        power = self.windowed_power(codes[None, :self.n_samples])[0]
        freqs = np.fft.rfftfreq(self.n_samples, d=1.0 / sample_rate)
        return self.analyze_power(power, freqs, fundamental, sample_rate)

    def windowed_power(self, codes: np.ndarray) -> np.ndarray:
        """Single-sided power spectra of a ``(devices, n_samples)`` matrix.

        The vectorisable half of :meth:`spectrum`: per-row mean removal,
        windowing and FFT.  Row ``d`` of the result is bit-identical to
        what :meth:`spectrum` computes internally for record ``d``, which
        is what lets :class:`repro.production.analysis_batch.BatchDynamicSuite`
        run the acquisition and transform over the device axis while the
        per-tone bookkeeping stays shared with the scalar path.
        """
        data = np.asarray(codes, dtype=float)
        if data.ndim != 2 or data.shape[1] != self.n_samples:
            raise ValueError(
                f"codes must be a (devices, {self.n_samples}) matrix")
        data = data - data.mean(axis=1, keepdims=True)
        window = _WINDOWS[self.window](self.n_samples)
        spectrum = np.fft.rfft(data * window, axis=1)
        power = np.abs(spectrum) ** 2 / ((window ** 2).sum() * self.n_samples)
        power[:, 1:-1] *= 2.0  # single-sided
        return power

    def analyze_power(self, power: np.ndarray, freqs: np.ndarray,
                      fundamental: Optional[float],
                      sample_rate: float) -> SpectrumResult:
        """Tone bookkeeping over one precomputed power spectrum row.

        A batch-of-1 call into :meth:`analyze_power_batch` — the scalar
        and wafer-scale paths are one implementation, which is what keeps
        the batched dynamic suite bit-exact against this method.
        """
        power = np.asarray(power, dtype=float)
        figures = self.analyze_power_batch(power[None, :], freqs,
                                           fundamental, sample_rate)
        return SpectrumResult(
            frequencies=freqs,
            power=power,
            fundamental_bin=int(figures.fundamental_bin[0]),
            signal_power=float(figures.signal_power[0]),
            noise_power=float(figures.noise_power[0]),
            distortion_power=float(figures.distortion_power[0]),
            thd_db=float(figures.thd_db[0]),
            snr_db=float(figures.snr_db[0]),
            sinad_db=float(figures.sinad_db[0]),
            sfdr_db=float(figures.sfdr_db[0]),
            enob=float(figures.enob[0]))

    def analyze_power_batch(self, power: np.ndarray, freqs: np.ndarray,
                            fundamental: Optional[float],
                            sample_rate: float) -> SpectrumFigures:
        """Tone bookkeeping over a ``(devices, bins)`` power matrix.

        The device-axis form of the per-tone bookkeeping: the fundamental
        is located per device as an index vector (every device snaps to
        its own local maximum), the signal/harmonic windows become boolean
        bin-mask matrices, and every figure of merit is reduced along the
        bin axis — no per-device Python loop.  All sums are fixed-length
        masked reductions, so row ``d`` is bit-identical to a batch-of-1
        call on spectrum ``d`` alone.
        """
        power = np.asarray(power, dtype=float)
        if power.ndim != 2:
            raise ValueError("power must be a (devices, bins) matrix")
        n_devices, n_bins = power.shape
        leak = self.leakage_bins

        if fundamental is None:
            fund = np.argmax(power[:, 1:], axis=1).astype(np.int64) + 1
        else:
            guess = int(round(fundamental * self.n_samples / sample_rate))
            guess = min(max(guess, 1), n_bins - 1)
            # Snap to the local maximum to tolerate slight incoherence.
            lo = max(1, guess - leak)
            hi = min(n_bins, guess + leak + 1)
            fund = lo + np.argmax(power[:, lo:hi], axis=1).astype(np.int64)

        cols = np.arange(n_bins)

        def tone_mask(center: np.ndarray,
                      valid: Optional[np.ndarray] = None) -> np.ndarray:
            """Per-device window mask ``center ± leak`` clipped to [1, nb)."""
            mask = ((cols >= np.maximum(1, center - leak)[:, None])
                    & (cols < np.minimum(n_bins, center + leak + 1)[:, None]))
            if valid is not None:
                mask &= valid[:, None]
            return mask

        signal_mask = tone_mask(fund)
        signal_power = np.where(signal_mask, power, 0.0).sum(axis=1)

        harmonic_mask = np.zeros_like(signal_mask)
        harmonic_power = np.zeros(n_devices)
        nyquist_bin = n_bins - 1
        for order in range(2, 2 + self.n_harmonics):
            folded = (order * fund) % self.n_samples
            h_bin = np.where(folded > self.n_samples // 2,
                             self.n_samples - folded, folded)
            in_range = (h_bin > 0) & (h_bin <= nyquist_bin)
            # A harmonic folding onto the fundamental is not counted twice.
            mask = tone_mask(h_bin, in_range) & ~signal_mask
            harmonic_power = (harmonic_power
                              + np.where(mask, power, 0.0).sum(axis=1))
            harmonic_mask |= mask

        excluded = signal_mask | harmonic_mask
        excluded[:, 0] = True
        noise_power = np.where(excluded, 0.0, power).sum(axis=1)

        # Spurious-free dynamic range also considers non-harmonic spurs.
        spur_candidates = np.where(signal_mask, 0.0, power)
        spur_candidates[:, 0] = 0.0
        worst_any_spur = (spur_candidates.max(axis=1) if n_bins
                          else np.zeros(n_devices))

        thd_db = _db_ratio_rows(harmonic_power, signal_power, -math.inf)
        snr_db = _db_ratio_rows(signal_power, noise_power, math.inf)
        sinad_db = _db_ratio_rows(signal_power,
                                  noise_power + harmonic_power, math.inf)
        sfdr_db = _db_ratio_rows(signal_power, worst_any_spur, math.inf)
        enob = np.where(np.isfinite(sinad_db), (sinad_db - 1.76) / 6.02,
                        np.inf)

        return SpectrumFigures(
            fundamental_bin=fund,
            signal_power=signal_power,
            noise_power=noise_power,
            distortion_power=harmonic_power,
            thd_db=thd_db,
            snr_db=snr_db,
            sinad_db=sinad_db,
            sfdr_db=sfdr_db,
            enob=enob)

    def _tone_power(self, power: np.ndarray,
                    center_bin: int) -> Tuple[float, set]:
        """Sum the power in a tone's bins (center ± leakage_bins)."""
        lo = max(1, center_bin - self.leakage_bins)
        hi = min(power.size, center_bin + self.leakage_bins + 1)
        bins = set(range(lo, hi))
        return float(power[lo:hi].sum()), bins

    @staticmethod
    def _alias_bin(bin_index: int, n_samples: int) -> int:
        """Fold a bin index back into the first Nyquist zone."""
        period = n_samples
        folded = bin_index % period
        if folded > period // 2:
            folded = period - folded
        return folded

    # ------------------------------------------------------------------ #
    # End-to-end measurement
    # ------------------------------------------------------------------ #

    def measure(self, adc: ADC, target_frequency: Optional[float] = None,
                amplitude_fraction: float = 0.49,
                transition_noise_lsb: float = 0.0,
                seed: Optional[int] = None,
                rng: RngLike = None) -> SpectrumResult:
        """Drive ``adc`` with a coherent sine and analyse the output.

        Parameters
        ----------
        adc:
            Converter under test.
        target_frequency:
            Requested sine frequency; defaults to roughly 1/50 of the sample
            rate and is snapped to the nearest coherent frequency.
        amplitude_fraction:
            Sine amplitude as a fraction of full scale.
        transition_noise_lsb:
            Converter input-referred noise during the acquisition.
        seed:
            Seed for the acquisition noise.
        rng:
            Seed or generator for the acquisition noise; takes precedence
            over ``seed``.  Passing a shared generator lets a scalar loop
            over devices consume one noise stream in device order (the
            convention the batched engines replicate).
        """
        if target_frequency is None:
            target_frequency = adc.sample_rate / 50.0
        stimulus = SineStimulus.for_adc(adc, target_frequency, self.n_samples,
                                        amplitude_fraction=amplitude_fraction)
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(
                         rng if rng is not None else seed))
        record = adc.sample(stimulus, n_samples=self.n_samples, rng=generator,
                            transition_noise_lsb=transition_noise_lsb)
        return self.spectrum(record.codes, adc.sample_rate,
                             fundamental=stimulus.frequency)
