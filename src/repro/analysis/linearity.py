"""Static linearity extraction (offset, gain, DNL, INL).

These are the "static" parameters the paper lists in section 2.  The
functions here convert raw measurements — code widths, histograms or
transition voltages — into the standard figures of merit, using the same
end-point convention as the paper's reference histogram test, and apply
pass/fail specifications to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "LinearityResult",
    "linearity_from_code_widths",
    "linearity_from_transitions",
    "dnl_from_histogram",
]


@dataclass(frozen=True)
class LinearityResult:
    """Static linearity figures of one converter measurement.

    Attributes
    ----------
    dnl_lsb:
        DNL per inner code, in LSB (end-point convention).
    inl_lsb:
        INL per transition, in LSB, accumulated from the first inner code —
        exactly what the paper's LSB processing block computes by summing
        DNL values.
    offset_lsb:
        Offset error in LSB, when known from absolute transition voltages
        (``nan`` when the measurement only provides relative widths).
    gain_error_lsb:
        Gain error in LSB over the measured span (``nan`` when unknown).
    """

    dnl_lsb: np.ndarray
    inl_lsb: np.ndarray
    offset_lsb: float = float("nan")
    gain_error_lsb: float = float("nan")

    @property
    def max_dnl(self) -> float:
        """Largest absolute DNL in LSB."""
        return float(np.max(np.abs(self.dnl_lsb)))

    @property
    def max_inl(self) -> float:
        """Largest absolute INL in LSB."""
        return float(np.max(np.abs(self.inl_lsb)))

    @property
    def worst_dnl_code(self) -> int:
        """Inner-code number (1-based) with the largest absolute DNL."""
        return int(np.argmax(np.abs(self.dnl_lsb))) + 1

    def passes(self, dnl_spec_lsb: float,
               inl_spec_lsb: Optional[float] = None) -> bool:
        """True when the result meets the DNL (and optional INL) spec."""
        if dnl_spec_lsb < 0:
            raise ValueError("dnl_spec_lsb must be non-negative")
        ok = self.max_dnl <= dnl_spec_lsb
        if inl_spec_lsb is not None:
            ok = ok and self.max_inl <= inl_spec_lsb
        return bool(ok)

    def missing_codes(self, threshold_lsb: float = 0.05) -> np.ndarray:
        """Inner codes whose measured width is below ``threshold_lsb`` LSB."""
        widths = 1.0 + self.dnl_lsb
        return np.nonzero(widths < threshold_lsb)[0] + 1


def linearity_from_code_widths(code_widths: Sequence[float],
                               lsb: Optional[float] = None
                               ) -> LinearityResult:
    """Compute DNL and INL from measured inner code widths.

    Parameters
    ----------
    code_widths:
        Measured inner code widths.  Units are irrelevant when ``lsb`` is
        omitted (the end-point convention normalises by the mean width); give
        ``lsb`` to use the absolute nominal LSB instead.
    lsb:
        Nominal LSB in the same unit as ``code_widths``; when omitted the
        average measured width is used (end-point / best-fit-gain removal).
    """
    widths = np.asarray(code_widths, dtype=float)
    if widths.ndim != 1 or widths.size < 1:
        raise ValueError("code_widths must be a non-empty 1-D sequence")
    if np.any(widths < 0):
        raise ValueError("code widths cannot be negative")
    reference = widths.mean() if lsb is None else float(lsb)
    if reference <= 0:
        raise ValueError("the reference LSB must be positive")
    dnl = widths / reference - 1.0
    inl = np.cumsum(dnl)
    return LinearityResult(dnl_lsb=dnl, inl_lsb=inl)


def linearity_from_transitions(transitions: Sequence[float],
                               full_scale: float,
                               n_bits: int) -> LinearityResult:
    """Compute offset, gain, DNL and INL from absolute transition voltages."""
    transitions = np.asarray(transitions, dtype=float)
    n_codes = 1 << n_bits
    if transitions.size != n_codes - 1:
        raise ValueError(
            f"expected {n_codes - 1} transitions, got {transitions.size}")
    lsb = full_scale / n_codes
    widths = np.diff(transitions)
    result = linearity_from_code_widths(widths)
    offset_lsb = float((transitions[0] - lsb) / lsb)
    span = transitions[-1] - transitions[0]
    gain_error_lsb = float((span - (n_codes - 2) * lsb) / lsb)
    return LinearityResult(dnl_lsb=result.dnl_lsb, inl_lsb=result.inl_lsb,
                           offset_lsb=offset_lsb,
                           gain_error_lsb=gain_error_lsb)


def dnl_from_histogram(counts: Sequence[float],
                       drop_end_bins: bool = True) -> LinearityResult:
    """Compute DNL and INL from a ramp code-density histogram.

    This is the conventional production test the paper compares its BIST
    against: with a linear ramp the expected number of hits per code is
    proportional to the code width, so the normalised histogram directly
    estimates the DNL.

    Parameters
    ----------
    counts:
        Histogram of output codes (one bin per code, including the end
        codes).
    drop_end_bins:
        Drop the first and last bin before normalising (they collect the
        off-range part of the ramp and carry no width information); this is
        the standard procedure and the default.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1 or counts.size < 3:
        raise ValueError("need a 1-D histogram with at least 3 bins")
    if np.any(counts < 0):
        raise ValueError("histogram counts cannot be negative")
    inner = counts[1:-1] if drop_end_bins else counts
    if inner.sum() == 0:
        raise ValueError("the histogram contains no samples in the inner bins")
    return linearity_from_code_widths(inner)
