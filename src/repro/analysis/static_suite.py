"""Complete static test suite: offset, gain, DNL, INL, missing codes,
monotonicity.

Section 2 of the paper lists offset voltage, gain, DNL and INL as the static
test parameters.  The BIST covers DNL/INL (and, via the MSB checker, gross
functionality); a production flow still measures offset and gain, typically
from the located transition voltages.  :class:`StaticTestSuite` bundles all
of those measurements into one report so the examples and benchmarks can
show a complete static characterisation next to the BIST verdict.

Transition voltages are located with a fine-ramp search (a software stand-in
for the servo-loop / fine-histogram methods used on real testers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.adc.base import ADC
from repro.analysis.linearity import LinearityResult, linearity_from_transitions

__all__ = ["StaticSpec", "StaticTestReport", "StaticTestSuite",
           "locate_transitions"]

RngLike = Union[int, np.random.Generator, None]


def locate_transitions(adc: ADC, oversample: int = 64,
                       transition_noise_lsb: float = 0.0,
                       averages: int = 1,
                       rng: RngLike = None) -> np.ndarray:
    """Locate every transition voltage with a fine ramp sweep.

    Parameters
    ----------
    adc:
        Converter under test.
    oversample:
        Ramp points per nominal LSB; the transition location error is about
        half a step, i.e. ``0.5 / oversample`` LSB.
    transition_noise_lsb:
        Converter noise during the sweep.
    averages:
        Number of sweeps averaged (noise averaging, as a servo loop would).
    rng:
        Noise seed.
    """
    if oversample < 2:
        raise ValueError("oversample must be at least 2")
    if averages < 1:
        raise ValueError("averages must be at least 1")
    generator = (rng if isinstance(rng, np.random.Generator)
                 else np.random.default_rng(rng))
    margin = 2.0 * adc.lsb
    voltages = np.arange(-margin, adc.full_scale + margin,
                         adc.lsb / oversample)
    estimates = np.zeros((averages, adc.n_codes - 1))
    targets = np.arange(1, adc.n_codes)
    for i in range(averages):
        codes = adc.convert(voltages, rng=generator,
                            transition_noise_lsb=transition_noise_lsb)
        codes = np.maximum.accumulate(codes)
        idx = np.searchsorted(codes, targets, side="left")
        idx = np.clip(idx, 0, voltages.size - 1)
        estimates[i] = voltages[idx]
    return estimates.mean(axis=0)


@dataclass(frozen=True)
class StaticSpec:
    """Static specification limits, all in LSB (absolute values)."""

    offset_lsb: float = 2.0
    gain_error_lsb: float = 2.0
    dnl_lsb: float = 1.0
    inl_lsb: float = 1.0
    allow_missing_codes: bool = False

    def __post_init__(self) -> None:
        for name in ("offset_lsb", "gain_error_lsb", "dnl_lsb", "inl_lsb"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class StaticTestReport:
    """Full static characterisation of one converter.

    Attributes
    ----------
    transitions:
        Located transition voltages.
    linearity:
        DNL/INL (end-point) plus offset and gain error.
    monotonic:
        Whether the located transition voltages are non-decreasing.
    missing_codes:
        Inner codes narrower than 5 % of an LSB.
    spec:
        The specification the report was judged against.
    """

    transitions: np.ndarray
    linearity: LinearityResult
    monotonic: bool
    missing_codes: np.ndarray
    spec: StaticSpec

    @property
    def offset_lsb(self) -> float:
        """Measured offset error in LSB."""
        return self.linearity.offset_lsb

    @property
    def gain_error_lsb(self) -> float:
        """Measured gain error in LSB."""
        return self.linearity.gain_error_lsb

    @property
    def max_dnl(self) -> float:
        """Largest absolute DNL in LSB."""
        return self.linearity.max_dnl

    @property
    def max_inl(self) -> float:
        """Largest absolute INL in LSB."""
        return self.linearity.max_inl

    @property
    def passed(self) -> bool:
        """Overall static pass/fail against the specification."""
        spec = self.spec
        checks = [
            abs(self.offset_lsb) <= spec.offset_lsb,
            abs(self.gain_error_lsb) <= spec.gain_error_lsb,
            self.max_dnl <= spec.dnl_lsb,
            self.max_inl <= spec.inl_lsb,
            self.monotonic,
        ]
        if not spec.allow_missing_codes:
            checks.append(self.missing_codes.size == 0)
        return all(checks)

    def failures(self) -> list:
        """Names of the static parameters that violate the specification."""
        spec = self.spec
        failed = []
        if abs(self.offset_lsb) > spec.offset_lsb:
            failed.append("offset")
        if abs(self.gain_error_lsb) > spec.gain_error_lsb:
            failed.append("gain")
        if self.max_dnl > spec.dnl_lsb:
            failed.append("dnl")
        if self.max_inl > spec.inl_lsb:
            failed.append("inl")
        if not self.monotonic:
            failed.append("monotonicity")
        if not spec.allow_missing_codes and self.missing_codes.size:
            failed.append("missing codes")
        return failed


class StaticTestSuite:
    """Measure every static parameter of a converter and judge it.

    Parameters
    ----------
    spec:
        Specification limits; defaults to a typical ±1 LSB linearity,
        ±2 LSB offset/gain specification.
    oversample:
        Transition-search resolution in points per LSB.
    transition_noise_lsb, averages, seed:
        Acquisition noise configuration (see :func:`locate_transitions`).
    """

    def __init__(self, spec: Optional[StaticSpec] = None,
                 oversample: int = 64,
                 transition_noise_lsb: float = 0.0,
                 averages: int = 1,
                 seed: Optional[int] = None) -> None:
        self.spec = spec if spec is not None else StaticSpec()
        self.oversample = int(oversample)
        self.transition_noise_lsb = float(transition_noise_lsb)
        self.averages = int(averages)
        self.seed = seed

    def run(self, adc: ADC, rng: RngLike = None) -> StaticTestReport:
        """Characterise ``adc`` and return the full static report."""
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(
                         rng if rng is not None else self.seed))
        transitions = locate_transitions(
            adc, oversample=self.oversample,
            transition_noise_lsb=self.transition_noise_lsb,
            averages=self.averages, rng=generator)
        linearity = linearity_from_transitions(transitions, adc.full_scale,
                                               adc.n_bits)
        widths_lsb = np.diff(transitions) / adc.lsb
        missing = np.nonzero(widths_lsb < 0.05)[0] + 1
        monotonic = bool(np.all(np.diff(transitions) >= -adc.lsb * 1e-6))
        return StaticTestReport(transitions=transitions, linearity=linearity,
                                monotonic=monotonic, missing_codes=missing,
                                spec=self.spec)
