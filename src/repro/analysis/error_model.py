"""Analytic measurement-error model of the counting-based BIST (section 3).

The on-chip test measures each code width by counting samples between two
LSB transitions.  Because the sample phase is uniformly distributed with
respect to the transitions (paper, Figure 5), a code of true width ``dV``
produces a count of either ``floor(dV/ds)`` or ``floor(dV/ds) + 1`` where
``ds`` is the voltage step per sample (Equation (5)).  The code is accepted
when the count lies within ``[i_min, i_max]`` (Equations (3) and (4)), which
gives the trapezoidal acceptance probability ``h(dV, ds)`` of Figure 6b:

* 0 below ``(i_min - 1) * ds``,
* rising linearly to 1 at ``i_min * ds``,
* 1 up to ``i_max * ds``,
* falling linearly to 0 at ``(i_max + 1) * ds``.

Combining ``h`` with the code-width distribution ``f`` yields the per-code
type I and type II error probabilities (Equations (6) and (7)); the
whole-device numbers follow from the independence approximation of
Equations (8)–(12) implemented in :mod:`repro.analysis.binomial`.

All widths and steps in this module are expressed in LSB.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import integrate, stats

from repro.analysis.distributions import CodeWidthDistribution

__all__ = [
    "acceptance_probability",
    "count_limits",
    "delta_s_for_counter",
    "counter_bits_needed",
    "max_measurement_error_lsb",
    "PerCodeProbabilities",
    "ErrorModel",
]


def acceptance_probability(width_lsb, delta_s_lsb: float,
                           i_min: int, i_max: int) -> np.ndarray:
    """The paper's ``h(dV, ds)``: probability a width is accepted.

    Parameters
    ----------
    width_lsb:
        True code width(s) in LSB (scalar or array).
    delta_s_lsb:
        Voltage step between two samples, in LSB (Equation (5)).
    i_min, i_max:
        Count acceptance limits (Equations (3) and (4)).

    Returns
    -------
    numpy.ndarray
        The trapezoidal acceptance probability of Figure 6b, elementwise.
    """
    if delta_s_lsb <= 0:
        raise ValueError("delta_s_lsb must be positive")
    if i_min < 0 or i_max < i_min:
        raise ValueError("need 0 <= i_min <= i_max")
    x = np.asarray(width_lsb, dtype=float) / delta_s_lsb
    rising = x - (i_min - 1)
    falling = (i_max + 1) - x
    return np.clip(np.minimum(rising, falling), 0.0, 1.0)


def count_limits(delta_s_lsb: float, dnl_spec_lsb: float,
                 counter_max: Optional[int] = None) -> Tuple[int, int]:
    """Count acceptance limits ``(i_min, i_max)`` — Equations (3) and (4).

    ``i_min = ceil(dV_min / ds)`` and ``i_max = floor(dV_max / ds)`` with
    ``dV_min = 1 - dnl_spec`` and ``dV_max = 1 + dnl_spec`` (in LSB).  When a
    ``counter_max`` is given (the largest value the on-chip counter can
    represent), ``i_max`` is clipped to it — a wider code simply saturates
    the counter and is rejected.
    """
    if delta_s_lsb <= 0:
        raise ValueError("delta_s_lsb must be positive")
    if dnl_spec_lsb < 0:
        raise ValueError("dnl_spec_lsb must be non-negative")
    dv_min = max(0.0, 1.0 - dnl_spec_lsb)
    dv_max = 1.0 + dnl_spec_lsb
    i_min = int(math.ceil(dv_min / delta_s_lsb - 1e-12))
    i_max = int(math.floor(dv_max / delta_s_lsb + 1e-12))
    if counter_max is not None:
        if counter_max < 1:
            raise ValueError("counter_max must be at least 1")
        i_max = min(i_max, counter_max)
    if i_max < i_min:
        raise ValueError(
            f"inconsistent limits: i_min={i_min} > i_max={i_max}; the step "
            f"size {delta_s_lsb} LSB is too coarse for a ±{dnl_spec_lsb} LSB "
            f"DNL specification")
    return i_min, i_max


def delta_s_for_counter(counter_bits: int, dnl_spec_lsb: float) -> float:
    """Step size that fully uses a ``counter_bits``-bit counter (section 4).

    The paper chooses the ramp slope such that the *maximum* allowed code
    width (``1 + dnl_spec`` LSB) lands in the middle of the counter's top
    acceptance cell: with ``i_max = 2**counter_bits`` the step is
    ``ds = dV_max / (i_max + 0.5)``.  For a 4-bit counter and the stringent
    ±0.5 LSB spec this gives the paper's quoted ``ds = 0.091`` LSB
    (``1.5 / 16.5``).
    """
    if counter_bits < 1:
        raise ValueError("counter_bits must be at least 1")
    if dnl_spec_lsb < 0:
        raise ValueError("dnl_spec_lsb must be non-negative")
    i_max = 1 << counter_bits
    return (1.0 + dnl_spec_lsb) / (i_max + 0.5)


def counter_bits_needed(delta_s_lsb: float, dnl_spec_lsb: float) -> int:
    """Smallest counter size (bits) whose range covers the widest good code.

    A ``b``-bit counter with an overflow flag distinguishes counts up to
    ``2**b`` (the paper's ``i_max = 16`` for 4 bits), so the requirement is
    ``2**b >= floor(dV_max / ds)``.
    """
    if delta_s_lsb <= 0:
        raise ValueError("delta_s_lsb must be positive")
    if dnl_spec_lsb < 0:
        raise ValueError("dnl_spec_lsb must be non-negative")
    max_count = math.floor((1.0 + dnl_spec_lsb) / delta_s_lsb + 1e-12)
    return max(1, int(math.ceil(math.log2(max(max_count, 1)))))


def max_measurement_error_lsb(delta_s_lsb: float) -> float:
    """The paper's "max. error made" column: one step of the count quantiser.

    The counting process cannot locate a transition more precisely than the
    step ``ds`` between two samples, so the worst-case code-width measurement
    error equals ``ds`` (the paper lists 1/8 … 1/64 LSB for 4–7 bit counters
    at the ±1 LSB spec, which is ``ds`` rounded to a power of two).
    """
    if delta_s_lsb <= 0:
        raise ValueError("delta_s_lsb must be positive")
    return delta_s_lsb


def _gaussian_partial_moment(lo: float, hi: float, mean: float,
                             sigma: float) -> Tuple[float, float]:
    """Return ``(P, M)`` with ``P = ∫ f`` and ``M = ∫ x f`` over ``[lo, hi]``.

    ``f`` is the normal density with the given mean and sigma.  These two
    moments are all that is needed to integrate the piecewise-linear
    acceptance probability against a Gaussian code-width density in closed
    form.
    """
    if hi <= lo:
        return 0.0, 0.0
    a = (lo - mean) / sigma
    b = (hi - mean) / sigma
    p = stats.norm.cdf(b) - stats.norm.cdf(a)
    m = mean * p + sigma * (stats.norm.pdf(a) - stats.norm.pdf(b))
    return float(p), float(m)


@dataclass(frozen=True)
class PerCodeProbabilities:
    """Per-code probabilities produced by :class:`ErrorModel`.

    All quantities refer to a single inner code; device-level numbers are
    derived from them by :class:`repro.analysis.binomial.BinomialDeviceModel`.

    Attributes
    ----------
    p_good:
        ``P(code is good)`` — the width lies inside the DNL spec window.
    p_accept:
        ``P(code is accepted)`` by the counting process.
    p_good_and_accept:
        Joint probability of being good *and* accepted.
    type_i:
        ``P(good and rejected)`` — Equation (6).
    type_ii:
        ``P(faulty and accepted)`` — Equation (7).
    """

    p_good: float
    p_accept: float
    p_good_and_accept: float
    type_i: float
    type_ii: float

    @property
    def p_accept_given_good(self) -> float:
        """Equation (13): ``P(accept | good)`` for one code."""
        if self.p_good == 0.0:
            return 0.0
        return self.p_good_and_accept / self.p_good

    @property
    def p_reject_given_good(self) -> float:
        """Conditional per-code type I probability."""
        return 1.0 - self.p_accept_given_good

    @property
    def p_accept_given_faulty(self) -> float:
        """Conditional per-code type II probability."""
        p_faulty = 1.0 - self.p_good
        if p_faulty == 0.0:
            return 0.0
        return self.type_ii / p_faulty


class ErrorModel:
    """Closed-form per-code error model for the counting BIST.

    Parameters
    ----------
    distribution:
        Code-width distribution (Gaussian); defaults to the paper's
        worst-case 0.21 LSB sigma.
    dnl_spec_lsb:
        Symmetric DNL specification in LSB (0.5 for the stringent setting of
        Table 1, 1.0 for the actual specification of Table 2).
    delta_s_lsb:
        Voltage step per sample in LSB; when omitted it is derived from
        ``counter_bits`` with :func:`delta_s_for_counter`.
    counter_bits:
        Size of the on-chip counter.  Sets the maximum representable count
        (``2**counter_bits``) and, when ``delta_s_lsb`` is omitted, the step
        size.
    """

    def __init__(self, distribution: Optional[CodeWidthDistribution] = None,
                 dnl_spec_lsb: float = 0.5,
                 delta_s_lsb: Optional[float] = None,
                 counter_bits: Optional[int] = None) -> None:
        if delta_s_lsb is None and counter_bits is None:
            raise ValueError("give delta_s_lsb or counter_bits (or both)")
        self.distribution = (distribution if distribution is not None
                             else CodeWidthDistribution.paper_worst_case())
        if dnl_spec_lsb < 0:
            raise ValueError("dnl_spec_lsb must be non-negative")
        self.dnl_spec_lsb = float(dnl_spec_lsb)
        self.counter_bits = counter_bits
        if delta_s_lsb is None:
            delta_s_lsb = delta_s_for_counter(counter_bits, dnl_spec_lsb)
        if delta_s_lsb <= 0:
            raise ValueError("delta_s_lsb must be positive")
        self.delta_s_lsb = float(delta_s_lsb)

        counter_max = (1 << counter_bits) if counter_bits is not None else None
        self.i_min, self.i_max = count_limits(self.delta_s_lsb,
                                              self.dnl_spec_lsb,
                                              counter_max=counter_max)

    # ------------------------------------------------------------------ #
    # Geometry of the acceptance trapezoid
    # ------------------------------------------------------------------ #

    @property
    def spec_window_lsb(self) -> Tuple[float, float]:
        """``(dV_min, dV_max)`` of the DNL spec, in LSB."""
        return self.distribution.spec_window_lsb(self.dnl_spec_lsb)

    @property
    def accept_window_lsb(self) -> Tuple[float, float, float, float]:
        """Corners of the acceptance trapezoid in LSB.

        Returns ``(zero_low, one_low, one_high, zero_high)``: acceptance is 0
        below ``zero_low``, 1 between ``one_low`` and ``one_high`` and 0
        above ``zero_high``, with linear ramps in between.
        """
        ds = self.delta_s_lsb
        return ((self.i_min - 1) * ds, self.i_min * ds,
                self.i_max * ds, (self.i_max + 1) * ds)

    def acceptance(self, width_lsb) -> np.ndarray:
        """``h(dV, ds)`` for this model's limits."""
        return acceptance_probability(width_lsb, self.delta_s_lsb,
                                      self.i_min, self.i_max)

    def max_error_lsb(self) -> float:
        """Worst-case code-width measurement error (the "max. error made")."""
        return max_measurement_error_lsb(self.delta_s_lsb)

    # ------------------------------------------------------------------ #
    # Per-code probabilities
    # ------------------------------------------------------------------ #

    def _expect_acceptance(self, lo: float, hi: float) -> float:
        """``∫_lo^hi h(dV) f(dV) ddV`` in closed form for the Gaussian f."""
        if hi <= lo:
            return 0.0
        dist = self.distribution
        if dist.sigma_lsb == 0.0:
            # Degenerate distribution: all mass at the mean.
            if lo <= dist.mean_lsb <= hi:
                return float(self.acceptance(dist.mean_lsb))
            return 0.0
        ds = self.delta_s_lsb
        zero_low, one_low, one_high, zero_high = self.accept_window_lsb
        total = 0.0
        # Rising ramp region: h = (dV - zero_low) / ds.
        seg_lo, seg_hi = max(lo, zero_low), min(hi, one_low)
        if seg_hi > seg_lo:
            p, m = _gaussian_partial_moment(seg_lo, seg_hi, dist.mean_lsb,
                                            dist.sigma_lsb)
            total += (m - zero_low * p) / ds
        # Flat region: h = 1.
        seg_lo, seg_hi = max(lo, one_low), min(hi, one_high)
        if seg_hi > seg_lo:
            p, _ = _gaussian_partial_moment(seg_lo, seg_hi, dist.mean_lsb,
                                            dist.sigma_lsb)
            total += p
        # Falling ramp region: h = (zero_high - dV) / ds.
        seg_lo, seg_hi = max(lo, one_high), min(hi, zero_high)
        if seg_hi > seg_lo:
            p, m = _gaussian_partial_moment(seg_lo, seg_hi, dist.mean_lsb,
                                            dist.sigma_lsb)
            total += (zero_high * p - m) / ds
        return total

    def _prob_window(self, lo: float, hi: float) -> float:
        """``∫_lo^hi f(dV) ddV`` for the Gaussian width density."""
        if hi <= lo:
            return 0.0
        dist = self.distribution
        if dist.sigma_lsb == 0.0:
            return 1.0 if lo <= dist.mean_lsb <= hi else 0.0
        return float(dist.cdf(hi) - dist.cdf(lo))

    def per_code(self) -> PerCodeProbabilities:
        """Compute the per-code probabilities (Equations (6), (7), (13))."""
        dv_min, dv_max = self.spec_window_lsb
        # Integration support: a generous number of sigmas around the mean,
        # also covering the whole acceptance trapezoid.
        dist = self.distribution
        lo = min(0.0, dv_min, self.accept_window_lsb[0])
        hi = max(dv_max, self.accept_window_lsb[3],
                 dist.mean_lsb + 12.0 * max(dist.sigma_lsb, 1e-6))

        p_good = self._prob_window(dv_min, dv_max)
        p_good_and_accept = self._expect_acceptance(dv_min, dv_max)
        p_accept = self._expect_acceptance(lo, hi)
        type_i = max(0.0, p_good - p_good_and_accept)
        type_ii = max(0.0, p_accept - p_good_and_accept)
        return PerCodeProbabilities(p_good=p_good, p_accept=p_accept,
                                    p_good_and_accept=p_good_and_accept,
                                    type_i=type_i, type_ii=type_ii)

    def per_code_numeric(self, points: int = 20001) -> PerCodeProbabilities:
        """Numerically integrated per-code probabilities (cross-check).

        Uses a dense trapezoidal quadrature of ``h * f`` instead of the
        closed form; provided so that the analytic implementation can be
        validated in the test suite.
        """
        dist = self.distribution
        if dist.sigma_lsb == 0.0:
            return self.per_code()
        dv_min, dv_max = self.spec_window_lsb
        lo = min(0.0, self.accept_window_lsb[0],
                 dist.mean_lsb - 12.0 * dist.sigma_lsb)
        hi = max(dv_max, self.accept_window_lsb[3],
                 dist.mean_lsb + 12.0 * dist.sigma_lsb)
        grid = np.linspace(lo, hi, points)
        f = dist.pdf(grid)
        h = self.acceptance(grid)
        good = (grid >= dv_min) & (grid <= dv_max)

        p_good = float(np.trapezoid(f * good, grid))
        p_accept = float(np.trapezoid(f * h, grid))
        p_good_and_accept = float(np.trapezoid(f * h * good, grid))
        return PerCodeProbabilities(
            p_good=p_good, p_accept=p_accept,
            p_good_and_accept=p_good_and_accept,
            type_i=max(0.0, p_good - p_good_and_accept),
            type_ii=max(0.0, p_accept - p_good_and_accept))

    # ------------------------------------------------------------------ #
    # Device-level probabilities (delegates to the binomial model)
    # ------------------------------------------------------------------ #

    def device(self, n_codes: int):
        """Whole-device probabilities for ``n_codes`` inner codes.

        Returns a :class:`repro.analysis.binomial.DeviceProbabilities`.
        """
        from repro.analysis.binomial import BinomialDeviceModel

        return BinomialDeviceModel(self.per_code(), n_codes).device()

    # ------------------------------------------------------------------ #
    # Sweeps (Figure 7)
    # ------------------------------------------------------------------ #

    @classmethod
    def sweep_delta_s(cls, delta_s_values_lsb: np.ndarray, n_codes: int,
                      dnl_spec_lsb: float = 0.5,
                      distribution: Optional[CodeWidthDistribution] = None,
                      counter_bits: Optional[int] = None) -> dict:
        """Device-level type I/II probabilities as a function of ``ds``.

        This regenerates the series of Figure 7.  Step sizes for which the
        count limits are inconsistent (step too coarse for the spec) are
        skipped, mirroring the usable region shown in the figure.

        Returns a dict with keys ``delta_s_lsb``, ``type_i`` and ``type_ii``
        (NumPy arrays of equal length).
        """
        ds_out, ti_out, tii_out = [], [], []
        for ds in np.asarray(delta_s_values_lsb, dtype=float):
            try:
                model = cls(distribution=distribution,
                            dnl_spec_lsb=dnl_spec_lsb,
                            delta_s_lsb=float(ds),
                            counter_bits=counter_bits)
            except ValueError:
                continue
            device = model.device(n_codes)
            ds_out.append(float(ds))
            ti_out.append(device.type_i)
            tii_out.append(device.type_ii)
        return {
            "delta_s_lsb": np.asarray(ds_out),
            "type_i": np.asarray(ti_out),
            "type_ii": np.asarray(tii_out),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ErrorModel(dnl_spec={self.dnl_spec_lsb} LSB, "
                f"delta_s={self.delta_s_lsb:.4f} LSB, "
                f"i_min={self.i_min}, i_max={self.i_max})")
