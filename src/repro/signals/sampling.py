"""Sampling-clock model with aperture jitter.

The paper's error analysis notes (end of section 3) that jitter noise
"introduces a variation in the time when samples of the input signal are
taken" and excludes it from the closed-form analysis.  The Monte-Carlo side
of this reproduction can include it through :class:`SamplingClock`, which
generates the actual sample instants used by :meth:`repro.adc.base.ADC.sample`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

__all__ = ["SamplingClock"]

RngLike = Union[int, np.random.Generator, None]


@dataclass
class SamplingClock:
    """A sample clock with optional Gaussian aperture jitter and drift.

    Parameters
    ----------
    sample_rate:
        Nominal sample frequency in Hz.
    jitter_rms:
        RMS aperture jitter in seconds, applied independently per sample.
    frequency_error:
        Relative error of the actual clock frequency (e.g. ``50e-6`` for a
        50 ppm fast clock).  This is the mechanism behind the paper's
        observation that its measured step size was slightly off (the ramp
        slope versus clock mismatch in section 4).
    start_time:
        Time of the first sample in seconds.
    rng:
        Seed or generator for the jitter.
    """

    sample_rate: float
    jitter_rms: float = 0.0
    frequency_error: float = 0.0
    start_time: float = 0.0
    rng: RngLike = None

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        if self.jitter_rms < 0:
            raise ValueError("jitter_rms must be non-negative")
        if self.frequency_error <= -1.0:
            raise ValueError("frequency_error must be greater than -1")
        self._rng = (self.rng if isinstance(self.rng, np.random.Generator)
                     else np.random.default_rng(self.rng))

    @property
    def actual_rate(self) -> float:
        """The true sample rate including the frequency error."""
        return self.sample_rate * (1.0 + self.frequency_error)

    def sample_times(self, n_samples: int,
                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Return ``n_samples`` sample instants in seconds.

        Parameters
        ----------
        n_samples:
            Number of samples.
        rng:
            Overrides the clock's own generator when provided (lets a caller
            share one generator across all noise sources of a simulation).
        """
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        generator = rng if rng is not None else self._rng
        ideal = self.start_time + np.arange(n_samples) / self.actual_rate
        if self.jitter_rms > 0.0:
            ideal = ideal + generator.normal(0.0, self.jitter_rms,
                                             size=n_samples)
        return ideal
