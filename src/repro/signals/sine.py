"""Sinusoidal stimuli for dynamic converter tests.

The paper's "dynamic" tests (Total Harmonic Distortion and noise power,
section 2) use a sine stimulus and an FFT of the output codes.  This module
provides a sine source with optional harmonic distortion and additive noise
so that the dynamic analysis in :mod:`repro.analysis.dynamic` has realistic
inputs, and a coherent-frequency helper that picks the nearest frequency
giving an integer number of cycles in the record (the standard requirement
for leakage-free FFT testing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

__all__ = ["SineStimulus", "coherent_frequency"]

RngLike = Union[int, np.random.Generator, None]


def coherent_frequency(target_frequency: float, sample_rate: float,
                       n_samples: int) -> float:
    """Return the coherent test frequency closest to ``target_frequency``.

    Coherent sampling requires an integer — and ideally odd, so that every
    sample lands on a distinct phase — number of signal cycles ``M`` in the
    ``n_samples``-long record: ``f = M * sample_rate / n_samples``.

    The returned frequency uses the odd cycle count closest to the target.
    """
    if target_frequency <= 0 or sample_rate <= 0 or n_samples <= 0:
        raise ValueError("frequencies and n_samples must be positive")
    cycles = target_frequency * n_samples / sample_rate
    odd = int(round((cycles - 1.0) / 2.0)) * 2 + 1
    odd = max(1, odd)
    return odd * sample_rate / n_samples


@dataclass
class SineStimulus:
    """A sine stimulus with optional harmonics and noise.

    Parameters
    ----------
    frequency:
        Fundamental frequency in Hz.
    amplitude:
        Peak amplitude in volts.
    offset:
        DC offset in volts (typically mid-scale of the converter).
    phase:
        Phase at ``t = 0`` in radians.
    harmonics:
        Mapping of harmonic order (2, 3, ...) to *relative* amplitude
        (fraction of the fundamental).  Used to emulate a distorted source
        or a distorting converter front-end.
    noise_sigma:
        RMS additive voltage noise in volts.
    rng:
        Seed or generator for the noise.
    """

    frequency: float
    amplitude: float = 0.5
    offset: float = 0.5
    phase: float = 0.0
    harmonics: Dict[int, float] = field(default_factory=dict)
    noise_sigma: float = 0.0
    rng: RngLike = None

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")
        if self.amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        for order in self.harmonics:
            if order < 2:
                raise ValueError("harmonic orders start at 2")
        self._rng = (self.rng if isinstance(self.rng, np.random.Generator)
                     else np.random.default_rng(self.rng))

    @classmethod
    def for_adc(cls, adc, target_frequency: float, n_samples: int,
                amplitude_fraction: float = 0.49, **kwargs) -> "SineStimulus":
        """Build a coherent, nearly full-scale sine for a converter.

        The amplitude defaults to 49 % of full scale (so clipping never
        occurs) and the frequency is snapped to the nearest coherent value
        for an ``n_samples`` record.
        """
        freq = coherent_frequency(target_frequency, adc.sample_rate, n_samples)
        return cls(frequency=freq,
                   amplitude=amplitude_fraction * adc.full_scale,
                   offset=0.5 * adc.full_scale, **kwargs)

    def voltage(self, times: np.ndarray) -> np.ndarray:
        """Return the stimulus voltage at the given times."""
        times = np.asarray(times, dtype=float)
        omega = 2.0 * np.pi * self.frequency
        v = self.offset + self.amplitude * np.sin(omega * times + self.phase)
        for order, rel_amp in self.harmonics.items():
            v = v + self.amplitude * rel_amp * np.sin(
                order * (omega * times + self.phase))
        if self.noise_sigma > 0.0:
            v = v + self._rng.normal(0.0, self.noise_sigma, size=v.shape)
        return v

    def __call__(self, times: np.ndarray) -> np.ndarray:
        return self.voltage(times)
