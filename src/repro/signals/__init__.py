"""Stimulus and noise substrate.

Everything the converter under test is driven with lives here: ideal ramps
and sawtooths (:mod:`repro.signals.ramp`), coherent sines for dynamic tests
(:mod:`repro.signals.sine`), sampling clocks with jitter
(:mod:`repro.signals.sampling`), consolidated noise configuration
(:mod:`repro.signals.noise`) and behavioural models of *on-chip* stimulus
generators (:mod:`repro.signals.generator`).
"""

from repro.signals.generator import (
    ChargePumpRampGenerator,
    DeltaSigmaSineGenerator,
)
from repro.signals.noise import (
    NoiseModel,
    quantization_noise_power,
    snr_ideal_db,
)
from repro.signals.ramp import RampStimulus, SawtoothStimulus
from repro.signals.sampling import SamplingClock
from repro.signals.sine import SineStimulus, coherent_frequency

__all__ = [
    "ChargePumpRampGenerator",
    "DeltaSigmaSineGenerator",
    "NoiseModel",
    "quantization_noise_power",
    "snr_ideal_db",
    "RampStimulus",
    "SawtoothStimulus",
    "SamplingClock",
    "SineStimulus",
    "coherent_frequency",
]
