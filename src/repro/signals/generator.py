"""Models of on-chip test-stimulus generators.

The paper restricts itself to on-chip *data processing* and refers to DeWitt
et al. [1] and Roberts & Lu [6] for on-chip *signal generation*.  To let the
library demonstrate a complete BIST loop (generation + processing on chip),
this module models the two stimulus generators those references describe at
the behavioural level:

:class:`ChargePumpRampGenerator`
    A current source charging a capacitor — the classic on-chip ramp.  Its
    dominant imperfections are an exponential bow (finite output resistance),
    current noise, and slope error from RC-process spread.

:class:`DeltaSigmaSineGenerator`
    A 1-bit delta-sigma bit stream filtered by a simple RC network, the
    Roberts-style oscillator for on-chip sine generation; its imperfections
    appear as shaped quantisation noise on the sine.

Both expose the same ``voltage(times)`` interface as the ideal stimuli in
:mod:`repro.signals.ramp` and :mod:`repro.signals.sine`, so the BIST engine
can be driven by either without modification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

__all__ = ["ChargePumpRampGenerator", "DeltaSigmaSineGenerator"]

RngLike = Union[int, np.random.Generator, None]


@dataclass
class ChargePumpRampGenerator:
    """An on-chip current-source/capacitor ramp generator.

    The output follows ``v(t) = I*R_out*(1 - exp(-t/(R_out*C)))``: for
    ``R_out -> inf`` this is the ideal ramp ``(I/C) * t``; a finite output
    resistance bends it into an exponential whose early part is still nearly
    linear.  The generator is characterised by its nominal slope and by the
    *linearity factor* ``span_fraction = V_span / (I*R_out)`` — the fraction
    of the asymptote actually used, which controls the bow.

    Parameters
    ----------
    nominal_slope:
        Intended initial slope ``I/C`` in volts per second.
    span:
        Voltage span the ramp must cover (the converter's full scale plus
        margin).
    span_fraction:
        ``span / (I * R_out)``; smaller is more linear.  Zero gives an ideal
        ramp.
    slope_error:
        Relative error of the realised slope (RC process spread); the
        mechanism the paper suspects behind its simulation/measurement
        mismatch ("the slope of the applied ramp in the measurements was
        probably slightly too steep").
    noise_sigma:
        RMS output-referred noise in volts.
    start_voltage:
        Output voltage at ``t = 0``.
    rng:
        Seed or generator for the noise.
    """

    nominal_slope: float
    span: float
    span_fraction: float = 0.0
    slope_error: float = 0.0
    noise_sigma: float = 0.0
    start_voltage: float = 0.0
    rng: RngLike = None

    def __post_init__(self) -> None:
        if self.nominal_slope <= 0:
            raise ValueError("nominal_slope must be positive")
        if self.span <= 0:
            raise ValueError("span must be positive")
        if not 0.0 <= self.span_fraction < 1.0:
            raise ValueError("span_fraction must be in [0, 1)")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self._rng = (self.rng if isinstance(self.rng, np.random.Generator)
                     else np.random.default_rng(self.rng))

    @property
    def actual_slope(self) -> float:
        """Initial slope including the process-spread error."""
        return self.nominal_slope * (1.0 + self.slope_error)

    def voltage(self, times: np.ndarray) -> np.ndarray:
        """Return the generator output voltage at the given times."""
        times = np.asarray(times, dtype=float)
        slope = self.actual_slope
        if self.span_fraction == 0.0:
            v = self.start_voltage + slope * times
        else:
            # Asymptote chosen so the used span is span_fraction of it.
            asymptote = self.span / self.span_fraction
            tau = asymptote / slope
            v = self.start_voltage + asymptote * (1.0 - np.exp(-times / tau))
        if self.noise_sigma > 0.0:
            v = v + self._rng.normal(0.0, self.noise_sigma, size=v.shape)
        return v

    def __call__(self, times: np.ndarray) -> np.ndarray:
        return self.voltage(times)

    def worst_case_nonlinearity(self, duration: float) -> float:
        """Largest deviation from the best straight line over ``duration``.

        Returned in volts.  Useful for budgeting how much of the DNL error
        observed in a BIST run is attributable to the stimulus rather than
        the converter.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        times = np.linspace(0.0, duration, 512)
        noiseless = ChargePumpRampGenerator(
            nominal_slope=self.nominal_slope, span=self.span,
            span_fraction=self.span_fraction, slope_error=self.slope_error,
            start_voltage=self.start_voltage)
        v = noiseless.voltage(times)
        coeffs = np.polyfit(times, v, 1)
        return float(np.max(np.abs(v - np.polyval(coeffs, times))))


@dataclass
class DeltaSigmaSineGenerator:
    """A behavioural delta-sigma bit-stream sine generator with RC filtering.

    A first-order delta-sigma modulator encodes the target sine into a 1-bit
    stream at ``oversample_ratio`` times the output rate; a single-pole RC
    filter reconstructs the analog sine.  The residual shaped quantisation
    noise is what distinguishes this from the ideal
    :class:`~repro.signals.sine.SineStimulus`.

    Parameters
    ----------
    frequency:
        Sine frequency in Hz.
    amplitude:
        Peak amplitude in volts.
    offset:
        DC offset in volts.
    oversample_ratio:
        Modulator rate divided by the highest frequency of interest; larger
        ratios push the shaped noise further out of band.
    filter_cutoff:
        RC reconstruction-filter cutoff in Hz; defaults to eight times the
        sine frequency.
    rng:
        Unused (the modulator is deterministic) but accepted for interface
        symmetry with the other generators.
    """

    frequency: float
    amplitude: float = 0.5
    offset: float = 0.5
    oversample_ratio: int = 64
    filter_cutoff: Optional[float] = None
    rng: RngLike = None

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")
        if self.amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if self.oversample_ratio < 4:
            raise ValueError("oversample_ratio must be at least 4")
        if self.filter_cutoff is None:
            self.filter_cutoff = 8.0 * self.frequency

    def voltage(self, times: np.ndarray) -> np.ndarray:
        """Return the filtered delta-sigma output at the given times.

        The modulator runs on an internal uniform grid covering the requested
        time span; the filtered waveform is then interpolated at the
        requested instants so that irregular (jittered) sampling also works.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return np.zeros(0)
        t_start = float(times.min())
        t_end = float(times.max())
        # Internal modulator clock.
        mod_rate = self.oversample_ratio * max(self.frequency,
                                               self.filter_cutoff)
        n_mod = max(16, int(np.ceil((t_end - t_start) * mod_rate)) + 2)
        grid = t_start + np.arange(n_mod) / mod_rate

        target = self.offset + self.amplitude * np.sin(
            2.0 * np.pi * self.frequency * grid)
        # Normalise to [-1, 1] for the 1-bit modulator.
        lo = self.offset - self.amplitude
        hi = self.offset + self.amplitude
        span = max(hi - lo, 1e-12)
        x = (target - lo) / span * 2.0 - 1.0

        bits = np.empty(n_mod)
        integrator = 0.0
        for i in range(n_mod):
            integrator += x[i] - (1.0 if integrator >= 0.0 else -1.0)
            bits[i] = 1.0 if integrator >= 0.0 else -1.0

        stream = (bits + 1.0) / 2.0 * span + lo
        # Single-pole RC filter, implemented as a first-order IIR.
        alpha = 1.0 - np.exp(-2.0 * np.pi * self.filter_cutoff / mod_rate)
        filtered = np.empty(n_mod)
        state = stream[0]
        for i in range(n_mod):
            state += alpha * (stream[i] - state)
            filtered[i] = state

        return np.interp(times, grid, filtered)

    def __call__(self, times: np.ndarray) -> np.ndarray:
        return self.voltage(times)
