"""Noise sources used by the stimulus and converter models.

Three of the noise mechanisms the paper names — input-referred *transition
noise* (which makes the LSB toggle), stimulus (ramp) noise, and sampling
*jitter* — are modelled here in one place so that simulations can be
configured with a single :class:`NoiseModel` object and a single random
generator, keeping every Monte-Carlo experiment reproducible from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

__all__ = ["NoiseModel", "quantization_noise_power", "snr_ideal_db"]

RngLike = Union[int, np.random.Generator, None]


def quantization_noise_power(lsb: float) -> float:
    """Quantisation noise power of an ideal converter, ``LSB**2 / 12``."""
    return lsb * lsb / 12.0


def snr_ideal_db(n_bits: int) -> float:
    """Ideal full-scale sine SNR of an ``n_bits`` converter (6.02 n + 1.76 dB)."""
    return 6.02 * n_bits + 1.76


@dataclass
class NoiseModel:
    """Bundle of the noise parameters of a converter test setup.

    Parameters
    ----------
    transition_noise_lsb:
        RMS input-referred noise of the converter in LSB; this is what makes
        the LSB toggle around a transition and what the deglitch filter must
        suppress.
    stimulus_noise_lsb:
        RMS noise of the applied stimulus (ramp or sine) in LSB.
    jitter_rms:
        RMS aperture jitter of the sample clock in seconds.
    seed:
        Master seed; independent child generators are derived for each noise
        mechanism so that enabling one mechanism does not change the draw of
        another.
    """

    transition_noise_lsb: float = 0.0
    stimulus_noise_lsb: float = 0.0
    jitter_rms: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.transition_noise_lsb < 0:
            raise ValueError("transition_noise_lsb must be non-negative")
        if self.stimulus_noise_lsb < 0:
            raise ValueError("stimulus_noise_lsb must be non-negative")
        if self.jitter_rms < 0:
            raise ValueError("jitter_rms must be non-negative")
        seed_seq = np.random.SeedSequence(self.seed)
        children = seed_seq.spawn(3)
        self._transition_rng = np.random.default_rng(children[0])
        self._stimulus_rng = np.random.default_rng(children[1])
        self._jitter_rng = np.random.default_rng(children[2])

    @property
    def is_noiseless(self) -> bool:
        """True when every noise mechanism is disabled."""
        return (self.transition_noise_lsb == 0.0
                and self.stimulus_noise_lsb == 0.0
                and self.jitter_rms == 0.0)

    # ------------------------------------------------------------------ #
    # Generators for each mechanism
    # ------------------------------------------------------------------ #

    @property
    def transition_rng(self) -> np.random.Generator:
        """Generator dedicated to converter transition noise."""
        return self._transition_rng

    @property
    def stimulus_rng(self) -> np.random.Generator:
        """Generator dedicated to stimulus noise."""
        return self._stimulus_rng

    @property
    def jitter_rng(self) -> np.random.Generator:
        """Generator dedicated to clock jitter."""
        return self._jitter_rng

    # ------------------------------------------------------------------ #
    # Convenience factories
    # ------------------------------------------------------------------ #

    def stimulus_noise_volts(self, adc) -> float:
        """Stimulus noise sigma converted to volts for a given converter."""
        return self.stimulus_noise_lsb * adc.lsb

    def clock_for(self, adc, frequency_error: float = 0.0):
        """Return a :class:`~repro.signals.sampling.SamplingClock` for ``adc``."""
        from repro.signals.sampling import SamplingClock

        return SamplingClock(sample_rate=adc.sample_rate,
                             jitter_rms=self.jitter_rms,
                             frequency_error=frequency_error,
                             rng=self._jitter_rng)
