"""Ramp and sawtooth stimuli.

The BIST test described in the paper applies a slow linear ramp (or a
sawtooth when the test must repeat) to the converter while its LSB is
monitored.  The single most important stimulus parameter is the voltage step
between two successive samples,

    ``delta_s = slope / f_sample``            (Equation (5))

because the number of samples falling inside a code of width ``dV`` is about
``dV / delta_s``, and every error probability in the paper is a function of
``delta_s``.  :class:`RampStimulus` therefore exposes constructors both in
terms of the physical slope and directly in terms of ``delta_s`` (in LSB) or
the targeted number of samples per code.

Imperfections that the paper explicitly excludes from its analysis (ramp
non-linearity and ramp noise) are available as options so that their effect
can be studied separately (see ``benchmarks/test_bench_deglitch_ablation.py``
and the robustness tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

__all__ = ["RampStimulus", "SawtoothStimulus"]

RngLike = Union[int, np.random.Generator, None]


@dataclass
class RampStimulus:
    """A single linear ramp ``v(t) = start_voltage + slope * t``.

    Parameters
    ----------
    slope:
        Ramp slope in volts per second (``U`` in the paper's Equation (5)).
    start_voltage:
        Voltage at ``t = 0``.
    nonlinearity:
        Peak relative bow of the ramp over ``duration`` (0 = perfectly
        linear).  Modelled as a parabolic deviation, the dominant shape of a
        current-starved on-chip ramp generator.
    noise_sigma:
        RMS additive voltage noise on the ramp, in volts.
    duration:
        Reference duration used to scale the non-linearity bow; only needed
        when ``nonlinearity`` is non-zero.
    rng:
        Seed or generator for the ramp noise.
    """

    slope: float
    start_voltage: float = 0.0
    nonlinearity: float = 0.0
    noise_sigma: float = 0.0
    duration: Optional[float] = None
    rng: RngLike = None

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ValueError("slope must be positive")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if self.nonlinearity != 0.0 and not self.duration:
            raise ValueError("duration is required when nonlinearity is set")
        self._rng = (self.rng if isinstance(self.rng, np.random.Generator)
                     else np.random.default_rng(self.rng))

    # ------------------------------------------------------------------ #
    # Constructors tied to the converter under test
    # ------------------------------------------------------------------ #

    @classmethod
    def for_adc(cls, adc, samples_per_code: float,
                start_margin_lsb: float = 2.0, **kwargs) -> "RampStimulus":
        """Build a ramp that yields ``samples_per_code`` samples per ideal LSB.

        The slope follows from Equation (5): ``delta_s = U / f_sample`` must
        equal ``LSB / samples_per_code``.  The ramp starts
        ``start_margin_lsb`` LSB below the converter's range so that the
        first transition is always crossed.
        """
        if samples_per_code <= 0:
            raise ValueError("samples_per_code must be positive")
        delta_s = adc.lsb / samples_per_code
        slope = delta_s * adc.sample_rate
        start = -start_margin_lsb * adc.lsb
        return cls(slope=slope, start_voltage=start, **kwargs)

    @classmethod
    def from_delta_s(cls, delta_s: float, sample_rate: float,
                     start_voltage: float = 0.0, **kwargs) -> "RampStimulus":
        """Build a ramp directly from the per-sample step ``delta_s`` (volts)."""
        if delta_s <= 0:
            raise ValueError("delta_s must be positive")
        return cls(slope=delta_s * sample_rate, start_voltage=start_voltage,
                   **kwargs)

    # ------------------------------------------------------------------ #
    # Stimulus interface
    # ------------------------------------------------------------------ #

    def voltage(self, times: np.ndarray) -> np.ndarray:
        """Return the ramp voltage at the given times (seconds)."""
        times = np.asarray(times, dtype=float)
        v = self.start_voltage + self.slope * times
        if self.nonlinearity != 0.0:
            # Parabolic bow peaking mid-ramp: v += amp * 4*x*(1-x) with
            # x = t / duration and amp the peak deviation in volts.
            x = np.clip(times / self.duration, 0.0, 1.0)
            amplitude = self.nonlinearity * self.slope * self.duration
            v = v + amplitude * 4.0 * x * (1.0 - x)
        if self.noise_sigma > 0.0:
            v = v + self._rng.normal(0.0, self.noise_sigma, size=v.shape)
        return v

    def __call__(self, times: np.ndarray) -> np.ndarray:
        return self.voltage(times)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def delta_s(self, sample_rate: float) -> float:
        """Voltage step between two samples at the given sample rate (EQ 5)."""
        return self.slope / sample_rate

    def delta_s_lsb(self, adc) -> float:
        """Per-sample step expressed in the converter's LSB."""
        return self.delta_s(adc.sample_rate) / adc.lsb

    def samples_per_code(self, adc) -> float:
        """Average number of samples per ideal code width."""
        return adc.lsb / self.delta_s(adc.sample_rate)

    def duration_for_range(self, v_low: float, v_high: float) -> float:
        """Time needed for the ramp to sweep from ``v_low`` to ``v_high``."""
        if v_high <= v_low:
            raise ValueError("v_high must exceed v_low")
        start = max(self.start_voltage, v_low)
        return (v_high - start) / self.slope

    def duration_for_adc(self, adc, margin_lsb: float = 2.0) -> float:
        """Time for the ramp to cross the converter's range plus a margin."""
        return ((adc.full_scale + margin_lsb * adc.lsb - self.start_voltage)
                / self.slope)

    def n_samples_for_adc(self, adc, margin_lsb: float = 2.0) -> int:
        """Number of samples needed to cover the converter's full range."""
        duration = self.duration_for_adc(adc, margin_lsb=margin_lsb)
        return int(math.ceil(duration * adc.sample_rate))


@dataclass
class SawtoothStimulus:
    """A periodic sawtooth sweeping ``[low, high)`` at ``frequency`` Hz.

    Used for the partial-BIST analysis of Equation (1), where the stimulus
    frequency determines how many LSBs must stay under external observation.
    """

    frequency: float
    low: float = 0.0
    high: float = 1.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")
        if self.high <= self.low:
            raise ValueError("high must exceed low")

    def voltage(self, times: np.ndarray) -> np.ndarray:
        """Return the sawtooth voltage at the given times."""
        times = np.asarray(times, dtype=float)
        cycles = times * self.frequency + self.phase
        fractional = cycles - np.floor(cycles)
        return self.low + (self.high - self.low) * fractional

    def __call__(self, times: np.ndarray) -> np.ndarray:
        return self.voltage(times)

    def slope(self) -> float:
        """Slope of the rising segment in volts per second."""
        return (self.high - self.low) * self.frequency

    def delta_s(self, sample_rate: float) -> float:
        """Voltage step between two samples on the rising segment."""
        return self.slope() / sample_rate
