"""Command-line interface for the BIST reproduction.

The CLI exposes the most common flows as one-line commands so the library can
be exercised without writing Python:

``python -m repro.cli bist``
    Run the full BIST on a simulated flash converter and print the verdict.
``python -m repro.cli table1`` / ``table2``
    Regenerate the paper's Table 1 (SIM columns) and Table 2.
``python -m repro.cli figure7``
    Regenerate the Figure 7 series as a text listing and ASCII plot.
``python -m repro.cli qmin``
    Evaluate Equation (1) for a stimulus/sample frequency pair.
``python -m repro.cli yield``
    Print the section-4 yield figures for a given code-width sigma.

Every command accepts ``--help`` for its options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.adc import FlashADC
from repro.analysis import CodeWidthDistribution, ErrorModel, HistogramTest
from repro.core import BistConfig, BistEngine, qmin
from repro.reporting import ascii_plot, format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BIST methodology for A/D converters (DATE 1997) — "
                    "reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    bist = sub.add_parser("bist", help="run the full BIST on one simulated "
                                       "flash converter")
    bist.add_argument("--bits", type=int, default=6,
                      help="converter resolution (default 6)")
    bist.add_argument("--sigma", type=float, default=0.21,
                      help="code-width sigma in LSB (default 0.21)")
    bist.add_argument("--counter-bits", type=int, default=7,
                      help="LSB-processing counter size (default 7)")
    bist.add_argument("--dnl-spec", type=float, default=1.0,
                      help="DNL specification in LSB (default 1.0)")
    bist.add_argument("--inl-spec", type=float, default=None,
                      help="INL specification in LSB (default: not checked)")
    bist.add_argument("--seed", type=int, default=0,
                      help="device mismatch seed (default 0)")
    bist.add_argument("--compare-histogram", action="store_true",
                      help="also run the conventional histogram test")

    table1 = sub.add_parser("table1", help="regenerate Table 1 (SIM columns)")
    table1.add_argument("--sigma", type=float, default=0.21)
    table1.add_argument("--codes", type=int, default=62)

    table2 = sub.add_parser("table2", help="regenerate Table 2")
    table2.add_argument("--sigma", type=float, default=0.21)
    table2.add_argument("--codes", type=int, default=62)

    figure7 = sub.add_parser("figure7", help="regenerate the Figure 7 series")
    figure7.add_argument("--sigma", type=float, default=0.21)
    figure7.add_argument("--dnl-spec", type=float, default=0.5)
    figure7.add_argument("--ds-min", type=float, default=0.070)
    figure7.add_argument("--ds-max", type=float, default=0.115)
    figure7.add_argument("--points", type=int, default=46)

    qmin_cmd = sub.add_parser("qmin", help="evaluate Equation (1)")
    qmin_cmd.add_argument("--f-stimulus", type=float, required=True,
                          help="test-signal frequency in Hz")
    qmin_cmd.add_argument("--f-sample", type=float, required=True,
                          help="converter sample rate in Hz")
    qmin_cmd.add_argument("--bits", type=int, default=6)
    qmin_cmd.add_argument("--dnl-spec", type=float, default=1.0)
    qmin_cmd.add_argument("--inl-spec", type=float, default=1.0)

    yield_cmd = sub.add_parser("yield", help="section-4 yield figures")
    yield_cmd.add_argument("--sigma", type=float, default=0.21)
    yield_cmd.add_argument("--codes", type=int, default=62)

    return parser


def _cmd_bist(args: argparse.Namespace) -> int:
    adc = FlashADC.from_sigma(args.bits, args.sigma, seed=args.seed)
    config = BistConfig(n_bits=args.bits, counter_bits=args.counter_bits,
                        dnl_spec_lsb=args.dnl_spec,
                        inl_spec_lsb=args.inl_spec)
    engine = BistEngine(config)
    result = engine.run(adc)
    print(f"device: {args.bits}-bit flash, sigma {args.sigma} LSB, "
          f"seed {args.seed}")
    print(f"true max |DNL| = {adc.max_dnl():.3f} LSB, "
          f"max |INL| = {adc.max_inl():.3f} LSB")
    print(f"BIST: {engine.limits.describe()}")
    print(f"verdict: {'PASS' if result.passed else 'FAIL'} "
          f"({result.lsb.n_codes_measured} codes, "
          f"{result.samples_taken} samples)")
    if args.compare_histogram:
        histogram = HistogramTest.paper_production(
            n_bits=args.bits, dnl_spec_lsb=args.dnl_spec,
            inl_spec_lsb=args.inl_spec)
        reference = histogram.run(adc, rng=args.seed)
        print(f"conventional histogram test: "
              f"{'PASS' if reference.passed else 'FAIL'} "
              f"(max |DNL| {reference.max_dnl:.3f} LSB, "
              f"{reference.bits_transferred} bits captured)")
    return 0 if result.passed else 1


def _error_table(sigma: float, codes: int, dnl_spec: float,
                 scale: float, scale_label: str) -> str:
    rows = []
    for bits in (4, 5, 6, 7):
        model = ErrorModel(distribution=CodeWidthDistribution(sigma),
                           dnl_spec_lsb=dnl_spec, counter_bits=bits)
        device = model.device(codes)
        rows.append([bits, device.type_i * scale, device.type_ii * scale,
                     model.max_error_lsb()])
    return format_table(
        ["counter bits", f"type I {scale_label}", f"type II {scale_label}",
         "max error [LSB]"], rows,
        title=f"DNL spec ±{dnl_spec} LSB, sigma {sigma} LSB, {codes} codes")


def _cmd_table1(args: argparse.Namespace) -> int:
    print(_error_table(args.sigma, args.codes, dnl_spec=0.5, scale=1.0,
                       scale_label="probability"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    print(_error_table(args.sigma, args.codes, dnl_spec=1.0, scale=1e5,
                       scale_label="x1e-5"))
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    ds_values = np.linspace(args.ds_min, args.ds_max, args.points)
    sweep = ErrorModel.sweep_delta_s(
        ds_values, n_codes=62, dnl_spec_lsb=args.dnl_spec,
        distribution=CodeWidthDistribution(args.sigma))
    print(format_table(
        ["ds [LSB]", "P(type I)", "P(type II)"],
        zip(sweep["delta_s_lsb"], sweep["type_i"], sweep["type_ii"]),
        title="Figure 7 series"))
    print()
    print(ascii_plot(sweep["delta_s_lsb"], sweep["type_i"],
                     title="P(type I) vs ds"))
    return 0


def _cmd_qmin(args: argparse.Namespace) -> int:
    q = qmin(args.f_stimulus, args.f_sample, args.bits,
             dnl_spec_lsb=args.dnl_spec, inl_spec_lsb=args.inl_spec)
    print(f"q_min = {q} (of {args.bits} bits); "
          f"{'full BIST possible' if q == 1 else f'{q} LSBs must stay observable'}")
    return 0


def _cmd_yield(args: argparse.Namespace) -> int:
    dist = CodeWidthDistribution(args.sigma)
    rows = [
        ["P(device good) at ±0.5 LSB", dist.prob_device_good(0.5, args.codes)],
        ["P(device good) at ±1.0 LSB", dist.prob_device_good(1.0, args.codes)],
        ["P(device faulty) at ±1.0 LSB",
         dist.prob_device_faulty(1.0, args.codes)],
        ["ladder width correlation", dist.ladder_correlation(args.codes + 2)],
    ]
    print(format_table(["quantity", "value"], rows,
                       title=f"sigma {args.sigma} LSB, {args.codes} codes"))
    return 0


_HANDLERS = {
    "bist": _cmd_bist,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figure7": _cmd_figure7,
    "qmin": _cmd_qmin,
    "yield": _cmd_yield,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
