"""Command-line interface for the BIST reproduction.

The CLI exposes the most common flows as one-line commands so the library can
be exercised without writing Python:

``python -m repro.cli bist``
    Run the full BIST on a simulated flash converter and print the verdict.
``python -m repro.cli table1`` / ``table2``
    Regenerate the paper's Table 1 (SIM columns) and Table 2.
``python -m repro.cli figure7``
    Regenerate the Figure 7 series as a text listing and ASCII plot.
``python -m repro.cli qmin``
    Evaluate Equation (1) for a stimulus/sample frequency pair.
``python -m repro.cli yield``
    Print the section-4 yield figures for a given code-width sigma.
``python -m repro.cli lot``
    Screen a whole production lot with a batched screening method and
    print the floor report (yield, bins, throughput, cost).  ``--arch``
    selects the converter architecture (flash, SAR, pipeline), ``--q``
    switches the line to the batched partial BIST, ``--per-ic`` groups
    dies into multi-converter chips, and ``--method`` swaps the BIST
    station for the conventional histogram or dynamic FFT suite.
    ``--workers``/``--chunk-size`` shard the device axis over worker
    processes through the deterministic scale-out layer — the report is
    byte-identical for any worker count.
``python -m repro.cli partial``
    Monte-Carlo partial-BIST run over a whole population: accept rates,
    measured type I/II errors, reconstruction quality and tester data
    volume for a chosen (architecture, q) scenario.
``python -m repro.cli compare``
    The paper's BIST-vs-conventional trade-off at production scale: screen
    one shared wafer draw with the BIST line and the conventional
    histogram line (optionally the dynamic suite too) and print the
    yield/escape/tester-cost comparison.
``python -m repro.cli campaign``
    Run a whole *scenario grid* in one call: comma-separated axis values
    (``--arch flash,sar --method bist,histogram --q 4,8``) expand to the
    cartesian product of declarative Scenarios, every scenario screens
    under its own deterministic child seed, and the shard-merged ledger
    prints as one per-scenario table (``--json``/``--csv`` export the
    records).  The lot/partial/compare commands are thin wrappers over
    the same Scenario API.
``python -m repro.cli serve``
    The streaming "virtual fab": read a continuous JSONL stream of
    Scenario-tagged wafer requests (stdin, or many concurrent TCP
    clients with ``--socket``), screen every request on the shared
    persistent worker pool, and emit rolling JSONL result events plus a
    final merged ledger.  ``--checkpoint``/``--resume`` journal
    completed shards so a killed server reconverges byte-identically.

Every command accepts ``--help`` for its options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.adc import ARCHITECTURES, FlashADC
from repro.analysis import CodeWidthDistribution, ErrorModel, HistogramTest
from repro.campaign import AUTO_Q, FLOWS, Campaign, Scenario, make_engine
from repro.flows.excursions import EXCURSIONS
from repro.core import (
    BistConfig,
    BistEngine,
    PopulationBistResult,
    qmin,
)
from repro.core.backend import (
    BackendUnavailableError,
    backend_names,
    backend_scope,
    resolve_backend_name,
)
from repro.production import (
    SCREENING_METHODS,
    BatchBistEngine,
    ExecutionPlan,
    ResultStore,
    ScreeningLine,
    Wafer,
    WaferSpec,
    close_default_pool,
)
from repro.reporting import ascii_plot, format_table
from repro.telemetry import (
    Telemetry,
    TimerHandle,
    configure_logging,
    current_telemetry,
    telemetry_session,
    write_metrics,
)

__all__ = ["main", "build_parser"]

#: Shard cadence of the `-v`/`--progress` rolling progress line.
DEFAULT_PROGRESS_EVERY = 10


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the scale-out options shared by the batch commands."""
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes the batched engines shard the device axis "
             "over (default: in-process serial execution; any worker "
             "count produces bit-identical results)")
    parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="devices materialised per chunk inside each shard (memory "
             "knob; never changes results; default: derived from the "
             "kernel backend's per-row bytes)")
    parser.add_argument(
        "--backend", choices=backend_names(), default=None,
        help="kernel backend the batched engines run on: numpy (default), "
             "numpy-compact (narrow dtypes, integer outputs "
             "bit-identical) or numba (JIT event paths, needs the "
             "optional numba package); default: the REPRO_KERNEL_BACKEND "
             "environment variable, else numpy")
    parser.add_argument(
        "--pool-reuse", action=argparse.BooleanOptionalAction,
        default=True,
        help="serve every multi-worker dispatch from one persistent "
             "worker pool (spawned once, fed zero-copy shard "
             "descriptors); --no-pool-reuse forks a fresh pool per "
             "dispatch instead — purely a scheduling switch, results "
             "are bit-identical either way")
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="INFO logging on the 'repro' logger hierarchy, shard "
             "progress lines and a telemetry epilogue (elapsed time, "
             "work counters)")
    parser.add_argument(
        "--progress", action="store_true",
        help="periodic shard-progress log lines (every "
             f"{DEFAULT_PROGRESS_EVERY} shards) without the rest of -v")
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write a schema-versioned metrics JSON (work counters, "
             "timers, trace spans) to PATH; counters are byte-identical "
             "for any --workers value, wall-clock data is isolated under "
             "the 'timing' block")


def _axis(choices, label: str):
    """An argparse ``type=`` parser for a comma-separated choices axis.

    Validation errors surface as clean usage messages (like the
    ``choices=`` of the single-value commands), not tracebacks.
    """
    def parse(text: str) -> List[str]:
        values = [item.strip() for item in text.split(",") if item.strip()]
        if not values:
            raise argparse.ArgumentTypeError(f"empty {label} axis")
        bad = [value for value in values if value not in choices]
        if bad:
            raise argparse.ArgumentTypeError(
                f"invalid {label} value(s): {', '.join(map(repr, bad))} "
                f"(choose from {', '.join(choices)})")
        return values

    return parse


def _q_axis(text: str) -> List[Optional[int]]:
    """The q axis: 'full' (or 'none') is the full BIST, else an integer."""
    values: List[Optional[int]] = []
    for item in (piece.strip() for piece in text.split(",")):
        if not item:
            continue
        if item.lower() in ("full", "none"):
            values.append(None)
        else:
            try:
                values.append(int(item))
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"invalid q value {item!r} (expected 'full' or an "
                    f"integer)")
    if not values:
        raise argparse.ArgumentTypeError("empty q axis")
    return values


def _excursion_axis(text: str) -> List[Optional[str]]:
    """The excursion axis: 'none' is the clean population, else a name."""
    values: List[Optional[str]] = []
    for item in (piece.strip() for piece in text.split(",")):
        if not item:
            continue
        lowered = item.lower()
        if lowered == "none":
            values.append(None)
        elif lowered in EXCURSIONS:
            values.append(lowered)
        else:
            raise argparse.ArgumentTypeError(
                f"invalid excursion {item!r} (choose from none, "
                f"{', '.join(EXCURSIONS)})")
    if not values:
        raise argparse.ArgumentTypeError("empty excursion axis")
    return values


def _plan_from_args(args: argparse.Namespace) -> Optional[ExecutionPlan]:
    """The execution plan requested on the command line, if any.

    With neither flag given the commands keep their historical in-process
    code path (identical results for the noise-free defaults); as soon as
    one flag appears, the sharded execution layer runs the engines — with
    ``--workers 1`` as the byte-identical serial reference of any
    ``--workers N``.
    """
    if args.workers is None and args.chunk_size is None:
        return None
    return ExecutionPlan(
        workers=args.workers if args.workers is not None else 1,
        chunk_size=args.chunk_size,
        reuse_pool=getattr(args, "pool_reuse", True))


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BIST methodology for A/D converters (DATE 1997) — "
                    "reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    bist = sub.add_parser("bist", help="run the full BIST on one simulated "
                                       "flash converter")
    bist.add_argument("--bits", type=int, default=6,
                      help="converter resolution (default 6)")
    bist.add_argument("--sigma", type=float, default=0.21,
                      help="code-width sigma in LSB (default 0.21)")
    bist.add_argument("--counter-bits", type=int, default=7,
                      help="LSB-processing counter size (default 7)")
    bist.add_argument("--dnl-spec", type=float, default=1.0,
                      help="DNL specification in LSB (default 1.0)")
    bist.add_argument("--inl-spec", type=float, default=None,
                      help="INL specification in LSB (default: not checked)")
    bist.add_argument("--seed", type=int, default=0,
                      help="device mismatch seed (default 0)")
    bist.add_argument("--compare-histogram", action="store_true",
                      help="also run the conventional histogram test")

    table1 = sub.add_parser("table1", help="regenerate Table 1 (SIM columns, "
                                           "optionally MEAS. via Monte-Carlo)")
    table1.add_argument("--sigma", type=float, default=0.21)
    table1.add_argument("--codes", type=int, default=62)
    table1.add_argument("--devices", type=int, default=0,
                        help="Monte-Carlo population size for the MEAS. "
                             "columns (0 disables them; requires "
                             "--codes = 2**n - 2)")
    table1.add_argument("--seed", type=int, default=1997,
                        help="population seed for the MEAS. columns "
                             "(default 1997)")

    table2 = sub.add_parser("table2", help="regenerate Table 2")
    table2.add_argument("--sigma", type=float, default=0.21)
    table2.add_argument("--codes", type=int, default=62)

    figure7 = sub.add_parser("figure7", help="regenerate the Figure 7 series")
    figure7.add_argument("--sigma", type=float, default=0.21)
    figure7.add_argument("--dnl-spec", type=float, default=0.5)
    figure7.add_argument("--ds-min", type=float, default=0.070)
    figure7.add_argument("--ds-max", type=float, default=0.115)
    figure7.add_argument("--points", type=int, default=46)

    qmin_cmd = sub.add_parser("qmin", help="evaluate Equation (1)")
    qmin_cmd.add_argument("--f-stimulus", type=float, required=True,
                          help="test-signal frequency in Hz")
    qmin_cmd.add_argument("--f-sample", type=float, required=True,
                          help="converter sample rate in Hz")
    qmin_cmd.add_argument("--bits", type=int, default=6)
    qmin_cmd.add_argument("--dnl-spec", type=float, default=1.0)
    qmin_cmd.add_argument("--inl-spec", type=float, default=1.0)

    yield_cmd = sub.add_parser("yield", help="section-4 yield figures")
    yield_cmd.add_argument("--sigma", type=float, default=0.21)
    yield_cmd.add_argument("--codes", type=int, default=62)

    lot = sub.add_parser("lot", help="screen a production lot with the "
                                     "batched BIST")
    lot.add_argument("--bits", type=int, default=6,
                     help="converter resolution (default 6)")
    lot.add_argument("--wafers", type=int, default=2,
                     help="wafers in the lot (default 2)")
    lot.add_argument("--devices", type=int, default=2000,
                     help="dies per wafer (default 2000)")
    lot.add_argument("--sigma", type=float, default=0.21,
                     help="code-width sigma in LSB (default 0.21)")
    lot.add_argument("--seed", type=int, default=2026,
                     help="lot seed (default 2026)")
    lot.add_argument("--counter-bits", type=int, default=7,
                     help="LSB-processing counter size (default 7)")
    lot.add_argument("--dnl-spec", type=float, default=1.0,
                     help="DNL specification in LSB (default 1.0)")
    lot.add_argument("--inl-spec", type=float, default=None,
                     help="INL specification in LSB (default: not checked)")
    lot.add_argument("--noise", type=float, default=0.0,
                     help="transition noise in LSB (default 0, enables the "
                          "stream path and makes retest meaningful)")
    lot.add_argument("--deglitch", type=int, default=0,
                     help="LSB deglitch filter depth (default 0 = off)")
    lot.add_argument("--retest", type=int, default=0,
                     help="retest attempts for rejected dies (default 0)")
    lot.add_argument("--tester", choices=("digital", "mixed"),
                     default=None,
                     help="tester model pricing the insertions (default: "
                          "digital for the full BIST, mixed for partial)")
    lot.add_argument("--arch", choices=ARCHITECTURES, default="flash",
                     help="converter architecture of the dies "
                          "(default flash)")
    lot.add_argument("--q", type=int, default=None,
                     help="screen with the partial BIST, capturing q LSBs "
                          "off-chip (default: full BIST)")
    lot.add_argument("--samples-per-code", type=float, default=16.0,
                     help="partial-BIST ramp density (default 16)")
    lot.add_argument("--per-ic", type=int, default=1,
                     help="converters per IC; >1 adds chip-level yield "
                          "(default 1)")
    lot.add_argument("--method", choices=SCREENING_METHODS, default="bist",
                     help="screening method of the first station: the "
                          "BIST, the conventional histogram test, or the "
                          "dynamic FFT suite (default bist)")
    _add_execution_arguments(lot)

    compare = sub.add_parser(
        "compare", help="screen one shared wafer draw with the BIST and "
                        "the conventional test and compare the outcomes")
    compare.add_argument("--bits", type=int, default=6,
                         help="converter resolution (default 6)")
    compare.add_argument("--devices", type=int, default=2000,
                         help="dies on the shared wafer (default 2000)")
    compare.add_argument("--sigma", type=float, default=0.21,
                         help="code-width sigma in LSB (default 0.21)")
    compare.add_argument("--arch", choices=ARCHITECTURES, default="flash",
                         help="converter architecture (default flash)")
    compare.add_argument("--seed", type=int, default=2026,
                         help="wafer/acquisition seed (default 2026)")
    compare.add_argument("--counter-bits", type=int, default=7,
                         help="BIST counter size (default 7)")
    compare.add_argument("--dnl-spec", type=float, default=0.5,
                         help="DNL specification in LSB (default 0.5, the "
                              "paper's stringent comparison point)")
    compare.add_argument("--inl-spec", type=float, default=None,
                         help="INL specification in LSB (default: not "
                              "checked)")
    compare.add_argument("--noise", type=float, default=0.0,
                         help="transition noise in LSB (default 0)")
    compare.add_argument("--samples-per-code", type=float, default=64.0,
                         help="histogram-test ramp density (default 64, "
                              "the paper's 4096-sample production test)")
    compare.add_argument("--q", type=int, default=None,
                         help="also compare the partial BIST with q LSBs "
                              "off-chip (default: full BIST only)")
    compare.add_argument("--dynamic", action="store_true",
                         help="include the dynamic FFT suite in the "
                              "comparison")
    _add_execution_arguments(compare)

    campaign = sub.add_parser(
        "campaign", help="run a declarative scenario grid through the "
                         "screening line and print one per-scenario table")
    campaign.add_argument("--arch", default=["flash"],
                          type=_axis(ARCHITECTURES, "architecture"),
                          help="comma-separated architectures, e.g. "
                               "flash,sar,pipeline (default flash)")
    campaign.add_argument("--method", default=["bist"],
                          type=_axis(SCREENING_METHODS, "method"),
                          help="comma-separated screening methods, e.g. "
                               "bist,histogram,dynamic (default bist)")
    campaign.add_argument("--q", default=[None], type=_q_axis,
                          help="comma-separated BIST capture widths: "
                               "'full' (the full BIST) or integers "
                               "1..bits; non-BIST methods ignore the q "
                               "axis (default full)")
    campaign.add_argument("--flow", default=["fixed"],
                          type=_axis(FLOWS, "flow"),
                          help="comma-separated test flows: 'fixed' "
                               "(full-length test) and/or 'sprt' (the "
                               "sequential Wald station with wafer-level "
                               "SPC abort; full-BIST scenarios only, "
                               "other methods collapse to fixed) "
                               "(default fixed)")
    campaign.add_argument("--excursion", default=[None],
                          type=_excursion_axis,
                          help="comma-separated process excursions to "
                               "inject into the drawn wafers: none, "
                               "drift, spatial, burst (default none)")
    campaign.add_argument("--bits", type=int, default=8,
                          help="converter resolution (default 8, leaving "
                               "headroom for q grids up to 8)")
    campaign.add_argument("--devices", type=int, default=1000,
                          help="dies per wafer (default 1000)")
    campaign.add_argument("--wafers", type=int, default=1,
                          help="wafers per scenario lot (default 1)")
    campaign.add_argument("--sigma", type=float, default=0.21,
                          help="code-width sigma in LSB (default 0.21)")
    campaign.add_argument("--noise", type=float, default=0.0,
                          help="transition noise in LSB (default 0)")
    campaign.add_argument("--counter-bits", type=int, default=7,
                          help="BIST counter size (default 7)")
    campaign.add_argument("--dnl-spec", type=float, default=1.0,
                          help="DNL specification in LSB (default 1.0)")
    campaign.add_argument("--inl-spec", type=float, default=None,
                          help="INL specification in LSB (default: not "
                               "checked)")
    campaign.add_argument("--samples-per-code", type=float, default=16.0,
                          help="partial-BIST/histogram ramp density "
                               "(default 16)")
    campaign.add_argument("--per-ic", type=int, default=1,
                          help="converters per IC (default 1)")
    campaign.add_argument("--retest", type=int, default=0,
                          help="retest attempts for rejected dies "
                               "(default 0)")
    campaign.add_argument("--tester", choices=("digital", "mixed"),
                          default=None,
                          help="tester model for every scenario (default: "
                               "per-method choice)")
    campaign.add_argument("--seed", type=int, default=2026,
                          help="campaign root seed; scenario i screens "
                               "under child seed i (default 2026)")
    campaign.add_argument("--json", action="store_true",
                          help="print the per-scenario records as JSON "
                               "instead of tables")
    campaign.add_argument("--csv", metavar="PATH", default=None,
                          help="also write the per-scenario records to "
                               "PATH as CSV")
    _add_execution_arguments(campaign)

    serve = sub.add_parser(
        "serve", help="long-running streaming front door: screen a "
                      "continuous JSONL stream of Scenario-tagged wafer "
                      "requests (stdin or TCP) on the shared worker pool, "
                      "emitting rolling JSONL results with "
                      "checkpoint/resume")
    serve.add_argument("--socket", metavar="HOST:PORT", default=None,
                       help="listen for line-oriented TCP clients instead "
                            "of reading stdin (port 0 picks an ephemeral "
                            "port, announced by the 'listening' event)")
    serve.add_argument("--seed", type=int, default=2026,
                       help="root seed: request i without its own seed "
                            "screens under child seed i, exactly like a "
                            "batch campaign (default 2026)")
    serve.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="journal accepted requests and completed "
                            "shards to PATH (append-only JSONL, flushed "
                            "per line) so a killed server can resume")
    serve.add_argument("--resume", metavar="PATH", default=None,
                       help="restore from a checkpoint journal: finished "
                            "work replays from the journal, only "
                            "unfinished shards dispatch, and the final "
                            "ledger is byte-identical to an "
                            "uninterrupted run")
    serve.add_argument("--ledger", metavar="PATH", default=None,
                       help="write the final merged ledger text to PATH "
                            "on shutdown")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="concurrent request screenings; further "
                            "requests queue (default 8)")
    serve.add_argument("--pool-retries", type=int, default=1,
                       help="per-request re-runs against a rebuilt pool "
                            "after a worker death (PoolBrokenError); "
                            "journaled shards replay on retry (default 1)")
    _add_execution_arguments(serve)

    partial = sub.add_parser(
        "partial", help="Monte-Carlo partial-BIST run over a population")
    partial.add_argument("--bits", type=int, default=6,
                         help="converter resolution (default 6)")
    partial.add_argument("--devices", type=int, default=1000,
                         help="population size (default 1000)")
    partial.add_argument("--q", type=int, default=None,
                         help="observed LSBs (default: Equation (1) "
                              "minimum for the stimulus)")
    partial.add_argument("--arch", choices=ARCHITECTURES, default="flash",
                         help="converter architecture (default flash)")
    partial.add_argument("--sigma", type=float, default=0.21,
                         help="flash code-width sigma in LSB (default 0.21)")
    partial.add_argument("--samples-per-code", type=float, default=16.0,
                         help="ramp density (default 16; smaller values "
                              "model a faster stimulus)")
    partial.add_argument("--dnl-spec", type=float, default=1.0,
                         help="DNL specification in LSB (default 1.0)")
    partial.add_argument("--inl-spec", type=float, default=None,
                         help="INL specification in LSB (default: not "
                              "checked)")
    partial.add_argument("--noise", type=float, default=0.0,
                         help="transition noise in LSB (default 0)")
    partial.add_argument("--seed", type=int, default=2026,
                         help="population/acquisition seed (default 2026)")
    _add_execution_arguments(partial)

    return parser


def _cmd_bist(args: argparse.Namespace) -> int:
    adc = FlashADC.from_sigma(args.bits, args.sigma, seed=args.seed)
    config = BistConfig(n_bits=args.bits, counter_bits=args.counter_bits,
                        dnl_spec_lsb=args.dnl_spec,
                        inl_spec_lsb=args.inl_spec)
    engine = BistEngine(config)
    result = engine.run(adc)
    print(f"device: {args.bits}-bit flash, sigma {args.sigma} LSB, "
          f"seed {args.seed}")
    print(f"true max |DNL| = {adc.max_dnl():.3f} LSB, "
          f"max |INL| = {adc.max_inl():.3f} LSB")
    print(f"BIST: {engine.limits.describe()}")
    print(f"verdict: {'PASS' if result.passed else 'FAIL'} "
          f"({result.lsb.n_codes_measured} codes, "
          f"{result.samples_taken} samples)")
    if args.compare_histogram:
        histogram = HistogramTest.paper_production(
            n_bits=args.bits, dnl_spec_lsb=args.dnl_spec,
            inl_spec_lsb=args.inl_spec)
        reference = histogram.run(adc, rng=args.seed)
        print(f"conventional histogram test: "
              f"{'PASS' if reference.passed else 'FAIL'} "
              f"(max |DNL| {reference.max_dnl:.3f} LSB, "
              f"{reference.bits_transferred} bits captured)")
    return 0 if result.passed else 1


def _error_table(sigma: float, codes: int, dnl_spec: float,
                 scale: float, scale_label: str,
                 devices: int = 0, seed: int = 1997) -> str:
    measure = None
    if devices > 0:
        # The MEAS. columns: an actual Monte-Carlo batch put through the
        # (batched) BIST, as the paper did with its 364 measured devices.
        # The device resolution follows the requested code count so that
        # SIM and MEAS columns describe the same geometry.
        n_bits = (codes + 2).bit_length() - 1
        if (1 << n_bits) - 2 != codes:
            raise ValueError(
                f"the MEAS. columns need a full converter: --codes must be "
                f"2**n - 2 (e.g. 62 for 6 bits), got {codes}")
        wafer = Wafer.draw(WaferSpec(n_bits=n_bits,
                                     sigma_code_width_lsb=sigma,
                                     n_devices=devices), rng=seed)

        def measure(bits: int):
            engine = BatchBistEngine(BistConfig(
                n_bits=n_bits, counter_bits=bits, dnl_spec_lsb=dnl_spec))
            return engine.run_population(wafer, rng=seed)

    rows = []
    for bits in (4, 5, 6, 7):
        model = ErrorModel(distribution=CodeWidthDistribution(sigma),
                           dnl_spec_lsb=dnl_spec, counter_bits=bits)
        device = model.device(codes)
        row = [bits, device.type_i * scale, device.type_ii * scale,
               model.max_error_lsb()]
        if measure is not None:
            measured = measure(bits)
            row += [measured.type_i * scale, measured.type_ii * scale]
        rows.append(row)

    headers = ["counter bits", f"type I {scale_label}",
               f"type II {scale_label}", "max error [LSB]"]
    title = f"DNL spec ±{dnl_spec} LSB, sigma {sigma} LSB, {codes} codes"
    if measure is not None:
        headers += [f"meas type I {scale_label}",
                    f"meas type II {scale_label}"]
        title += f" (MEAS.: {devices} devices, seed {seed})"
    return format_table(headers, rows, title=title)


def _cmd_table1(args: argparse.Namespace) -> int:
    print(_error_table(args.sigma, args.codes, dnl_spec=0.5, scale=1.0,
                       scale_label="probability",
                       devices=args.devices, seed=args.seed))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    print(_error_table(args.sigma, args.codes, dnl_spec=1.0, scale=1e5,
                       scale_label="x1e-5"))
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    ds_values = np.linspace(args.ds_min, args.ds_max, args.points)
    sweep = ErrorModel.sweep_delta_s(
        ds_values, n_codes=62, dnl_spec_lsb=args.dnl_spec,
        distribution=CodeWidthDistribution(args.sigma))
    print(format_table(
        ["ds [LSB]", "P(type I)", "P(type II)"],
        zip(sweep["delta_s_lsb"], sweep["type_i"], sweep["type_ii"]),
        title="Figure 7 series"))
    print()
    print(ascii_plot(sweep["delta_s_lsb"], sweep["type_i"],
                     title="P(type I) vs ds"))
    return 0


def _cmd_qmin(args: argparse.Namespace) -> int:
    q = qmin(args.f_stimulus, args.f_sample, args.bits,
             dnl_spec_lsb=args.dnl_spec, inl_spec_lsb=args.inl_spec)
    print(f"q_min = {q} (of {args.bits} bits); "
          f"{'full BIST possible' if q == 1 else f'{q} LSBs must stay observable'}")
    return 0


def _cmd_yield(args: argparse.Namespace) -> int:
    dist = CodeWidthDistribution(args.sigma)
    rows = [
        ["P(device good) at ±0.5 LSB", dist.prob_device_good(0.5, args.codes)],
        ["P(device good) at ±1.0 LSB", dist.prob_device_good(1.0, args.codes)],
        ["P(device faulty) at ±1.0 LSB",
         dist.prob_device_faulty(1.0, args.codes)],
        ["ladder width correlation", dist.ladder_correlation(args.codes + 2)],
    ]
    print(format_table(["quantity", "value"], rows,
                       title=f"sigma {args.sigma} LSB, {args.codes} codes"))
    return 0


def _cmd_lot(args: argparse.Namespace) -> int:
    # The old kwargs are a thin shim over the declarative Scenario; the
    # scenario drives line construction (via the engine factory), the lot
    # draw and the seeding, so `repro lot` is one Scenario end to end.
    scenario = Scenario(architecture=args.arch,
                        method=args.method,
                        q=args.q,
                        n_bits=args.bits,
                        sigma_code_width_lsb=args.sigma,
                        n_devices=args.devices,
                        n_wafers=args.wafers,
                        devices_per_ic=args.per_ic,
                        samples_per_code=args.samples_per_code,
                        counter_bits=args.counter_bits,
                        dnl_spec_lsb=args.dnl_spec,
                        inl_spec_lsb=args.inl_spec,
                        transition_noise_lsb=args.noise,
                        deglitch_depth=args.deglitch,
                        retest_attempts=args.retest,
                        tester=args.tester,
                        seed=args.seed,
                        label=f"LOT-{args.seed}")
    line = ScreeningLine.from_scenario(scenario)
    lot = scenario.draw_lot()
    store = ResultStore()
    report = line.screen_lot(lot, rng=scenario.seed, store=store,
                             plan=_plan_from_args(args))

    print(f"lot {lot.lot_id}: {args.wafers} wafers x {args.devices} "
          f"{args.arch} dies")
    print(f"station: {line.describe()}")
    print(f"simulation: {report.simulated_devices_per_second:,.0f} "
          f"devices/s (batched engine)")
    print()
    print(store.lot_table())
    print()
    print(store.station_table())
    print()
    print(store.bin_table())
    print()
    print(store.summary())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    # The method list is a scenario list derived from one base: every
    # comparison point differs from it in exactly the axis it names.  The
    # shared-wafer campaign screens the identical dies with every method,
    # so the yield/escape/cost differences are attributable to the test
    # method alone — the paper's comparison, at production scale.
    base = Scenario(architecture=args.arch,
                    n_bits=args.bits,
                    sigma_code_width_lsb=args.sigma,
                    n_devices=args.devices,
                    counter_bits=args.counter_bits,
                    dnl_spec_lsb=args.dnl_spec,
                    inl_spec_lsb=args.inl_spec,
                    transition_noise_lsb=args.noise,
                    seed=args.seed)
    scenarios = [base.derive(label="full BIST")]
    if args.q is not None:
        scenarios.append(base.derive(q=args.q,
                                     label=f"partial BIST q={args.q}"))
    scenarios.append(base.derive(method="histogram",
                                 samples_per_code=args.samples_per_code,
                                 label="conventional histogram"))
    if args.dynamic:
        scenarios.append(base.derive(method="dynamic", label="dynamic FFT"))

    campaign = Campaign(scenarios, seed=args.seed, shared_wafer=True,
                        shared_wafer_id=f"CMP-{args.seed}")
    result = campaign.run(plan=_plan_from_args(args))

    sample_rate = base.wafer_spec().sample_rate
    rows = []
    for label, line, report in zip(result.labels, campaign.lines(),
                                   result.reports):
        plan = line.test_plan(args.bits, report.samples_per_device,
                              sample_rate)
        rows.append([label, report.accept_fraction, report.p_good,
                     report.type_i, report.type_ii,
                     plan.data_volume_bits,
                     report.tester_seconds, report.cost_per_device])

    print(f"shared wafer: {args.devices} {args.arch} dies, "
          f"{args.bits} bits, seed {args.seed} "
          f"(true yield {rows[0][2]:.1%} at ±{args.dnl_spec} LSB)")
    print()
    print(format_table(
        ["method", "accept frac", "true yield", "type I (yield loss)",
         "type II (escapes)", "bits/device", "tester [s]", "cost/device"],
        rows, title="BIST vs conventional test on one shared wafer draw"))
    print()
    print(result.store.method_table())
    return 0


def _cmd_partial(args: argparse.Namespace) -> int:
    # A Scenario shim like `lot`, but engine-level: the Monte-Carlo run
    # needs no screening line, so q may stay "auto" (the Equation (1)
    # minimum, resolved from the stimulus at run time).
    scenario = Scenario(architecture=args.arch,
                        method="bist",
                        q=args.q if args.q is not None else AUTO_Q,
                        n_bits=args.bits,
                        sigma_code_width_lsb=args.sigma,
                        n_devices=args.devices,
                        samples_per_code=args.samples_per_code,
                        dnl_spec_lsb=args.dnl_spec,
                        inl_spec_lsb=args.inl_spec,
                        transition_noise_lsb=args.noise,
                        seed=args.seed)
    wafer = scenario.draw_wafer(wafer_id=f"MC-{args.seed}")
    engine = make_engine(scenario)

    # The telemetry timer replaces the old ad-hoc perf_counter pair; the
    # handle measures wall time even under the null telemetry, so the
    # devices/s row below works with or without an enabled session.
    with TimerHandle(current_telemetry(), "cli.partial.run_wafer") as tm:
        result = engine.run_wafer(wafer, rng=args.seed,
                                  plan=_plan_from_args(args))
    elapsed = tm.elapsed_s

    # Score against the truth with the shared Monte-Carlo result type, so
    # the command reports the same joint (Table 1) error-rate convention
    # as every other population run.
    outcome = PopulationBistResult(
        n_devices=result.n_devices,
        accepted=result.passed,
        truly_good=wafer.good_mask(args.dnl_spec, args.inl_spec))
    partition = result.partition
    conventional_bits = result.samples_taken * args.bits

    print(f"partial BIST Monte-Carlo: {args.devices} {args.arch} devices, "
          f"{args.bits} bits, q = {partition.q} "
          f"({partition.on_chip_bits} bits verified on-chip)")
    rows = [
        ["accept fraction", result.accept_fraction],
        ["true yield", outcome.p_good],
        ["type I (good rejected)", outcome.type_i],
        ["type II (faulty accepted)", outcome.type_ii],
        ["mean reconstruction error rate",
         float(result.reconstruction_error_rate.mean())],
        ["devices with exact reconstruction",
         float(np.mean(result.reconstruction_error_rate == 0.0))],
        ["bits captured per device", result.bits_captured_per_device],
        ["conventional-test bits per device", conventional_bits],
        ["tester data reduction",
         conventional_bits / max(result.bits_captured_per_device, 1)],
        ["simulation devices/s", args.devices / max(elapsed, 1e-12)],
    ]
    print(format_table(["quantity", "value"], rows,
                       title=f"DNL spec ±{args.dnl_spec} LSB, "
                             f"{result.samples_taken} samples/device"))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import json as _json

    base = Scenario(n_bits=args.bits,
                    sigma_code_width_lsb=args.sigma,
                    n_devices=args.devices,
                    n_wafers=args.wafers,
                    devices_per_ic=args.per_ic,
                    samples_per_code=args.samples_per_code,
                    counter_bits=args.counter_bits,
                    dnl_spec_lsb=args.dnl_spec,
                    inl_spec_lsb=args.inl_spec,
                    transition_noise_lsb=args.noise,
                    retest_attempts=args.retest,
                    tester=args.tester)
    # The backend rides on the scenarios themselves (a grid axis like any
    # other), so the ledger records which kernels screened each lot and a
    # numpy vs numpy-compact pair of runs byte-diffs over the same grid.
    scenarios = base.grid(architecture=args.arch,
                          method=args.method,
                          q=args.q,
                          flow=getattr(args, "flow", ["fixed"]),
                          excursion=getattr(args, "excursion", [None]),
                          backend=getattr(args, "backend", None))
    campaign = Campaign(scenarios, seed=args.seed)
    result = campaign.run(plan=_plan_from_args(args))

    if args.csv is not None:
        rows = result.write_csv(args.csv)
        print(f"wrote {rows} scenario records to {args.csv}")
    if args.json:
        print(_json.dumps(result.records(), indent=2))
        return 0
    # Everything printed below is deterministic (no wall-clock lines), so
    # the campaign report of `--workers N` diffs byte-for-byte against
    # the serial `--workers 1` reference.
    print(f"campaign: {len(scenarios)} scenarios x {args.wafers} wafers "
          f"x {args.devices} {args.bits}-bit dies, root seed {args.seed}")
    print()
    print(result.table())
    if args.verbose:
        # The operational pivot next to the campaign table — built from
        # the screening reports alone, so it is just as deterministic.
        print()
        print(result.metrics_table())
    print()
    print(result.store.summary())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeServer

    # Serve always screens through the plan path (workers=1 when no
    # execution flags are given) so the shard journal sees every unit of
    # work; the ledger is byte-identical for any worker count anyway.
    plan = _plan_from_args(args)
    if plan is None:
        plan = ExecutionPlan(workers=1)
    socket_addr = None
    if args.socket is not None:
        host, _, port_text = args.socket.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise SystemExit(f"invalid --socket {args.socket!r} "
                             f"(expected HOST:PORT)")
        socket_addr = (host or "127.0.0.1", port)
    server = ServeServer(plan=plan, seed=args.seed, socket=socket_addr,
                         checkpoint=args.checkpoint, resume=args.resume,
                         ledger_path=args.ledger,
                         max_inflight=args.max_inflight,
                         pool_retries=args.pool_retries)
    return asyncio.run(server.run())


_HANDLERS = {
    "bist": _cmd_bist,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figure7": _cmd_figure7,
    "qmin": _cmd_qmin,
    "yield": _cmd_yield,
    "lot": _cmd_lot,
    "partial": _cmd_partial,
    "compare": _cmd_compare,
}


def _metrics_context(args: argparse.Namespace) -> dict:
    """The deterministic context block of a CLI metrics document.

    Deliberately excludes the execution geometry (workers, chunk size):
    two runs of the same command must emit byte-identical documents
    outside the ``timing`` block no matter how they were scheduled.
    """
    context = {"command": args.command}
    for key in ("seed", "devices", "wafers", "bits"):
        value = getattr(args, key, None)
        if value is not None:
            context[key] = value
    # The kernel backend changes what ran (dtypes, event paths), so it is
    # part of the deterministic context, resolved the same way the
    # engines resolve it (flag, else REPRO_KERNEL_BACKEND, else numpy).
    context["kernel.backend"] = resolve_backend_name(
        getattr(args, "backend", None))
    return context


def _run_with_telemetry(handler, args: argparse.Namespace) -> int:
    """Run a batch command inside an enabled telemetry session.

    The session is always on for the batch commands (its no-op cost is
    pinned by the benchmark suite); what varies is the surface: ``-v``
    turns on INFO logging, progress lines and the epilogue, ``--progress``
    just the shard progress lines, ``--metrics`` the JSON document.
    Default output is byte-identical to the uninstrumented CLI.
    """
    progress = args.verbose or args.progress
    # --progress alone must still raise the logger to INFO: the shard
    # progress lines are emitted through the `repro` hierarchy.
    configure_logging(verbose=progress, stream=sys.stderr)
    telemetry = Telemetry(
        progress_every=DEFAULT_PROGRESS_EVERY if progress else 0)
    try:
        backend = resolve_backend_name(getattr(args, "backend", None))
    except BackendUnavailableError as exc:
        raise SystemExit(str(exc))
    try:
        with telemetry_session(telemetry):
            # Ambient backend for the whole command: engines resolve it
            # in prepare(), pin it on their shard contexts and re-enter
            # it inside run_shard, so worker processes see the same one.
            with backend_scope(backend):
                with telemetry.timer(f"cli.{args.command}") as timer:
                    code = handler(args)
    finally:
        # One command = one process: release the persistent pool (and any
        # shared-memory segments it kept warm) before printing epilogues.
        close_default_pool()
    if args.verbose:
        print()
        print(f"elapsed: {timer.elapsed_s:.3f} s ({args.command})")
        for name in sorted(telemetry.counters):
            print(f"  {name} = {telemetry.counters[name]}")
    if args.metrics is not None:
        write_metrics(args.metrics, telemetry,
                      context=_metrics_context(args))
        print(f"wrote metrics to {args.metrics}")
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    if hasattr(args, "metrics"):
        return _run_with_telemetry(handler, args)
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
