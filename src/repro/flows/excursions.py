"""Non-IID excursion generators: deterministic wafer-map transforms.

The paper's populations are IID: every die draws its parameters from one
stationary process distribution.  Real lines see *excursions* — a stepper
drifting lot to lot, a contaminated zone of a wafer, a burst of gross
defects from a handling event.  This module provides those populations as
pure, deterministically seeded transforms applied to a drawn transition
matrix **in the parent process, before sharding**, so every excursed
population inherits the execution layer's byte-identity across any
``(workers, chunk_size)`` geometry for free.

Each transform is a pure function of ``(spec, wafer_index, seed)``: the
perturbation RNG derives from a dedicated spawn-key namespace of the
scenario seed (never from the wafer-draw children), so an excursed wafer's
underlying process draw is bit-identical to the clean wafer's — the
excursion is strictly additive and attributable.

Transforms
----------
``"drift"``
    Lot-to-lot parameter drift: wafer ``i`` gains code-width jitter with
    sigma proportional to ``i``.  Wafer 0 is **unchanged** (byte-identical
    to the clean draw) — the drift baseline every detector calibrates on.
``"spatial"``
    A spatially correlated wafer map: a smooth low-frequency severity
    field over the die grid scales extra width jitter, so degradation
    clusters in contiguous wafer regions instead of landing IID.
``"burst"``
    Burst fault clusters: short runs of consecutive dies suffer a gross
    defect (a collapsed band of code widths — missing codes), the
    signature of a handling or probe event.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["EXCURSIONS", "apply_excursion", "excursion_rng"]

#: Registered excursion-generator names (the ``Scenario.excursion`` axis).
EXCURSIONS = ("drift", "spatial", "burst")

#: Spawn-key namespace tag separating excursion RNG streams from the
#: wafer-draw children spawned from the same scenario seed.
_EXCURSION_TAG = 0x0EC5

#: Per-wafer-index width-jitter sigma of the drift excursion, in LSB.
DRIFT_SIGMA_PER_WAFER_LSB = 0.12

#: Peak extra width-jitter sigma of the spatial excursion, in LSB.
SPATIAL_SIGMA_LSB = 0.5

#: Fraction of the code range a burst defect collapses.
BURST_CODE_FRACTION = 0.25


def excursion_rng(seed: Optional[int],
                  wafer_index: int) -> np.random.Generator:
    """The perturbation generator of wafer ``wafer_index`` under ``seed``.

    A pure function of ``(seed, wafer_index)`` in a namespace disjoint
    from the wafer-draw children, so excursions neither consume nor
    disturb the process draw's stream.
    """
    root = np.random.SeedSequence(seed)
    child = np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=root.spawn_key + (_EXCURSION_TAG, int(wafer_index)))
    return np.random.default_rng(child)


def _drift(transitions: np.ndarray, lsb: float, wafer_index: int,
           rng: np.random.Generator) -> np.ndarray:
    """Lot-to-lot drift: jitter sigma grows linearly with the wafer index."""
    if wafer_index == 0:
        return transitions
    sigma = DRIFT_SIGMA_PER_WAFER_LSB * wafer_index * lsb
    noise = rng.normal(0.0, sigma, size=transitions.shape)
    return transitions + np.cumsum(noise, axis=1)


def _smooth_field(n_devices: int, rng: np.random.Generator,
                  coarse: int = 4) -> np.ndarray:
    """A smooth severity field in ``[0, 1]`` over the flattened die grid.

    Dies sit on a row-major ``side x side`` grid (``side = ceil(sqrt(n))``);
    a coarse Gaussian field is bilinearly upsampled so neighbouring dies
    share nearly the same severity — the spatial correlation the IID
    model lacks.
    """
    side = int(np.ceil(np.sqrt(n_devices)))
    grid = rng.normal(size=(coarse, coarse))
    xs = (np.linspace(0.0, coarse - 1.0, side) if side > 1
          else np.zeros(1))
    i0 = np.floor(xs).astype(int)
    i1 = np.minimum(i0 + 1, coarse - 1)
    frac = xs - i0
    rows = grid[i0] * (1.0 - frac)[:, None] + grid[i1] * frac[:, None]
    field = (rows[:, i0] * (1.0 - frac)[None, :]
             + rows[:, i1] * frac[None, :])
    flat = field.ravel()[:n_devices]
    lo, hi = flat.min(), flat.max()
    if hi - lo <= 0.0:
        return np.zeros(n_devices)
    return (flat - lo) / (hi - lo)


def _spatial(transitions: np.ndarray, lsb: float,
             rng: np.random.Generator) -> np.ndarray:
    """Spatially correlated degradation: severity-scaled width jitter."""
    severity = _smooth_field(transitions.shape[0], rng)
    sigma = SPATIAL_SIGMA_LSB * lsb * severity
    noise = rng.normal(0.0, 1.0, size=transitions.shape)
    return transitions + np.cumsum(noise, axis=1) * sigma[:, None]


def _burst(transitions: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Burst fault clusters: contiguous dies lose a band of codes.

    Each cluster collapses a contiguous band of transitions onto the
    band's first level — zero-width (missing) codes the BIST counter
    cannot miss, mimicking a gross local defect.
    """
    n_devices, n_transitions = transitions.shape
    out = transitions.copy()
    n_clusters = max(1, n_devices // 500)
    band = max(2, int(n_transitions * BURST_CODE_FRACTION))
    for _ in range(n_clusters):
        start = int(rng.integers(0, n_devices))
        length = int(rng.integers(8, 33))
        stop = min(start + length, n_devices)
        j0 = int(rng.integers(0, max(1, n_transitions - band)))
        out[start:stop, j0:j0 + band] = out[start:stop, j0][:, None]
    return out


def apply_excursion(name: Optional[str], transitions: np.ndarray,
                    lsb: float, wafer_index: int,
                    seed: Optional[int]) -> np.ndarray:
    """Apply the named excursion to one wafer's transition matrix.

    Parameters
    ----------
    name:
        A registered excursion name, or ``None``/``"none"`` for the
        identity (the clean IID population).
    transitions:
        The drawn ``(devices, transitions)`` matrix; never mutated.
    lsb:
        Ideal LSB size in volts (perturbation magnitudes are spec'd in
        LSB).
    wafer_index:
        Index of the wafer within its lot — the drift axis, and part of
        the perturbation seed so sibling wafers perturb independently.
    seed:
        The scenario seed the perturbation stream derives from.
    """
    if name is None or name == "none":
        return transitions
    if name not in EXCURSIONS:
        raise ValueError(f"unknown excursion {name!r}; "
                         f"registered: {', '.join(EXCURSIONS)}")
    rng = excursion_rng(seed, wafer_index)
    if name == "drift":
        return _drift(transitions, lsb, wafer_index, rng)
    if name == "spatial":
        return _spatial(transitions, lsb, rng)
    return _burst(transitions, rng)


def excursion_bounds(name: Optional[str]) -> Tuple[bool, str]:
    """Whether an excursion is expected to trip SPC, and a short reason.

    Used by reporting/tests to classify missed detections: ``"drift"``
    ramps gradually (wafer 0 is clean by construction), while
    ``"spatial"`` and ``"burst"`` concentrate damage that a shard-level
    chart should flag on the affected wafer.
    """
    if name is None or name == "none":
        return False, "no excursion configured"
    if name == "drift":
        return True, "later wafers exceed the reject-fraction limit"
    if name == "spatial":
        return True, "degraded wafer regions exceed shard limits"
    return True, "burst clusters spike the shard reject fraction"
