"""Adaptive test flows: sequential stopping, SPC abort, excursion scenarios.

The paper fixes count limits and sample counts per scenario up front; a
real screening line *adapts*.  This package mounts three coupled adaptive
mechanisms on top of the existing decision machinery
(:mod:`repro.analysis.binomial`, :mod:`repro.analysis.error_model`,
:mod:`repro.core.decision`) and the scenario/campaign front door:

:mod:`repro.flows.sequential`
    A Wald-SPRT sequential decision station: per-device log-likelihood
    accumulation over the incremental code observations of the BIST ramp,
    stopping each device at its accept/reject boundary and reporting the
    saved tester-seconds through the existing tester economics.
:mod:`repro.flows.spc`
    Wafer-level statistical process control: a p-chart on the per-shard
    reject fraction and a CUSUM on the per-shard mean measured |DNL|,
    observed over shard results as they stream out of the
    :class:`~repro.production.execution.ShardExecutor`, raising a typed
    :class:`~repro.production.execution.ExcursionAbort` that stops the
    remaining shards of an excursed wafer.
:mod:`repro.flows.excursions`
    Non-IID scenario generators — spatially correlated wafer maps,
    lot-to-lot parameter drift, burst fault clusters — as deterministic
    per-wafer-seeded transforms on the drawn transition matrices, exposed
    as the ``Scenario.excursion`` axis.

Scenarios select the adaptive path with ``flow="sprt"`` (full BIST only)
and an optional ``excursion`` name; ``repro campaign --flow fixed,sprt
--excursion none,drift`` grids how each flow degrades under each
excursion.
"""

from repro.flows.excursions import EXCURSIONS, apply_excursion
from repro.flows.sequential import (
    SequentialDecision,
    SequentialPolicy,
    code_pass_matrix,
    sprt_decide,
)
from repro.flows.spc import Cusum, PChart, SpcMonitor, monitor_for_model

__all__ = [
    "Cusum",
    "EXCURSIONS",
    "PChart",
    "SequentialDecision",
    "SequentialPolicy",
    "SpcMonitor",
    "apply_excursion",
    "code_pass_matrix",
    "monitor_for_model",
    "sprt_decide",
]
