"""Wafer-level statistical process control over streaming shard results.

An excursion (a drifted lot, a contaminated wafer zone, a burst of gross
defects) shows up long before the last shard of a wafer finishes: the
per-shard reject fraction jumps, or the per-shard mean measured |DNL|
creeps up.  This module runs two classic control charts over the shard
results as they stream out of the
:class:`~repro.production.execution.ShardExecutor`:

* a **p-chart** on the per-shard reject fraction, centred on the analytic
  reject probability of the paper's binomial device model
  (:func:`monitor_for_model`), with a ``k``-sigma upper control limit on
  the binomial standard error of a shard-sized sample; and
* a one-sided upper **CUSUM** on the per-shard mean measured maximum
  |DNL|, which accumulates small persistent shifts a single-shard chart
  would miss (drift excursions).

When either chart signals, the monitor raises
:class:`~repro.production.execution.ExcursionAbort` — a typed subclass of
the execution layer's :class:`~repro.production.execution.ExecutionAborted`
— which cancels the wafer's remaining shards through the existing abort
path and carries the partial merged result back to the screening line.

The monitor deliberately observes shards **in absolute shard order**
(the executor feeds it a contiguous prefix, regardless of worker
completion order), so the abort decision — and therefore every byte of
the output — is independent of the ``(workers, chunk_size)`` geometry.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.binomial import BinomialDeviceModel
from repro.analysis.error_model import PerCodeProbabilities
from repro.production.execution import ExcursionAbort, current_monitor, spc_scope

__all__ = [
    "Cusum",
    "ExcursionAbort",
    "PChart",
    "SpcMonitor",
    "current_monitor",
    "monitor_for_model",
    "spc_scope",
]

#: Default p-chart control-limit width, in binomial standard errors.
PCHART_K_SIGMA = 6.0

#: Absolute floor added to the p-chart limit so near-zero centres do not
#: trip on a single rejected device in a small shard.
PCHART_FLOOR = 0.02

#: Default CUSUM slack (allowance) and decision threshold, in units of
#: the observed statistic (LSB for the mean-|DNL| chart).
CUSUM_SLACK_LSB = 0.05
CUSUM_THRESHOLD_LSB = 0.5


class PChart:
    """A one-sided p-chart on a streaming fraction.

    Signals when an observed fraction exceeds ``ucl``.  Stateless apart
    from the last observation — the chart's memory lives in the process
    distribution, not the sample path.
    """

    def __init__(self, center: float, ucl: float) -> None:
        if not 0.0 <= center <= 1.0:
            raise ValueError("center must be a fraction")
        if ucl < center:
            raise ValueError("ucl must not be below the centre line")
        self.center = float(center)
        self.ucl = float(ucl)

    @classmethod
    def for_sample_size(cls, center: float, n_sample: int,
                        k_sigma: float = PCHART_K_SIGMA,
                        floor: float = PCHART_FLOOR) -> "PChart":
        """Control limit at ``k`` binomial standard errors of ``n_sample``."""
        if n_sample < 1:
            raise ValueError("n_sample must be positive")
        se = float(np.sqrt(max(center * (1.0 - center), 0.0) / n_sample))
        return cls(center=center,
                   ucl=min(1.0, center + k_sigma * se + floor))

    def observe(self, fraction: float) -> bool:
        """Return ``True`` when the fraction breaches the control limit."""
        return float(fraction) > self.ucl


class Cusum:
    """A one-sided upper CUSUM on a streaming statistic.

    Accumulates ``max(0, s + x - (target + slack))`` and signals when the
    sum exceeds ``threshold``.  With ``target=None`` the chart
    self-calibrates: the first finite observation becomes the target —
    deterministic here because the monitor is fed in shard order.
    """

    def __init__(self, target: Optional[float] = None,
                 slack: float = CUSUM_SLACK_LSB,
                 threshold: float = CUSUM_THRESHOLD_LSB) -> None:
        if slack < 0.0 or threshold <= 0.0:
            raise ValueError("need slack >= 0 and threshold > 0")
        self.target = None if target is None else float(target)
        self.slack = float(slack)
        self.threshold = float(threshold)
        self.statistic = 0.0

    def observe(self, value: float) -> bool:
        """Fold one observation in; return ``True`` on a signal."""
        value = float(value)
        if not np.isfinite(value):
            return False
        if self.target is None:
            self.target = value
            return False
        self.statistic = max(
            0.0, self.statistic + value - (self.target + self.slack))
        return self.statistic > self.threshold


class SpcMonitor:
    """Feed shard results through the charts; raise on an excursion.

    Installed around a wafer run with
    :func:`~repro.production.execution.spc_scope`; the executor calls
    :meth:`observe` once per shard, in absolute shard order.  Results
    without a per-device ``passed`` array (timing-only or non-screening
    payloads) are skipped.
    """

    def __init__(self, p_chart: Optional[PChart] = None,
                 cusum: Optional[Cusum] = None,
                 wafer_id: str = "") -> None:
        self.p_chart = p_chart
        self.cusum = cusum
        self.wafer_id = wafer_id
        self.shards_seen = 0
        self.devices_seen = 0

    def observe(self, shard_index: int, result: object) -> None:
        """Fold one shard result in; raise :class:`ExcursionAbort` on signal."""
        passed = getattr(result, "passed", None)
        if passed is None:
            return
        passed = np.asarray(passed)
        if passed.ndim != 1 or passed.size == 0:
            return
        self.shards_seen += 1
        self.devices_seen += int(passed.size)
        reject_fraction = 1.0 - float(np.count_nonzero(passed)) / passed.size
        if self.p_chart is not None and self.p_chart.observe(reject_fraction):
            raise ExcursionAbort(
                shard=int(shard_index), statistic="p_chart",
                value=reject_fraction, threshold=self.p_chart.ucl,
                wafer_id=self.wafer_id)
        dnl = getattr(result, "measured_max_dnl_lsb", None)
        if self.cusum is not None and dnl is not None:
            dnl = np.asarray(dnl, dtype=float)
            if dnl.size and np.isfinite(dnl).any():
                if self.cusum.observe(float(np.nanmean(dnl))):
                    raise ExcursionAbort(
                        shard=int(shard_index), statistic="cusum",
                        value=self.cusum.statistic,
                        threshold=self.cusum.threshold,
                        wafer_id=self.wafer_id)


def monitor_for_model(per_code: PerCodeProbabilities, n_codes: int,
                      shard_devices: int,
                      k_sigma: float = PCHART_K_SIGMA,
                      wafer_id: str = "") -> SpcMonitor:
    """Build the standard monitor for a scenario's analytic device model.

    The p-chart centre is the model's predicted reject fraction
    ``1 - P(accept)`` from
    :class:`~repro.analysis.binomial.BinomialDeviceModel`; its control
    limit sits ``k_sigma`` binomial standard errors above it for a
    ``shard_devices``-sized sample.  The CUSUM self-calibrates its target
    on the first shard.
    """
    device = BinomialDeviceModel(per_code, n_codes).device()
    center = min(1.0, max(0.0, 1.0 - device.p_accept))
    return SpcMonitor(
        p_chart=PChart.for_sample_size(center, shard_devices,
                                       k_sigma=k_sigma),
        cusum=Cusum(),
        wafer_id=wafer_id)
