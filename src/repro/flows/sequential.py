"""Wald-SPRT sequential decision station over the BIST code stream.

The paper's BIST decides after the full ramp: every code's counter reading
is compared against the count limits, and the flag is the AND over all
codes.  A sequential station decides *during* the ramp: each code
comparison is one observation, the per-device log-likelihood ratio of
"this device is faulty" against "this device is good" accumulates code by
code, and the device stops — accept or reject — the moment the ratio
crosses a Wald boundary.  Devices the record ends on undecided fall back
to the fixed-flow verdict, which makes the degenerate policy
(:meth:`SequentialPolicy.fixed`, both boundaries at infinity) reproduce
the fixed-count decision **bit-exactly**.

The observation stream is the per-code accept bit of the count-limit
comparison (:func:`repro.core.decision.decide_counts`) evaluated on the
crossing-index counts of the shared ramp — the identical computation the
noise-free event path of
:class:`~repro.production.batch_engine.BatchBistEngine` performs, shared
through :func:`repro.core.kernel.shared_crossing_indices`.  The
hypothesis probabilities come from the paper's closed-form error model:
``p0 = P(code accepted | device good)`` and ``p1 = P(code accepted |
device faulty)`` of
:class:`~repro.analysis.error_model.PerCodeProbabilities`.

Everything is vectorised over the device axis in the style of
:mod:`repro.core.decision`: one ``(devices, codes)`` boolean matrix in,
one cumulative-sum boundary crossing out, no per-device loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.error_model import ErrorModel, PerCodeProbabilities
from repro.core.decision import decide_counts
from repro.core.kernel import shared_crossing_indices
from repro.core.limits import CountLimits

__all__ = [
    "SequentialDecision",
    "SequentialPolicy",
    "code_pass_matrix",
    "policy_for_scenario",
    "sprt_decide",
]

#: Default SPRT design risks: the probability of rejecting a good device
#: (``alpha``) and of accepting a faulty one (``beta``) the Wald
#: boundaries are derived from.
DEFAULT_ALPHA = 1e-3
DEFAULT_BETA = 1e-3


@dataclass(frozen=True)
class SequentialPolicy:
    """A Wald SPRT stopping rule over per-code accept observations.

    Hypotheses: H0 = "device good", H1 = "device faulty".  One
    observation is one code's accept bit ``x``; its log-likelihood-ratio
    increment is ``log(P(x|H1) / P(x|H0))`` with ``p0 = P(x=1|H0)`` and
    ``p1 = P(x=1|H1)``.  The cumulative sum is compared against
    ``log_reject = log((1-beta)/alpha)`` (cross upward → accept H1 →
    reject the device) and ``log_accept = log(beta/(1-alpha))`` (cross
    downward → accept H0 → accept the device).
    """

    p0: float
    p1: float
    alpha: float = DEFAULT_ALPHA
    beta: float = DEFAULT_BETA
    log_accept: float = -np.inf
    log_reject: float = np.inf

    def __post_init__(self) -> None:
        if not 0.0 < self.p0 <= 1.0 or not 0.0 <= self.p1 <= 1.0:
            raise ValueError("p0 and p1 must be probabilities")
        if self.p1 > self.p0:
            raise ValueError(
                "p1 (accept prob of a faulty device's code) must not "
                "exceed p0 (accept prob of a good device's code)")
        if not 0.0 < self.alpha < 1.0 or not 0.0 < self.beta < 1.0:
            raise ValueError("alpha and beta must be in (0, 1)")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_per_code(cls, per_code: PerCodeProbabilities,
                      alpha: float = DEFAULT_ALPHA,
                      beta: float = DEFAULT_BETA) -> "SequentialPolicy":
        """Derive the policy from the paper's closed-form code model."""
        return cls(
            p0=float(per_code.p_accept_given_good),
            p1=float(per_code.p_accept_given_faulty),
            alpha=float(alpha), beta=float(beta),
            log_accept=math.log(beta / (1.0 - alpha)),
            log_reject=math.log((1.0 - beta) / alpha))

    @classmethod
    def fixed(cls) -> "SequentialPolicy":
        """The degenerate policy: boundaries at infinity, never stops.

        Every device runs the full record and takes the fixed-flow
        verdict — the bit-exact fixed-count decision, with zero saved
        samples.  ``p0 == p1`` makes every log-likelihood increment zero.
        """
        return cls(p0=0.5, p1=0.5)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def llr_pass(self) -> float:
        """Log-likelihood increment of an accepted code (``<= 0``)."""
        if self.p1 == self.p0:
            return 0.0
        return math.log(self.p1 / self.p0)

    @property
    def llr_fail(self) -> float:
        """Log-likelihood increment of a rejected code (``>= 0``)."""
        if self.p1 == self.p0:
            return 0.0
        if self.p0 >= 1.0:
            return np.inf
        return math.log((1.0 - self.p1) / (1.0 - self.p0))

    @property
    def min_accept_codes(self) -> float:
        """Consecutive accepted codes needed to cross the accept bound.

        ``inf`` for the degenerate fixed policy — the quantity the
        escape-bound analysis (:func:`repro.analysis.binomial.
        sequential_escape_bound`) is evaluated at.
        """
        step = self.llr_pass
        if not np.isfinite(self.log_accept) or step >= 0.0:
            return np.inf
        return math.ceil(self.log_accept / step)


def policy_for_scenario(sigma_code_width_lsb: float, dnl_spec_lsb: float,
                        counter_bits: int,
                        alpha: float = DEFAULT_ALPHA,
                        beta: float = DEFAULT_BETA) -> SequentialPolicy:
    """The SPRT policy matching a scenario's measurement configuration.

    Builds the closed-form :class:`~repro.analysis.error_model.ErrorModel`
    for the scenario's process sigma, DNL spec and counter width, and
    derives the Wald boundaries from its per-code conditionals.
    """
    from repro.analysis.distributions import CodeWidthDistribution

    model = ErrorModel(
        distribution=CodeWidthDistribution(sigma_lsb=sigma_code_width_lsb),
        dnl_spec_lsb=dnl_spec_lsb,
        counter_bits=counter_bits)
    return SequentialPolicy.from_per_code(model.per_code(),
                                          alpha=alpha, beta=beta)


@dataclass
class SequentialDecision:
    """Vectorised outcome of one sequential station pass.

    All arrays have one entry per device.  ``stop_codes`` counts the code
    observations each device consumed (``n_codes`` when it ran the full
    record); ``decided`` marks devices stopped by a boundary crossing
    rather than by the record's end.
    """

    accepted: np.ndarray
    stop_codes: np.ndarray
    decided: np.ndarray
    n_codes: int

    @property
    def n_devices(self) -> int:
        return int(self.accepted.size)

    @property
    def observed_codes(self) -> int:
        """Total code observations consumed by the whole batch."""
        return int(self.stop_codes.sum())

    @property
    def total_codes(self) -> int:
        """Code observations the fixed flow would have consumed."""
        return self.n_devices * self.n_codes

    @property
    def saved_codes(self) -> int:
        """Code observations the sequential stopping avoided."""
        return self.total_codes - self.observed_codes

    @property
    def saved_fraction(self) -> float:
        """Fraction of the fixed flow's observations avoided."""
        total = self.total_codes
        return self.saved_codes / total if total else 0.0

    @property
    def n_stopped_early(self) -> int:
        """Devices decided before the end of the record."""
        return int(np.count_nonzero(self.decided))

    def stop_quartiles(self) -> np.ndarray:
        """Device counts per stop-time quartile of the record.

        Entry ``k`` counts devices whose stopping code fell in quartile
        ``k`` of ``[1, n_codes]`` — the deterministic histogram exported
        as the ``flow.stop_quartile.q*`` telemetry counters.
        """
        if self.n_devices == 0 or self.n_codes == 0:
            return np.zeros(4, dtype=np.int64)
        edges = np.ceil(np.arange(1, 4) * self.n_codes / 4.0)
        quartile = np.searchsorted(edges, self.stop_codes, side="left")
        return np.bincount(quartile, minlength=4).astype(np.int64)


def sprt_decide(code_ok: np.ndarray, policy: SequentialPolicy,
                fixed_decision: Optional[np.ndarray] = None
                ) -> SequentialDecision:
    """Run the SPRT over a ``(devices, codes)`` accept-bit matrix.

    Vectorised over the device axis: the cumulative log-likelihood sum is
    one ``cumsum``, the stopping code is the first boundary crossing per
    row, and undecided devices (no crossing before the record ends) take
    ``fixed_decision`` — the fixed flow's verdict — or, when none is
    given, the all-codes-pass criterion.
    """
    code_ok = np.asarray(code_ok, dtype=bool)
    if code_ok.ndim != 2:
        raise ValueError("code_ok must be a (devices, codes) matrix")
    n_devices, n_codes = code_ok.shape
    if fixed_decision is None:
        fixed_decision = code_ok.all(axis=1)
    else:
        fixed_decision = np.asarray(fixed_decision, dtype=bool)
        if fixed_decision.shape != (n_devices,):
            raise ValueError("fixed_decision must be one bool per device")
    if n_devices == 0 or n_codes == 0:
        return SequentialDecision(
            accepted=fixed_decision.copy(),
            stop_codes=np.full(n_devices, n_codes, dtype=np.int64),
            decided=np.zeros(n_devices, dtype=bool),
            n_codes=n_codes)

    llr = np.where(code_ok, policy.llr_pass, policy.llr_fail)
    cumulative = np.cumsum(llr, axis=1)
    hit_accept = cumulative <= policy.log_accept
    hit_reject = cumulative >= policy.log_reject
    hit = hit_accept | hit_reject
    decided = hit.any(axis=1)
    # argmax on a boolean row gives the first True (0 for all-False rows,
    # which `decided` masks out).
    first = hit.argmax(axis=1)
    rows = np.arange(n_devices)
    accepted = np.where(decided,
                        hit_accept[rows, first] & ~hit_reject[rows, first],
                        fixed_decision)
    stop_codes = np.where(decided, first + 1, n_codes).astype(np.int64)
    return SequentialDecision(accepted=accepted, stop_codes=stop_codes,
                              decided=decided, n_codes=n_codes)


def code_pass_matrix(transitions: np.ndarray, ramp_voltages: np.ndarray,
                     limits: CountLimits,
                     saturate: bool = True) -> np.ndarray:
    """Per-code accept bits of every device under the shared ramp.

    The sequential station's observation stream: crossing-index counts of
    each device's transition levels into the ramp
    (:func:`~repro.core.kernel.shared_crossing_indices` — the same kernel
    the noise-free event path runs), decided per code with
    :func:`~repro.core.decision.decide_counts`.  Devices with folded or
    out-of-range crossings (gross faults the counter stream cannot even
    enumerate) observe failures from code one, so the SPRT rejects them
    at its first boundary check.
    """
    transitions = np.asarray(transitions, dtype=float)
    ramp_voltages = np.asarray(ramp_voltages, dtype=float)
    crossing = shared_crossing_indices(transitions, ramp_voltages)
    n_samples = ramp_voltages.size
    counts = np.diff(crossing, axis=1)
    in_range = ((crossing >= 1) & (crossing <= n_samples - 1)).all(axis=1)
    regular = in_range & (counts > 0).all(axis=1)
    safe_counts = np.where(regular[:, None], counts, 1)
    decision = decide_counts(safe_counts, limits, saturate=saturate)
    ok = decision.dnl_pass & decision.inl_pass
    ok[~regular] = False
    return ok
