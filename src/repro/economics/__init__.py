"""Test-cost and parallel-test models quantifying the paper's motivation."""

from repro.economics.cost_model import TestPlan, TesterModel, cost_per_device
from repro.economics.parallel import ParallelTestSchedule, compare_schedules
from repro.economics.quality import (
    CostBreakdown,
    OutgoingQuality,
    TestCostOptimizer,
)

__all__ = [
    "TestPlan",
    "TesterModel",
    "cost_per_device",
    "ParallelTestSchedule",
    "compare_schedules",
    "CostBreakdown",
    "OutgoingQuality",
    "TestCostOptimizer",
]
