"""Outgoing quality and total test-cost optimisation.

The paper's quality anchor is the customer requirement that at most
10–100 ppm of shipped devices may be test escapes (type II errors).  This
module closes the loop between the statistical error model and the economics:

* :class:`OutgoingQuality` converts a process yield and the test's type I/II
  probabilities into shipped-defect level (DPPM), yield loss and the number
  of good devices scrapped per million produced,
* :class:`TestCostOptimizer` combines that with the silicon cost of the BIST
  hardware and the per-device tester cost to find the counter size that
  minimises the total cost of test — the quantitative version of the
  trade-off sketched in the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.analysis.binomial import DeviceProbabilities
from repro.analysis.error_model import ErrorModel
from repro.core.area import AreaModel

__all__ = ["OutgoingQuality", "CostBreakdown", "TestCostOptimizer"]


@dataclass(frozen=True)
class OutgoingQuality:
    """Shipped-quality figures implied by a test's error probabilities.

    Attributes
    ----------
    p_good:
        Probability an incoming device meets the specification.
    type_i:
        ``P(good and rejected)`` — yield loss.
    type_ii:
        ``P(faulty and accepted)`` — escapes.
    """

    p_good: float
    type_i: float
    type_ii: float

    def __post_init__(self) -> None:
        for name in ("p_good", "type_i", "type_ii"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")

    @classmethod
    def from_device_probabilities(cls, device: DeviceProbabilities
                                  ) -> "OutgoingQuality":
        """Build from the error model's device-level probabilities."""
        return cls(p_good=device.p_good, type_i=device.type_i,
                   type_ii=device.type_ii)

    @property
    def p_ship(self) -> float:
        """Fraction of produced devices that are shipped (accepted)."""
        return self.p_good - self.type_i + self.type_ii

    @property
    def shipped_dppm(self) -> float:
        """Defective parts per million among the *shipped* devices."""
        if self.p_ship <= 0.0:
            return 0.0
        return 1e6 * self.type_ii / self.p_ship

    @property
    def yield_loss_ppm(self) -> float:
        """Good devices scrapped, per million produced."""
        return 1e6 * self.type_i

    def meets_quality_target(self, dppm_target: float = 100.0) -> bool:
        """True when shipped quality meets the given DPPM target."""
        if dppm_target < 0:
            raise ValueError("dppm_target must be non-negative")
        return self.shipped_dppm <= dppm_target


@dataclass(frozen=True)
class CostBreakdown:
    """Total cost of test per shipped device for one BIST configuration.

    All costs are in the same currency unit as the inputs.
    """

    counter_bits: int
    silicon_cost: float
    tester_cost: float
    yield_loss_cost: float
    escape_cost: float
    quality: OutgoingQuality

    @property
    def total(self) -> float:
        """Total cost per shipped device."""
        return (self.silicon_cost + self.tester_cost
                + self.yield_loss_cost + self.escape_cost)


class TestCostOptimizer:
    """Pick the counter size that minimises the total cost of test.

    Parameters
    ----------
    n_codes:
        Inner codes of the converter (62 for the paper's 6-bit flash).
    dnl_spec_lsb:
        DNL specification of the production test.
    device_cost:
        Manufacturing cost of one good converter (sets the value destroyed
        by a type I rejection).
    escape_penalty:
        Cost of one shipped defective device (field return, reputational);
        typically orders of magnitude above the device cost.
    wafer_cost_per_mm2:
        Silicon cost per mm² (prices the BIST area overhead).
    tester_cost_per_device:
        Tester time cost attributed to one device (already divided by the
        parallel-site count).
    area_model:
        Area model used for the BIST hardware; a default 6-bit model is
        created when omitted.
    """

    #: Not a test case, despite the class name (keeps pytest collection away).
    __test__ = False

    def __init__(self, n_codes: int = 62, dnl_spec_lsb: float = 1.0,
                 device_cost: float = 0.05,
                 escape_penalty: float = 50.0,
                 wafer_cost_per_mm2: float = 0.10,
                 tester_cost_per_device: float = 0.002,
                 area_model: Optional[AreaModel] = None) -> None:
        if n_codes < 1:
            raise ValueError("n_codes must be positive")
        if min(device_cost, escape_penalty, wafer_cost_per_mm2,
               tester_cost_per_device) < 0:
            raise ValueError("costs must be non-negative")
        self.n_codes = int(n_codes)
        self.dnl_spec_lsb = float(dnl_spec_lsb)
        self.device_cost = float(device_cost)
        self.escape_penalty = float(escape_penalty)
        self.wafer_cost_per_mm2 = float(wafer_cost_per_mm2)
        self.tester_cost_per_device = float(tester_cost_per_device)
        self.area_model = area_model if area_model is not None else AreaModel()

    def evaluate(self, counter_bits: int) -> CostBreakdown:
        """Cost breakdown for one counter size."""
        model = ErrorModel(dnl_spec_lsb=self.dnl_spec_lsb,
                           counter_bits=counter_bits)
        device = model.device(self.n_codes)
        quality = OutgoingQuality.from_device_probabilities(device)

        estimate = self.area_model.estimate(counter_bits,
                                            dnl_spec_lsb=self.dnl_spec_lsb)
        silicon = estimate.area_mm2 * self.wafer_cost_per_mm2
        yield_loss = quality.type_i * self.device_cost
        escapes = quality.type_ii * self.escape_penalty
        return CostBreakdown(counter_bits=int(counter_bits),
                             silicon_cost=silicon,
                             tester_cost=self.tester_cost_per_device,
                             yield_loss_cost=yield_loss,
                             escape_cost=escapes,
                             quality=quality)

    def sweep(self, counter_bits_range: Iterable[int]
              ) -> Dict[int, CostBreakdown]:
        """Cost breakdowns over a range of counter sizes."""
        return {bits: self.evaluate(bits) for bits in counter_bits_range}

    def best(self, counter_bits_range: Iterable[int],
             dppm_target: Optional[float] = 100.0) -> CostBreakdown:
        """The cheapest configuration meeting the quality target.

        When no configuration meets the target, the one with the lowest
        shipped DPPM is returned instead.
        """
        breakdowns = list(self.sweep(counter_bits_range).values())
        if not breakdowns:
            raise ValueError("counter_bits_range must not be empty")
        if dppm_target is not None:
            compliant = [b for b in breakdowns
                         if b.quality.meets_quality_target(dppm_target)]
            if compliant:
                return min(compliant, key=lambda b: b.total)
            return min(breakdowns, key=lambda b: b.quality.shipped_dppm)
        return min(breakdowns, key=lambda b: b.total)
