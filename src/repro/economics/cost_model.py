"""Test-cost model: why the BIST pays off.

The paper's introduction motivates the methodology economically: mixed-signal
testers are expensive, so test cost falls if (a) less tester time is used,
(b) a cheaper tester suffices, or (c) more converters are tested in parallel
on one insertion.  This module turns those arguments into numbers so the
examples and benchmarks can quantify the saving for a given product:

* :class:`TesterModel` — capital and per-second operating cost of a tester
  with a given number of digital channels and (optionally) mixed-signal
  instruments,
* :class:`TestPlan` — how one device is tested (samples, bits observed per
  sample, pass/fail processing), from which test time and data volume follow,
* :func:`cost_per_device` — combines the two with a parallel-test site count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TesterModel", "TestPlan", "cost_per_device"]


@dataclass(frozen=True)
class TesterModel:
    """A (much simplified) ATE cost model.

    Parameters
    ----------
    name:
        Human-readable tester name.
    digital_channels:
        Number of digital capture channels available for converter outputs.
    has_mixed_signal:
        Whether the tester has the precision analog source/capture
        instruments a conventional converter test needs.
    capital_cost:
        Purchase cost in currency units.
    cost_per_second:
        Operating (depreciation + floor) cost per second of test time.
    capture_rate:
        Samples per second each digital channel can capture and store.
    """

    #: Not a test case, despite the class name (keeps pytest collection away).
    __test__ = False

    name: str
    digital_channels: int
    has_mixed_signal: bool
    capital_cost: float
    cost_per_second: float
    capture_rate: float = 10e6

    def __post_init__(self) -> None:
        if self.digital_channels < 1:
            raise ValueError("digital_channels must be positive")
        if self.capital_cost < 0 or self.cost_per_second < 0:
            raise ValueError("costs must be non-negative")
        if self.capture_rate <= 0:
            raise ValueError("capture_rate must be positive")

    @classmethod
    def mixed_signal(cls) -> "TesterModel":
        """A representative high-end mixed-signal tester."""
        return cls(name="mixed-signal ATE", digital_channels=64,
                   has_mixed_signal=True, capital_cost=2_000_000.0,
                   cost_per_second=0.05)

    @classmethod
    def digital_only(cls) -> "TesterModel":
        """A representative low-cost digital tester."""
        return cls(name="digital ATE", digital_channels=128,
                   has_mixed_signal=False, capital_cost=400_000.0,
                   cost_per_second=0.01)


@dataclass(frozen=True)
class TestPlan:
    """How one converter is tested.

    Parameters
    ----------
    n_bits:
        Converter resolution.
    samples:
        Number of conversions acquired for the static test.
    observed_bits_per_sample:
        Output bits the tester must capture per conversion: ``n_bits`` for
        the conventional histogram test, ``q`` for the partial BIST, and 0
        for the full BIST (only a pass/fail flag is read at the end).
    sample_rate:
        Converter sample rate in Hz (sets the acquisition time).
    needs_mixed_signal_tester:
        Whether the plan requires precision analog instruments (the
        conventional test does; the full BIST with on-chip generation does
        not).
    processing_overhead_s:
        Tester-side post-processing time per device (histogram building,
        DNL/INL computation); essentially zero for the BIST.
    """

    #: Not a test case, despite the class name (keeps pytest collection away).
    __test__ = False

    n_bits: int
    samples: int
    observed_bits_per_sample: int
    sample_rate: float
    needs_mixed_signal_tester: bool = True
    processing_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_bits < 1 or self.samples < 1:
            raise ValueError("n_bits and samples must be positive")
        if not 0 <= self.observed_bits_per_sample <= self.n_bits:
            raise ValueError(
                "observed_bits_per_sample must be within [0, n_bits]")
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        if self.processing_overhead_s < 0:
            raise ValueError("processing_overhead_s must be non-negative")

    @property
    def acquisition_time_s(self) -> float:
        """Time to acquire the samples at the converter's own rate."""
        return self.samples / self.sample_rate

    @property
    def test_time_s(self) -> float:
        """Total tester-occupancy time per device (single site)."""
        return self.acquisition_time_s + self.processing_overhead_s

    @property
    def data_volume_bits(self) -> int:
        """Bits the tester must capture for one device."""
        return self.samples * self.observed_bits_per_sample

    def channels_needed(self) -> int:
        """Digital channels occupied by one device under this plan."""
        # Even a full BIST needs one channel to read the pass/fail flag.
        return max(1, self.observed_bits_per_sample)

    # ------------------------------------------------------------------ #
    # Plan factories matching the paper's scenarios
    # ------------------------------------------------------------------ #

    @classmethod
    def conventional_histogram(cls, n_bits: int = 6, samples: int = 4096,
                               sample_rate: float = 1e6,
                               processing_overhead_s: float = 0.01
                               ) -> "TestPlan":
        """The conventional production histogram test (full word captured)."""
        return cls(n_bits=n_bits, samples=samples,
                   observed_bits_per_sample=n_bits, sample_rate=sample_rate,
                   needs_mixed_signal_tester=True,
                   processing_overhead_s=processing_overhead_s)

    @classmethod
    def dynamic_fft(cls, n_bits: int, samples: int = 4096,
                    sample_rate: float = 1e6,
                    processing_overhead_s: float = 0.02) -> "TestPlan":
        """The single-tone FFT dynamic test (full words + FFT processing).

        Like the conventional histogram test it captures every output bit
        of every sample on a mixed-signal tester (the sine source needs
        precision analog instruments); the tester-side FFT and figure-of-
        merit extraction costs more post-processing than histogramming.
        """
        return cls(n_bits=n_bits, samples=samples,
                   observed_bits_per_sample=n_bits, sample_rate=sample_rate,
                   needs_mixed_signal_tester=True,
                   processing_overhead_s=processing_overhead_s)

    @classmethod
    def partial_bist(cls, n_bits: int, q: int, samples: int,
                     sample_rate: float = 1e6) -> "TestPlan":
        """The partial BIST: only ``q`` LSBs observed externally."""
        return cls(n_bits=n_bits, samples=samples,
                   observed_bits_per_sample=q, sample_rate=sample_rate,
                   needs_mixed_signal_tester=True,
                   processing_overhead_s=0.0)

    @classmethod
    def full_bist(cls, n_bits: int, samples: int,
                  sample_rate: float = 1e6,
                  on_chip_generation: bool = True) -> "TestPlan":
        """The full BIST: everything processed on-chip, one flag read out."""
        return cls(n_bits=n_bits, samples=samples,
                   observed_bits_per_sample=0, sample_rate=sample_rate,
                   needs_mixed_signal_tester=not on_chip_generation,
                   processing_overhead_s=0.0)


def cost_per_device(plan: TestPlan, tester: TesterModel,
                    devices_per_ic: int = 1,
                    sites: Optional[int] = None) -> float:
    """Tester cost attributed to testing one converter.

    Parameters
    ----------
    plan:
        The per-converter test plan.
    tester:
        The tester executing it.
    devices_per_ic:
        Number of converters on one IC (they share the insertion).
    sites:
        Number of ICs tested in parallel; when omitted, the maximum the
        tester's channel count allows is used.

    Raises
    ------
    ValueError
        When the plan needs mixed-signal instruments the tester lacks.
    """
    if devices_per_ic < 1:
        raise ValueError("devices_per_ic must be positive")
    if plan.needs_mixed_signal_tester and not tester.has_mixed_signal:
        raise ValueError(
            f"plan requires a mixed-signal tester but {tester.name} has no "
            f"analog instruments")
    channels_per_ic = plan.channels_needed() * devices_per_ic
    max_sites = max(1, tester.digital_channels // channels_per_ic)
    if sites is None:
        sites = max_sites
    if sites < 1:
        raise ValueError("sites must be positive")
    if sites > max_sites:
        raise ValueError(
            f"{sites} sites need {sites * channels_per_ic} channels but the "
            f"tester has only {tester.digital_channels}")
    converters_in_parallel = sites * devices_per_ic
    return tester.cost_per_second * plan.test_time_s / converters_in_parallel
