"""Parallel-test scheduling for multi-converter ICs.

"For ICs with multiple A/D converters on-chip, the reduction of test bits per
A/D converter allows for testing more A/D converters in parallel, which will
reduce the overall test time."  This module quantifies that claim: given a
tester channel budget and a per-converter observation width ``q`` it computes
how many converters fit in one pass, how many passes a batch needs, and the
resulting total test time — for the conventional test, the partial BIST and
the full BIST side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

__all__ = ["ParallelTestSchedule", "compare_schedules"]


@dataclass(frozen=True)
class ParallelTestSchedule:
    """Schedule for testing ``n_converters`` with a fixed channel budget.

    Parameters
    ----------
    n_converters:
        Total number of converters to test (across all ICs of the batch or
        on one many-channel IC).
    bits_per_converter:
        Digital channels each converter occupies during the test
        (``n_bits`` conventional, ``q`` partial BIST, 1 for the full BIST's
        pass/fail flag).
    tester_channels:
        Digital channels available on the tester.
    time_per_pass_s:
        Acquisition time of one test pass (one ramp), in seconds.
    """

    n_converters: int
    bits_per_converter: int
    tester_channels: int
    time_per_pass_s: float

    def __post_init__(self) -> None:
        if self.n_converters < 1:
            raise ValueError("n_converters must be positive")
        if self.bits_per_converter < 1:
            raise ValueError("bits_per_converter must be positive")
        if self.tester_channels < self.bits_per_converter:
            raise ValueError(
                "the tester does not have enough channels for even one "
                "converter")
        if self.time_per_pass_s <= 0:
            raise ValueError("time_per_pass_s must be positive")

    @property
    def converters_per_pass(self) -> int:
        """Converters that fit in one parallel pass."""
        return self.tester_channels // self.bits_per_converter

    @property
    def n_passes(self) -> int:
        """Number of sequential passes needed for the whole batch."""
        return math.ceil(self.n_converters / self.converters_per_pass)

    @property
    def total_time_s(self) -> float:
        """Total tester time for the batch."""
        return self.n_passes * self.time_per_pass_s

    @property
    def time_per_converter_s(self) -> float:
        """Average tester time attributed to one converter."""
        return self.total_time_s / self.n_converters

    def speedup_over(self, other: "ParallelTestSchedule") -> float:
        """How many times faster this schedule is than ``other``."""
        return other.total_time_s / self.total_time_s


def compare_schedules(n_converters: int, n_bits: int, q: int,
                      tester_channels: int,
                      time_per_pass_s: float) -> List[ParallelTestSchedule]:
    """Conventional vs partial-BIST vs full-BIST schedules, side by side.

    Returns a list of three schedules in that order, all for the same batch,
    channel budget and per-pass time, differing only in how many channels
    each converter occupies (``n_bits``, ``q`` and 1 respectively).
    """
    if not 1 <= q <= n_bits:
        raise ValueError("q must be within [1, n_bits]")
    return [
        ParallelTestSchedule(n_converters, n_bits, tester_channels,
                             time_per_pass_s),
        ParallelTestSchedule(n_converters, q, tester_channels,
                             time_per_pass_s),
        ParallelTestSchedule(n_converters, 1, tester_channels,
                             time_per_pass_s),
    ]
