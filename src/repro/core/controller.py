"""Multi-converter BIST controller: testing several A/D converters at once.

"For chips containing more than one A/D converter the proposed methodology
has a major advantage, since several A/D converters can easily be tested in
parallel which reduces the test time and test costs significantly."  This
module models the on-chip arrangement that realises that claim:

* one shared ramp source drives every converter on the IC simultaneously,
* each converter has its own (small) LSB processing block and MSB checker —
  the per-converter hardware of :class:`~repro.core.engine.BistEngine`,
* a tiny controller sequences the test, collects the per-converter pass/fail
  flags into a result register, and exposes a single serial read-out.

Because the converters share the stimulus, the wall-clock test time of the
whole IC equals the time of a single ramp, regardless of how many converters
it carries — which is exactly the parallelism argument of the paper's
introduction, now backed by a behavioural model instead of a head count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.adc.base import ADC
from repro.core.engine import BistConfig, BistEngine, BistResult

__all__ = ["MultiAdcBistController", "ChipBistResult"]

RngLike = Union[int, np.random.Generator, None]


@dataclass
class ChipBistResult:
    """Result of testing one IC carrying several converters.

    Attributes
    ----------
    per_converter:
        The individual BIST results, in converter order.
    passed:
        True when every converter passed (the chip-level pass/fail flag).
    result_register:
        The packed pass/fail bits as the controller's result register would
        hold them (bit ``i`` set = converter ``i`` passed).
    test_time_s:
        Wall-clock time of the whole chip test — one shared ramp.
    serial_readout_bits:
        Number of bits the tester reads back (one per converter plus one
        chip-level flag).
    sequential_test_time_s:
        What the test time would have been had the converters been tested
        one after another (the conventional alternative), for comparison.
    """

    per_converter: List[BistResult]
    passed: bool
    result_register: int
    test_time_s: float
    serial_readout_bits: int
    sequential_test_time_s: float

    @property
    def n_converters(self) -> int:
        """Number of converters on the chip."""
        return len(self.per_converter)

    @property
    def failing_converters(self) -> List[int]:
        """Indices of converters that failed their BIST."""
        return [i for i, result in enumerate(self.per_converter)
                if not result.passed]

    @property
    def parallel_speedup(self) -> float:
        """Test-time reduction factor versus sequential testing."""
        if self.test_time_s == 0.0:
            return 1.0
        return self.sequential_test_time_s / self.test_time_s


class MultiAdcBistController:
    """Behavioural model of an on-chip controller testing many converters.

    Parameters
    ----------
    config:
        The per-converter BIST configuration (counter size, specification,
        noise, deglitch filter).  Every converter on the chip uses an
        identical copy of the test hardware, as a real layout would.
    """

    def __init__(self, config: BistConfig) -> None:
        self.config = config
        self._engine = BistEngine(config)

    # ------------------------------------------------------------------ #
    # Hardware cost
    # ------------------------------------------------------------------ #

    def gate_count(self, n_converters: int) -> int:
        """Gate-equivalent estimate for the whole chip's test logic.

        Per-converter blocks are replicated; the controller adds a small
        fixed overhead (sequencer, result register, serial read-out).
        """
        if n_converters < 1:
            raise ValueError("n_converters must be positive")
        per_converter = self._engine.gate_count()
        controller_overhead = 40 + 7 * n_converters
        return n_converters * per_converter + controller_overhead

    # ------------------------------------------------------------------ #
    # Chip-level test
    # ------------------------------------------------------------------ #

    def run_chip(self, converters: Sequence[ADC],
                 rng: RngLike = None) -> ChipBistResult:
        """Test every converter on the chip with the shared ramp.

        Parameters
        ----------
        converters:
            The converters on the IC.  They must all have the resolution the
            configuration was built for; their mismatch realisations differ.
        rng:
            Seed or generator for the acquisition noise (independent child
            streams are derived per converter so results are reproducible
            regardless of converter count).
        """
        if not converters:
            raise ValueError("the chip must carry at least one converter")
        seed_seq = np.random.SeedSequence(
            rng if isinstance(rng, (int, np.integer)) or rng is None else None)
        children = seed_seq.spawn(len(converters))

        results: List[BistResult] = []
        max_samples = 0
        for child, adc in zip(children, converters):
            generator = np.random.default_rng(child)
            result = self._engine.run(adc, rng=generator, keep_record=False)
            results.append(result)
            max_samples = max(max_samples, result.samples_taken)

        sample_rate = converters[0].sample_rate
        test_time = max_samples / sample_rate
        sequential_time = sum(r.samples_taken for r in results) / sample_rate

        register = 0
        for i, result in enumerate(results):
            if result.passed:
                register |= (1 << i)
        passed = all(r.passed for r in results)

        return ChipBistResult(
            per_converter=results,
            passed=passed,
            result_register=register,
            test_time_s=test_time,
            serial_readout_bits=len(results) + 1,
            sequential_test_time_s=sequential_time)

    # ------------------------------------------------------------------ #
    # Lot-level helper
    # ------------------------------------------------------------------ #

    def run_lot(self, chips: Sequence[Sequence[ADC]],
                rng: RngLike = None) -> Dict[str, float]:
        """Test a lot of chips and summarise quality and test time.

        Returns a dict with ``chips_tested``, ``chips_passed``,
        ``converter_fallout`` (fraction of converters failing), and
        ``total_test_time_s``.
        """
        if not chips:
            raise ValueError("the lot must contain at least one chip")
        seed_seq = np.random.SeedSequence(
            rng if isinstance(rng, (int, np.integer)) or rng is None else None)
        children = seed_seq.spawn(len(chips))

        chips_passed = 0
        converters_total = 0
        converters_failed = 0
        total_time = 0.0
        for child, chip in zip(children, chips):
            result = self.run_chip(chip, rng=int(child.generate_state(1)[0]))
            chips_passed += int(result.passed)
            converters_total += result.n_converters
            converters_failed += len(result.failing_converters)
            total_time += result.test_time_s
        return {
            "chips_tested": float(len(chips)),
            "chips_passed": float(chips_passed),
            "converter_fallout": (converters_failed / converters_total
                                  if converters_total else 0.0),
            "total_test_time_s": total_time,
        }
