"""On-chip functionality check of the upper output bits.

In the paper's scheme (Figure 2) the bits above the externally monitored
group are verified on-chip: a counter is clocked whenever bit ``q`` makes a
1-to-0 transition, and its value must always equal the upper bits of the
output code.  With a rising ramp and ``q = 1`` the upper bits form exactly
the sequence 0, 1, 2, …, so the check reduces to "the code divided by two
increments by one at every falling edge of the LSB".

This catches the digital/gross faults the LSB-only linearity measurement is
blind to: stuck or shorted output bits, broken encoder logic, and non-
monotonic behaviour severe enough to make the upper bits step backwards.

The counter/comparator array program itself lives in the shared vectorised
kernel (:func:`repro.core.kernel.batch_msb_reference`); this class is its
batch-of-1 wrapper, so the scalar engines and the wafer-scale batch engines
in :mod:`repro.production` execute the identical check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.kernel import batch_msb_reference

__all__ = ["MsbChecker", "MsbCheckResult"]


@dataclass
class MsbCheckResult:
    """Outcome of the on-chip functionality check.

    Attributes
    ----------
    n_samples:
        Number of samples checked.
    n_mismatches:
        Number of samples whose upper bits disagreed with the reference
        counter.
    first_mismatch_index:
        Sample index of the first disagreement (``None`` when there was
        none).
    n_clock_events:
        Number of falling edges of the clocking bit that were seen.
    expected_clock_events:
        Falling edges a healthy converter would produce over a full ramp
        (``None`` when the resolution was not supplied).
    """

    n_samples: int
    n_mismatches: int
    first_mismatch_index: Optional[int]
    n_clock_events: int
    expected_clock_events: Optional[int]

    @property
    def passed(self) -> bool:
        """True when every sample's upper bits matched the reference counter."""
        return self.n_mismatches == 0

    @property
    def mismatch_fraction(self) -> float:
        """Fraction of samples that disagreed."""
        if self.n_samples == 0:
            return 0.0
        return self.n_mismatches / self.n_samples


class MsbChecker:
    """Behavioural model of the on-chip MSB functionality checker.

    Parameters
    ----------
    n_bits:
        Converter resolution.
    q:
        Partition point: bit ``q`` (1-based, 1 = LSB) clocks the reference
        counter and bits ``q+1 .. n_bits`` are compared against it.  The
        paper's full-BIST configuration uses ``q = 1``.
    """

    def __init__(self, n_bits: int, q: int = 1) -> None:
        if n_bits < 2:
            raise ValueError("n_bits must be at least 2")
        if not 1 <= q < n_bits:
            raise ValueError(f"q must be within [1, {n_bits - 1}]")
        self.n_bits = int(n_bits)
        self.q = int(q)

    # ------------------------------------------------------------------ #
    # Checking
    # ------------------------------------------------------------------ #

    def check(self, codes: np.ndarray,
              full_ramp: bool = True,
              clock_stream: Optional[np.ndarray] = None,
              tolerance: int = 0) -> MsbCheckResult:
        """Check a record of output codes from a rising-ramp acquisition.

        Parameters
        ----------
        codes:
            Output codes, one per sample, in acquisition order.
        full_ramp:
            When true the record is expected to cover the whole conversion
            range, so the number of clock events a healthy device produces
            is known and reported in the result.
        clock_stream:
            Optional 0/1 stream to clock the reference counter from instead
            of the raw clocking bit — typically the *deglitched* LSB, so
            that transition noise does not add spurious clock events.
        tolerance:
            Allowed absolute difference between the upper bits and the
            reference counter.  0 (default) for noise-free acquisitions; 1
            absorbs the unavoidable ±1 boundary flicker when transition
            noise makes codes toggle around an upper-bit boundary.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1:
            raise ValueError("codes must be one-dimensional")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if codes.size == 0:
            return MsbCheckResult(n_samples=0, n_mismatches=0,
                                  first_mismatch_index=None,
                                  n_clock_events=0,
                                  expected_clock_events=None)

        if clock_stream is not None:
            clock_stream = np.asarray(clock_stream)
            if clock_stream.size != codes.size:
                raise ValueError("clock_stream must match codes in length")
            clock_stream = clock_stream[None, :]

        # The on-chip counter is loaded with the upper bits of the first
        # sample (the ramp starts below the range, so this is normally 0)
        # and increments at every falling edge of the clocking bit; the
        # shared kernel runs that hardware with a device axis of one.
        upper_bits, reference, falling = batch_msb_reference(
            codes[None, :], self.q, clock=clock_stream)
        upper_bits, reference = upper_bits[0], reference[0]
        n_clock_events = int(falling.sum())

        mismatches = np.abs(upper_bits - reference) > tolerance
        n_mismatches = int(np.count_nonzero(mismatches))
        first = int(np.argmax(mismatches)) if n_mismatches else None

        expected = None
        if full_ramp:
            # Over a full ramp the upper bits step from 0 to 2**(n-q) - 1,
            # i.e. the clocking bit falls once per upper-bit increment.
            expected = (1 << (self.n_bits - self.q)) - 1

        return MsbCheckResult(n_samples=int(codes.size),
                              n_mismatches=n_mismatches,
                              first_mismatch_index=first,
                              n_clock_events=n_clock_events,
                              expected_clock_events=expected)

    # ------------------------------------------------------------------ #
    # Hardware cost
    # ------------------------------------------------------------------ #

    def gate_count(self) -> int:
        """Rough gate-equivalent count of the checker.

        An ``n - q``-bit counter, an ``n - q``-bit equality comparator
        (≈3 gates per bit), one edge-detect flip-flop and a sticky error
        flag.
        """
        width = self.n_bits - self.q
        counter = 9 * width + 1
        comparator = 3 * width
        return counter + comparator + 8 + 2
