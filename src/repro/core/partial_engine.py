"""The partial BIST of Figure 2: ``q`` LSBs off-chip, the rest on-chip.

The full-BIST engine in :mod:`repro.core.engine` covers the paper's ``q = 1``
configuration where everything is decided on-chip.  At higher stimulus
frequencies Equation (1) forces ``q > 1``: bits ``1 .. q`` must still be
captured by the tester (so their waveform can be reconstructed), while bits
``q+1 .. n`` are verified on-chip by a counter clocked by bit ``q``.

:class:`PartialBistEngine` models that complete flow:

1. the stimulus (ramp or sawtooth) is applied and the converter sampled,
2. the on-chip checker verifies the upper bits against a counter clocked by
   bit ``q`` (exactly the hardware of :class:`~repro.core.msb_checker.MsbChecker`
   with the partition point ``q``),
3. the tester captures only the ``q`` observed LSBs and *reconstructs* the
   full output codes from them — possible because, per Equation (1), the
   upper bits can only change when bit ``q`` falls,
4. the reconstructed codes are analysed off-chip with the conventional
   histogram machinery, giving DNL/INL and the pass/fail decision.

The engine reports both the test outcome and the reconstruction quality, so
the claim behind Equation (1) ("as long as (EQ 1) is satisfied it will be
possible to determine the total codeword from the value of the q least
significant bits") can be verified experimentally, including how it breaks
when the stimulus is too fast for the chosen ``q``.

The reconstruction, histogram and MSB-reference steps are batch-of-1 calls
into the shared vectorised kernel (:mod:`repro.core.kernel`); the
wafer-scale counterpart in :mod:`repro.production.partial_batch` runs the
identical array program over whole transition matrices, which is why its
accept/reject decisions match this engine bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.adc.base import ADC, ConversionRecord
from repro.analysis.linearity import LinearityResult, dnl_from_histogram
from repro.core.bist_scheme import PartialBistPartition, qmin
from repro.core.kernel import batch_code_histogram, batch_reconstruct_codes
from repro.core.msb_checker import MsbChecker, MsbCheckResult
from repro.signals.ramp import RampStimulus

__all__ = ["PartialBistConfig", "PartialBistResult", "PartialBistEngine",
           "reconstruct_codes"]

RngLike = Union[int, np.random.Generator, None]


def reconstruct_codes(observed_lsbs: np.ndarray, q: int, n_bits: int,
                      initial_upper: int = 0) -> np.ndarray:
    """Rebuild full output codes from the ``q`` observed LSBs.

    For a rising stimulus that satisfies Equation (1), the upper bits
    increment exactly when the observed ``q``-bit field wraps from its
    maximum back towards zero (bit ``q`` falling).  The tester therefore
    reconstructs the code as ``upper_counter * 2**q + observed``.

    Parameters
    ----------
    observed_lsbs:
        The captured ``q``-bit field per sample (values ``0 .. 2**q - 1``).
    q:
        Number of observed least-significant bits.
    n_bits:
        Full resolution of the converter (used to clip the reconstruction).
    initial_upper:
        Value of the upper bits at the first sample; 0 when the stimulus
        starts below the conversion range.
    """
    observed = np.asarray(observed_lsbs, dtype=np.int64)
    if observed.ndim != 1:
        raise ValueError("observed_lsbs must be one-dimensional")
    if not 1 <= q <= n_bits:
        raise ValueError(f"q must be within [1, {n_bits}]")
    if observed.size == 0:
        return observed.copy()
    # Batch-of-1 call into the shared vectorised kernel (the production
    # engines run the same function with thousands of rows).
    return batch_reconstruct_codes(observed[None, :], q, n_bits,
                                   initial_upper=initial_upper)[0]


@dataclass
class PartialBistConfig:
    """Configuration of a partial-BIST measurement.

    Parameters
    ----------
    n_bits:
        Converter resolution.
    q:
        Number of externally observed LSBs; ``None`` derives the minimum
        from Equation (1) for the configured stimulus.
    samples_per_code:
        Average samples per code of the ramp stimulus (sets the slope).
    dnl_spec_lsb, inl_spec_lsb:
        Specifications applied to the off-chip linearity analysis.
    check_msb:
        Run the on-chip check of bits ``q+1 .. n``.
    transition_noise_lsb:
        Converter input-referred noise during the acquisition.
    start_margin_lsb:
        How far below/above the conversion range the ramp extends.
    seed:
        Acquisition noise seed.
    """

    n_bits: int = 6
    q: Optional[int] = None
    samples_per_code: float = 16.0
    dnl_spec_lsb: float = 1.0
    inl_spec_lsb: Optional[float] = None
    check_msb: bool = True
    transition_noise_lsb: float = 0.0
    start_margin_lsb: float = 2.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_bits < 2:
            raise ValueError("n_bits must be at least 2")
        if self.q is not None and not 1 <= self.q <= self.n_bits:
            raise ValueError(f"q must be within [1, {self.n_bits}]")
        if self.samples_per_code <= 0:
            raise ValueError("samples_per_code must be positive")
        if self.dnl_spec_lsb < 0:
            raise ValueError("dnl_spec_lsb must be non-negative")


@dataclass
class PartialBistResult:
    """Outcome of one partial-BIST measurement.

    Attributes
    ----------
    passed:
        Overall decision: off-chip linearity pass AND on-chip check pass.
    partition:
        The bit partition used.
    linearity:
        Off-chip DNL/INL analysis of the reconstructed codes.
    linearity_passed:
        Pass/fail of the off-chip analysis against the configured specs.
    msb:
        Result of the on-chip upper-bit check (``None`` when disabled).
    reconstruction_error_rate:
        Fraction of samples whose reconstructed code differs from the code
        the converter actually produced (diagnostic; a tester cannot compute
        this, but the simulation can).
    samples_taken, bits_captured:
        Acquisition length and the number of bits the tester had to record
        (``samples_taken * q``).
    record:
        The raw conversion record, kept for diagnostics.
    """

    passed: bool
    partition: PartialBistPartition
    linearity: LinearityResult
    linearity_passed: bool
    msb: Optional[MsbCheckResult]
    reconstruction_error_rate: float
    samples_taken: int
    bits_captured: int
    record: Optional[ConversionRecord] = field(default=None, repr=False)


class PartialBistEngine:
    """Run the Figure-2 partial BIST on a behavioural converter."""

    def __init__(self, config: PartialBistConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    # Partition selection
    # ------------------------------------------------------------------ #

    def partition_for(self, adc: ADC,
                      stimulus_frequency: Optional[float] = None
                      ) -> PartialBistPartition:
        """The partition used for ``adc``: explicit ``q`` or Equation (1)."""
        cfg = self.config
        if cfg.q is not None:
            return PartialBistPartition(n_bits=cfg.n_bits, q=cfg.q)
        if stimulus_frequency is None:
            # A single ramp across the range at the configured slope.
            ramp_time = (adc.n_codes * cfg.samples_per_code) / adc.sample_rate
            stimulus_frequency = 1.0 / ramp_time
        q = qmin(stimulus_frequency, adc.sample_rate, cfg.n_bits,
                 dnl_spec_lsb=cfg.dnl_spec_lsb,
                 inl_spec_lsb=(cfg.inl_spec_lsb
                               if cfg.inl_spec_lsb is not None
                               else cfg.dnl_spec_lsb))
        return PartialBistPartition(n_bits=cfg.n_bits, q=q)

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #

    def run(self, adc: ADC, rng: RngLike = None,
            keep_record: bool = False) -> PartialBistResult:
        """Run the partial BIST on one converter."""
        cfg = self.config
        if adc.n_bits != cfg.n_bits:
            raise ValueError(
                f"configuration is for {cfg.n_bits}-bit converters but the "
                f"device under test has {adc.n_bits} bits")
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(
                         rng if rng is not None else cfg.seed))

        ramp = RampStimulus.for_adc(adc, cfg.samples_per_code,
                                    start_margin_lsb=cfg.start_margin_lsb)
        n_samples = ramp.n_samples_for_adc(adc,
                                           margin_lsb=cfg.start_margin_lsb)
        record = adc.sample(ramp, n_samples=n_samples, rng=generator,
                            transition_noise_lsb=cfg.transition_noise_lsb)

        partition = self.partition_for(adc)
        q = partition.q

        # --- on-chip: verify bits q+1 .. n against the counter ---------- #
        msb_result = None
        msb_ok = True
        if cfg.check_msb and q < cfg.n_bits:
            checker = MsbChecker(cfg.n_bits, q=q)
            msb_result = checker.check(record.codes)
            msb_ok = msb_result.passed

        # --- off-chip: reconstruct codes from the observed q LSBs ------- #
        mask = (1 << q) - 1
        observed = record.codes & mask
        initial_upper = int(record.codes[0] >> q)
        reconstructed = reconstruct_codes(observed, q, cfg.n_bits,
                                          initial_upper=initial_upper)
        errors = float(np.mean(reconstructed != record.codes))

        clipped = np.clip(reconstructed, 0, adc.n_codes - 1)
        counts = batch_code_histogram(clipped[None, :],
                                      adc.n_codes)[0].astype(float)
        linearity = dnl_from_histogram(counts)
        linearity_ok = linearity.passes(cfg.dnl_spec_lsb, cfg.inl_spec_lsb)

        return PartialBistResult(
            passed=bool(linearity_ok and msb_ok),
            partition=partition,
            linearity=linearity,
            linearity_passed=bool(linearity_ok),
            msb=msb_result,
            reconstruction_error_rate=errors,
            samples_taken=n_samples,
            bits_captured=n_samples * q,
            record=record if keep_record else None)
