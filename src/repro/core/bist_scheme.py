"""The partial-BIST partition: which output bits must stay off-chip.

Section 2 of the paper introduces the partial BIST scheme of Figure 2: the
least-significant bits ``1 .. q`` are processed/tested off-chip (or by the
LSB processing block), while bits ``q+1 .. MSB`` are verified on-chip by a
counter clocked by bit ``q``.  For the output codes to be reconstructable
from bit ``q`` alone, the signal on bit ``q`` must satisfy Shannon's theorem
with respect to the converter's sample rate, which leads to Equation (1):

    q_min = ceil( log2( (f_stimulus / f_sample) * 2**n + 1 + NL ) )

for a sawtooth stimulus, with the linearity budget of Equation (2):

    NL = min( DNL * 2**(q_min - 1),  INL * 2 )

Because ``NL`` itself depends on ``q_min``, the computation iterates to the
smallest self-consistent ``q``; at ramp-slow stimulus frequencies the result
is ``q = 1`` — only the LSB needs monitoring and a full BIST of the static
linearity becomes possible (the configuration the rest of the paper, and of
this library, analyses in depth).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["nl_budget", "qmin", "PartialBistPartition"]


def nl_budget(q: int, dnl_spec_lsb: float, inl_spec_lsb: float) -> float:
    """Equation (2): the non-linearity budget ``NL`` for a given ``q``.

    ``NL`` is the largest allowed difference (in LSB) between the ideal and
    actual transfer curves over a range of ``2**(q-1)`` codes: limited either
    by the DNL accumulating over that range or by twice the INL.
    """
    if q < 1:
        raise ValueError("q must be at least 1")
    if dnl_spec_lsb < 0 or inl_spec_lsb < 0:
        raise ValueError("specifications must be non-negative")
    return min(dnl_spec_lsb * (2.0 ** (q - 1)), inl_spec_lsb * 2.0)


def qmin(f_stimulus: float, f_sample: float, n_bits: int,
         dnl_spec_lsb: float = 1.0, inl_spec_lsb: float = 1.0,
         max_iterations: int = 32) -> int:
    """Equation (1): minimum number of externally monitored bits.

    Parameters
    ----------
    f_stimulus:
        Frequency of the applied sawtooth test signal in Hz.
    f_sample:
        Sample frequency of the converter in Hz.
    n_bits:
        Converter resolution.
    dnl_spec_lsb, inl_spec_lsb:
        Linearity specifications entering the ``NL`` budget of Equation (2).
    max_iterations:
        Safety bound on the fixed-point iteration between Equations (1)
        and (2).

    Returns
    -------
    int
        The smallest ``q`` (number of LSBs that must be observable) that
        satisfies Shannon's criterion for bit ``q``; clipped to
        ``[1, n_bits]``.

    Notes
    -----
    Equation (2) makes ``NL`` depend on ``q``; the function iterates
    ``q -> ceil(log2(f_stimulus/f_sample * 2**n + 1 + NL(q)))`` starting from
    ``q = 1`` until it stabilises.  The iteration is monotone non-decreasing
    and bounded by ``n_bits``, so it always terminates.
    """
    if f_stimulus <= 0 or f_sample <= 0:
        raise ValueError("frequencies must be positive")
    if n_bits < 1:
        raise ValueError("n_bits must be at least 1")

    ratio = f_stimulus / f_sample * (2.0 ** n_bits)
    q = 1
    for _ in range(max_iterations):
        budget = nl_budget(q, dnl_spec_lsb, inl_spec_lsb)
        argument = ratio + 1.0 + budget
        # At least one bit must always be monitored.
        q_new = max(1, int(math.ceil(math.log2(max(argument, 1.0)))))
        q_new = min(q_new, n_bits)
        if q_new == q:
            return q
        q = q_new
    return min(q, n_bits)


@dataclass(frozen=True)
class PartialBistPartition:
    """A concrete partition of the output bits between chip and tester.

    Attributes
    ----------
    n_bits:
        Converter resolution.
    q:
        Number of least-significant bits observed externally (or fed to the
        LSB processing block); bits ``q+1 .. n_bits`` are checked on-chip.
    """

    n_bits: int
    q: int

    def __post_init__(self) -> None:
        if self.n_bits < 1:
            raise ValueError("n_bits must be at least 1")
        if not 1 <= self.q <= self.n_bits:
            raise ValueError(f"q must be within [1, {self.n_bits}]")

    @classmethod
    def for_stimulus(cls, f_stimulus: float, f_sample: float, n_bits: int,
                     dnl_spec_lsb: float = 1.0,
                     inl_spec_lsb: float = 1.0) -> "PartialBistPartition":
        """Build the minimal partition for a given stimulus frequency."""
        q = qmin(f_stimulus, f_sample, n_bits, dnl_spec_lsb, inl_spec_lsb)
        return cls(n_bits=n_bits, q=q)

    @property
    def off_chip_bits(self) -> int:
        """Number of bits the tester still has to acquire per sample."""
        return self.q

    @property
    def on_chip_bits(self) -> int:
        """Number of bits verified entirely on-chip."""
        return self.n_bits - self.q

    @property
    def is_full_bist(self) -> bool:
        """True when only the LSB remains (the "full" BIST of the paper)."""
        return self.q == 1

    @property
    def pin_reduction_factor(self) -> float:
        """Ratio of output pins needed without and with the partial BIST."""
        return self.n_bits / self.q

    def test_data_reduction(self, n_samples: int) -> int:
        """Number of output bits the tester no longer has to capture.

        For an acquisition of ``n_samples`` conversions the conventional
        test transfers ``n_samples * n_bits`` bits; the partial BIST
        transfers only ``n_samples * q``.
        """
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        return n_samples * self.on_chip_bits

    def max_parallel_devices(self, tester_channels: int) -> int:
        """How many converters a tester with ``tester_channels`` digital
        channels can test in parallel under this partition."""
        if tester_channels < 1:
            raise ValueError("tester_channels must be positive")
        return max(1, tester_channels // self.q)
