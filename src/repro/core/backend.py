"""Pluggable kernel backends: the array-namespace seam for ``core.kernel``.

Every function in :mod:`repro.core.kernel` — and therefore all four batch
engines — runs against an ambient :class:`KernelBackend`.  A backend names
an array namespace (``xp``, NumPy for every shipping backend) plus the
capability flags the kernel consults on its hot paths:

``numpy``
    The default.  float64/int64 everywhere, pure NumPy: bit-identical to
    the historical kernel, including array dtypes.

``numpy-compact``
    Dtype compaction.  The large persistent matrices — code matrices,
    crossing-index matrices and histograms — are allocated in the
    narrowest dtype that can hold them (:meth:`KernelBackend.code_dtype`
    / :meth:`~KernelBackend.index_dtype` / :meth:`~KernelBackend.hist_dtype`
    size them from ``n_bits`` and the sample count), while reductions and
    transient event-path intermediates stay int64 so nothing can wrap.
    Integer outputs are **bit-identical** to ``numpy`` (same values,
    narrower dtype); float outputs are float64 unless ``compact_floats``
    is set, which opts transfer-curve/linearity intermediates into
    float32 under the *tolerance* equivalence tier.

``numba``
    Optional import.  JIT-compiled event paths
    (:func:`repro.core.kernel_jit` versions of ``packed_crossing_events``,
    ``batch_deglitch`` and ``batch_msb_reference``) on top of the compact
    dtypes.  Selecting it when numba is not importable raises
    :class:`BackendUnavailableError`.  Documented equivalence tier:
    integer outputs bit-exact, float outputs within ``atol`` (summation
    order may change inside JIT loops).

Selection is ambient and thread-local, mirroring ``abort_scope`` /
``telemetry_session``: engines resolve a concrete backend name in
``prepare()`` (stored on the picklable shard context) and enter
:func:`backend_scope` inside ``run_shard`` so worker processes resolve
identically.  The process-wide default honours the
``REPRO_KERNEL_BACKEND`` environment variable, which is how CI runs the
tier-1 subset under ``numpy-compact`` without touching any call site.
"""

from __future__ import annotations

import importlib.util
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "BackendUnavailableError",
    "KernelBackend",
    "DEFAULT_BACKEND_ENV",
    "available_backends",
    "auto_chunk_size",
    "backend_names",
    "backend_scope",
    "current_backend",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
]


#: Environment variable naming the process-wide default backend.
DEFAULT_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Working-set budget per engine chunk: the default ``chunk_size`` is the
#: number of device rows whose materialised per-row state fits this many
#: bytes (bounded by [CHUNK_FLOOR, CHUNK_CAP]).  Sized so a chunk's hot
#: arrays stay cache/bandwidth friendly while amortising NumPy call
#: overhead; compacted dtypes shrink the row and therefore widen the
#: default chunk.
CHUNK_BUDGET_BYTES = 32 << 20
CHUNK_FLOOR = 64
CHUNK_CAP = 65536


class BackendUnavailableError(RuntimeError):
    """A registered backend's optional dependency is not importable."""


def auto_chunk_size(row_bytes: int,
                    budget: int = CHUNK_BUDGET_BYTES,
                    floor: int = CHUNK_FLOOR,
                    cap: int = CHUNK_CAP) -> int:
    """Memory-bandwidth-aware default chunk size.

    ``row_bytes`` is the engine's estimate of bytes materialised per
    device row inside one chunk (noise matrices, code matrices, event
    intermediates) under the *active backend's* dtypes — compacted rows
    are smaller, so compact backends get proportionally wider chunks.
    Chunking is RNG-transparent (see :class:`repro.production.execution.
    ExecutionPlan`), so this default can never change results, only the
    working-set size.
    """
    row_bytes = max(int(row_bytes), 1)
    return int(max(floor, min(cap, budget // row_bytes)))


@dataclass(frozen=True)
class KernelBackend:
    """One kernel backend: an array namespace plus capability flags."""

    #: Registry key, e.g. ``"numpy-compact"``.
    name: str
    #: Compact integer dtypes for code/index/histogram matrices.
    compact: bool = False
    #: Dispatch event kernels to the :mod:`repro.core.kernel_jit` loops.
    jit: bool = False
    #: Opt float transfer-curve intermediates into float32.
    compact_floats: bool = False
    #: ``"bit-exact"`` or ``"tolerance"`` — the differential-harness tier.
    equivalence: str = "bit-exact"
    #: Absolute tolerance for float outputs under the tolerance tier.
    atol: float = 0.0
    #: Optional module that must be importable for the backend to work.
    requires: Optional[str] = None

    @property
    def xp(self):
        """The array namespace handle (NumPy for all shipping backends)."""
        return np

    @property
    def available(self) -> bool:
        """Whether the backend's optional dependency is importable."""
        if self.requires is None:
            return True
        try:
            return importlib.util.find_spec(self.requires) is not None
        except (ImportError, ValueError):  # pragma: no cover - env quirks
            return False

    # -- dtype selection -------------------------------------------------
    #
    # Compaction applies only to the large persistent matrices; every
    # helper keeps ×2 headroom above the maximum stored value so in-dtype
    # arithmetic like ``code << 1`` or an off-by-one sentinel can never
    # wrap.  Reductions (flat bincount keys, cumsum counters) stay int64
    # at the call sites.

    def code_dtype(self, n_levels: int) -> np.dtype:
        """Dtype for ADC code matrices holding values in ``[0, n_levels)``."""
        if self.compact:
            if 2 * n_levels <= np.iinfo(np.int16).max:
                return np.dtype(np.int16)
            if 2 * n_levels <= np.iinfo(np.int32).max:
                return np.dtype(np.int32)
        return np.dtype(np.int64)

    def index_dtype(self, n_samples: int) -> np.dtype:
        """Dtype for sample/crossing indices in ``[0, n_samples]``."""
        if self.compact and 2 * (n_samples + 1) <= np.iinfo(np.int32).max:
            return np.dtype(np.int32)
        return np.dtype(np.int64)

    def hist_dtype(self, n_samples: int) -> np.dtype:
        """Dtype for per-code histogram counts (bounded by ``n_samples``)."""
        if self.compact and n_samples + 1 <= np.iinfo(np.uint32).max:
            return np.dtype(np.uint32)
        return np.dtype(np.int64)

    def float_dtype(self) -> np.dtype:
        """Dtype for transfer-curve/linearity floats (float32 is opt-in)."""
        return np.dtype(np.float32 if self.compact_floats else np.float64)

    def require_available(self) -> "KernelBackend":
        """Return ``self`` or raise :class:`BackendUnavailableError`."""
        if not self.available:
            raise BackendUnavailableError(
                f"kernel backend {self.name!r} requires the optional "
                f"dependency {self.requires!r}, which is not installed")
        return self


_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register ``backend`` under its name (idempotent re-registration)."""
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, registration order."""
    return tuple(_REGISTRY)


def available_backends() -> Tuple[str, ...]:
    """Names of registered backends whose dependencies import."""
    return tuple(name for name, b in _REGISTRY.items() if b.available)


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name; raise if unknown or unavailable."""
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"registered: {', '.join(backend_names())}") from None
    return backend.require_available()


def resolve_backend_name(name: Optional[str]) -> str:
    """Concrete backend name for an engine: ``name`` or the ambient one.

    Engines call this in ``prepare()`` so the picklable shard context
    carries a concrete, validated name into worker processes.
    """
    if name is None:
        return current_backend().name
    return get_backend(name).name


register_backend(KernelBackend(name="numpy"))
register_backend(KernelBackend(name="numpy-compact", compact=True))
register_backend(KernelBackend(
    name="numba", compact=True, jit=True,
    equivalence="tolerance", atol=1e-9, requires="numba"))


_ACTIVE = threading.local()


def default_backend_name() -> str:
    """The process-wide default backend (``REPRO_KERNEL_BACKEND`` or numpy)."""
    return os.environ.get(DEFAULT_BACKEND_ENV, "numpy")


def current_backend() -> KernelBackend:
    """The ambient backend: innermost :func:`backend_scope`, else default."""
    stack = getattr(_ACTIVE, "stack", None)
    if stack:
        return stack[-1]
    return get_backend(default_backend_name())


@contextmanager
def backend_scope(name: str) -> Iterator[KernelBackend]:
    """Make ``name`` the ambient kernel backend for this thread."""
    backend = get_backend(name)
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    stack.append(backend)
    try:
        yield backend
    finally:
        popped = stack.pop()
        assert popped is backend
