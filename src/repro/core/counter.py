"""Bit-accurate model of the on-chip counters.

The accuracy/area trade-off of the whole paper comes down to the size of one
digital counter: the counter in the LSB processing block that counts samples
per code (4–7 bits in the experiments) and the code counter of the MSB
functionality checker.  :class:`SaturatingCounter` models such a counter with
explicit bit width, saturation or wrap-around behaviour and an overflow flag,
so the benches can show what a too-small counter actually does to the test
decision (the saturation-policy ablation listed in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SaturatingCounter"]


@dataclass
class SaturatingCounter:
    """An unsigned hardware counter with a configurable overflow policy.

    Parameters
    ----------
    n_bits:
        Width of the counter in bits.  A ``b``-bit counter represents counts
        ``0 .. 2**b - 1``; the paper additionally uses the overflow event as
        the count value ``2**b`` (``i_max = 16`` for the 4-bit counter), which
        is what ``saturate=True`` together with :attr:`effective_max` models.
    saturate:
        When true (default) the counter sticks at its maximum and raises the
        overflow flag; when false it wraps around modulo ``2**n_bits`` (and
        still raises the flag), which is the cheaper but dangerous hardware
        option the ablation benchmark examines.
    """

    n_bits: int
    saturate: bool = True
    value: int = field(default=0, init=False)
    overflowed: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.n_bits < 1:
            raise ValueError("n_bits must be at least 1")

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #

    @property
    def max_value(self) -> int:
        """Largest representable stored value (``2**n_bits - 1``)."""
        return (1 << self.n_bits) - 1

    @property
    def effective_max(self) -> int:
        """Largest distinguishable count including the overflow event.

        A saturating counter with an overflow flag can distinguish counts up
        to ``2**n_bits`` (the flag marks "at least ``2**n_bits``"), which is
        the ``i_max`` convention the paper uses.
        """
        return 1 << self.n_bits

    # ------------------------------------------------------------------ #
    # Operation
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Clear the count and the overflow flag (start of a new code)."""
        self.value = 0
        self.overflowed = False

    def clock(self, increments: int = 1) -> int:
        """Advance the counter by ``increments`` clock events.

        Returns the stored value after the increments.  Saturation or
        wrap-around is applied according to the configured policy and the
        overflow flag is raised whenever the true count exceeds
        :attr:`max_value`.
        """
        if increments < 0:
            raise ValueError("increments must be non-negative")
        true_count = self.value + increments
        if true_count > self.max_value:
            self.overflowed = True
            if self.saturate:
                self.value = self.max_value
            else:
                self.value = true_count & self.max_value
        else:
            self.value = true_count
        return self.value

    def read(self) -> int:
        """Return the count the comparison logic sees.

        With saturation enabled and the overflow flag set this is
        :attr:`effective_max` (the "at least ``2**b``" reading); otherwise it
        is the stored value.
        """
        if self.saturate and self.overflowed:
            return self.effective_max
        return self.value

    def count_events(self, n_events: int) -> int:
        """Reset, clock ``n_events`` times, and return the final reading."""
        self.reset()
        self.clock(n_events)
        return self.read()

    # ------------------------------------------------------------------ #
    # Area estimate
    # ------------------------------------------------------------------ #

    def gate_count(self) -> int:
        """Rough gate-equivalent count of this counter.

        A synchronous binary counter costs about one flip-flop (≈6 gate
        equivalents) plus a half-adder (≈3) per bit, plus one gate for the
        overflow flag.  The absolute number matters less than how it scales
        with the counter size for the Figure-1 trade-off discussion.
        """
        return 9 * self.n_bits + 1
