"""JIT-compiled event kernels for the ``numba`` backend.

Loop translations of the three event-path kernels the profile says matter
— :func:`repro.core.kernel.packed_crossing_events`,
:func:`repro.production.batch_engine.batch_deglitch` and
:func:`repro.core.kernel.batch_msb_reference` — compiled with
:func:`numba.njit` when numba is importable.  The import is gated: without
numba the same functions remain plain-Python loop references, which keeps
this module importable (and its logic testable against the vectorised
kernels on small inputs) in environments where the ``numba`` backend
itself is unavailable.

Equivalence contract: integer outputs are bit-exact against the NumPy
kernels by construction (same per-sample program, same order); float
outputs downstream of these kernels fall under the ``numba`` backend's
tolerance tier because JIT loops may re-associate float sums.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover - the default environment
    _numba = None

#: True when the loops below are actually numba-compiled.
NUMBA_AVAILABLE = _numba is not None

__all__ = [
    "NUMBA_AVAILABLE",
    "batch_deglitch_jit",
    "batch_msb_reference_jit",
    "packed_crossing_events_jit",
]


def _jit(func):
    """``numba.njit`` when available, otherwise the plain-Python loop."""
    if _numba is not None:  # pragma: no cover - numba environments only
        return _numba.njit(cache=True)(func)
    return func


# --------------------------------------------------------------------- #
# packed_crossing_events
# --------------------------------------------------------------------- #

@_jit
def _event_stats(crossing, n_samples, start_code, n_events):
    n_devices, n_levels = crossing.shape
    for d in range(n_devices):
        row = np.sort(crossing[d])
        starts = 0
        count = 0
        prev = -1
        for k in range(n_levels):
            c = row[k]
            if c == 0:
                starts += 1
            elif 1 <= c <= n_samples - 1:
                if c != prev:
                    count += 1
                    prev = c
        start_code[d] = starts
        n_events[d] = count


@_jit
def _event_fill(crossing, n_samples, mult_p, times_p, live):
    n_devices, n_levels = crossing.shape
    for d in range(n_devices):
        row = np.sort(crossing[d])
        pos = -1
        prev = -1
        for k in range(n_levels):
            c = row[k]
            if 1 <= c <= n_samples - 1:
                if c != prev:
                    pos += 1
                    prev = c
                    times_p[d, pos] = c
                    live[d, pos] = True
                mult_p[d, pos] += 1


def packed_crossing_events_jit(crossing: np.ndarray, n_samples: int,
                               mult_dtype, time_dtype):
    """JIT variant of :func:`repro.core.kernel.packed_crossing_events`.

    Same return contract (``start_code, mult, times, live, n_events``)
    and bit-exact values; ``crossing`` must be a C-contiguous int64
    matrix.
    """
    n_devices = crossing.shape[0]
    start_code = np.zeros(n_devices, dtype=np.int64)
    n_events = np.zeros(n_devices, dtype=np.int64)
    if n_devices:
        _event_stats(crossing, n_samples, start_code, n_events)
    width = int(n_events.max()) if n_devices else 0
    mult_p = np.zeros((n_devices, width), dtype=mult_dtype)
    times_p = np.full((n_devices, width), n_samples, dtype=time_dtype)
    live = np.zeros((n_devices, width), dtype=np.bool_)
    if width:
        _event_fill(crossing, n_samples, mult_p, times_p, live)
    return start_code, mult_p, times_p, live, n_events


# --------------------------------------------------------------------- #
# batch_msb_reference
# --------------------------------------------------------------------- #

@_jit
def _msb_reference_fill(codes, clock_bit, q, upper, reference, falling):
    n_devices, n_samples = codes.shape
    for d in range(n_devices):
        ref = codes[d, 0] >> q
        prev = clock_bit[d, 0]
        for t in range(n_samples):
            upper[d, t] = codes[d, t] >> q
            cb = clock_bit[d, t]
            f = 1 if (t > 0 and prev == 1 and cb == 0) else 0
            falling[d, t] = f
            ref += f
            reference[d, t] = ref
            prev = cb


def batch_msb_reference_jit(codes: np.ndarray, clock_bit: np.ndarray,
                            q: int, upper_dtype):
    """JIT variant of the :func:`repro.core.kernel.batch_msb_reference`
    counter loop; bit-exact, ``upper`` in the backend's code dtype."""
    upper = np.empty(codes.shape, dtype=upper_dtype)
    reference = np.empty(codes.shape, dtype=np.int64)
    falling = np.zeros(codes.shape, dtype=np.int64)
    if codes.shape[0] and codes.shape[1]:
        _msb_reference_fill(codes, clock_bit, q, upper, reference, falling)
    return upper, reference, falling


# --------------------------------------------------------------------- #
# batch_deglitch
# --------------------------------------------------------------------- #

@_jit
def _hysteresis_rows(values, depth, out):
    n_devices, n_samples = values.shape
    for d in range(n_devices):
        state = values[d, 0]
        run_value = state
        run_length = 0
        for i in range(n_samples):
            v = values[d, i]
            if v == run_value:
                run_length += 1
            else:
                run_value = v
                run_length = 1
            if run_value != state and run_length >= depth:
                state = run_value
            out[d, i] = state


@_jit
def _majority_rows(values, depth, out):
    window = 2 * depth + 1
    n_devices, n_samples = values.shape
    last = n_samples - 1
    for d in range(n_devices):
        s = 0
        for j in range(-depth, depth + 1):
            s += values[d, min(max(j, 0), last)]
        for i in range(n_samples):
            out[d, i] = 1 if 2 * s > window else 0
            s -= values[d, min(max(i - depth, 0), last)]
            s += values[d, min(max(i + depth + 1, 0), last)]


def batch_deglitch_jit(streams: np.ndarray, depth: int, mode: str
                       ) -> np.ndarray:
    """JIT row-wise :class:`~repro.core.deglitch.DeglitchFilter`;
    bit-exact against ``batch_deglitch`` (int8 0/1 output)."""
    values = (np.asarray(streams) != 0).astype(np.int8)
    if depth == 0 or values.shape[1] == 0:
        return values
    out = np.empty_like(values)
    if mode == "majority":
        _majority_rows(values, depth, out)
    else:
        _hysteresis_rows(values, depth, out)
    return out
