"""The paper's contribution: the BIST methodology for A/D converters.

* :mod:`repro.core.bist_scheme` — the partial-BIST partition and the
  ``q_min`` criterion (Equations (1) and (2), Figure 2),
* :mod:`repro.core.limits` — count limits of the DNL decision (Equations
  (3)–(5)),
* :mod:`repro.core.counter` — the bit-accurate on-chip counter model,
* :mod:`repro.core.decision` — the vectorised count-limit decision kernel
  shared by the scalar engine and the batch engine in
  :mod:`repro.production`,
* :mod:`repro.core.kernel` — the shared device-axis BIST kernel
  (quantisation, MSB reference counter, code reconstruction, histograms);
  the scalar engines below are batch-of-1 wrappers over it and the
  production engines run it wafer-wide,
* :mod:`repro.core.deglitch` — the digital filter removing LSB toggles,
* :mod:`repro.core.lsb_processor` — the LSB processing block (Figure 4),
* :mod:`repro.core.msb_checker` — the on-chip functionality check of the
  upper bits,
* :mod:`repro.core.engine` — the complete BIST measurement, including the
  population-level Monte-Carlo "measurement" runs,
* :mod:`repro.core.area` — the Figure 1 area/accuracy/fault-sensitivity
  trade-off model.
"""

from repro.core.area import AreaEstimate, AreaModel
from repro.core.bist_scheme import PartialBistPartition, nl_budget, qmin
from repro.core.controller import ChipBistResult, MultiAdcBistController
from repro.core.counter import SaturatingCounter
from repro.core.decision import CountDecision, counter_readings, decide_counts
from repro.core.deglitch import DeglitchFilter
from repro.core.engine import (
    BistConfig,
    BistEngine,
    BistResult,
    PopulationBistResult,
    true_goodness,
)
from repro.core.kernel import (
    batch_code_histogram,
    batch_histogram_linearity,
    batch_msb_reference,
    batch_quantise_rows,
    batch_quantise_shared,
    batch_reconstruct_codes,
    batch_shared_ramp_histogram,
    packed_crossing_events,
)
from repro.core.limits import CountLimits
from repro.core.lsb_processor import LsbProcessor, LsbProcessorResult
from repro.core.msb_checker import MsbChecker, MsbCheckResult
from repro.core.partial_engine import (
    PartialBistConfig,
    PartialBistEngine,
    PartialBistResult,
    reconstruct_codes,
)

__all__ = [
    "AreaEstimate",
    "AreaModel",
    "PartialBistPartition",
    "nl_budget",
    "qmin",
    "ChipBistResult",
    "MultiAdcBistController",
    "SaturatingCounter",
    "CountDecision",
    "counter_readings",
    "decide_counts",
    "DeglitchFilter",
    "BistConfig",
    "BistEngine",
    "BistResult",
    "PopulationBistResult",
    "true_goodness",
    "CountLimits",
    "LsbProcessor",
    "LsbProcessorResult",
    "MsbChecker",
    "MsbCheckResult",
    "PartialBistConfig",
    "PartialBistEngine",
    "PartialBistResult",
    "reconstruct_codes",
    "batch_code_histogram",
    "batch_histogram_linearity",
    "batch_shared_ramp_histogram",
    "batch_msb_reference",
    "batch_quantise_rows",
    "batch_quantise_shared",
    "batch_reconstruct_codes",
    "packed_crossing_events",
]
