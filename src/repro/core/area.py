"""Area / cost model of the on-chip test circuitry (the Figure 1 trade-off).

The paper's Figure 1 relates the *size* of the on-chip test circuitry to four
quantities: the accuracy of the test, the probability of measurement (type I
and II) errors, the cost of the extra silicon, and the fault sensitivity of
the test circuitry itself.  This module quantifies that trade-off for the
full-BIST configuration: given a counter size it estimates the gate count of
the complete test logic, converts it to a silicon-area overhead relative to
the converter, and estimates how likely the test circuitry itself is to be
hit by a defect (larger test logic → more self-test escapes).

The absolute numbers are order-of-magnitude estimates (gate counts for a
mid-1990s standard-cell library); what matters for reproducing the paper's
argument is how they *scale* with the counter size, which is what the
ablation benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.deglitch import DeglitchFilter
from repro.core.limits import CountLimits
from repro.core.lsb_processor import LsbProcessor
from repro.core.msb_checker import MsbChecker

__all__ = ["AreaModel", "AreaEstimate"]


@dataclass(frozen=True)
class AreaEstimate:
    """Estimated cost of one BIST configuration.

    Attributes
    ----------
    counter_bits:
        The counter size the estimate is for.
    gate_count:
        Total gate equivalents of the on-chip test circuitry.
    area_mm2:
        Estimated silicon area of the test circuitry.
    area_overhead:
        Test-circuitry area divided by the converter core area.
    max_error_lsb:
        Worst-case code-width measurement error of the configuration — the
        "accuracy" corner of Figure 1.
    defect_probability:
        Probability that a random spot defect on the die lands in the test
        circuitry (area-proportional model) — the "fault sensitivity" corner
        of Figure 1.
    """

    counter_bits: int
    gate_count: int
    area_mm2: float
    area_overhead: float
    max_error_lsb: float
    defect_probability: float


class AreaModel:
    """Estimate the silicon cost of the BIST logic.

    Parameters
    ----------
    n_bits:
        Converter resolution (sizes the MSB checker).
    adc_core_area_mm2:
        Area of the converter core the overhead is measured against.  The
        default (0.5 mm²) is representative of a mid-1990s 6-bit flash in a
        0.5 µm process.
    mm2_per_gate:
        Area per gate equivalent, including routing.  The default
        (1.5e-4 mm²) corresponds to roughly 6.7 kGates/mm².
    defects_per_mm2:
        Average spot-defect density used for the fault-sensitivity estimate.
    """

    def __init__(self, n_bits: int = 6, adc_core_area_mm2: float = 0.5,
                 mm2_per_gate: float = 1.5e-4,
                 defects_per_mm2: float = 0.1) -> None:
        if n_bits < 2:
            raise ValueError("n_bits must be at least 2")
        if adc_core_area_mm2 <= 0 or mm2_per_gate <= 0:
            raise ValueError("areas must be positive")
        if defects_per_mm2 < 0:
            raise ValueError("defects_per_mm2 must be non-negative")
        self.n_bits = int(n_bits)
        self.adc_core_area_mm2 = float(adc_core_area_mm2)
        self.mm2_per_gate = float(mm2_per_gate)
        self.defects_per_mm2 = float(defects_per_mm2)

    def estimate(self, counter_bits: int, dnl_spec_lsb: float = 1.0,
                 inl_spec_lsb: Optional[float] = None,
                 deglitch_depth: int = 0,
                 include_msb_checker: bool = True) -> AreaEstimate:
        """Estimate the cost of a full-BIST configuration.

        Parameters mirror :class:`repro.core.engine.BistConfig`; the estimate
        covers the LSB processing block (with its optional INL accumulator
        and deglitch filter) and, optionally, the MSB functionality checker.
        """
        limits = CountLimits.for_counter(counter_bits, dnl_spec_lsb,
                                         inl_spec_lsb=inl_spec_lsb)
        deglitch = (DeglitchFilter(deglitch_depth)
                    if deglitch_depth > 0 else None)
        processor = LsbProcessor(limits, deglitch=deglitch)
        gates = processor.gate_count()
        if include_msb_checker:
            gates += MsbChecker(self.n_bits, q=1).gate_count()
        # Pass/fail latch and a little control logic.
        gates += 20

        area = gates * self.mm2_per_gate
        overhead = area / self.adc_core_area_mm2
        defect_probability = 1.0 - pow(
            2.718281828459045, -self.defects_per_mm2 * area)
        return AreaEstimate(counter_bits=int(counter_bits),
                            gate_count=int(gates),
                            area_mm2=area,
                            area_overhead=overhead,
                            max_error_lsb=limits.max_error_lsb,
                            defect_probability=defect_probability)

    def sweep_counter_bits(self, counter_bits_range,
                           dnl_spec_lsb: float = 1.0,
                           **kwargs) -> list:
        """Estimates for a range of counter sizes (the Figure 1 sweep)."""
        return [self.estimate(bits, dnl_spec_lsb=dnl_spec_lsb, **kwargs)
                for bits in counter_bits_range]
