"""Count limits of the LSB processing block (Equations (3) – (5)).

The on-chip pass/fail decision for a code width compares the number of
samples counted within that code against a lower and an upper limit derived
from the DNL specification:

    i_min = ceil( dV_min / ds )          (Equation (3))
    i_max = floor( dV_max / ds )         (Equation (4))
    ds    = U / f_sample                 (Equation (5))

where ``dV_min/dV_max`` are the smallest/largest allowed code widths and
``U`` the ramp slope.  :class:`CountLimits` bundles the limits together with
the step size and counter size they were derived for, plus the INL limits the
accumulating part of the LSB processing block uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.error_model import (
    count_limits,
    counter_bits_needed,
    delta_s_for_counter,
    max_measurement_error_lsb,
)

__all__ = ["CountLimits"]


@dataclass(frozen=True)
class CountLimits:
    """DNL/INL count limits of the LSB processing block.

    Attributes
    ----------
    delta_s_lsb:
        Voltage step between samples, in LSB (Equation (5)).
    i_min, i_max:
        Acceptance limits on the per-code sample count (Equations (3), (4)).
    counter_bits:
        Size of the counter that must hold the count (``i_max`` never
        exceeds ``2**counter_bits``).
    dnl_spec_lsb:
        The DNL specification the limits were derived from.
    inl_spec_lsb:
        The INL specification; ``None`` when the INL is not checked.
    """

    delta_s_lsb: float
    i_min: int
    i_max: int
    counter_bits: int
    dnl_spec_lsb: float
    inl_spec_lsb: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def for_counter(cls, counter_bits: int, dnl_spec_lsb: float,
                    inl_spec_lsb: Optional[float] = None,
                    delta_s_lsb: Optional[float] = None) -> "CountLimits":
        """Derive the limits for a given counter size.

        When ``delta_s_lsb`` is omitted, the step size is chosen as in the
        paper's section 4: the slope is set so that the counter's full range
        is used (``ds = dV_max / (2**bits + 0.5)``).
        """
        if counter_bits < 1:
            raise ValueError("counter_bits must be at least 1")
        if delta_s_lsb is None:
            delta_s_lsb = delta_s_for_counter(counter_bits, dnl_spec_lsb)
        i_min, i_max = count_limits(delta_s_lsb, dnl_spec_lsb,
                                    counter_max=1 << counter_bits)
        return cls(delta_s_lsb=float(delta_s_lsb), i_min=i_min, i_max=i_max,
                   counter_bits=int(counter_bits),
                   dnl_spec_lsb=float(dnl_spec_lsb),
                   inl_spec_lsb=inl_spec_lsb)

    @classmethod
    def for_delta_s(cls, delta_s_lsb: float, dnl_spec_lsb: float,
                    inl_spec_lsb: Optional[float] = None) -> "CountLimits":
        """Derive the limits for a given step size, sizing the counter to fit."""
        bits = counter_bits_needed(delta_s_lsb, dnl_spec_lsb)
        i_min, i_max = count_limits(delta_s_lsb, dnl_spec_lsb,
                                    counter_max=1 << bits)
        return cls(delta_s_lsb=float(delta_s_lsb), i_min=i_min, i_max=i_max,
                   counter_bits=bits, dnl_spec_lsb=float(dnl_spec_lsb),
                   inl_spec_lsb=inl_spec_lsb)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def ideal_count(self) -> float:
        """Expected number of samples in a perfectly 1-LSB-wide code."""
        return 1.0 / self.delta_s_lsb

    @property
    def samples_per_code(self) -> float:
        """Alias of :attr:`ideal_count` (the paper's "samples per code")."""
        return self.ideal_count

    @property
    def max_error_lsb(self) -> float:
        """Worst-case code-width measurement error (one step)."""
        return max_measurement_error_lsb(self.delta_s_lsb)

    def inl_count_limits(self) -> Tuple[float, float]:
        """Lower/upper limits for the accumulated (INL) count deviation.

        The INL accumulator sums ``count_k - ideal_count`` over the codes;
        the device fails the INL check when the accumulated deviation leaves
        ``±inl_spec / ds`` counts.  Raises ``ValueError`` when no INL spec
        was configured.
        """
        if self.inl_spec_lsb is None:
            raise ValueError("no INL specification configured")
        bound = self.inl_spec_lsb / self.delta_s_lsb
        return -bound, bound

    def accepts(self, count: int) -> bool:
        """Decision of the comparison logic for one code count."""
        return self.i_min <= count <= self.i_max

    def describe(self) -> str:
        """One-line human-readable summary of the limits."""
        inl = (f", INL ±{self.inl_spec_lsb} LSB"
               if self.inl_spec_lsb is not None else "")
        return (f"{self.counter_bits}-bit counter, ds={self.delta_s_lsb:.4f} "
                f"LSB, accept {self.i_min}..{self.i_max} counts "
                f"(DNL ±{self.dnl_spec_lsb} LSB{inl})")
