"""Vectorised count-limit decision kernel of the LSB processing block.

The pass/fail logic of the paper's Figure 4 boils down to a handful of pure
array operations on per-code sample counts:

1. turn each true count into the *counter reading* the hardware reports
   (saturating at ``2**bits`` or wrapping, see
   :class:`~repro.core.counter.SaturatingCounter`),
2. compare every reading against ``i_min``/``i_max`` (Equations (3), (4)),
   with the sticky over-range flag rejecting counts beyond the counter's
   reach even when the saturated reading coincides with ``i_max``,
3. accumulate the reading deviations from the ideal count and compare the
   running sum against the INL limits.

This module is that logic, factored out of :class:`~repro.core.lsb_processor.
LsbProcessor` so the scalar engine and the production-line batch engine
(:mod:`repro.production`) share one bit-exact kernel.  All functions accept
either a 1-D count vector (one device) or a 2-D ``(devices, codes)`` matrix
padded along the last axis; the INL accumulation always runs along the last
axis, so a padded row reproduces the exact float sequence of the equivalent
1-D call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.limits import CountLimits

__all__ = ["CountDecision", "counter_readings", "decide_counts"]


def counter_readings(counts: np.ndarray, counter_bits: int,
                     saturate: bool = True) -> np.ndarray:
    """Vectorised :meth:`SaturatingCounter.count_events` over true counts.

    Parameters
    ----------
    counts:
        True number of clock events per code segment (any shape, ints).
    counter_bits:
        Width of the hardware counter.
    saturate:
        Overflow policy; saturating counters report the "at least
        ``2**bits``" reading on overflow, wrapping counters report the count
        modulo ``2**bits``.
    """
    if counter_bits < 1:
        raise ValueError("counter_bits must be at least 1")
    counts = np.asarray(counts, dtype=np.int64)
    max_value = (1 << counter_bits) - 1
    if saturate:
        return np.where(counts > max_value, 1 << counter_bits, counts)
    return counts & max_value


@dataclass
class CountDecision:
    """Element-wise outcome of the count-limit comparison logic.

    All arrays share the shape of the ``counts`` input.  For padded 2-D
    input the entries beyond a device's ``valid`` mask are forced to pass so
    that per-device ``all`` reductions work directly.
    """

    readings: np.ndarray
    over_range: np.ndarray
    dnl_pass: np.ndarray
    inl_deviation: np.ndarray
    inl_pass: np.ndarray

    @property
    def code_pass(self) -> np.ndarray:
        """Combined per-code decision (DNL and INL comparators)."""
        return self.dnl_pass & self.inl_pass


def decide_counts(counts: np.ndarray, limits: CountLimits,
                  saturate: bool = True,
                  valid: Optional[np.ndarray] = None) -> CountDecision:
    """Run the comparison logic of the LSB processing block over counts.

    Parameters
    ----------
    counts:
        Per-code true sample counts; 1-D for one device or 2-D
        ``(devices, codes)`` left-packed and padded with zeros.
    limits:
        The count limits (step size, ``i_min``/``i_max``, counter size, INL
        spec) the comparison logic uses.
    saturate:
        Overflow policy of the sample counter.
    valid:
        Optional boolean mask marking real (non-padding) entries.  Padding
        must sit to the right of every valid entry of its row, as produced
        by left-packing a ragged batch.
    """
    counts = np.asarray(counts, dtype=np.int64)
    readings = counter_readings(counts, limits.counter_bits,
                                saturate=saturate)
    effective_max = 1 << limits.counter_bits
    over_range = counts > effective_max
    dnl_pass = ((readings >= limits.i_min)
                & (readings <= limits.i_max)
                & ~over_range)

    deviations = readings - limits.ideal_count
    if valid is not None:
        # Padding entries must not perturb the running INL sum.
        deviations = np.where(valid, deviations, 0.0)
    inl_running = np.cumsum(deviations, axis=-1)
    if limits.inl_spec_lsb is not None:
        lo, hi = limits.inl_count_limits()
        inl_pass = (inl_running >= lo) & (inl_running <= hi)
    else:
        inl_pass = np.ones(counts.shape, dtype=bool)

    if valid is not None:
        dnl_pass = dnl_pass | ~valid
        inl_pass = inl_pass | ~valid
    return CountDecision(readings=readings, over_range=over_range,
                         dnl_pass=dnl_pass, inl_deviation=inl_running,
                         inl_pass=inl_pass)
