"""The LSB processing block (Figure 4 of the paper).

During a ramp test the linearity information of the converter is entirely
contained in its least-significant bit: every LSB transition marks a code
boundary, so the number of samples between two successive transitions is the
width of that code measured in units of the per-sample step ``ds``.  The
block modelled here is the paper's Figure 4:

* **edge detector** on the (deglitched) LSB,
* **counter** counting samples between transitions,
* **DNL comparator** checking each count against ``i_min``/``i_max``
  (Equations (3) and (4)) and producing a per-code pass/fail,
* **INL accumulator** summing the per-code count deviations from the ideal
  count and checking the running sum against the INL limits.

The model is bit-accurate with respect to the counter (saturation and
overflow behave like the hardware) but otherwise behavioural: it consumes a
stream of LSB samples and produces the same pass/fail decisions the on-chip
logic would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.counter import SaturatingCounter
from repro.core.decision import decide_counts
from repro.core.deglitch import DeglitchFilter
from repro.core.limits import CountLimits

__all__ = ["LsbProcessor", "LsbProcessorResult"]


@dataclass
class LsbProcessorResult:
    """Outcome of one pass of the LSB processing block over a ramp record.

    Attributes
    ----------
    counts:
        True number of samples in each complete code segment (between two
        successive LSB transitions), in acquisition order.
    counter_readings:
        What the hardware counter reported for each segment — equal to
        ``counts`` unless the counter overflowed.
    dnl_pass_per_code:
        Per-code decision of the DNL comparator.
    inl_deviation_counts:
        Running sum of ``reading - ideal_count`` after each code (the INL
        accumulator content), in counts.
    inl_pass_per_code:
        Per-code decision of the INL comparator (all ``True`` when no INL
        spec is configured).
    n_transitions:
        Number of LSB transitions seen in the record.
    expected_transitions:
        Number of transitions a healthy converter would produce
        (``2**n_bits - 1``); ``None`` when the resolution was not supplied.
    dnl_passed, inl_passed, transitions_ok, passed:
        Aggregate decisions.
    measured_widths_lsb:
        Code widths reconstructed from the counter readings
        (``reading * ds``), in LSB — the measurement the BIST effectively
        performs.
    """

    counts: np.ndarray
    counter_readings: np.ndarray
    dnl_pass_per_code: np.ndarray
    inl_deviation_counts: np.ndarray
    inl_pass_per_code: np.ndarray
    n_transitions: int
    expected_transitions: Optional[int]
    limits: CountLimits

    @property
    def n_codes_measured(self) -> int:
        """Number of complete code segments that were measured."""
        return int(self.counts.size)

    @property
    def dnl_passed(self) -> bool:
        """True when every measured code met the DNL count limits."""
        return bool(np.all(self.dnl_pass_per_code)) if self.counts.size else False

    @property
    def inl_passed(self) -> bool:
        """True when the accumulated deviation never left the INL limits."""
        return bool(np.all(self.inl_pass_per_code)) if self.counts.size else False

    @property
    def transitions_ok(self) -> bool:
        """True when the record contained the expected number of transitions.

        A missing code removes two LSB transitions, a gross defect can add
        or remove many; either way the transition count differs from
        ``2**n - 1`` and the device must be rejected even if every measured
        segment happens to sit inside the count limits.
        """
        if self.expected_transitions is None:
            return True
        return self.n_transitions == self.expected_transitions

    @property
    def passed(self) -> bool:
        """Overall static-linearity decision of the LSB processing block."""
        return self.dnl_passed and self.inl_passed and self.transitions_ok

    @property
    def measured_widths_lsb(self) -> np.ndarray:
        """Code widths implied by the counter readings, in LSB."""
        return self.counter_readings * self.limits.delta_s_lsb

    @property
    def measured_dnl_lsb(self) -> np.ndarray:
        """DNL estimate from the counter readings (end-point convention)."""
        widths = self.measured_widths_lsb
        if widths.size == 0:
            return widths
        return widths / widths.mean() - 1.0

    def failing_codes(self) -> np.ndarray:
        """Indices (0-based, acquisition order) of codes failing the DNL check."""
        return np.nonzero(~self.dnl_pass_per_code)[0]


class LsbProcessor:
    """Behavioural model of the on-chip LSB processing block.

    Parameters
    ----------
    limits:
        The count limits (step size, ``i_min``/``i_max``, counter size, INL
        spec) the comparison logic uses.
    deglitch:
        Optional deglitch filter applied to the raw LSB before edge
        detection; ``None`` processes the raw stream.
    counter_saturate:
        Overflow policy of the sample counter (see
        :class:`~repro.core.counter.SaturatingCounter`).
    """

    def __init__(self, limits: CountLimits,
                 deglitch: Optional[DeglitchFilter] = None,
                 counter_saturate: bool = True) -> None:
        self.limits = limits
        self.deglitch = deglitch
        self.counter_saturate = counter_saturate

    # ------------------------------------------------------------------ #
    # Processing
    # ------------------------------------------------------------------ #

    def process(self, lsb_stream: np.ndarray,
                n_bits: Optional[int] = None) -> LsbProcessorResult:
        """Run the block over a stream of LSB samples.

        Parameters
        ----------
        lsb_stream:
            Raw 0/1 LSB samples from a rising-ramp acquisition.
        n_bits:
            Resolution of the converter; when given, the result also checks
            that the expected number of transitions (``2**n_bits - 1``) was
            observed.
        """
        stream = (np.asarray(lsb_stream) != 0).astype(np.int8)
        if stream.ndim != 1:
            raise ValueError("lsb_stream must be one-dimensional")
        if self.deglitch is not None:
            stream = self.deglitch.apply(stream)

        edges = np.nonzero(np.diff(stream) != 0)[0] + 1
        n_transitions = int(edges.size)
        expected = ((1 << n_bits) - 1) if n_bits is not None else None

        if n_transitions >= 2:
            counts = np.diff(edges).astype(np.int64)
        else:
            counts = np.zeros(0, dtype=np.int64)

        decision = decide_counts(counts, self.limits,
                                 saturate=self.counter_saturate)

        return LsbProcessorResult(
            counts=counts,
            counter_readings=decision.readings,
            dnl_pass_per_code=decision.dnl_pass,
            inl_deviation_counts=decision.inl_deviation,
            inl_pass_per_code=decision.inl_pass,
            n_transitions=n_transitions,
            expected_transitions=expected,
            limits=self.limits)

    # ------------------------------------------------------------------ #
    # Hardware cost
    # ------------------------------------------------------------------ #

    def gate_count(self) -> int:
        """Rough gate-equivalent count of the whole block.

        Edge detector (1 flip-flop + XOR ≈ 8), sample counter, two count
        comparators (≈3 gates per bit each), the INL accumulator (an
        adder/register roughly twice the counter width) and its comparators,
        plus the deglitch filter when present.
        """
        bits = self.limits.counter_bits
        edge_detector = 8
        counter = SaturatingCounter(bits).gate_count()
        comparators = 2 * 3 * bits
        inl_accumulator = 0
        if self.limits.inl_spec_lsb is not None:
            inl_accumulator = 9 * (2 * bits) + 2 * 3 * (2 * bits)
        deglitch = self.deglitch.gate_count() if self.deglitch else 0
        return edge_detector + counter + comparators + inl_accumulator + deglitch
