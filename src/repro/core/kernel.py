"""Shared vectorised BIST kernel: the stimulus→acquisition→stream pipeline.

Every BIST configuration in this library — full BIST (``q = 1``), partial
BIST with ``q`` LSBs off-chip, single device or wafer-scale batch, flash or
any other converter architecture — runs the same underlying pipeline:

1. **quantise** a stimulus against a batch of static transfer curves, giving
   a ``(devices, samples)`` code matrix (or, noise-free, just the
   transition-crossing events that define it),
2. derive the **bit streams** the on-chip hardware sees (the LSB for the
   full BIST, bit ``q`` for the partial scheme),
3. run the **MSB reference counter** that verifies the upper bits against
   the falling edges of the clocking bit,
4. for the partial scheme, **reconstruct** the full output codes from the
   ``q`` observed LSBs and histogram them for the off-chip analysis.

This module is that pipeline, written once with an explicit device axis.
The scalar engines (:class:`~repro.core.msb_checker.MsbChecker`,
:func:`~repro.core.partial_engine.reconstruct_codes`,
:class:`~repro.core.partial_engine.PartialBistEngine`) are batch-of-1
wrappers over these functions, and the production engines
(:mod:`repro.production.batch_engine`,
:mod:`repro.production.partial_batch`) call them with thousands of rows —
either directly (the noisy stream paths) or through the event-based fast
paths built on :func:`packed_crossing_events`, which evaluate the same
per-sample program only at the samples where anything changes.
:func:`batch_quantise_shared` is the reference semantics those event
reductions are equivalence-tested against.  Because every layer reduces to
the same array program, scalar and batch decisions agree bit for bit by
construction.

All functions take and return plain :mod:`numpy` arrays; none of them draw
random numbers or hold state.

Every function runs against the ambient :class:`~repro.core.backend.
KernelBackend` (see :func:`~repro.core.backend.backend_scope`): the
``numpy`` backend reproduces the historical float64/int64 kernel bit for
bit including dtypes, ``numpy-compact`` stores the large code / crossing /
histogram matrices in the narrowest safe dtype (identical values), and
``numba`` additionally dispatches the event kernels to the JIT loops in
:mod:`repro.core.kernel_jit`.  Reductions and transient intermediates stay
int64 regardless of backend so compaction can never wrap.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.core.backend import current_backend

__all__ = [
    "batch_quantise_shared",
    "batch_quantise_rows",
    "batch_bit",
    "batch_falling_edges",
    "batch_msb_reference",
    "batch_reconstruct_codes",
    "batch_code_histogram",
    "batch_histogram_linearity",
    "batch_shared_ramp_histogram",
    "packed_crossing_events",
    "shared_crossing_indices",
]


def _uniform_ramp_step(voltages: np.ndarray) -> Optional[float]:
    """The sample step if ``voltages`` is a uniformly spaced rising ramp.

    Returns ``None`` when the stimulus is too short, non-increasing, or
    deviates from the linear fit by more than an eighth of a step (bowed
    or noisy ramps) — callers then fall back to ``searchsorted``.
    """
    n = voltages.size
    if n < 8:
        return None
    step = (float(voltages[-1]) - float(voltages[0])) / (n - 1)
    if not np.isfinite(step) or step <= 0.0:
        return None
    ideal = voltages[0] + step * np.arange(n)
    if float(np.max(np.abs(voltages - ideal))) > 0.125 * step:
        return None
    return step


def shared_crossing_indices(transitions: np.ndarray,
                            voltages: np.ndarray) -> np.ndarray:
    """Crossing sample indices of transition levels into a shared ramp.

    Semantically identical to ``np.searchsorted(voltages, transitions)``
    — entry ``[d, k]`` is the smallest sample index ``t`` with
    ``voltages[t] >= transitions[d, k]`` (``voltages.size`` when never
    reached) — but for the common case of a *uniformly spaced* rising
    ramp the index is computed arithmetically (guess from the inverted
    ramp equation, then a bounded advance to the exact boundary) instead
    of by binary search, which removes the dominant ``log(samples)``
    factor from the noise-free event paths.  Any element the bounded
    advance cannot pin down exactly is re-derived with ``searchsorted``,
    so the result is bit-exact by construction on every input; non-linear
    or noisy stimuli skip the fast path entirely.

    The returned dtype is the active backend's
    :meth:`~repro.core.backend.KernelBackend.index_dtype`.
    """
    transitions = np.asarray(transitions, dtype=float)
    voltages = np.asarray(voltages, dtype=float)
    n_samples = voltages.size
    out_dtype = current_backend().index_dtype(n_samples)
    flat = transitions.ravel()
    step = _uniform_ramp_step(voltages)
    if step is None:
        idx = np.searchsorted(voltages, flat)
        return idx.astype(out_dtype, copy=False).reshape(transitions.shape)
    guess = np.floor((flat - voltages[0]) / step).astype(np.int64)
    guess -= 1
    np.clip(guess, 0, n_samples, out=guess)
    ext = np.concatenate((voltages, [np.inf]))
    # The guess undershoots the true boundary by at most ~2 samples
    # (1 from the floor-vs-ceil margin, <=1 from the allowed ramp
    # deviation), so a few vectorised advances reach it.
    for _ in range(4):
        low = ext[guess] < flat
        if not low.any():
            break
        guess[low] += 1
    # Exactness guarantee: an index is correct iff voltages[idx] >= v and
    # (idx == 0 or voltages[idx - 1] < v).  Re-derive any leftovers.
    bad = ext[guess] < flat
    bad |= (guess > 0) & (ext[guess - 1] >= flat)
    if bad.any():
        guess[bad] = np.searchsorted(voltages, flat[bad])
    return guess.astype(out_dtype, copy=False).reshape(transitions.shape)


def batch_quantise_shared(transitions: np.ndarray,
                          voltages: np.ndarray) -> np.ndarray:
    """Quantise one shared, monotone stimulus against a batch of curves.

    The noise-free acquisition of every BIST configuration: all devices see
    the identical rising ramp, so the full code matrix follows from the
    *crossing events* alone.  ``crossing[d, k]`` — the first sample whose
    ramp voltage reaches transition ``k`` of device ``d`` — is found with a
    single :func:`numpy.searchsorted` of all transition levels into the
    ramp; the output code at sample ``t`` is the number of crossings at or
    before ``t`` (a thermometer count, so non-monotone faulty curves are
    handled exactly like :meth:`repro.adc.transfer.TransferFunction.convert`
    handles them).

    Parameters
    ----------
    transitions:
        ``(devices, n_transitions)`` matrix of transition voltages.
    voltages:
        The shared stimulus samples, strictly increasing (a rising ramp).

    Returns
    -------
    numpy.ndarray
        ``(devices, samples)`` integer code matrix (int64, or the active
        backend's compact code dtype); row ``d`` equals
        ``TransferFunction.convert`` of device ``d`` applied to
        ``voltages``.
    """
    transitions = np.asarray(transitions, dtype=float)
    voltages = np.asarray(voltages, dtype=float)
    if transitions.ndim != 2:
        raise ValueError("transitions must be a (devices, levels) matrix")
    if voltages.ndim != 1:
        raise ValueError("voltages must be one-dimensional")
    n_devices = transitions.shape[0]
    n_samples = voltages.size
    crossing = shared_crossing_indices(transitions, voltages)
    # Scatter the crossing multiplicities onto the sample axis and
    # accumulate: codes[d, t] = #{k : crossing[d, k] <= t}.  Crossings at
    # n_samples (never reached within the record) land in a discarded
    # overflow column.  Keys stay int64 (the flat index spans
    # devices * samples); only the stored code matrix compacts.
    keys = (np.arange(n_devices, dtype=np.int64)[:, None] * (n_samples + 1)
            + crossing).ravel()
    steps = np.bincount(keys, minlength=n_devices * (n_samples + 1))
    steps = steps.reshape(n_devices, n_samples + 1)[:, :n_samples]
    code_dtype = current_backend().code_dtype(transitions.shape[1] + 1)
    return np.cumsum(steps, axis=1, dtype=code_dtype)


def packed_crossing_events(crossing: np.ndarray, n_samples: int
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                      np.ndarray, np.ndarray]:
    """Left-packed (device, event) layout of shared-ramp crossing events.

    The event-based engines never materialise the ``(devices, samples)``
    code matrix: with a shared monotone stimulus the acquisition is fully
    described by *when* each transition is crossed.  This helper reduces a
    crossing-index matrix to the per-device event list both the full-BIST
    engine (irregular devices) and the partial-BIST engine build on.

    Parameters
    ----------
    crossing:
        ``(devices, n_transitions)`` matrix of crossing sample indices, as
        produced by ``searchsorted(ramp_voltages, transitions)``.  Indices
        of 0 mean "already crossed at the first sample" (they raise the
        start code), indices of ``n_samples`` or beyond mean "never
        crossed within the record".
    n_samples:
        Length of the acquisition.

    Returns
    -------
    tuple
        ``(start_code, mult, times, live, n_events)``.  ``start_code`` is
        the per-device output code at sample 0.  ``mult``/``times`` are
        ``(devices, max_events)`` matrices holding, left-packed, the
        number of transitions folded onto each event sample and the sample
        index of the event; padding columns have multiplicity 0 and time
        ``n_samples`` (a zero-length tail segment), and ``live`` marks the
        real entries.  ``n_events`` counts them per device.
    """
    crossing = np.asarray(crossing)
    if crossing.ndim != 2:
        raise ValueError("crossing must be a (devices, levels) matrix")
    backend = current_backend()
    mult_dtype = backend.code_dtype(crossing.shape[1] + 1)
    time_dtype = backend.index_dtype(n_samples)
    if backend.jit:
        from repro.core import kernel_jit
        return kernel_jit.packed_crossing_events_jit(
            np.ascontiguousarray(crossing, dtype=np.int64), n_samples,
            mult_dtype, time_dtype)
    n_devices = crossing.shape[0]
    start_code = (crossing == 0).sum(axis=1)

    in_range = (crossing >= 1) & (crossing <= n_samples - 1)
    dev = np.nonzero(in_range)[0]
    keys = dev * n_samples + crossing[in_range]
    keys.sort()
    uniq, mult = np.unique(keys, return_counts=True)
    ev_dev = uniq // n_samples
    ev_t = uniq - ev_dev * n_samples
    n_events = np.bincount(ev_dev, minlength=n_devices)
    width = int(n_events.max()) if n_events.size else 0

    mult_p = np.zeros((n_devices, width), dtype=mult_dtype)
    times_p = np.full((n_devices, width), n_samples, dtype=time_dtype)
    live = np.zeros((n_devices, width), dtype=bool)
    starts = np.concatenate(([0], np.cumsum(n_events)[:-1]))
    pos = np.arange(uniq.size) - np.repeat(starts, n_events)
    mult_p[ev_dev, pos] = mult
    times_p[ev_dev, pos] = ev_t
    live[ev_dev, pos] = True
    return start_code, mult_p, times_p, live, n_events


def batch_quantise_rows(transitions: np.ndarray,
                        voltages: np.ndarray) -> np.ndarray:
    """Quantise per-device stimulus rows against per-device curves.

    The general (noisy) acquisition: each device sees its own voltage
    waveform (shared ramp plus per-device noise), so the crossing-event
    shortcut of :func:`batch_quantise_shared` does not apply.  Monotone
    curves use :func:`numpy.searchsorted`, faulty non-monotone curves the
    thermometer count — exactly the scalar
    :meth:`~repro.adc.transfer.TransferFunction.convert` dichotomy.

    Parameters
    ----------
    transitions:
        ``(devices, n_transitions)`` matrix of transition voltages.
    voltages:
        ``(devices, samples)`` matrix of input voltages.
    """
    transitions = np.asarray(transitions, dtype=float)
    voltages = np.asarray(voltages, dtype=float)
    if transitions.ndim != 2 or voltages.ndim != 2:
        raise ValueError("transitions and voltages must be 2-D matrices")
    if transitions.shape[0] != voltages.shape[0]:
        raise ValueError("transitions and voltages must agree on the "
                         "device axis")
    code_dtype = current_backend().code_dtype(transitions.shape[1] + 1)
    codes = np.empty(voltages.shape, dtype=code_dtype)
    for i in range(transitions.shape[0]):
        row = transitions[i]
        if np.all(np.diff(row) >= 0):
            codes[i] = np.searchsorted(row, voltages[i], side="right")
        else:
            codes[i] = (voltages[i][:, None] >= row).sum(axis=1)
    return codes


def batch_bit(codes: np.ndarray, index: int) -> np.ndarray:
    """Waveform of output bit ``index`` (0 = LSB) for every device."""
    if index < 0:
        raise ValueError("bit index must be non-negative")
    codes = np.asarray(codes)
    if codes.dtype.kind != "i":
        codes = codes.astype(np.int64)
    return (codes >> index) & 1


def batch_falling_edges(streams: np.ndarray) -> np.ndarray:
    """Sample-aligned falling edges of a ``(devices, samples)`` bit matrix.

    Entry ``[d, t]`` is 1 when stream ``d`` fell between samples ``t - 1``
    and ``t`` (the first column is always 0), matching the edge convention
    of the on-chip reference counter.
    """
    streams = np.asarray(streams)
    if streams.ndim != 2:
        raise ValueError("streams must be a (devices, samples) matrix")
    falling = np.zeros(streams.shape, dtype=np.int64)
    if streams.shape[1] > 1:
        falling[:, 1:] = (streams[:, :-1] == 1) & (streams[:, 1:] == 0)
    return falling


def batch_msb_reference(codes: np.ndarray, q: int,
                        clock: Optional[np.ndarray] = None
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run the on-chip MSB reference counter over a batch of acquisitions.

    The hardware of Figure 2 for any partition point ``q``: a counter is
    loaded with the upper bits of the first sample, clocked by every
    falling edge of bit ``q`` (or of the supplied ``clock`` stream, e.g. a
    deglitched LSB), and compared against bits ``q+1 .. n`` of each sample.

    Parameters
    ----------
    codes:
        ``(devices, samples)`` output-code matrix.
    q:
        Partition point (1-based; bit ``q`` clocks the counter).
    clock:
        Optional ``(devices, samples)`` 0/1 matrix clocking the counter
        instead of the raw bit ``q``.

    Returns
    -------
    tuple
        ``(upper, reference, falling)`` — the per-sample upper bits, the
        reference-counter values, and the falling-edge indicator matrix.
        Callers derive mismatches as ``abs(upper - reference) > tolerance``.
        ``reference`` and ``falling`` are int64 on every backend (the
        counter is an unbounded cumulative sum); ``upper`` shares the
        code dtype.
    """
    codes = np.asarray(codes)
    if codes.dtype.kind != "i":
        codes = codes.astype(np.int64)
    if codes.ndim != 2:
        raise ValueError("codes must be a (devices, samples) matrix")
    if q < 1:
        raise ValueError("q must be at least 1")
    if clock is None:
        clock_bit = batch_bit(codes, q - 1)
    else:
        clock_bit = (np.asarray(clock) != 0).astype(np.int64)
        if clock_bit.shape != codes.shape:
            raise ValueError("clock must match codes in shape")
    if current_backend().jit:
        from repro.core import kernel_jit
        return kernel_jit.batch_msb_reference_jit(
            np.ascontiguousarray(codes, dtype=np.int64),
            np.ascontiguousarray(clock_bit, dtype=np.int64), q,
            codes.dtype)
    upper = codes >> q
    falling = batch_falling_edges(clock_bit)
    reference = upper[:, :1] + np.cumsum(falling, axis=1)
    return upper, reference, falling


def batch_reconstruct_codes(observed_lsbs: np.ndarray, q: int, n_bits: int,
                            initial_upper: Union[int, np.ndarray] = 0
                            ) -> np.ndarray:
    """Rebuild full output codes from the ``q`` observed LSBs, per device.

    The tester-side half of the partial BIST: for a rising stimulus that
    satisfies Equation (1) the upper bits increment exactly when the
    observed ``q``-bit field wraps (bit ``q`` falling), so the code is
    ``upper_counter * 2**q + observed``.  When the stimulus is too fast for
    the chosen ``q`` the wrap detection undercounts and the reconstruction
    diverges from the true codes — the breakdown the paper's Equation (1)
    guards against, observable here as nonzero reconstruction error.

    Parameters
    ----------
    observed_lsbs:
        ``(devices, samples)`` matrix of the captured ``q``-bit fields.
    q, n_bits:
        Partition point and full converter resolution.
    initial_upper:
        Upper bits at the first sample: a scalar shared by the batch or a
        per-device vector.
    """
    observed = np.asarray(observed_lsbs, dtype=np.int64)
    if observed.ndim != 2:
        raise ValueError("observed_lsbs must be a (devices, samples) matrix")
    if not 1 <= q <= n_bits:
        raise ValueError(f"q must be within [1, {n_bits}]")
    if observed.shape[1] == 0:
        return observed.copy()
    top_bit = (observed >> (q - 1)) & 1
    falling = batch_falling_edges(top_bit)
    initial = np.asarray(initial_upper, dtype=np.int64)
    if initial.ndim == 0:
        initial = np.full(observed.shape[0], int(initial), dtype=np.int64)
    # The running counter and the unclipped codes stay int64 — a
    # miscounted wrap (the Equation (1) breakdown) can push them far past
    # the code range before the clip.  Only the clipped result compacts.
    upper = initial[:, None] + np.cumsum(falling, axis=1)
    codes = (upper << q) + observed
    codes = np.clip(codes, 0, (1 << n_bits) - 1)
    code_dtype = current_backend().code_dtype(1 << n_bits)
    return codes.astype(code_dtype, copy=False)


def batch_shared_ramp_histogram(transitions: np.ndarray,
                                voltages: np.ndarray) -> np.ndarray:
    """Per-device code-density histogram of a shared monotone ramp.

    The event-based shortcut of the conventional histogram test: with a
    shared rising ramp the code trajectory of every device is a
    non-decreasing staircase (the thermometer count of crossed
    transitions), so the number of samples landing in code ``c`` is the gap
    between the ``c``-th and ``c+1``-th sorted crossing indices — the full
    ``(devices, samples)`` code matrix never needs to exist.  Row ``d`` of
    the result equals ``bincount`` of
    :func:`batch_quantise_shared`'s row ``d`` (and therefore of the scalar
    :meth:`~repro.adc.transfer.TransferFunction.convert` codes).

    Parameters
    ----------
    transitions:
        ``(devices, n_transitions)`` matrix of transition voltages.
    voltages:
        The shared stimulus samples, strictly increasing (a rising ramp).

    Returns
    -------
    numpy.ndarray
        ``(devices, n_transitions + 1)`` integer matrix of per-code
        sample counts (int64, or the backend's compact histogram dtype);
        every row sums to ``voltages.size``.
    """
    transitions = np.asarray(transitions, dtype=float)
    voltages = np.asarray(voltages, dtype=float)
    if transitions.ndim != 2:
        raise ValueError("transitions must be a (devices, levels) matrix")
    if voltages.ndim != 1:
        raise ValueError("voltages must be one-dimensional")
    n_samples = voltages.size
    crossing = shared_crossing_indices(transitions, voltages)
    # Sorting handles non-monotone faulty curves: the code at sample t is
    # the number of crossings at or before t, so code c spans the samples
    # between the c-th and (c+1)-th smallest crossing indices.
    boundaries = np.sort(np.clip(crossing, 0, n_samples), axis=1)
    n_devices = transitions.shape[0]
    padded = np.empty((n_devices, boundaries.shape[1] + 2),
                      dtype=boundaries.dtype)
    padded[:, 0] = 0
    padded[:, 1:-1] = boundaries
    padded[:, -1] = n_samples
    counts = np.diff(padded, axis=1)
    hist_dtype = current_backend().hist_dtype(n_samples)
    return counts.astype(hist_dtype, copy=False)


def batch_histogram_linearity(counts: np.ndarray
                              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Device-axis DNL/INL from code-density histograms.

    The matrix form of :func:`repro.analysis.linearity.dnl_from_histogram`:
    the end bins are dropped, the inner bins are normalised by their mean,
    and the INL is the running sum of the DNL — the same reductions in the
    same order, so per-device figures are bit-identical to the scalar
    function's.  Where the scalar function raises on an all-empty inner
    histogram, the batch form flags the device in the returned
    ``measurable`` mask instead (its DNL/INL rows are meaningless).

    Parameters
    ----------
    counts:
        ``(devices, n_codes)`` histogram matrix.

    Returns
    -------
    tuple
        ``(dnl, inl, measurable)`` — two ``(devices, n_codes - 2)`` float
        matrices in LSB and the per-device validity mask.
    """
    counts = np.asarray(counts, dtype=current_backend().float_dtype())
    if counts.ndim != 2 or counts.shape[1] < 3:
        raise ValueError("counts must be a (devices, >=3 codes) matrix")
    inner = counts[:, 1:-1]
    measurable = inner.sum(axis=1) > 0
    mean = inner.mean(axis=1)
    mean = np.where(mean == 0.0, 1.0, mean)
    dnl = inner / mean[:, None] - 1.0
    inl = np.cumsum(dnl, axis=1)
    return dnl, inl, measurable


def batch_code_histogram(codes: np.ndarray, n_codes: int) -> np.ndarray:
    """Per-device code-density histogram of a ``(devices, samples)`` matrix.

    The off-chip histogram a tester accumulates per device; codes must
    already lie within ``[0, n_codes)``.
    """
    codes = np.asarray(codes)
    if codes.dtype.kind != "i":
        codes = codes.astype(np.int64)
    if codes.ndim != 2:
        raise ValueError("codes must be a (devices, samples) matrix")
    if n_codes < 1:
        raise ValueError("n_codes must be positive")
    n_devices = codes.shape[0]
    # Flat keys span devices * n_codes, so they are always int64.
    keys = (np.arange(n_devices, dtype=np.int64)[:, None] * n_codes
            + codes).ravel()
    counts = np.bincount(keys, minlength=n_devices * n_codes)
    hist_dtype = current_backend().hist_dtype(codes.shape[1])
    return counts.reshape(n_devices, n_codes).astype(hist_dtype, copy=False)
