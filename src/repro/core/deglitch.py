"""Digital deglitch filter for the monitored LSB.

Transition noise makes the converter's LSB toggle around each code boundary
("there is no exact transition"); the paper notes that such toggles "can be
removed by means of a simple digital filter".  Two simple, hardware-friendly
filters are modelled here:

``mode="hysteresis"`` (default)
    The filtered output only changes after the raw LSB has held the new value
    for ``depth`` consecutive samples — a shift register plus an AND gate.
    This is the classic debouncer; it delays every edge by ``depth - 1``
    samples, which is harmless for the code-width measurement because all
    edges are delayed equally.

``mode="majority"``
    The output is the majority vote over a centred window of ``2*depth + 1``
    samples — slightly larger in hardware, no systematic edge delay.

Both operate on 0/1 sample streams and are purely combinational/sequential
logic that fits the "does not require too much chip area" goal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeglitchFilter"]


@dataclass
class DeglitchFilter:
    """A small digital filter that removes LSB toggles.

    Parameters
    ----------
    depth:
        Filter strength.  For the hysteresis mode this is the number of
        consecutive equal samples required to accept a new level; for the
        majority mode the window half-width.  ``depth = 0`` disables the
        filter (the raw LSB is passed through).
    mode:
        ``"hysteresis"`` or ``"majority"``.
    """

    depth: int = 2
    mode: str = "hysteresis"

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ValueError("depth must be non-negative")
        if self.mode not in ("hysteresis", "majority"):
            raise ValueError(
                f"unknown mode {self.mode!r}; "
                f"expected 'hysteresis' or 'majority'")

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #

    def apply(self, lsb_stream: np.ndarray) -> np.ndarray:
        """Filter a 0/1 sample stream and return the cleaned stream."""
        stream = np.asarray(lsb_stream)
        if stream.ndim != 1:
            raise ValueError("lsb_stream must be one-dimensional")
        if stream.size == 0:
            return stream.astype(np.int8)
        values = (stream != 0).astype(np.int8)
        if self.depth == 0:
            return values
        if self.mode == "majority":
            return self._majority(values)
        return self._hysteresis(values)

    def __call__(self, lsb_stream: np.ndarray) -> np.ndarray:
        return self.apply(lsb_stream)

    def _hysteresis(self, values: np.ndarray) -> np.ndarray:
        """Accept a new level only after ``depth`` consecutive samples."""
        out = np.empty_like(values)
        state = values[0]
        run_value = state
        run_length = 0
        for i, v in enumerate(values):
            if v == run_value:
                run_length += 1
            else:
                run_value = v
                run_length = 1
            if run_value != state and run_length >= self.depth:
                state = run_value
            out[i] = state
        return out

    def _majority(self, values: np.ndarray) -> np.ndarray:
        """Majority vote over a centred window of ``2*depth + 1`` samples."""
        window = 2 * self.depth + 1
        padded = np.pad(values, (self.depth, self.depth), mode="edge")
        # Sliding-window sum via cumulative sums.
        cumulative = np.concatenate(([0], np.cumsum(padded)))
        sums = cumulative[window:] - cumulative[:-window]
        return (sums * 2 > window).astype(np.int8)

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #

    @staticmethod
    def count_toggles(lsb_stream: np.ndarray) -> int:
        """Number of level changes in a 0/1 stream.

        A clean ramp response toggles exactly once per code boundary; every
        extra toggle is noise the filter should remove.
        """
        stream = (np.asarray(lsb_stream) != 0).astype(np.int8)
        if stream.size < 2:
            return 0
        return int(np.count_nonzero(np.diff(stream)))

    def excess_toggles_removed(self, raw: np.ndarray) -> int:
        """How many toggles this filter removes from ``raw``."""
        return self.count_toggles(raw) - self.count_toggles(self.apply(raw))

    def gate_count(self) -> int:
        """Rough gate-equivalent count of the filter hardware.

        ``depth`` flip-flops (≈6 gates each) plus comparison logic for the
        hysteresis filter; a ``2*depth+1`` shift register plus an adder tree
        for the majority filter.
        """
        if self.depth == 0:
            return 0
        if self.mode == "hysteresis":
            return 6 * self.depth + 4
        return 6 * (2 * self.depth + 1) + 4 * self.depth + 4
