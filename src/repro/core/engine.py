"""The complete BIST engine: stimulus, acquisition, on-chip processing.

:class:`BistEngine` ties the pieces of the methodology together exactly as the
paper's Figure 2/Figure 4 describe for the full-BIST (``q = 1``) case:

1. a slow ramp is applied whose slope realises the chosen per-sample step
   ``ds`` (Equation (5)),
2. the converter output is sampled at its own clock,
3. the upper bits are verified on-chip against a counter clocked by the LSB
   (:class:`~repro.core.msb_checker.MsbChecker`),
4. the LSB is deglitched and fed to the LSB processing block
   (:class:`~repro.core.lsb_processor.LsbProcessor`) which makes the DNL and
   INL pass/fail decisions with a ``counter_bits``-bit counter.

The engine also provides :meth:`BistEngine.run_population`, the Monte-Carlo
"measurement" used to regenerate the MEAS. columns of Table 1: every device
of a population is actually put through the sampled BIST and the resulting
accept/reject decisions are compared against the devices' true linearity.

Kernel layering: the decision logic lives in shared vectorised kernels —
the count-limit comparison in :mod:`repro.core.decision` and the
stimulus→acquisition→stream pipeline in :mod:`repro.core.kernel` (which the
:class:`~repro.core.msb_checker.MsbChecker` used here wraps batch-of-1).
The production engines (:mod:`repro.production.batch_engine`,
:mod:`repro.production.partial_batch`) run the same kernels over whole
wafers, which is why their decisions match this engine bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.adc.base import ADC, ConversionRecord
from repro.analysis.error_model import delta_s_for_counter
from repro.core.deglitch import DeglitchFilter
from repro.core.limits import CountLimits
from repro.core.lsb_processor import LsbProcessor, LsbProcessorResult
from repro.core.msb_checker import MsbChecker, MsbCheckResult
from repro.signals.ramp import RampStimulus

__all__ = ["BistConfig", "BistResult", "PopulationBistResult", "BistEngine",
           "true_goodness"]

RngLike = Union[int, np.random.Generator, None]


def true_goodness(device: ADC, dnl_spec_lsb: float,
                  inl_spec_lsb: Optional[float] = None) -> bool:
    """True static-linearity classification of one converter.

    The reference against which the BIST's accept/reject decision is scored:
    a device is *truly good* when its end-point |DNL| (and, when an INL
    specification is given, its end-point |INL|) stays within the limits.
    Shared by :meth:`BistEngine.run_population` and the batch engine in
    :mod:`repro.production` so both Monte-Carlo paths score against the
    identical criterion.
    """
    tf = device.transfer_function()
    good = tf.max_dnl() <= dnl_spec_lsb
    if inl_spec_lsb is not None:
        good = good and tf.max_inl() <= inl_spec_lsb
    return bool(good)


@dataclass
class BistConfig:
    """Configuration of one BIST measurement.

    Parameters
    ----------
    n_bits:
        Resolution of the converter under test.
    counter_bits:
        Size of the sample counter in the LSB processing block (the paper's
        key area/accuracy knob, 4–7 bits in the experiments).
    dnl_spec_lsb:
        DNL specification in LSB (±); 0.5 for the paper's stringent setting,
        1.0 for the actual specification.
    inl_spec_lsb:
        INL specification in LSB (±); ``None`` disables the INL check
        (the paper's Table 1/2 experiments decide on DNL only).
    delta_s_lsb:
        Per-sample voltage step in LSB; when omitted it is derived from
        ``counter_bits`` so that the counter range is fully used, as in
        section 4 of the paper.
    deglitch_depth, deglitch_mode:
        Configuration of the LSB deglitch filter; depth 0 disables it.
    counter_saturate:
        Overflow policy of the sample counter.
    check_msb:
        Run the on-chip functionality check of the upper bits.
    transition_noise_lsb:
        Converter input-referred noise during the acquisition, in LSB.
    stimulus_noise_lsb:
        RMS noise on the ramp, in LSB.
    slope_error:
        Relative error of the realised ramp slope (the paper attributes its
        simulation/measurement discrepancy to roughly ``-0.002 LSB`` of step
        error, i.e. a slightly too steep ramp).
    start_margin_lsb:
        How far below the conversion range the ramp starts (and beyond the
        range it ends), in LSB.
    seed:
        Seed for the acquisition noise.
    """

    n_bits: int = 6
    counter_bits: int = 7
    dnl_spec_lsb: float = 1.0
    inl_spec_lsb: Optional[float] = None
    delta_s_lsb: Optional[float] = None
    deglitch_depth: int = 0
    deglitch_mode: str = "hysteresis"
    counter_saturate: bool = True
    check_msb: bool = True
    transition_noise_lsb: float = 0.0
    stimulus_noise_lsb: float = 0.0
    slope_error: float = 0.0
    start_margin_lsb: float = 2.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_bits < 2:
            raise ValueError("n_bits must be at least 2")
        if self.counter_bits < 1:
            raise ValueError("counter_bits must be at least 1")
        if self.dnl_spec_lsb < 0:
            raise ValueError("dnl_spec_lsb must be non-negative")
        if self.start_margin_lsb < 0:
            raise ValueError("start_margin_lsb must be non-negative")

    def resolved_delta_s_lsb(self) -> float:
        """The per-sample step actually used, in LSB."""
        if self.delta_s_lsb is not None:
            if self.delta_s_lsb <= 0:
                raise ValueError("delta_s_lsb must be positive")
            return self.delta_s_lsb
        return delta_s_for_counter(self.counter_bits, self.dnl_spec_lsb)

    def limits(self) -> CountLimits:
        """The count limits the LSB processing block will use."""
        return CountLimits.for_counter(self.counter_bits, self.dnl_spec_lsb,
                                       inl_spec_lsb=self.inl_spec_lsb,
                                       delta_s_lsb=self.resolved_delta_s_lsb())


@dataclass
class BistResult:
    """Outcome of one BIST run on one converter.

    Attributes
    ----------
    passed:
        Overall accept/reject decision of the BIST.
    lsb:
        Detailed result of the LSB processing block (DNL/INL decisions).
    msb:
        Result of the on-chip functionality check (``None`` when disabled).
    limits:
        The count limits used.
    samples_taken:
        Number of conversions in the acquisition.
    record:
        The raw conversion record (kept for diagnostics and examples).
    """

    passed: bool
    lsb: LsbProcessorResult
    msb: Optional[MsbCheckResult]
    limits: CountLimits
    samples_taken: int
    record: Optional[ConversionRecord] = field(default=None, repr=False)

    @property
    def measured_widths_lsb(self) -> np.ndarray:
        """Code widths as measured by the counting process, in LSB."""
        return self.lsb.measured_widths_lsb

    @property
    def measured_dnl_lsb(self) -> np.ndarray:
        """DNL estimate reconstructed from the counter readings."""
        return self.lsb.measured_dnl_lsb

    @property
    def off_chip_bits_transferred(self) -> int:
        """Output bits the tester would have had to capture without BIST.

        With the full BIST everything is processed on-chip, so the number of
        bits actually sent off-chip is the single pass/fail flag; this
        property reports the conventional-test volume for comparison.
        """
        return self.samples_taken


@dataclass
class PopulationBistResult:
    """Aggregate result of running the BIST over a device population.

    The decisions are compared against the devices' true static linearity,
    giving the measured (Monte-Carlo) type I and type II error rates — the
    MEAS. columns of Table 1.

    Two flavours of error rate are reported.  :attr:`type_i`/:attr:`type_ii`
    are *joint* fractions — ``P(good and rejected)`` and
    ``P(faulty and accepted)`` over all tested devices — matching the
    analytic Equations (6)/(7) and the convention of the paper's Table 1
    and Table 2.  :attr:`p_reject_given_good`/:attr:`p_accept_given_faulty`
    are the *conditional* rates (rejected-given-good, accepted-given-bad)
    often quoted as yield loss and defect level; divide the joint numbers by
    the respective prior, as in
    :class:`~repro.analysis.binomial.DeviceProbabilities`.
    """

    n_devices: int
    accepted: np.ndarray
    truly_good: np.ndarray

    @property
    def p_good(self) -> float:
        """Fraction of devices truly meeting the specification."""
        return float(self.truly_good.mean()) if self.n_devices else 0.0

    @property
    def p_accept(self) -> float:
        """Fraction of devices the BIST accepted."""
        return float(self.accepted.mean()) if self.n_devices else 0.0

    @property
    def type_i(self) -> float:
        """Measured joint fraction ``P(good and rejected)`` (Table 1/2)."""
        if self.n_devices == 0:
            return 0.0
        return float(np.mean(self.truly_good & ~self.accepted))

    @property
    def type_ii(self) -> float:
        """Measured joint fraction ``P(faulty and accepted)`` (Table 1/2)."""
        if self.n_devices == 0:
            return 0.0
        return float(np.mean(~self.truly_good & self.accepted))

    @property
    def p_reject_given_good(self) -> float:
        """Measured conditional type I rate ``P(rejected | good)``.

        The yield-loss figure a production engineer quotes; equals
        :attr:`type_i` divided by :attr:`p_good`.  Table 1 reports the
        joint :attr:`type_i`, not this conditional rate.
        """
        if self.p_good == 0.0:
            return 0.0
        return self.type_i / self.p_good

    @property
    def p_accept_given_faulty(self) -> float:
        """Measured conditional type II rate ``P(accepted | faulty)``.

        The defect-level figure (test escapes among bad devices); equals
        :attr:`type_ii` divided by ``1 - p_good``.  Table 1 reports the
        joint :attr:`type_ii`, not this conditional rate.
        """
        p_faulty = 1.0 - self.p_good
        if p_faulty == 0.0:
            return 0.0
        return self.type_ii / p_faulty

    @property
    def agreement(self) -> float:
        """Fraction of devices where BIST and true classification agree."""
        if self.n_devices == 0:
            return 1.0
        return float(np.mean(self.accepted == self.truly_good))


class BistEngine:
    """Run the paper's BIST on behavioural converters.

    Parameters
    ----------
    config:
        The measurement configuration.
    """

    def __init__(self, config: BistConfig) -> None:
        self.config = config
        self._limits = config.limits()
        self._deglitch = (DeglitchFilter(config.deglitch_depth,
                                         config.deglitch_mode)
                          if config.deglitch_depth > 0 else None)
        self._lsb_processor = LsbProcessor(
            self._limits, deglitch=self._deglitch,
            counter_saturate=config.counter_saturate)
        self._msb_checker = (MsbChecker(config.n_bits, q=1)
                             if config.check_msb else None)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def limits(self) -> CountLimits:
        """The count limits in use."""
        return self._limits

    def gate_count(self) -> int:
        """Total gate-equivalent estimate of the on-chip test circuitry."""
        total = self._lsb_processor.gate_count()
        if self._msb_checker is not None:
            total += self._msb_checker.gate_count()
        return total

    # ------------------------------------------------------------------ #
    # Stimulus construction
    # ------------------------------------------------------------------ #

    def build_ramp(self, adc: ADC) -> RampStimulus:
        """Build the test ramp realising the configured step size for ``adc``."""
        cfg = self.config
        delta_s_volts = self._limits.delta_s_lsb * adc.lsb
        slope = delta_s_volts * adc.sample_rate * (1.0 + cfg.slope_error)
        start = -cfg.start_margin_lsb * adc.lsb
        noise_sigma = cfg.stimulus_noise_lsb * adc.lsb
        return RampStimulus(slope=slope, start_voltage=start,
                            noise_sigma=noise_sigma,
                            rng=np.random.default_rng(cfg.seed))

    def _n_samples(self, adc: ADC, ramp: RampStimulus) -> int:
        """Number of samples needed for the ramp to cross the full range."""
        return ramp.n_samples_for_adc(adc,
                                      margin_lsb=self.config.start_margin_lsb)

    # ------------------------------------------------------------------ #
    # Single-device run
    # ------------------------------------------------------------------ #

    def run(self, adc: ADC, rng: RngLike = None,
            keep_record: bool = True) -> BistResult:
        """Run the full BIST measurement on one converter."""
        cfg = self.config
        if adc.n_bits != cfg.n_bits:
            raise ValueError(
                f"configuration is for {cfg.n_bits}-bit converters but the "
                f"device under test has {adc.n_bits} bits")
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(
                         rng if rng is not None else cfg.seed))
        ramp = self.build_ramp(adc)
        n_samples = self._n_samples(adc, ramp)
        record = adc.sample(ramp, n_samples=n_samples, rng=generator,
                            transition_noise_lsb=cfg.transition_noise_lsb)

        msb_result = None
        msb_ok = True
        if self._msb_checker is not None:
            # With transition noise the codes flicker by ±1 around each
            # upper-bit boundary; clock the reference counter from the
            # deglitched LSB and allow that one-count flicker.
            clock_stream = None
            if self._deglitch is not None:
                clock_stream = self._deglitch.apply(record.lsb_waveform)
            tolerance = 1 if cfg.transition_noise_lsb > 0 else 0
            msb_result = self._msb_checker.check(record.codes,
                                                 clock_stream=clock_stream,
                                                 tolerance=tolerance)
            msb_ok = msb_result.passed

        lsb_result = self._lsb_processor.process(record.lsb_waveform,
                                                 n_bits=cfg.n_bits)
        passed = lsb_result.passed and msb_ok
        return BistResult(passed=passed,
                          lsb=lsb_result,
                          msb=msb_result,
                          limits=self._limits,
                          samples_taken=n_samples,
                          record=record if keep_record else None)

    # ------------------------------------------------------------------ #
    # Population run (the MEAS. column of Table 1)
    # ------------------------------------------------------------------ #

    def run_population(self, devices: Iterable[ADC],
                       rng: RngLike = None,
                       dnl_spec_lsb: Optional[float] = None,
                       inl_spec_lsb: Optional[float] = None
                       ) -> PopulationBistResult:
        """Run the BIST on every device and compare with the true linearity.

        Parameters
        ----------
        devices:
            Iterable of converters (e.g. a
            :class:`~repro.adc.population.DevicePopulation`).
        rng:
            Seed or generator shared by the acquisitions.
        dnl_spec_lsb, inl_spec_lsb:
            Specification used for the *true* classification; defaults to
            the configuration's specification, so type I/II rates are
            measured against the same limits the BIST decides on.
        """
        cfg = self.config
        if dnl_spec_lsb is None:
            dnl_spec_lsb = cfg.dnl_spec_lsb
        if inl_spec_lsb is None:
            inl_spec_lsb = cfg.inl_spec_lsb
        generator = (rng if isinstance(rng, np.random.Generator)
                     else np.random.default_rng(
                         rng if rng is not None else cfg.seed))

        accepted: List[bool] = []
        truly_good: List[bool] = []
        for device in devices:
            result = self.run(device, rng=generator, keep_record=False)
            accepted.append(result.passed)
            truly_good.append(true_goodness(device, dnl_spec_lsb,
                                            inl_spec_lsb))

        return PopulationBistResult(
            n_devices=len(accepted),
            accepted=np.asarray(accepted, dtype=bool),
            truly_good=np.asarray(truly_good, dtype=bool))
