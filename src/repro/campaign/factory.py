"""The one place batch engines are constructed.

Every path that used to pick an engine by hand — the ``if method ==``
ladder in :class:`~repro.production.line.ScreeningLine`, its copy in the
CLI, ad-hoc constructions in examples — now goes through
:func:`make_engine`: a :class:`~repro.campaign.scenario.Scenario` in, the
matching :class:`~repro.production.execution.WaferEngine` implementation
out.  Adding a screening method means extending this factory (and the
``SCREENING_METHODS`` tuple), nothing else.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.analysis.dynamic import DynamicAnalyzer, DynamicSpec
from repro.campaign.scenario import AUTO_Q, Scenario
from repro.core.engine import BistConfig
from repro.core.partial_engine import PartialBistConfig
from repro.economics.cost_model import TesterModel
from repro.production.analysis_batch import (
    BatchDynamicSuite,
    BatchHistogramTest,
)
from repro.production.batch_engine import BatchBistEngine
from repro.production.partial_batch import BatchPartialBistEngine

__all__ = ["BatchEngine", "default_tester", "make_engine",
           "sequential_policy"]

#: Union of the engine types :func:`make_engine` can return — every one of
#: them implements the :class:`~repro.production.execution.WaferEngine`
#: protocol with the same ``run_wafer``/``run_transitions`` signatures.
BatchEngine = Union[BatchBistEngine, BatchPartialBistEngine,
                    BatchHistogramTest, BatchDynamicSuite]


def make_engine(scenario: Scenario, *,
                config: Optional[BistConfig] = None,
                dynamic_analyzer: Optional[DynamicAnalyzer] = None,
                dynamic_spec: Optional[DynamicSpec] = None) -> BatchEngine:
    """Build the batch engine a scenario describes.

    Parameters
    ----------
    scenario:
        The declarative run description; ``method``/``q``/
        ``samples_per_code`` select and parameterise the engine, and
        ``scenario.backend`` is passed to every engine as its kernel
        backend (``None`` defers to the ambient default).
    config:
        Optional measurement configuration overriding the scenario-derived
        :meth:`~repro.campaign.scenario.Scenario.bist_config` — the hook
        :class:`~repro.production.line.ScreeningLine` uses to pass its
        caller's full :class:`~repro.core.engine.BistConfig` (stimulus
        imperfections, counter policy, seeds) through unchanged.
    dynamic_analyzer, dynamic_spec:
        FFT configuration and pass/fail limits of the dynamic method —
        rich objects the declarative scenario intentionally does not
        carry.

    Returns
    -------
    One of :class:`~repro.production.batch_engine.BatchBistEngine`,
    :class:`~repro.production.partial_batch.BatchPartialBistEngine`,
    :class:`~repro.production.analysis_batch.BatchHistogramTest` or
    :class:`~repro.production.analysis_batch.BatchDynamicSuite` — all
    conforming to the :class:`~repro.production.execution.WaferEngine`
    protocol with identical run signatures, so callers drive them
    uniformly.
    """
    if config is None:
        config = scenario.bist_config()
    method = scenario.method
    backend = scenario.backend
    if method == "histogram":
        return BatchHistogramTest(
            samples_per_code=scenario.samples_per_code,
            dnl_spec_lsb=config.dnl_spec_lsb,
            inl_spec_lsb=config.inl_spec_lsb,
            transition_noise_lsb=config.transition_noise_lsb,
            seed=config.seed,
            backend=backend)
    if method == "dynamic":
        return BatchDynamicSuite(
            analyzer=dynamic_analyzer,
            spec=dynamic_spec,
            transition_noise_lsb=config.transition_noise_lsb,
            seed=config.seed,
            backend=backend)
    if scenario.q is None:
        return BatchBistEngine(config, backend=backend)
    if config.deglitch_depth > 0:
        raise ValueError(
            "the partial-BIST flow has no deglitch filter; "
            "unset deglitch_depth when using partial_q")
    return BatchPartialBistEngine(PartialBistConfig(
        n_bits=config.n_bits,
        q=None if scenario.q == AUTO_Q else int(scenario.q),
        samples_per_code=scenario.samples_per_code,
        dnl_spec_lsb=config.dnl_spec_lsb,
        inl_spec_lsb=config.inl_spec_lsb,
        check_msb=config.check_msb,
        transition_noise_lsb=config.transition_noise_lsb,
        start_margin_lsb=config.start_margin_lsb,
        seed=config.seed), backend=backend)


def sequential_policy(scenario: Scenario, *,
                      config: Optional[BistConfig] = None,
                      alpha: Optional[float] = None,
                      beta: Optional[float] = None):
    """Build the SPRT policy (and per-code model) a scenario implies.

    The construction mirrors :func:`make_engine`: the scenario's process
    sigma plus the measurement configuration's DNL spec and counter width
    feed the paper's closed-form error model, whose per-code accept
    conditionals parameterise the Wald test.  Returns
    ``(SequentialPolicy, PerCodeProbabilities)`` — the same per-code
    object also centres the SPC monitor's p-chart, so both adaptive
    mechanisms share one analytic model of the process.
    """
    from repro.analysis.distributions import CodeWidthDistribution
    from repro.analysis.error_model import ErrorModel
    from repro.flows.sequential import (
        DEFAULT_ALPHA,
        DEFAULT_BETA,
        SequentialPolicy,
    )

    if config is None:
        config = scenario.bist_config()
    model = ErrorModel(
        distribution=CodeWidthDistribution(
            sigma_lsb=scenario.sigma_code_width_lsb),
        dnl_spec_lsb=config.dnl_spec_lsb,
        counter_bits=config.counter_bits)
    per_code = model.per_code()
    policy = SequentialPolicy.from_per_code(
        per_code,
        alpha=DEFAULT_ALPHA if alpha is None else alpha,
        beta=DEFAULT_BETA if beta is None else beta)
    return policy, per_code


def default_tester(scenario: Scenario) -> TesterModel:
    """The tester model a scenario's insertions are priced on.

    An explicit ``scenario.tester`` wins; otherwise the full BIST runs on
    the low-cost digital tester (it needs nothing but digital pins) and
    every method that captures analog-driven output data — partial BIST,
    histogram, dynamic — needs the precision stimulus of a mixed-signal
    tester.
    """
    named = scenario.tester_model()
    if named is not None:
        return named
    if scenario.is_full_bist:
        return TesterModel.digital_only()
    return TesterModel.mixed_signal()
