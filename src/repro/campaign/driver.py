"""Campaign driver: fan a scenario grid over the scale-out layer.

A :class:`Campaign` takes a list of
:class:`~repro.campaign.scenario.Scenario` objects (usually from
:meth:`Scenario.grid`), screens each one through a
:class:`~repro.production.line.ScreeningLine`, and shard-merges the
per-scenario :class:`~repro.production.store.ResultStore` ledgers into one
— the "campaign driver that shard-merges ResultStores from parallel lot
streams" the roadmap asked for.

Determinism is inherited end to end: scenario ``i`` screens under its own
seed (the scenario's explicit ``seed``, or child ``i`` of the campaign's
root :class:`numpy.random.SeedSequence` — a pure function of
``(root seed, i)``, never of execution order), and every insertion inside
:meth:`ScreeningLine.screen_lot` derives its own grandchild seed from it.
Passing an :class:`~repro.production.execution.ExecutionPlan` shards every
scenario's device axis over worker processes; because per-shard seeds are
spawned by shard index, the campaign report is **byte-identical for any
worker count** — ``plan=ExecutionPlan(workers=1)`` is the serial reference
of ``workers=8``.
"""

from __future__ import annotations

import csv
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.campaign.scenario import Scenario
from repro.production.execution import ExecutionPlan
from repro.production.line import LotScreeningReport, ScreeningLine
from repro.production.lot import Lot, Wafer
from repro.production.pool import (current_pool, get_default_pool,
                                   share_wafer, shared_pool)
from repro.production.store import ResultStore
from repro.telemetry.core import current_telemetry
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import MetricsReport

__all__ = ["Campaign", "CampaignResult", "scenario_child_seed"]

_log = get_logger("campaign")


def scenario_child_seed(root_seed: int, index: int) -> int:
    """Deterministic seed of scenario ``index`` under a campaign root seed.

    Child ``index`` of ``SeedSequence(root_seed)``, derived statelessly by
    spawn key — a pure function of ``(root_seed, index)``, so re-ordering,
    slicing or re-running a campaign cannot change any scenario's stream.
    """
    root = np.random.SeedSequence(root_seed)
    child = np.random.SeedSequence(entropy=root.entropy,
                                   spawn_key=root.spawn_key + (index,))
    return int(child.generate_state(1)[0])


@dataclass
class CampaignResult:
    """Everything one campaign run produced.

    Attributes
    ----------
    scenarios, labels, seeds:
        The scenarios that ran, their resolved (de-duplicated) labels, and
        the seed each one screened under.
    reports:
        One :class:`~repro.production.line.LotScreeningReport` per
        scenario, in scenario order.
    store:
        The shard-merged :class:`~repro.production.store.ResultStore`
        ledger of the whole campaign.
    """

    scenarios: List[Scenario]
    labels: List[str]
    seeds: List[int]
    reports: List[LotScreeningReport]
    store: ResultStore = field(default_factory=ResultStore)
    metrics: Optional[MetricsReport] = None

    def table(self) -> str:
        """The per-scenario pivot table (yield/escapes/time/cost)."""
        return self.store.campaign_table()

    def metrics_table(self) -> str:
        """The operational metrics pivot next to :meth:`table`."""
        if self.metrics is None:
            return ""
        return self.metrics.table()

    def records(self) -> List[Dict[str, object]]:
        """One plain-dict record per scenario, for JSON/CSV export."""
        rows = []
        for scenario, label, seed, report in zip(
                self.scenarios, self.labels, self.seeds, self.reports):
            rows.append({
                "label": label,
                "architecture": report.architecture,
                "method": report.method,
                "mode": report.mode,
                "q": report.q,
                "n_bits": scenario.n_bits,
                "seed": seed,
                "devices": report.n_devices,
                "accepted": report.n_accepted,
                "accept_fraction": report.accept_fraction,
                "true_yield": report.p_good,
                "type_i": report.type_i,
                "type_ii": report.type_ii,
                "samples_per_device": report.samples_per_device,
                "tester_seconds": report.tester_seconds,
                "devices_per_hour": report.devices_per_hour,
                "cost_per_device": report.cost_per_device,
            })
        return rows

    def to_json(self, indent: int = 2) -> str:
        """The campaign records as a JSON array."""
        return json.dumps(self.records(), indent=indent)

    def write_csv(self, path: str) -> int:
        """Write the campaign records to ``path`` as CSV; returns the
        number of data rows written."""
        records = self.records()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(records[0])
                                    if records else ["label"])
            writer.writeheader()
            writer.writerows(records)
        return len(records)


class Campaign:
    """Screen a list/grid of scenarios and merge one floor ledger.

    Parameters
    ----------
    scenarios:
        The scenarios to screen (a single scenario is accepted too).
        Scenarios with ``q="auto"`` are rejected — a screening line needs
        a concrete ``q`` for its tester economics; resolve it first.
    seed:
        Campaign root seed.  A scenario without its own ``seed`` screens
        under :func:`scenario_child_seed` of this root and its index; in
        shared-wafer mode the root also seeds the one wafer draw.
    shared_wafer:
        Screen every scenario on **one shared wafer draw** instead of
        per-scenario lots — the paper's comparison setting, where
        yield/escape/cost differences are attributable to the test method
        alone.  All scenarios must then share one wafer spec (same
        architecture, resolution, sigma, device count).
    shared_wafer_id:
        Identifier of the shared wafer (default ``"SHARED-<seed>"``).
    dynamic_analyzer, dynamic_spec:
        Optional FFT configuration/limits applied to every ``"dynamic"``
        scenario.
    """

    def __init__(self, scenarios: Union[Scenario, Sequence[Scenario]], *,
                 seed: int = 2026,
                 shared_wafer: bool = False,
                 shared_wafer_id: Optional[str] = None,
                 dynamic_analyzer=None,
                 dynamic_spec=None) -> None:
        if isinstance(scenarios, Scenario):
            scenarios = [scenarios]
        self.scenarios = list(scenarios)
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        self.seed = int(seed)
        self.shared_wafer = bool(shared_wafer)
        self.shared_wafer_id = shared_wafer_id
        self.dynamic_analyzer = dynamic_analyzer
        self.dynamic_spec = dynamic_spec
        if self.shared_wafer:
            spec = self.scenarios[0].wafer_spec()
            for scenario in self.scenarios[1:]:
                if scenario.wafer_spec() != spec:
                    raise ValueError(
                        "shared-wafer campaigns need one wafer spec; "
                        f"{scenario.resolved_label!r} differs from "
                        f"{self.scenarios[0].resolved_label!r}")
        self._lines: Optional[List[ScreeningLine]] = None

    # ------------------------------------------------------------------ #
    # Derived per-scenario plumbing
    # ------------------------------------------------------------------ #

    def labels(self) -> List[str]:
        """Resolved per-scenario labels, de-duplicated deterministically.

        A duplicate label (two scenarios differing only in axes the
        canonical name does not show, e.g. noise) gets an ``" [k]"``
        occurrence suffix so the merged ledger keeps the rows apart; a
        suffixed candidate that collides with an explicit label skips to
        the next free suffix, so distinct scenarios never share a row.
        """
        counts: Dict[str, int] = {}
        used = set()
        labels = []
        for scenario in self.scenarios:
            base = scenario.resolved_label
            n = counts.get(base, 0)
            while True:
                n += 1
                candidate = base if n == 1 else f"{base} [{n}]"
                if candidate not in used:
                    break
            counts[base] = n
            used.add(candidate)
            labels.append(candidate)
        return labels

    def seeds(self) -> List[int]:
        """The seed each scenario screens under, in scenario order."""
        return [scenario.seed if scenario.seed is not None
                else scenario_child_seed(self.seed, i)
                for i, scenario in enumerate(self.scenarios)]

    def lines(self) -> List[ScreeningLine]:
        """One screening line per scenario (built once, reused by run)."""
        if self._lines is None:
            self._lines = [
                ScreeningLine.from_scenario(
                    scenario,
                    dynamic_analyzer=self.dynamic_analyzer,
                    dynamic_spec=self.dynamic_spec)
                for scenario in self.scenarios]
        return self._lines

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _screen_scenario(self, label: str, seed: int, line: ScreeningLine,
                         lot: Lot, plan: Optional[ExecutionPlan],
                         parent_span_id: Optional[int]
                         ) -> Tuple[LotScreeningReport, ResultStore]:
        """Screen one scenario into its own child store.

        Runs on the caller's thread in sequential mode and on a scenario
        thread in interleaved mode; ``parent_span_id`` re-parents the
        ``campaign.scenario`` span under ``campaign.run`` when the
        thread-local span stack is empty.
        """
        t = current_telemetry()
        child = ResultStore()
        with t.under_span(parent_span_id):
            with t.span("campaign.scenario", label=label, seed=seed):
                report = line.screen_lot(lot, rng=seed, store=child,
                                         plan=plan)
        return report, child

    def _run_interleaved(self, labels: List[str], seeds: List[int],
                         lines: List[ScreeningLine], lots: List[Lot],
                         plan: ExecutionPlan,
                         parent_span_id: Optional[int]
                         ) -> List[Tuple[LotScreeningReport, ResultStore]]:
        """Drain every scenario's shards through one shared worker pool.

        One thread per scenario submits its shards; the pool (the ambient
        :func:`shared_pool` one if installed, else the warm module
        default) serves them all from a single work queue.  The pool is
        warmed *before* the scenario threads start so every worker is
        forked from a moment when this process has no extra threads, and
        futures are consumed in scenario order so logs, reports and the
        store merge are byte-identical to the sequential path.
        """
        pool = current_pool()
        if pool is None or pool.closed:
            pool = get_default_pool(plan.workers)
        with shared_pool(pool=pool):
            pool.warm_up()
            with ThreadPoolExecutor(
                    max_workers=len(self.scenarios),
                    thread_name_prefix="campaign-scenario") as threads:
                futures = [
                    threads.submit(self._screen_scenario, label, seed,
                                   line, lot, plan, parent_span_id)
                    for label, seed, line, lot in zip(labels, seeds,
                                                      lines, lots)]
                return [future.result() for future in futures]

    def run(self, plan: Optional[ExecutionPlan] = None,
            store: Optional[ResultStore] = None) -> CampaignResult:
        """Screen every scenario and shard-merge one ledger.

        Each scenario fills its own child
        :class:`~repro.production.store.ResultStore` (the "parallel lot
        stream"); the children are merged with
        :meth:`ResultStore.merge` into the result's store.  With a
        ``plan``, every scenario's device axis runs under the
        deterministic scale-out layer — the merged ledger is
        byte-identical for any ``(workers, chunk_size)``.

        With a multi-worker plan whose ``reuse_pool`` is left on, a
        multi-scenario campaign **interleaves**: all scenarios' shards
        feed one persistent :class:`~repro.production.pool.WorkerPool`
        (borrowing the ambient :func:`~repro.production.pool.shared_pool`
        if one is installed), so no worker idles at a scenario boundary.
        Interleaving is purely a scheduling change — per-shard seeds are
        functions of ``(scenario seed, shard index)``, never of dispatch
        order, and reports/stores are collected in scenario order, so
        the result is byte-identical to the sequential path.  In
        shared-wafer mode the one wafer is re-homed into shared memory
        for the duration of the run, so every scenario's every shard
        dispatches zero-copy.
        """
        labels = self.labels()
        seeds = self.seeds()
        lines = self.lines()
        wafer = None
        if self.shared_wafer:
            wafer_id = (self.shared_wafer_id if self.shared_wafer_id
                        is not None else f"SHARED-{self.seed}")
            wafer = Wafer.draw(self.scenarios[0].wafer_spec(),
                               rng=self.seed, wafer_id=wafer_id)
        interleave = (plan is not None and plan.workers > 1
                      and plan.reuse_pool and len(self.scenarios) > 1)
        t = current_telemetry()
        stores: List[ResultStore] = []
        reports: List[LotScreeningReport] = []
        with t.span("campaign.run", scenarios=len(self.scenarios),
                    interleaved=interleave) as campaign_span:
            shared_buffer = None
            if interleave and wafer is not None:
                shared_buffer, wafer = share_wafer(wafer)
            try:
                lots = []
                for scenario, label, seed in zip(self.scenarios, labels,
                                                 seeds):
                    if wafer is not None:
                        lots.append(Lot([wafer], lot_id=label))
                    else:
                        lots.append(scenario.draw_lot(seed=seed,
                                                      lot_id=label))
                if interleave:
                    results = self._run_interleaved(
                        labels, seeds, lines, lots, plan,
                        campaign_span.span_id)
                else:
                    results = [
                        self._screen_scenario(label, seed, line, lot,
                                              plan, None)
                        for label, seed, line, lot in zip(
                            labels, seeds, lines, lots)]
            finally:
                if shared_buffer is not None:
                    shared_buffer.close()
            for index, (label, (report, child)) in enumerate(
                    zip(labels, results)):
                reports.append(report)
                stores.append(child)
                _log.info("scenario %d/%d %s: %d/%d accepted",
                          index + 1, len(self.scenarios), label,
                          report.n_accepted, report.n_devices)
        if t.enabled:
            t.count("campaign.scenarios", len(self.scenarios))
            t.count("campaign.devices",
                    sum(r.n_devices for r in reports))
            t.count("campaign.accepted",
                    sum(r.n_accepted for r in reports))
        merged = ResultStore.merge(stores)
        if store is not None:
            for report in merged.reports:
                store.add(report)
        metrics = MetricsReport.from_reports(
            labels, {label: [report]
                     for label, report in zip(labels, reports)})
        return CampaignResult(scenarios=list(self.scenarios), labels=labels,
                              seeds=seeds, reports=reports, store=merged,
                              metrics=metrics)
