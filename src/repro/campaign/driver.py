"""Campaign driver: fan a scenario grid over the scale-out layer.

A :class:`Campaign` takes a list of
:class:`~repro.campaign.scenario.Scenario` objects (usually from
:meth:`Scenario.grid`), screens each one through a
:class:`~repro.production.line.ScreeningLine`, and shard-merges the
per-scenario :class:`~repro.production.store.ResultStore` ledgers into one
— the "campaign driver that shard-merges ResultStores from parallel lot
streams" the roadmap asked for.

Determinism is inherited end to end: scenario ``i`` screens under its own
seed (the scenario's explicit ``seed``, or child ``i`` of the campaign's
root :class:`numpy.random.SeedSequence` — a pure function of
``(root seed, i)``, never of execution order), and every insertion inside
:meth:`ScreeningLine.screen_lot` derives its own grandchild seed from it.
Passing an :class:`~repro.production.execution.ExecutionPlan` shards every
scenario's device axis over worker processes; because per-shard seeds are
spawned by shard index, the campaign report is **byte-identical for any
worker count** — ``plan=ExecutionPlan(workers=1)`` is the serial reference
of ``workers=8``.
"""

from __future__ import annotations

import csv
import json
import threading
from concurrent.futures import (FIRST_EXCEPTION, Future, ThreadPoolExecutor,
                                wait)
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.campaign.scenario import Scenario
from repro.production.execution import (ExecutionPlan, abort_scope,
                                        journal_scope)
from repro.production.line import LotScreeningReport, ScreeningLine
from repro.production.lot import Lot, Wafer
from repro.production.pool import (PoolBrokenError, current_pool,
                                   get_default_pool, share_wafer,
                                   shared_pool)
from repro.production.store import ResultStore
from repro.telemetry.core import current_telemetry
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import MetricsReport

__all__ = [
    "Campaign",
    "CampaignResult",
    "LabelDeduper",
    "ScenarioSubmitter",
    "scenario_child_seed",
    "scenario_record",
    "screen_scenario",
]

_log = get_logger("campaign")


def scenario_child_seed(root_seed: int, index: int) -> int:
    """Deterministic seed of scenario ``index`` under a campaign root seed.

    Child ``index`` of ``SeedSequence(root_seed)``, derived statelessly by
    spawn key — a pure function of ``(root_seed, index)``, so re-ordering,
    slicing or re-running a campaign cannot change any scenario's stream.
    """
    root = np.random.SeedSequence(root_seed)
    child = np.random.SeedSequence(entropy=root.entropy,
                                   spawn_key=root.spawn_key + (index,))
    return int(child.generate_state(1)[0])


class LabelDeduper:
    """Incrementally de-duplicate ledger labels, campaign-style.

    A duplicate base label (two scenarios differing only in axes the
    canonical name does not show, e.g. noise) gets an ``" [k]"``
    occurrence suffix so a merged ledger keeps the rows apart; a suffixed
    candidate that collides with an explicit label skips to the next free
    suffix, so distinct scenarios never share a row.  Incremental on
    purpose: :meth:`Campaign.labels` claims a whole scenario list up
    front, while the streaming service claims one label per request as
    requests arrive — both walks produce identical labels for identical
    base sequences.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._used: set = set()

    def claim(self, base: str) -> str:
        """The resolved label for the next occurrence of ``base``."""
        n = self._counts.get(base, 0)
        while True:
            n += 1
            candidate = base if n == 1 else f"{base} [{n}]"
            if candidate not in self._used:
                break
        self._counts[base] = n
        self._used.add(candidate)
        return candidate


def screen_scenario(label: str, seed: int, line: ScreeningLine, lot: Lot,
                    plan: Optional[ExecutionPlan] = None,
                    parent_span_id: Optional[int] = None
                    ) -> Tuple[LotScreeningReport, ResultStore]:
    """Screen one scenario into its own fresh child store.

    The single screening step both drivers share: :class:`Campaign` runs
    it once per scenario (inline or on a scenario thread) and the
    streaming service runs it once per request.  ``parent_span_id``
    re-parents the ``campaign.scenario`` span (under ``campaign.run`` or
    a ``serve.request`` span) when the calling thread's span stack is
    empty.
    """
    t = current_telemetry()
    child = ResultStore()
    with t.under_span(parent_span_id):
        with t.span("campaign.scenario", label=label, seed=seed):
            report = line.screen_lot(lot, rng=seed, store=child, plan=plan)
    return report, child


def scenario_record(scenario: Scenario, label: str, seed: int,
                    report: LotScreeningReport) -> Dict[str, object]:
    """One plain-dict export record for a screened scenario.

    The shared row shape of :meth:`CampaignResult.records` (JSON/CSV
    export) and the streaming service's per-request result events.
    """
    return {
        "label": label,
        "architecture": report.architecture,
        "method": report.method,
        "mode": report.mode,
        "q": report.q,
        "n_bits": scenario.n_bits,
        "seed": seed,
        "devices": report.n_devices,
        "accepted": report.n_accepted,
        "accept_fraction": report.accept_fraction,
        "true_yield": report.p_good,
        "type_i": report.type_i,
        "type_ii": report.type_ii,
        "samples_per_device": report.samples_per_device,
        "tester_seconds": report.tester_seconds,
        "devices_per_hour": report.devices_per_hour,
        "cost_per_device": report.cost_per_device,
        "flow": getattr(report, "flow", "fixed"),
        "excursion": scenario.excursion,
        "saved_samples": getattr(report, "saved_samples", 0),
        "saved_tester_seconds": getattr(report, "saved_tester_seconds", 0.0),
        "aborted": getattr(report, "n_aborted", 0),
        "excursions": getattr(report, "excursions", 0),
    }


class ScenarioSubmitter:
    """Feed concurrent scenario screenings through one shared worker pool.

    The reusable submission API underneath both the interleaved
    :meth:`Campaign.run` path and ``repro serve``: entering the context
    acquires the persistent pool (the ambient
    :func:`~repro.production.pool.shared_pool` if one is installed, else
    the module default), warms it *before* any submission thread exists
    (so workers fork from a thread-free process), installs it as the
    ambient pool, and opens a thread bench.  Each :meth:`submit` then
    screens one scenario on its own thread, so every in-flight
    screening's shards drain through the pool's single work queue —
    in-flight campaign scenarios and in-flight serve requests interleave
    by exactly the same mechanism.

    Parameters
    ----------
    plan:
        The execution plan submissions screen under by default (a
        per-submission override is accepted).  ``workers=1`` plans skip
        pool acquisition entirely and screen serially on the submission
        threads.
    max_threads:
        Concurrent screenings in flight; further submissions queue.
    pool_retries:
        How many times a submission that hits a
        :class:`~repro.production.pool.PoolBrokenError` (a worker died;
        the broken pool was evicted) is re-run against a rebuilt pool
        before the error propagates.  ``0`` — the campaign default —
        propagates immediately.  With a journal installed the re-run
        replays every journaled shard, so only genuinely unfinished work
        recomputes.
    """

    def __init__(self, plan: ExecutionPlan, *, max_threads: int = 1,
                 pool_retries: int = 0) -> None:
        if max_threads < 1:
            raise ValueError("max_threads must be >= 1")
        if pool_retries < 0:
            raise ValueError("pool_retries must be >= 0")
        self.plan = plan
        self.max_threads = int(max_threads)
        self.pool_retries = int(pool_retries)
        self._abort = threading.Event()
        self._threads: Optional[ThreadPoolExecutor] = None
        self._shared = None

    # -- context management -------------------------------------------- #

    def __enter__(self) -> "ScenarioSubmitter":
        if self.plan.workers > 1 and self.plan.reuse_pool:
            pool = current_pool()
            if pool is None or pool.closed:
                pool = get_default_pool(self.plan.workers)
            self._shared = shared_pool(pool=pool)
            self._shared.__enter__()
            try:
                pool.warm_up()
            except BaseException:
                self._shared.__exit__(None, None, None)
                self._shared = None
                raise
        self._threads = ThreadPoolExecutor(
            max_workers=self.max_threads,
            thread_name_prefix="campaign-scenario")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if self._threads is not None:
                self._threads.shutdown(wait=True)
        finally:
            self._threads = None
            if self._shared is not None:
                self._shared.__exit__(None, None, None)
                self._shared = None

    # -- submission ----------------------------------------------------- #

    def submit(self, label: str, seed: int, line: ScreeningLine, lot: Lot,
               *, plan: Optional[ExecutionPlan] = None,
               parent_span_id: Optional[int] = None,
               journal: Any = None) -> "Future":
        """Schedule one scenario screening; returns its future.

        The future resolves to the ``(report, child_store)`` pair of
        :func:`screen_scenario`, raises
        :class:`~repro.production.execution.ExecutionAborted` if
        :meth:`abort` fired first, and — past ``pool_retries`` rebuild
        attempts — :class:`~repro.production.pool.PoolBrokenError`.
        """
        if self._threads is None:
            raise RuntimeError(
                "ScenarioSubmitter.submit outside the context block")
        return self._threads.submit(
            self._run, label, seed, line, lot,
            plan if plan is not None else self.plan,
            parent_span_id, journal)

    def _run(self, label: str, seed: int, line: ScreeningLine, lot: Lot,
             plan: ExecutionPlan, parent_span_id: Optional[int],
             journal: Any) -> Tuple[LotScreeningReport, ResultStore]:
        retries = self.pool_retries
        while True:
            try:
                with abort_scope(self._abort), journal_scope(journal):
                    return screen_scenario(label, seed, line, lot,
                                           plan=plan,
                                           parent_span_id=parent_span_id)
            except PoolBrokenError:
                if retries <= 0 or self._abort.is_set():
                    raise
                retries -= 1
                t = current_telemetry()
                if t.enabled:
                    t.count("pool.rebuilt")
                _log.warning("%s: worker pool broke mid-screen; "
                             "rebuilding and retrying", label)
                if journal is not None:
                    journal.begin_attempt()
                # The broken pool was evicted; this both rebuilds the
                # module default and surfaces a second failure early.
                get_default_pool(plan.workers)

    # -- cancellation --------------------------------------------------- #

    def abort(self) -> None:
        """Signal every in-flight screening to stop submitting shards.

        Cooperative: running threads observe the event at their next
        shard batch and raise
        :class:`~repro.production.execution.ExecutionAborted`; queued
        submissions should additionally be ``cancel()``-ed by the caller.
        """
        self._abort.set()

    @property
    def aborted(self) -> bool:
        return self._abort.is_set()


@dataclass
class CampaignResult:
    """Everything one campaign run produced.

    Attributes
    ----------
    scenarios, labels, seeds:
        The scenarios that ran, their resolved (de-duplicated) labels, and
        the seed each one screened under.
    reports:
        One :class:`~repro.production.line.LotScreeningReport` per
        scenario, in scenario order.
    store:
        The shard-merged :class:`~repro.production.store.ResultStore`
        ledger of the whole campaign.
    """

    scenarios: List[Scenario]
    labels: List[str]
    seeds: List[int]
    reports: List[LotScreeningReport]
    store: ResultStore = field(default_factory=ResultStore)
    metrics: Optional[MetricsReport] = None

    def table(self) -> str:
        """The per-scenario pivot table (yield/escapes/time/cost)."""
        return self.store.campaign_table()

    def metrics_table(self) -> str:
        """The operational metrics pivot next to :meth:`table`."""
        if self.metrics is None:
            return ""
        return self.metrics.table()

    def records(self) -> List[Dict[str, object]]:
        """One plain-dict record per scenario, for JSON/CSV export."""
        return [scenario_record(scenario, label, seed, report)
                for scenario, label, seed, report in zip(
                    self.scenarios, self.labels, self.seeds, self.reports)]

    def to_json(self, indent: int = 2) -> str:
        """The campaign records as a JSON array."""
        return json.dumps(self.records(), indent=indent)

    def write_csv(self, path: str) -> int:
        """Write the campaign records to ``path`` as CSV; returns the
        number of data rows written."""
        records = self.records()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(records[0])
                                    if records else ["label"])
            writer.writeheader()
            writer.writerows(records)
        return len(records)


class Campaign:
    """Screen a list/grid of scenarios and merge one floor ledger.

    Parameters
    ----------
    scenarios:
        The scenarios to screen (a single scenario is accepted too).
        Scenarios with ``q="auto"`` are rejected — a screening line needs
        a concrete ``q`` for its tester economics; resolve it first.
    seed:
        Campaign root seed.  A scenario without its own ``seed`` screens
        under :func:`scenario_child_seed` of this root and its index; in
        shared-wafer mode the root also seeds the one wafer draw.
    shared_wafer:
        Screen every scenario on **one shared wafer draw** instead of
        per-scenario lots — the paper's comparison setting, where
        yield/escape/cost differences are attributable to the test method
        alone.  All scenarios must then share one wafer spec (same
        architecture, resolution, sigma, device count).
    shared_wafer_id:
        Identifier of the shared wafer (default ``"SHARED-<seed>"``).
    dynamic_analyzer, dynamic_spec:
        Optional FFT configuration/limits applied to every ``"dynamic"``
        scenario.
    """

    def __init__(self, scenarios: Union[Scenario, Sequence[Scenario]], *,
                 seed: int = 2026,
                 shared_wafer: bool = False,
                 shared_wafer_id: Optional[str] = None,
                 dynamic_analyzer=None,
                 dynamic_spec=None) -> None:
        if isinstance(scenarios, Scenario):
            scenarios = [scenarios]
        self.scenarios = list(scenarios)
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        self.seed = int(seed)
        self.shared_wafer = bool(shared_wafer)
        self.shared_wafer_id = shared_wafer_id
        self.dynamic_analyzer = dynamic_analyzer
        self.dynamic_spec = dynamic_spec
        if self.shared_wafer:
            spec = self.scenarios[0].wafer_spec()
            for scenario in self.scenarios[1:]:
                if scenario.wafer_spec() != spec:
                    raise ValueError(
                        "shared-wafer campaigns need one wafer spec; "
                        f"{scenario.resolved_label!r} differs from "
                        f"{self.scenarios[0].resolved_label!r}")
        self._lines: Optional[List[ScreeningLine]] = None

    # ------------------------------------------------------------------ #
    # Derived per-scenario plumbing
    # ------------------------------------------------------------------ #

    def labels(self) -> List[str]:
        """Resolved per-scenario labels, de-duplicated deterministically.

        A duplicate label (two scenarios differing only in axes the
        canonical name does not show, e.g. noise) gets an ``" [k]"``
        occurrence suffix so the merged ledger keeps the rows apart; a
        suffixed candidate that collides with an explicit label skips to
        the next free suffix, so distinct scenarios never share a row.
        """
        deduper = LabelDeduper()
        return [deduper.claim(scenario.resolved_label)
                for scenario in self.scenarios]

    def seeds(self) -> List[int]:
        """The seed each scenario screens under, in scenario order."""
        return [scenario.seed if scenario.seed is not None
                else scenario_child_seed(self.seed, i)
                for i, scenario in enumerate(self.scenarios)]

    def lines(self) -> List[ScreeningLine]:
        """One screening line per scenario (built once, reused by run)."""
        if self._lines is None:
            self._lines = [
                ScreeningLine.from_scenario(
                    scenario,
                    dynamic_analyzer=self.dynamic_analyzer,
                    dynamic_spec=self.dynamic_spec)
                for scenario in self.scenarios]
        return self._lines

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _screen_scenario(self, label: str, seed: int, line: ScreeningLine,
                         lot: Lot, plan: Optional[ExecutionPlan],
                         parent_span_id: Optional[int]
                         ) -> Tuple[LotScreeningReport, ResultStore]:
        """Screen one scenario (thin shim over :func:`screen_scenario`)."""
        return screen_scenario(label, seed, line, lot, plan=plan,
                               parent_span_id=parent_span_id)

    def _run_interleaved(self, labels: List[str], seeds: List[int],
                         lines: List[ScreeningLine], lots: List[Lot],
                         plan: ExecutionPlan,
                         parent_span_id: Optional[int]
                         ) -> List[Tuple[LotScreeningReport, ResultStore]]:
        """Drain every scenario's shards through one shared worker pool.

        One :class:`ScenarioSubmitter` thread per scenario submits its
        shards; the pool (the ambient :func:`shared_pool` one if
        installed, else the warm module default) serves them all from a
        single work queue.  The pool is warmed *before* the scenario
        threads start so every worker is forked from a moment when this
        process has no extra threads, and futures are consumed in
        scenario order so logs, reports and the store merge are
        byte-identical to the sequential path.

        Failure is prompt: the first scenario that raises aborts the
        submitter (running siblings stop at their next shard batch and
        raise :class:`~repro.production.execution.ExecutionAborted`),
        outstanding futures are cancelled, and the original error
        propagates — one bad scenario no longer lets its siblings screen
        to completion first.
        """
        with ScenarioSubmitter(plan,
                               max_threads=len(self.scenarios)) as submitter:
            futures = [
                submitter.submit(label, seed, line, lot,
                                 parent_span_id=parent_span_id)
                for label, seed, line, lot in zip(labels, seeds,
                                                  lines, lots)]
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            failed = next((f for f in futures
                           if f.done() and not f.cancelled()
                           and f.exception() is not None), None)
            if failed is not None:
                submitter.abort()
                for future in not_done:
                    future.cancel()
                wait(not_done)
                failed.result()  # re-raises the scenario's error
            return [future.result() for future in futures]

    def run(self, plan: Optional[ExecutionPlan] = None,
            store: Optional[ResultStore] = None) -> CampaignResult:
        """Screen every scenario and shard-merge one ledger.

        Each scenario fills its own child
        :class:`~repro.production.store.ResultStore` (the "parallel lot
        stream"); the children are merged with
        :meth:`ResultStore.merge` into the result's store.  With a
        ``plan``, every scenario's device axis runs under the
        deterministic scale-out layer — the merged ledger is
        byte-identical for any ``(workers, chunk_size)``.

        With a multi-worker plan whose ``reuse_pool`` is left on, a
        multi-scenario campaign **interleaves**: all scenarios' shards
        feed one persistent :class:`~repro.production.pool.WorkerPool`
        (borrowing the ambient :func:`~repro.production.pool.shared_pool`
        if one is installed), so no worker idles at a scenario boundary.
        Interleaving is purely a scheduling change — per-shard seeds are
        functions of ``(scenario seed, shard index)``, never of dispatch
        order, and reports/stores are collected in scenario order, so
        the result is byte-identical to the sequential path.  In
        shared-wafer mode the one wafer is re-homed into shared memory
        for the duration of the run, so every scenario's every shard
        dispatches zero-copy.
        """
        labels = self.labels()
        seeds = self.seeds()
        lines = self.lines()
        wafer = None
        if self.shared_wafer:
            wafer_id = (self.shared_wafer_id if self.shared_wafer_id
                        is not None else f"SHARED-{self.seed}")
            wafer = Wafer.draw(self.scenarios[0].wafer_spec(),
                               rng=self.seed, wafer_id=wafer_id)
        interleave = (plan is not None and plan.workers > 1
                      and plan.reuse_pool and len(self.scenarios) > 1)
        t = current_telemetry()
        stores: List[ResultStore] = []
        reports: List[LotScreeningReport] = []
        with t.span("campaign.run", scenarios=len(self.scenarios),
                    interleaved=interleave) as campaign_span:
            shared_buffer = None
            if interleave and wafer is not None:
                shared_buffer, wafer = share_wafer(wafer)
            try:
                lots = []
                for scenario, label, seed in zip(self.scenarios, labels,
                                                 seeds):
                    if wafer is not None:
                        lots.append(Lot([wafer], lot_id=label))
                    else:
                        lots.append(scenario.draw_lot(seed=seed,
                                                      lot_id=label))
                if interleave:
                    results = self._run_interleaved(
                        labels, seeds, lines, lots, plan,
                        campaign_span.span_id)
                else:
                    results = [
                        self._screen_scenario(label, seed, line, lot,
                                              plan, None)
                        for label, seed, line, lot in zip(
                            labels, seeds, lines, lots)]
            finally:
                if shared_buffer is not None:
                    shared_buffer.close()
            for index, (label, (report, child)) in enumerate(
                    zip(labels, results)):
                reports.append(report)
                stores.append(child)
                _log.info("scenario %d/%d %s: %d/%d accepted",
                          index + 1, len(self.scenarios), label,
                          report.n_accepted, report.n_devices)
        if t.enabled:
            t.count("campaign.scenarios", len(self.scenarios))
            t.count("campaign.devices",
                    sum(r.n_devices for r in reports))
            t.count("campaign.accepted",
                    sum(r.n_accepted for r in reports))
        merged = ResultStore.merge(stores)
        if store is not None:
            for report in merged.reports:
                store.add(report)
        metrics = MetricsReport.from_reports(
            labels, {label: [report]
                     for label, report in zip(labels, reports)})
        return CampaignResult(scenarios=list(self.scenarios), labels=labels,
                              seeds=seeds, reports=reports, store=merged,
                              metrics=metrics)
