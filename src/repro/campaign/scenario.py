"""Declarative test scenarios: one value object describing a whole run.

The paper's argument is a *comparison across scenarios* — full BIST versus
partial-``q`` BIST versus the conventional histogram/dynamic tests, across
converter architectures and tester economics.  Until now every comparison
was assembled by hand: pick an engine class, build its config, wire a
:class:`~repro.production.line.ScreeningLine`, repeat with slightly
different knobs.  A :class:`Scenario` replaces that with a single frozen
dataclass naming everything a run depends on — architecture, method, ``q``,
resolution, noise, wafer geometry, tester choice, seed — that every backend
consumes:

* :func:`repro.campaign.factory.make_engine` turns a scenario into the
  right batch engine (the only place engines are constructed);
* :meth:`repro.production.line.ScreeningLine.from_scenario` turns it into
  a fully configured screening line;
* :class:`repro.campaign.driver.Campaign` fans a list (or
  :meth:`Scenario.grid`) of scenarios across the deterministic scale-out
  layer and shard-merges the results into one
  :class:`~repro.production.store.ResultStore`.

Because a scenario is frozen and hashable, grids deduplicate naturally:
axes that do not apply to a method (``q`` for the conventional tests)
normalise away instead of multiplying the grid.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from itertools import product
from typing import Iterable, List, Optional, Tuple, Union

from repro.adc.backends import ARCHITECTURES
from repro.core.backend import backend_names
from repro.core.engine import BistConfig
from repro.economics.cost_model import TesterModel
from repro.flows.excursions import EXCURSIONS, apply_excursion
from repro.production.line import DEFAULT_BIN_EDGES_LSB, SCREENING_METHODS
from repro.production.lot import Lot, Wafer, WaferSpec

__all__ = ["AUTO_Q", "FLOWS", "Scenario", "TESTER_CHOICES"]

#: Sentinel ``q`` value: derive the Equation (1) minimum from the stimulus.
AUTO_Q = "auto"

#: Tester selections a scenario can name (``None`` = per-method default).
TESTER_CHOICES = (None, "digital", "mixed")

#: Test-flow selections: the paper's fixed-count flow, or the adaptive
#: sequential (Wald SPRT) flow of :mod:`repro.flows`.
FLOWS = ("fixed", "sprt")

QValue = Union[int, str, None]


@dataclass(frozen=True)
class Scenario:
    """Everything one screening run depends on, as a frozen value object.

    Parameters
    ----------
    architecture:
        Converter architecture of the dies: ``"flash"``, ``"sar"`` or
        ``"pipeline"``.
    method:
        Screening method: ``"bist"`` (default), ``"histogram"`` (the
        conventional ramp code-density test) or ``"dynamic"`` (the
        single-tone FFT suite).
    q:
        LSBs captured off-chip by the BIST.  ``None`` (default) is the
        full BIST (only the pass/fail flag leaves the chip); an integer
        ``1..n_bits`` selects the partial scheme; :data:`AUTO_Q`
        (``"auto"``) derives the Equation (1) minimum from the stimulus at
        run time (engine-level runs only — a
        :class:`~repro.production.line.ScreeningLine` needs a concrete
        ``q`` for its economics).  Only valid with ``method="bist"``.
    n_bits:
        Converter resolution.
    sigma_code_width_lsb:
        Code-width sigma in LSB (flash architecture).
    n_devices:
        Dies per wafer.
    n_wafers:
        Wafers per lot.
    devices_per_ic:
        Converters sharing one IC; must divide ``n_devices``.
    samples_per_code:
        Ramp density of the partial-BIST and histogram stimuli.
    counter_bits:
        LSB-processing counter size (BIST method).
    dnl_spec_lsb, inl_spec_lsb:
        Linearity specification in LSB (``inl_spec_lsb=None`` disables
        the INL check).
    transition_noise_lsb:
        Converter input-referred acquisition noise in LSB.
    deglitch_depth:
        LSB deglitch filter depth; only the full BIST has the filter.
    retest_attempts:
        Re-insertions of rejected dies (0 disables retest).
    bin_edges_lsb:
        Ascending measured-|DNL| edges of the quality bins.
    tester:
        ``"digital"``, ``"mixed"``, or ``None`` for the per-method default
        (digital for the full BIST, mixed-signal for everything that
        captures analog-driven data).
    backend:
        Kernel backend name (see :mod:`repro.core.backend`):
        ``"numpy"``, ``"numpy-compact"`` or ``"numba"``.  ``None``
        (default) lets the engines resolve the ambient/process default
        at ``prepare`` time.  A campaign grid can sweep this axis —
        integer results are bit-identical between ``numpy`` and
        ``numpy-compact``, so the axis deduplicates the physics while
        exercising the dtype-compacted kernels.
    flow:
        Test flow: ``"fixed"`` (the paper's fixed-count decision,
        default) or ``"sprt"`` — the adaptive sequential flow of
        :mod:`repro.flows`: a Wald-SPRT station stops each device at its
        accept/reject boundary (reporting saved tester-seconds), and an
        SPC monitor (p-chart + CUSUM over streaming shard results) aborts
        a wafer's remaining shards on an excursion.  Only valid with the
        full BIST; grids normalise it back to ``"fixed"`` for other
        methods.
    excursion:
        Non-IID population transform applied to each drawn wafer (see
        :mod:`repro.flows.excursions`): ``"drift"`` (lot-to-lot parameter
        drift), ``"spatial"`` (spatially correlated wafer map), ``"burst"``
        (burst fault clusters), or ``None``/``"none"`` for the clean IID
        population.  Deterministically seeded per ``(seed, wafer index)``
        in a namespace disjoint from the wafer draw, so the underlying
        process draw stays bit-identical to the clean scenario's.
    seed:
        Scenario seed for the wafer draw and the acquisition noise.
        ``None`` defers to the campaign, which derives a deterministic
        per-scenario child seed from its own root seed.
    label:
        Human-readable name used in reports; defaults to the canonical
        :attr:`name` (``"flash/partial q=4"``-style).
    """

    architecture: str = "flash"
    method: str = "bist"
    q: QValue = None
    n_bits: int = 6
    sigma_code_width_lsb: float = 0.21
    n_devices: int = 2000
    n_wafers: int = 1
    devices_per_ic: int = 1
    samples_per_code: float = 16.0
    counter_bits: int = 7
    dnl_spec_lsb: float = 1.0
    inl_spec_lsb: Optional[float] = None
    transition_noise_lsb: float = 0.0
    deglitch_depth: int = 0
    retest_attempts: int = 0
    bin_edges_lsb: Tuple[float, ...] = DEFAULT_BIN_EDGES_LSB
    tester: Optional[str] = None
    backend: Optional[str] = None
    flow: str = "fixed"
    excursion: Optional[str] = None
    seed: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise ValueError(
                f"unknown architecture {self.architecture!r}; "
                f"expected one of {ARCHITECTURES}")
        if self.method not in SCREENING_METHODS:
            raise ValueError(f"unknown screening method {self.method!r}; "
                             f"expected one of {SCREENING_METHODS}")
        if self.q is not None:
            if self.method != "bist":
                raise ValueError("q only applies to the BIST method")
            if self.q != AUTO_Q:
                object.__setattr__(self, "q", int(self.q))
                if not 1 <= self.q <= self.n_bits:
                    raise ValueError(
                        f"q must be within [1, {self.n_bits}] or "
                        f"{AUTO_Q!r}")
        if self.n_bits < 2:
            raise ValueError("n_bits must be >= 2")
        if self.n_devices < 1 or self.n_wafers < 1:
            raise ValueError("n_devices and n_wafers must be >= 1")
        if self.devices_per_ic < 1:
            raise ValueError("devices_per_ic must be positive")
        if self.n_devices % self.devices_per_ic != 0:
            raise ValueError(
                f"{self.n_devices} dies per wafer do not fill whole ICs "
                f"of {self.devices_per_ic} converters")
        if self.samples_per_code <= 0:
            raise ValueError("samples_per_code must be positive")
        if self.transition_noise_lsb < 0:
            raise ValueError("transition_noise_lsb must be non-negative")
        if self.deglitch_depth > 0 and not self.is_full_bist:
            raise ValueError(
                "only the full BIST has a deglitch filter; unset "
                "deglitch_depth for partial/histogram/dynamic scenarios")
        if self.retest_attempts < 0:
            raise ValueError("retest_attempts must be non-negative")
        edges = tuple(float(e) for e in self.bin_edges_lsb)
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bin_edges_lsb must be strictly ascending")
        object.__setattr__(self, "bin_edges_lsb", edges)
        if self.tester not in TESTER_CHOICES:
            raise ValueError(f"unknown tester {self.tester!r}; "
                             f"expected one of {TESTER_CHOICES}")
        if self.backend is not None and self.backend not in backend_names():
            raise ValueError(
                f"unknown kernel backend {self.backend!r}; "
                f"registered: {', '.join(backend_names())}")
        if self.flow not in FLOWS:
            raise ValueError(f"unknown flow {self.flow!r}; "
                             f"expected one of {FLOWS}")
        if self.flow != "fixed" and not self.is_full_bist:
            raise ValueError(
                "the sequential flow rides on the full BIST's per-code "
                "stream; use flow='fixed' for partial/histogram/dynamic "
                "scenarios")
        if self.excursion == "none":
            object.__setattr__(self, "excursion", None)
        if self.excursion is not None and self.excursion not in EXCURSIONS:
            raise ValueError(
                f"unknown excursion {self.excursion!r}; "
                f"registered: {', '.join(EXCURSIONS)} (or 'none')")

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    @property
    def is_full_bist(self) -> bool:
        """Whether the scenario runs the full BIST (pass/fail flag only)."""
        return self.method == "bist" and self.q is None

    @property
    def mode(self) -> str:
        """Station flavour: BIST ``"full"``/``"partial"``, or the method."""
        if self.method != "bist":
            return self.method
        return "full" if self.q is None else "partial"

    @property
    def name(self) -> str:
        """Canonical (architecture, method/mode) tag of the scenario.

        Matches the format of
        :attr:`repro.production.line.LotScreeningReport.scenario`, so
        campaign tables and per-lot reports agree on naming.
        """
        if self.method != "bist":
            base = f"{self.architecture}/{self.method}"
        elif self.q is None:
            base = f"{self.architecture}/full"
        else:
            base = f"{self.architecture}/partial q={self.q}"
        # Default-flow, clean-population names keep their historical
        # shape; adaptive-flow and excursion variants tag themselves so a
        # grid over those axes cannot collide on labels.
        if self.flow != "fixed":
            base = f"{base} {self.flow}"
        if self.excursion is not None:
            base = f"{base} +{self.excursion}"
        return base

    @property
    def resolved_label(self) -> str:
        """The explicit label, or the canonical name when none was set."""
        return self.label if self.label is not None else self.name

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #

    def derive(self, **changes) -> "Scenario":
        """A new scenario with ``changes`` applied (and re-validated).

        An explicit ``label`` does not survive derivation unless re-given:
        a derived scenario describes a different run, so inheriting the
        parent's human-readable name would mislabel it.
        """
        changes.setdefault("label", None)
        return dataclasses.replace(self, **changes)

    def grid(self, **axes) -> List["Scenario"]:
        """The cartesian product of this scenario over the given axes.

        Each keyword names a field; its value is a single value or an
        iterable of values.  Combinations are emitted in row-major order
        (first axis slowest) with two normalisations that keep grids
        honest: ``q`` collapses to ``None`` for methods it does not apply
        to, and scenarios that normalise to the same value object are
        deduplicated — ``method=["bist", "histogram"], q=[4, 8]`` yields
        the two partial-BIST points plus *one* histogram scenario, not
        two.
        """
        field_names = [f.name for f in dataclasses.fields(self)]
        unknown = set(axes) - set(field_names)
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        names = [name for name in field_names if name in axes]
        value_lists = []
        for name in names:
            values = axes[name]
            if isinstance(values, (str, bytes)) or not isinstance(
                    values, Iterable):
                values = [values]
            else:
                values = list(values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            value_lists.append(values)
        scenarios: List[Scenario] = []
        seen = set()
        for combo in product(*value_lists):
            changes = dict(zip(names, combo))
            method = changes.get("method", self.method)
            if method != "bist":
                changes["q"] = None
            q = changes.get("q", self.q)
            flow = changes.get("flow", self.flow)
            if flow != "fixed" and (method != "bist" or q is not None):
                # The sequential flow only exists for the full BIST;
                # other methods collapse to the fixed flow (and then
                # deduplicate) instead of multiplying the grid.
                changes["flow"] = "fixed"
            scenario = self.derive(**changes)
            if scenario in seen:
                continue
            seen.add(scenario)
            scenarios.append(scenario)
        return scenarios

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #

    def wafer_spec(self) -> WaferSpec:
        """The wafer geometry/process spec this scenario screens."""
        return WaferSpec(n_bits=self.n_bits,
                         sigma_code_width_lsb=self.sigma_code_width_lsb,
                         n_devices=self.n_devices,
                         architecture=self.architecture)

    def bist_config(self) -> BistConfig:
        """The measurement configuration the engines are built from."""
        return BistConfig(n_bits=self.n_bits,
                          counter_bits=self.counter_bits,
                          dnl_spec_lsb=self.dnl_spec_lsb,
                          inl_spec_lsb=self.inl_spec_lsb,
                          deglitch_depth=self.deglitch_depth,
                          transition_noise_lsb=self.transition_noise_lsb)

    def tester_model(self) -> Optional[TesterModel]:
        """The explicitly named tester, or ``None`` for the method default."""
        if self.tester == "digital":
            return TesterModel.digital_only()
        if self.tester == "mixed":
            return TesterModel.mixed_signal()
        return None

    def _resolve_seed(self, seed: Optional[int]) -> int:
        if seed is not None:
            return int(seed)
        if self.seed is None:
            raise ValueError(
                "scenario has no seed; set Scenario.seed, pass one "
                "explicitly, or run it through a Campaign (which derives "
                "per-scenario child seeds from its root seed)")
        return int(self.seed)

    def _excurse(self, wafer: Wafer, wafer_index: int,
                 seed: Optional[int]) -> Wafer:
        """Apply this scenario's excursion transform to a drawn wafer.

        Runs in the parent, before any sharding, so excursed populations
        inherit the execution layer's byte-identity across every
        ``(workers, chunk_size)`` geometry for free.
        """
        if self.excursion is None:
            return wafer
        transformed = apply_excursion(
            self.excursion, wafer.transitions, self.wafer_spec().lsb,
            wafer_index, seed)
        if transformed is wafer.transitions:
            return wafer
        return Wafer(wafer.spec, transformed, wafer_id=wafer.wafer_id)

    def draw_wafer(self, seed: Optional[int] = None,
                   wafer_id: Optional[str] = None) -> Wafer:
        """Draw one wafer of this scenario's dies, reproducibly.

        With an ``excursion`` configured the drawn matrix is perturbed by
        the named transform (at wafer index 0 — single-wafer draws are
        the start of the drift axis).
        """
        seed = self._resolve_seed(seed)
        wafer = Wafer.draw(self.wafer_spec(), rng=seed,
                           wafer_id=(wafer_id if wafer_id is not None
                                     else self.resolved_label))
        return self._excurse(wafer, wafer_index=0, seed=seed)

    def draw_lot(self, seed: Optional[int] = None,
                 lot_id: Optional[str] = None) -> Lot:
        """Draw this scenario's lot (``n_wafers`` wafers), reproducibly.

        With an ``excursion`` configured, wafer ``i`` of the lot is
        perturbed at excursion index ``i`` (the drift axis runs along the
        lot), each from its own deterministic perturbation stream.
        """
        seed = self._resolve_seed(seed)
        lot = Lot.draw(self.wafer_spec(), n_wafers=self.n_wafers,
                       seed=seed,
                       lot_id=(lot_id if lot_id is not None
                               else self.resolved_label))
        if self.excursion is None:
            return lot
        return Lot([self._excurse(wafer, i, seed)
                    for i, wafer in enumerate(lot.wafers)],
                   lot_id=lot.lot_id)
