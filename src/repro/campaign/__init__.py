"""Scenario/Campaign API: the single front door over every engine.

This package is the declarative layer the rest of the reproduction is
driven through:

:mod:`repro.campaign.scenario` — :class:`Scenario`, a frozen value object
    naming everything one screening run depends on (architecture, method,
    ``q``, resolution, noise, wafer geometry, tester, seed), with
    :meth:`~Scenario.derive` and :meth:`~Scenario.grid` helpers for
    building comparison grids that normalise and deduplicate themselves.

:mod:`repro.campaign.factory` — :func:`make_engine`, the only place batch
    engines are constructed (the screening line and the CLI are both
    rewired onto it), plus :func:`default_tester` for the per-method
    tester economics.

:mod:`repro.campaign.driver` — :class:`Campaign`, which fans a scenario
    list/grid across the deterministic scale-out layer
    (:class:`~repro.production.execution.ExecutionPlan`) with per-scenario
    child seeds and shard-merges everything into one
    :class:`~repro.production.store.ResultStore`
    (:meth:`~repro.production.store.ResultStore.campaign_table`).

Quick start
-----------

>>> from repro.campaign import Campaign, Scenario
>>> grid = Scenario(n_bits=8, n_devices=500).grid(
...     architecture=["flash", "sar"], method=["bist", "histogram"],
...     q=[4, 8])
>>> result = Campaign(grid, seed=7).run()
>>> print(result.table())            # doctest: +SKIP

On the command line the same grid is ``repro campaign --arch flash,sar
--method bist,histogram --q 4,8``.
"""

from repro.campaign.scenario import AUTO_Q, FLOWS, Scenario, TESTER_CHOICES
from repro.campaign.factory import (
    BatchEngine,
    default_tester,
    make_engine,
    sequential_policy,
)
from repro.campaign.driver import (
    Campaign,
    CampaignResult,
    LabelDeduper,
    ScenarioSubmitter,
    scenario_child_seed,
    scenario_record,
    screen_scenario,
)

__all__ = [
    "AUTO_Q",
    "BatchEngine",
    "Campaign",
    "CampaignResult",
    "FLOWS",
    "LabelDeduper",
    "Scenario",
    "ScenarioSubmitter",
    "TESTER_CHOICES",
    "default_tester",
    "make_engine",
    "scenario_child_seed",
    "scenario_record",
    "sequential_policy",
    "screen_scenario",
]
