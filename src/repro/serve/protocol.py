"""Wire protocol of the streaming serve front door: JSONL in, JSONL out.

One request per line, one event per line — the line-oriented framing the
misoc-style BIST drivers use, chosen so the same protocol serves a shell
pipe (``repro serve < requests.jsonl``) and many concurrent TCP clients
(``--socket HOST:PORT``) without a framing layer.

Requests
--------

A request is a JSON object naming a
:class:`~repro.campaign.scenario.Scenario`::

    {"id": "lot-42", "scenario": {"architecture": "flash", "method":
     "bist", "n_bits": 6, "n_devices": 512}, "seed": 7}

``scenario``
    Keyword arguments of the frozen :class:`Scenario` dataclass — the
    exact vocabulary of ``repro campaign``; unknown keys are rejected.
``seed`` (optional)
    Screening seed override.  Without it the scenario's own ``seed``
    applies, and without *that* request ``seq`` screens under
    :func:`~repro.campaign.driver.scenario_child_seed` of the server's
    root seed — the same child-seed discipline a batch
    :class:`~repro.campaign.driver.Campaign` uses, which is what makes a
    served stream byte-identical to the equivalent batch run.
``id`` (optional)
    Client correlation token, echoed on every event for this request
    (default ``req-<seq>``).

``{"command": "shutdown"}`` asks the server to stop accepting requests,
drain in-flight work and emit the final ledger.

Events
------

``{"event": "accepted", ...}``, ``{"event": "result", "record": {...},
"rolling": {...}}``, ``{"event": "error", ...}`` and the closing
``{"event": "ledger", ...}``; ``result`` records carry the
:func:`~repro.campaign.driver.scenario_record` row shape of the campaign
JSON export.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.campaign.driver import LabelDeduper, scenario_child_seed
from repro.campaign.scenario import Scenario

__all__ = [
    "ProtocolError",
    "ServeRequest",
    "build_request",
    "event_line",
    "is_shutdown",
    "parse_line",
    "scenario_kwargs",
]

#: Keys a request object may carry at the top level.
REQUEST_KEYS = frozenset({"id", "scenario", "seed", "command"})

_SCENARIO_FIELDS = frozenset(f.name for f in dataclasses.fields(Scenario))


class ProtocolError(ValueError):
    """A request line the server cannot honour (reported, never fatal)."""


@dataclass(frozen=True)
class ServeRequest:
    """One accepted request, fully resolved for scheduling.

    ``seq`` is the server-assigned arrival index — the request's identity
    in the checkpoint journal and its scenario index for child-seed
    derivation; ``label`` is the ledger row claimed from the server's
    :class:`~repro.campaign.driver.LabelDeduper` (identical to the label
    the batch campaign would assign the same arrival order).
    """

    seq: int
    id: str
    scenario: Scenario
    seed: int
    label: str


def parse_line(text: str) -> Dict[str, Any]:
    """Parse one request line into a dict, or raise :class:`ProtocolError`."""
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("a request must be a JSON object")
    unknown = sorted(set(obj) - REQUEST_KEYS)
    if unknown:
        raise ProtocolError(
            f"unknown request key(s): {', '.join(unknown)} "
            f"(expected {', '.join(sorted(REQUEST_KEYS))})")
    return obj


def is_shutdown(obj: Dict[str, Any]) -> bool:
    """True if the parsed line is the shutdown command."""
    command = obj.get("command")
    if command is None:
        return False
    if command != "shutdown":
        raise ProtocolError(f"unknown command {command!r} "
                            f"(expected 'shutdown')")
    return True


def build_request(obj: Dict[str, Any], *, seq: int, root_seed: int,
                  deduper: LabelDeduper) -> ServeRequest:
    """Resolve a parsed request dict into a schedulable :class:`ServeRequest`.

    Seed resolution mirrors :meth:`Campaign.seeds` exactly — request
    ``seed`` field, else the scenario's own ``seed``, else child ``seq``
    of the server root — and the label is claimed from the shared deduper
    in arrival order, so a served stream and the batch campaign of the
    same scenarios agree on every ledger row.
    """
    kwargs = obj.get("scenario", {})
    if not isinstance(kwargs, dict):
        raise ProtocolError("'scenario' must be a JSON object of "
                            "Scenario fields")
    unknown = sorted(set(kwargs) - _SCENARIO_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown scenario field(s): {', '.join(unknown)}")
    try:
        scenario = Scenario(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid scenario: {exc}") from exc
    if scenario.q is not None and not isinstance(scenario.q, int):
        # A screening line needs concrete economics, exactly as Campaign
        # rejects q="auto" scenarios.
        raise ProtocolError("q='auto' cannot be screened; "
                            "request a concrete q")
    if "seed" in obj:
        try:
            seed = int(obj["seed"])
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid seed: {obj['seed']!r}") from exc
    elif scenario.seed is not None:
        seed = int(scenario.seed)
    else:
        seed = scenario_child_seed(root_seed, seq)
    label = deduper.claim(scenario.resolved_label)
    rid = str(obj.get("id", f"req-{seq}"))
    return ServeRequest(seq=seq, id=rid, scenario=scenario, seed=seed,
                        label=label)


def scenario_kwargs(scenario: Scenario) -> Dict[str, Any]:
    """The JSON-safe kwargs that rebuild ``scenario`` exactly.

    Used by the checkpoint journal: ``Scenario(**scenario_kwargs(s)) == s``
    (tuples round-trip through JSON lists; ``__post_init__`` re-coerces).
    """
    kwargs = dataclasses.asdict(scenario)
    kwargs["bin_edges_lsb"] = list(kwargs["bin_edges_lsb"])
    return kwargs


def _json_default(value: Any) -> Any:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")


def event_line(event: str, **fields: Any) -> str:
    """Render one response event as a single JSONL line (no newline)."""
    return json.dumps({"event": event, **fields}, default=_json_default)
