"""Rolling result aggregation for the streaming serve front door.

A batch :class:`~repro.campaign.driver.Campaign` merges its per-scenario
child :class:`~repro.production.store.ResultStore` ledgers once, at the
end.  A long-running server needs the same ledger *while requests are
still arriving*: the :class:`RollingStore` accumulates each completed
request's ``(report, child store)`` pair as it lands and exposes

* :meth:`snapshot` — running totals (requests, devices, accepted,
  tester seconds) plus per-scenario running yield/escape/cost, attached
  to every ``result`` event.  Counts are **monotonic**: a completed
  request only ever adds, it is never revised or dropped.
* :meth:`merged` / :meth:`ledger` — the full floor ledger, with child
  stores merged in request-``seq`` order.  Merging in arrival order (not
  completion order) is what makes the final ledger byte-identical to the
  batch campaign of the same request stream, no matter how the pool
  interleaved the actual work.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.production.line import LotScreeningReport
from repro.production.store import ResultStore

__all__ = ["RollingStore"]


class RollingStore:
    """Accumulate completed serve requests into one rolling ledger."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[int, Tuple[str, LotScreeningReport,
                                       ResultStore]] = {}

    def add(self, seq: int, label: str, report: LotScreeningReport,
            child: ResultStore) -> None:
        """Record one completed request (its seq must be new)."""
        with self._lock:
            if seq in self._entries:
                raise ValueError(f"request seq {seq} already recorded")
            self._entries[seq] = (label, report, child)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # Rolling views
    # ------------------------------------------------------------------ #

    def snapshot(self, label: Optional[str] = None) -> Dict[str, object]:
        """Monotonic running totals over every completed request.

        With ``label``, a ``scenario`` block with that ledger row's
        running device-weighted yield/escape/cost is attached — the
        per-scenario rolling view a ``result`` event carries for its own
        scenario.
        """
        with self._lock:
            entries = list(self._entries.values())
        reports = [report for _, report, _ in entries]
        devices = sum(r.n_devices for r in reports)
        accepted = sum(r.n_accepted for r in reports)
        out: Dict[str, object] = {
            "requests": len(entries),
            "devices": devices,
            "accepted": accepted,
            "accept_fraction": accepted / devices if devices else 0.0,
            "tester_seconds": sum(r.tester_seconds for r in reports),
            # Adaptive-flow running totals; all zero on a ledger of
            # fixed-flow clean requests, so legacy streams read the same.
            "saved_tester_seconds": sum(
                getattr(r, "saved_tester_seconds", 0.0) for r in reports),
            "excursions": sum(getattr(r, "excursions", 0)
                              for r in reports),
            "aborted": sum(getattr(r, "n_aborted", 0) for r in reports),
        }
        if label is not None:
            out["scenario"] = self._label_stats(entries, label)
        return out

    @staticmethod
    def _label_stats(entries, label: str) -> Dict[str, object]:
        reports = [report for lbl, report, _ in entries if lbl == label]
        devices = sum(r.n_devices for r in reports)

        def weighted(value) -> float:
            if not devices:
                return 0.0
            return sum(value(r) * r.n_devices for r in reports) / devices

        accepted = sum(r.n_accepted for r in reports)
        return {
            "label": label,
            "lots": len(reports),
            "devices": devices,
            "accepted": accepted,
            "accept_fraction": accepted / devices if devices else 0.0,
            "true_yield": weighted(lambda r: r.p_good),
            "type_i": weighted(lambda r: r.type_i),
            "type_ii": weighted(lambda r: r.type_ii),
            "tester_seconds": sum(r.tester_seconds for r in reports),
            "cost_per_device": weighted(lambda r: r.cost_per_device),
        }

    # ------------------------------------------------------------------ #
    # The merged ledger
    # ------------------------------------------------------------------ #

    def merged(self) -> ResultStore:
        """All child stores merged in request-seq (arrival) order."""
        with self._lock:
            children = [self._entries[seq][2]
                        for seq in sorted(self._entries)]
        return ResultStore.merge(children)

    def campaign_table(self) -> str:
        """The rolling campaign pivot (one row per scenario label)."""
        return self.merged().campaign_table()

    def ledger(self) -> str:
        """The full floor ledger: campaign pivot plus the summary block.

        Byte-identical to ``campaign_table() + summary()`` of the batch
        :meth:`Campaign.run` store for the same request stream — the
        string the kill-and-resume convergence tests diff.
        """
        merged = self.merged()
        return (merged.campaign_table() + "\n\n" + merged.summary()
                + "\n")
