"""The asyncio front door: a long-running streaming screening service.

``repro serve`` turns the batch campaign machinery into a *virtual fab*:
an asyncio loop reads Scenario-tagged wafer requests line by line (stdin
JSONL by default, a line-oriented TCP listener with ``--socket``),
schedules each request's shards onto the persistent
:class:`~repro.production.pool.WorkerPool` through the same
:class:`~repro.campaign.driver.ScenarioSubmitter` the interleaved
campaign path uses — so every in-flight request's shards drain through
one shared work queue — and emits JSONL result events against a rolling
ledger (:class:`~repro.serve.store.RollingStore`).

Failure is survivable by construction:

* a worker SIGKILL surfaces as a typed
  :class:`~repro.production.pool.PoolBrokenError`; the broken pool is
  evicted, the submitter rebuilds the default and re-runs the request
  (``pool_retries``), replaying its journaled shards;
* a server SIGKILL loses nothing durable: ``--checkpoint`` journals
  every accepted request and completed shard, and ``--resume``
  re-screens the journaled requests with their journals installed, so
  only genuinely unfinished shards dispatch and the final ledger is
  byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.campaign.driver import LabelDeduper, ScenarioSubmitter
from repro.campaign.driver import scenario_record
from repro.campaign.scenario import Scenario
from repro.production.execution import ExecutionPlan
from repro.production.line import ScreeningLine
from repro.production.pool import PoolBrokenError, sweep_stale_segments
from repro.serve.checkpoint import (CheckpointWriter, RequestJournal,
                                    load_checkpoint)
from repro.serve.protocol import (ProtocolError, ServeRequest,
                                  build_request, event_line, is_shutdown,
                                  parse_line, scenario_kwargs)
from repro.serve.store import RollingStore
from repro.telemetry.core import current_telemetry
from repro.telemetry.log import get_logger

__all__ = ["ServeServer"]

_log = get_logger("serve")


class ServeServer:
    """One streaming serve session: front door, scheduler bridge, ledger.

    Parameters
    ----------
    plan:
        Execution plan every request screens under (default: serial
        ``workers=1``; multi-worker plans interleave all in-flight
        requests' shards in the shared pool).  Serve always screens
        through the plan path so the shard journal sees every unit of
        work.
    seed:
        Root seed; request ``seq`` without its own seed screens under
        child seed ``seq`` — the campaign discipline.  On ``--resume``
        the checkpoint's journaled root seed wins.
    socket:
        ``(host, port)`` to listen on instead of reading stdin; port 0
        picks an ephemeral port, announced by the ``listening`` event.
    checkpoint, resume:
        Journal path to write / to restore from.  ``resume`` implies
        journaling to the same file unless ``checkpoint`` names another.
    ledger_path:
        Where to write the final ledger text (the kill-and-resume
        convergence artefact) on shutdown.
    max_inflight:
        Concurrent request screenings (further requests queue in the
        submitter's thread bench).
    pool_retries:
        Per-request re-runs against a rebuilt pool after a
        :class:`~repro.production.pool.PoolBrokenError`.
    stdin, out:
        Stream overrides (tests feed ``io.StringIO`` request scripts and
        capture the event stream).
    """

    def __init__(self, *, plan: Optional[ExecutionPlan] = None,
                 seed: int = 2026,
                 socket: Optional[Tuple[str, int]] = None,
                 checkpoint: Optional[str] = None,
                 resume: Optional[str] = None,
                 ledger_path: Optional[str] = None,
                 max_inflight: int = 8,
                 pool_retries: int = 1,
                 stdin: Optional[TextIO] = None,
                 out: Optional[TextIO] = None) -> None:
        self.plan = plan if plan is not None else ExecutionPlan(workers=1)
        self.seed = int(seed)
        self.socket = socket
        self.checkpoint = checkpoint
        self.resume = resume
        self.ledger_path = ledger_path
        self.max_inflight = int(max_inflight)
        self.pool_retries = int(pool_retries)
        self._stdin = stdin if stdin is not None else sys.stdin
        self._out = out if out is not None else sys.stdout
        self._emit_lock = threading.Lock()
        self._deduper = LabelDeduper()
        self.rolling = RollingStore()
        self._seq = 0
        self._tasks: List["asyncio.Task"] = []
        self._clients: List["asyncio.StreamWriter"] = []
        self._writer: Optional[CheckpointWriter] = None
        self._submitter: Optional[ScenarioSubmitter] = None
        self._closing: Optional["asyncio.Event"] = None

    # ------------------------------------------------------------------ #
    # Event emission
    # ------------------------------------------------------------------ #

    def _emit(self, line: str,
              sink: Optional["asyncio.StreamWriter"] = None) -> None:
        """One event line to the operator stream (and the client, if any)."""
        with self._emit_lock:
            self._out.write(line + "\n")
            self._out.flush()
        if sink is not None and not sink.is_closing():
            sink.write((line + "\n").encode("utf-8"))

    # ------------------------------------------------------------------ #
    # Request intake
    # ------------------------------------------------------------------ #

    def _handle_line(self, text: str,
                     sink: Optional["asyncio.StreamWriter"] = None) -> None:
        """Parse, journal and schedule one request line."""
        text = text.strip()
        if not text:
            return
        t = current_telemetry()
        try:
            obj = parse_line(text)
            if is_shutdown(obj):
                if t.enabled:
                    t.count("serve.shutdowns")
                self._emit(event_line("draining", pending=len(self._tasks)),
                           sink)
                if self._closing is not None:
                    self._closing.set()
                return
            request = build_request(obj, seq=self._seq,
                                    root_seed=self.seed,
                                    deduper=self._deduper)
        except ProtocolError as exc:
            if t.enabled:
                t.count("serve.errors")
            self._emit(event_line("error", error=str(exc)), sink)
            return
        self._seq += 1
        journal = None
        if self._writer is not None:
            self._writer.request(request.seq, request.id, request.label,
                                 request.seed,
                                 scenario_kwargs(request.scenario))
            journal = RequestJournal(self._writer, request.seq)
        self._emit(event_line("accepted", id=request.id, seq=request.seq,
                              label=request.label, seed=request.seed),
                   sink)
        self._schedule(request, journal, sink)

    def _schedule(self, request: ServeRequest,
                  journal: Optional[RequestJournal],
                  sink: Optional["asyncio.StreamWriter"] = None) -> None:
        """Bridge one request onto the shared pool via the submitter."""
        t = current_telemetry()
        if t.enabled:
            t.count("serve.requests")
        # The span brackets submission; the screening's own duration
        # lives in the campaign.scenario child span it re-parents here.
        with t.span("serve.request", seq=request.seq,
                    label=request.label) as span:
            line = ScreeningLine.from_scenario(request.scenario)
            lot = request.scenario.draw_lot(seed=request.seed,
                                            lot_id=request.label)
            future = self._submitter.submit(
                request.label, request.seed, line, lot,
                parent_span_id=span.span_id, journal=journal)
        task = asyncio.ensure_future(self._finish(request, future, sink))
        self._tasks.append(task)

    async def _finish(self, request: ServeRequest, future,
                      sink: Optional["asyncio.StreamWriter"]) -> None:
        """Await one screening and emit its result (or error) event."""
        t = current_telemetry()
        try:
            report, child = await asyncio.wrap_future(future)
        except PoolBrokenError as exc:
            if t.enabled:
                t.count("serve.pool_broken")
            _log.error("request %s: %s", request.label, exc)
            self._emit(event_line("error", id=request.id, seq=request.seq,
                                  label=request.label,
                                  error=f"PoolBrokenError: {exc}"), sink)
            return
        except Exception as exc:
            if t.enabled:
                t.count("serve.errors")
            _log.error("request %s failed: %s", request.label, exc)
            self._emit(event_line("error", id=request.id, seq=request.seq,
                                  label=request.label,
                                  error=f"{type(exc).__name__}: {exc}"),
                       sink)
            return
        self.rolling.add(request.seq, request.label, report, child)
        if t.enabled:
            t.count("serve.results")
            t.count("serve.devices", report.n_devices)
        excursions = getattr(report, "excursions", 0)
        if excursions:
            # An aborted wafer is operationally urgent (a line stoppage,
            # not a statistic), so it gets its own event ahead of the
            # result — and a counter in the deterministic block.
            if t.enabled:
                t.count("serve.excursions", excursions)
            self._emit(event_line("excursion", id=request.id,
                                  seq=request.seq, label=request.label,
                                  excursions=excursions,
                                  aborted=getattr(report, "n_aborted", 0),
                                  flow=getattr(report, "flow", "fixed")),
                       sink)
        record = scenario_record(request.scenario, request.label,
                                 request.seed, report)
        self._emit(event_line("result", id=request.id, seq=request.seq,
                              record=record,
                              rolling=self.rolling.snapshot(request.label)),
                   sink)

    # ------------------------------------------------------------------ #
    # Resume
    # ------------------------------------------------------------------ #

    def _replay(self, state) -> None:
        """Re-schedule every journaled request with its shard journal.

        Finished requests replay entirely from journaled shards (no pool
        work); unfinished ones dispatch only their missing shards.  The
        labels are re-claimed in seq order and must match the journal —
        a mismatch means the checkpoint is corrupt.
        """
        for obj in state.requests:
            seq = int(obj["seq"])
            scenario = Scenario(**obj["scenario"])
            label = self._deduper.claim(scenario.resolved_label)
            if label != obj["label"]:
                raise ValueError(
                    f"checkpoint corrupt: request {seq} journaled label "
                    f"{obj['label']!r} but replays as {label!r}")
            request = ServeRequest(seq=seq, id=str(obj["id"]),
                                   scenario=scenario,
                                   seed=int(obj["seed"]), label=label)
            journal = RequestJournal(self._writer, seq,
                                     preloaded=state.shards.get(seq))
            self._seq = max(self._seq, seq + 1)
            self._emit(event_line("resumed", id=request.id, seq=seq,
                                  label=label,
                                  journaled_shards=len(
                                      state.shards.get(seq, {}))))
            self._schedule(request, journal)
        t = current_telemetry()
        if t.enabled and state.requests:
            t.count("serve.resumed", len(state.requests))

    # ------------------------------------------------------------------ #
    # Front doors
    # ------------------------------------------------------------------ #

    async def _stdin_loop(self, loop) -> None:
        """Read request lines from the input stream until EOF/shutdown."""
        while self._closing is not None and not self._closing.is_set():
            line = await loop.run_in_executor(None, self._stdin.readline)
            if not line:
                break
            self._handle_line(line)

    async def _client(self, reader: "asyncio.StreamReader",
                      writer: "asyncio.StreamWriter") -> None:
        """Serve one TCP client; its events echo back on its connection."""
        t = current_telemetry()
        if t.enabled:
            t.count("serve.clients")
        self._clients.append(writer)
        while True:
            line = await reader.readline()
            if not line:
                break
            self._handle_line(line.decode("utf-8"), sink=writer)
            await writer.drain()
        # The client half-closed its write side; keep the connection open
        # so in-flight result events still reach it — shutdown closes it.

    # ------------------------------------------------------------------ #
    # The session
    # ------------------------------------------------------------------ #

    async def run(self) -> int:
        """Serve until EOF / shutdown command / SIGTERM, then finalize."""
        loop = asyncio.get_running_loop()
        self._closing = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self._closing.set)
            except (NotImplementedError, RuntimeError):
                break
        # A SIGKILLed predecessor takes the multiprocessing resource
        # tracker down with it, stranding its shared-memory wafers in
        # /dev/shm; reclaim them before allocating our own.
        swept = sweep_stale_segments()
        if swept:
            _log.warning("swept %d stale shared-memory segment(s) left "
                         "by dead processes", len(swept))
        state = None
        if self.resume is not None:
            state = load_checkpoint(self.resume)
            if state.seed is not None:
                self.seed = int(state.seed)
        path = self.checkpoint or self.resume
        if path is not None:
            self._writer = CheckpointWriter(path, seed=self.seed)
        with ScenarioSubmitter(self.plan, max_threads=self.max_inflight,
                               pool_retries=self.pool_retries) as submitter:
            self._submitter = submitter
            if state is not None:
                self._replay(state)
            server = None
            if self.socket is not None:
                host, port = self.socket
                server = await asyncio.start_server(self._client, host,
                                                    port)
                bound = server.sockets[0].getsockname()
                self._emit(event_line("listening", host=bound[0],
                                      port=int(bound[1])))
                await self._closing.wait()
                server.close()
                await server.wait_closed()
            else:
                await self._stdin_loop(loop)
            if self._tasks:
                await asyncio.gather(*self._tasks)
        self._finalize()
        return 0

    def _finalize(self) -> None:
        """Emit the final ledger, write artefacts, close the journal."""
        ledger = self.rolling.ledger() if len(self.rolling) else ""
        if self.ledger_path is not None:
            with open(self.ledger_path, "w", encoding="utf-8") as handle:
                handle.write(ledger)
        self._emit(event_line("ledger", requests=len(self.rolling),
                              table=ledger))
        for writer in self._clients:
            if not writer.is_closing():
                writer.close()
        self._clients.clear()
        if self._writer is not None:
            self._writer.close()
            self._writer = None
