"""Checkpoint/resume journal of the streaming serve front door.

The execution layer's determinism contract makes every unit of work
replayable by index: a shard result is a pure function of its arguments,
and the sequence of :meth:`ShardExecutor.map` runs one screening makes is
a pure function of its ``(scenario, seed)``.  The checkpoint therefore
journals only two things — the accepted requests, and the result of every
completed ``(request seq, run index, shard index)`` — and a resumed
server simply *re-screens every journaled request* with its journal
installed: journaled shards replay instantly, unfinished shards dispatch
to the pool, and the resumed ledger converges byte-identical to an
uninterrupted run.

File format: append-only JSONL (one object per line, flushed per line so
each completed shard survives a SIGKILL via the page cache).  Lines are
``{"kind": "serve", ...}`` (the header: format version and root seed),
``{"kind": "request", ...}`` (one per accepted request, written before
any of its shards) and ``{"kind": "shard", ...}`` (one per completed
shard, its result pickled+zlib+base64 in ``data``).  A SIGKILL can tear
at most the final line, so :func:`load_checkpoint` tolerates — and only
tolerates — an unparseable *last* line.

The shard payloads are Python pickles: load checkpoints you wrote
yourself, like any other pickle file.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointState",
    "CheckpointWriter",
    "RequestJournal",
    "decode_result",
    "encode_result",
    "load_checkpoint",
]

CHECKPOINT_VERSION = "repro.serve/1"

_MISSING = object()


def encode_result(value: Any) -> str:
    """One shard result as a compact single-line ASCII payload."""
    raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(zlib.compress(raw)).decode("ascii")


def decode_result(text: str) -> Any:
    """Inverse of :func:`encode_result`."""
    return pickle.loads(zlib.decompress(base64.b64decode(
        text.encode("ascii"))))


class CheckpointWriter:
    """Append-only, per-line-flushed journal of a serve session.

    Opening an existing non-empty file (the ``--resume`` path) appends to
    it, so a twice-killed server still resumes from one journal; a fresh
    file gets the version/seed header first.  Writes are serialised by a
    lock so concurrent request threads never interleave bytes within a
    line — the only corruption a SIGKILL can leave is a torn final line.
    """

    def __init__(self, path: str, *, seed: int) -> None:
        self.path = path
        self._lock = threading.Lock()
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        if not fresh:
            # Drop a SIGKILL-torn final line before appending: left in
            # place it would glue onto the next record and turn into
            # mid-file corruption on the *second* resume.
            with open(path, "r+b") as handle:
                data = handle.read()
                if not data.endswith(b"\n"):
                    cut = data.rfind(b"\n") + 1
                    handle.truncate(cut)
                    fresh = cut == 0
        self._handle = open(path, "a", encoding="utf-8")
        if fresh:
            self._append({"kind": "serve",
                          "version": CHECKPOINT_VERSION,
                          "seed": int(seed)})

    def _append(self, obj: Dict[str, Any]) -> None:
        line = json.dumps(obj, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def request(self, seq: int, rid: str, label: str, seed: int,
                scenario: Dict[str, Any]) -> None:
        """Journal one accepted request (before any of its shards)."""
        self._append({"kind": "request", "seq": int(seq), "id": rid,
                      "label": label, "seed": int(seed),
                      "scenario": scenario})

    def shard(self, seq: int, run: int, shard: int, value: Any) -> None:
        """Journal one completed shard result."""
        self._append({"kind": "shard", "seq": int(seq), "run": int(run),
                      "shard": int(shard), "data": encode_result(value)})

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


@dataclass
class CheckpointState:
    """Everything :func:`load_checkpoint` recovers from a journal."""

    seed: Optional[int]
    requests: List[Dict[str, Any]]
    shards: Dict[int, Dict[Tuple[int, int], Any]]


def load_checkpoint(path: str) -> CheckpointState:
    """Parse a checkpoint journal, tolerating a SIGKILL-torn last line.

    Unparseable content anywhere *but* the final line is real corruption
    and raises; duplicate ``(seq, run, shard)`` entries (a pool-broken
    retry re-recorded a shard) keep the last occurrence — by determinism
    the payloads are identical anyway.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    seed: Optional[int] = None
    requests: Dict[int, Dict[str, Any]] = {}
    shards: Dict[int, Dict[Tuple[int, int], Any]] = {}
    last = len(lines) - 1
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
            kind = obj.get("kind")
            if kind == "serve":
                seed = obj.get("seed")
            elif kind == "request":
                requests[int(obj["seq"])] = obj
            elif kind == "shard":
                value = decode_result(obj["data"])
                shards.setdefault(int(obj["seq"]), {})[
                    (int(obj["run"]), int(obj["shard"]))] = value
            else:
                raise ValueError(f"unknown checkpoint line kind {kind!r}")
        except (ValueError, KeyError, TypeError, EOFError,
                zlib.error, pickle.UnpicklingError) as exc:
            if index == last:
                break  # torn tail: the write the SIGKILL interrupted
            raise ValueError(
                f"corrupt checkpoint {path!r} at line {index + 1}: "
                f"{exc}") from exc
    return CheckpointState(
        seed=seed,
        requests=[requests[seq] for seq in sorted(requests)],
        shards=shards)


class RequestJournal:
    """Per-request shard journal, speaking the executor's journal protocol.

    Installed around one request's screening via
    :func:`~repro.production.execution.journal_scope`;
    :meth:`ShardExecutor.map <repro.production.execution.ShardExecutor.map>`
    calls :meth:`begin_run` once per executor run (the run counter names
    the run), :meth:`lookup` per shard before dispatching and
    :meth:`record` per freshly computed shard.  Records are held in
    memory for replay and appended to the session's
    :class:`CheckpointWriter` (when there is one) for crash durability.

    :meth:`begin_attempt` resets the run counter *without* dropping
    recorded results — the in-process retry path after a
    :class:`~repro.production.pool.PoolBrokenError`, where the screening
    re-runs from the top and must replay everything already journaled.
    """

    def __init__(self, writer: Optional[CheckpointWriter], seq: int,
                 preloaded: Optional[Dict[Tuple[int, int], Any]] = None
                 ) -> None:
        self._writer = writer
        self._seq = int(seq)
        self._results: Dict[Tuple[int, int], Any] = dict(preloaded or {})
        self._runs = 0
        self._lock = threading.Lock()

    def begin_attempt(self) -> None:
        """Restart the run numbering for a from-the-top re-screen."""
        with self._lock:
            self._runs = 0

    # -- executor journal protocol -------------------------------------- #

    def begin_run(self, n_tasks: int) -> int:
        with self._lock:
            run = self._runs
            self._runs += 1
        return run

    def lookup(self, run: int, index: int) -> Tuple[bool, Any]:
        value = self._results.get((run, index), _MISSING)
        if value is _MISSING:
            return False, None
        return True, value

    def record(self, run: int, index: int, value: Any) -> None:
        with self._lock:
            self._results[(run, index)] = value
        if self._writer is not None:
            self._writer.shard(self._seq, run, index, value)
