"""Streaming "virtual fab" service: the long-running serve front door.

Everything below :mod:`repro.campaign` is batch — draw a lot, screen it,
print a report.  This package is the streaming mode the roadmap asked
for: ``repro serve`` keeps the persistent worker pool warm and screens a
*continuous* stream of Scenario-tagged wafer requests, arriving on stdin
as JSONL or from many concurrent TCP clients (``--socket``), with
incremental JSONL results against a rolling ledger and checkpoint/resume
of half-finished work.

:mod:`repro.serve.protocol`
    The JSONL wire protocol: request parsing (the request vocabulary is
    exactly the frozen :class:`~repro.campaign.scenario.Scenario`
    dataclass), campaign-identical seed/label resolution, and the
    response event lines.

:mod:`repro.serve.server`
    :class:`ServeServer`, the asyncio front door.  Scheduling is a thin
    bridge: each accepted request is submitted through the same
    :class:`~repro.campaign.driver.ScenarioSubmitter` the interleaved
    campaign path uses, so in-flight requests' shards drain through one
    shared pool work queue.

:mod:`repro.serve.store`
    :class:`~repro.serve.store.RollingStore` — monotonic running totals
    per result event, and the final ledger with child stores merged in
    arrival order (byte-identical to the equivalent batch
    :meth:`Campaign.run <repro.campaign.driver.Campaign.run>`).

:mod:`repro.serve.checkpoint`
    The append-only shard journal.  Because every unit of work is
    replayable by ``(scenario seed, run index, shard index)``, a killed
    server restarted with ``--resume`` re-screens its journaled requests
    with journaled shards replaying instantly, dispatching only what the
    killed run never finished — and converges to the identical ledger.

Quick start::

    echo '{"scenario": {"n_devices": 512, "n_bits": 6}}' \\
        | python -m repro.cli serve --workers 2

Telemetry: the server counts ``serve.requests``, ``serve.results``,
``serve.errors``, ``serve.devices``, ``serve.clients``,
``serve.resumed``, ``serve.shutdowns`` and ``serve.pool_broken``, and
opens a ``serve.request`` span per request under which the screening's
``campaign.scenario`` span nests.
"""

from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointState,
    CheckpointWriter,
    RequestJournal,
    load_checkpoint,
)
from repro.serve.protocol import (
    ProtocolError,
    ServeRequest,
    build_request,
    event_line,
    parse_line,
)
from repro.serve.server import ServeServer
from repro.serve.store import RollingStore

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointState",
    "CheckpointWriter",
    "ProtocolError",
    "RequestJournal",
    "RollingStore",
    "ServeRequest",
    "ServeServer",
    "build_request",
    "event_line",
    "load_checkpoint",
    "parse_line",
]
