"""Result store: per-lot screening statistics and floor-level reporting.

The :class:`ResultStore` is the production line's ledger.  Every screened
lot appends one :class:`~repro.production.line.LotScreeningReport`; the
store aggregates accept/reject/bin counts, measured error rates and tester
time across lots and renders them as the plain-text tables the rest of the
reproduction uses (:mod:`repro.reporting.tables`), so a multi-lot
Monte-Carlo campaign produces one readable floor report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.production.line import LotScreeningReport, StationStats
from repro.reporting.tables import format_table

__all__ = ["ResultStore"]


class ResultStore:
    """Accumulates screening reports lot by lot."""

    def __init__(self) -> None:
        self._reports: List[LotScreeningReport] = []

    # ------------------------------------------------------------------ #
    # Accumulation
    # ------------------------------------------------------------------ #

    def add(self, report: LotScreeningReport) -> None:
        """Append one lot's screening report."""
        self._reports.append(report)

    @classmethod
    def merge(cls, stores: Iterable["ResultStore"]) -> "ResultStore":
        """Combine several stores into one, preserving store order.

        The shard-merge of the floor ledger: when a campaign's lots are
        screened by separate workers (each filling its own store), merging
        the partial stores yields the same aggregate method/scenario/bin
        tables a single sequential store would have produced — every
        aggregate in this class is order-insensitive across lots, and the
        row order of :meth:`lot_table` follows the given store order.
        """
        merged = cls()
        for store in stores:
            for report in store._reports:
                merged.add(report)
        return merged

    def __len__(self) -> int:
        return len(self._reports)

    @property
    def reports(self) -> List[LotScreeningReport]:
        """The stored reports, in arrival order."""
        return list(self._reports)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    @property
    def total_devices(self) -> int:
        """Dies screened across all lots."""
        return sum(r.n_devices for r in self._reports)

    @property
    def total_accepted(self) -> int:
        """Dies finally accepted across all lots."""
        return sum(r.n_accepted for r in self._reports)

    @property
    def total_tester_seconds(self) -> float:
        """Tester time consumed across all lots."""
        return sum(r.tester_seconds for r in self._reports)

    @property
    def overall_accept_fraction(self) -> float:
        """Accept fraction over every die screened so far."""
        total = self.total_devices
        return self.total_accepted / total if total else 0.0

    @property
    def overall_devices_per_hour(self) -> float:
        """Floor throughput in devices per tester-hour."""
        seconds = self.total_tester_seconds
        if seconds <= 0.0:
            return float("inf")
        return self.total_devices / seconds * 3600.0

    def bin_totals(self) -> Dict[str, int]:
        """Accepted-die counts per quality bin, summed over lots."""
        totals: Dict[str, int] = {}
        for report in self._reports:
            for name, count in report.bin_counts.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def station_totals(self) -> List[StationStats]:
        """Per-station totals (devices in/accepted, tester time) over lots.

        Returned in the line's canonical order — screening stations (by
        name), then retest, then binning — independent of the order lots
        were added or stores were merged.
        """
        merged: Dict[str, StationStats] = {}
        for report in self._reports:
            for station in report.stations:
                agg = merged.get(station.name)
                if agg is None:
                    merged[station.name] = StationStats(
                        station.name, station.n_in, station.n_accepted,
                        station.tester_seconds,
                        n_accounted=station.n_accounted)
                else:
                    if (agg.n_accounted is not None
                            or station.n_accounted is not None):
                        # Resolve through the fallback BEFORE touching
                        # n_in: ``accounted`` defaults to the current
                        # n_in, so summing after the increment would
                        # double-count the incoming lot.
                        agg.n_accounted = agg.accounted + station.accounted
                    agg.n_in += station.n_in
                    agg.n_accepted += station.n_accepted
                    agg.tester_seconds += station.tester_seconds
        rank = {"retest": 1, "binning": 2}
        return [merged[name] for name in
                sorted(merged, key=lambda name: (rank.get(name, 0), name))]

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def lot_table(self) -> str:
        """One row per lot: method, scenario, yield, error rates, cost."""
        rows = []
        for r in self._reports:
            rows.append([r.lot_id, r.method, r.scenario, r.n_devices,
                         r.n_accepted, r.accept_fraction, r.type_i,
                         r.type_ii, r.tester_seconds, r.devices_per_hour,
                         r.cost_per_device])
        return format_table(
            ["lot", "method", "scenario", "devices", "accepted",
             "accept frac", "type I", "type II", "tester [s]", "devices/h",
             "cost/device"],
            rows, title="Screening results per lot")

    def method_table(self) -> str:
        """One row per screening method, aggregated over its lots.

        The BIST-vs-conventional trade-off table: yield, escape rates,
        tester time and cost per device for every method that screened at
        least one lot — meaningful when the compared lots share one wafer
        draw (as ``repro compare`` arranges).  Full and partial BIST lots
        are separate rows (different test plans), keyed by the partition.
        """
        methods: Dict[str, List[LotScreeningReport]] = {}
        for r in self._reports:
            if r.method == "bist" and r.mode == "partial":
                key = f"partial bist q={r.q}"
            else:
                key = r.method
            methods.setdefault(key, []).append(r)
        rows = []
        for name in sorted(methods):
            reports = methods[name]
            devices = sum(r.n_devices for r in reports)
            accepted = sum(r.n_accepted for r in reports)
            seconds = sum(r.tester_seconds for r in reports)
            type_i = (sum(r.type_i * r.n_devices for r in reports) / devices
                      if devices else 0.0)
            type_ii = (sum(r.type_ii * r.n_devices for r in reports) / devices
                       if devices else 0.0)
            cost = (sum(r.cost_per_device * r.n_devices for r in reports)
                    / devices if devices else 0.0)
            rows.append([name, devices, accepted,
                         accepted / devices if devices else 0.0,
                         type_i, type_ii, seconds,
                         devices / seconds * 3600.0 if seconds > 0
                         else float("inf"),
                         cost])
        return format_table(
            ["method", "devices", "accepted", "accept frac", "type I",
             "type II", "tester [s]", "devices/h", "cost/device"],
            rows, title="Screening methods compared")

    def scenario_table(self) -> str:
        """One row per (architecture, method/mode) scenario over its lots.

        Finer-grained than :meth:`method_table`: lots screening different
        architectures under the same method aggregate into separate rows,
        so a multi-architecture campaign reads as one table.
        """
        scenarios: Dict[str, List[LotScreeningReport]] = {}
        for r in self._reports:
            scenarios.setdefault(r.scenario, []).append(r)
        rows = []
        for name in sorted(scenarios):
            reports = scenarios[name]
            devices = sum(r.n_devices for r in reports)
            accepted = sum(r.n_accepted for r in reports)
            seconds = sum(r.tester_seconds for r in reports)
            type_i = (sum(r.type_i * r.n_devices for r in reports) / devices
                      if devices else 0.0)
            type_ii = (sum(r.type_ii * r.n_devices for r in reports)
                       / devices if devices else 0.0)
            rows.append([name, len(reports), devices, accepted,
                         accepted / devices if devices else 0.0,
                         type_i, type_ii, seconds])
        return format_table(
            ["scenario", "lots", "devices", "accepted", "accept frac",
             "type I", "type II", "tester [s]"],
            rows, title="Screening scenarios compared")

    def campaign_table(self) -> str:
        """The campaign pivot: one row per scenario label.

        The table a :class:`~repro.campaign.driver.Campaign` reports —
        yield, escapes, tester time and cost per scenario, keyed by the
        lot identifier (which the campaign driver sets to the scenario
        label).  Lots sharing a label aggregate into one device-weighted
        row; rows are sorted by label, so the table is invariant under
        merge order.
        """
        groups: Dict[str, List[LotScreeningReport]] = {}
        for r in self._reports:
            groups.setdefault(r.lot_id, []).append(r)
        rows = []
        for label in sorted(groups):
            reports = groups[label]
            devices = sum(r.n_devices for r in reports)
            accepted = sum(r.n_accepted for r in reports)
            seconds = sum(r.tester_seconds for r in reports)

            def weighted(value) -> float:
                if not devices:
                    return 0.0
                return sum(value(r) * r.n_devices
                           for r in reports) / devices

            rows.append([label, reports[0].scenario, devices, accepted,
                         accepted / devices if devices else 0.0,
                         weighted(lambda r: r.p_good),
                         weighted(lambda r: r.type_i),
                         weighted(lambda r: r.type_ii),
                         seconds,
                         devices / seconds * 3600.0 if seconds > 0
                         else float("inf"),
                         weighted(lambda r: r.cost_per_device)])
        return format_table(
            ["scenario", "tag", "devices", "accepted", "accept frac",
             "true yield", "type I", "type II", "tester [s]", "devices/h",
             "cost/device"],
            rows, title="Campaign results per scenario")

    def station_table(self) -> str:
        """One row per station, aggregated over every screened lot."""
        rows = []
        for s in self.station_totals():
            rows.append([s.name, s.n_in, s.n_accepted, s.yield_fraction,
                         s.tester_seconds, s.devices_per_hour])
        return format_table(
            ["station", "in", "accepted", "yield", "tester [s]",
             "devices/h"],
            rows, title="Station totals")

    def bin_table(self) -> str:
        """Accepted dies per quality bin (tightest bin first)."""

        def bin_order(name: str):
            # "bin-10" must follow "bin-9", not "bin-1": sort on the
            # numeric suffix when there is one.
            prefix, _, suffix = name.rpartition("-")
            if suffix.isdigit():
                return (prefix, int(suffix))
            return (name, 0)

        totals = self.bin_totals()
        accepted = max(self.total_accepted, 1)
        rows = [[name, count, count / accepted]
                for name, count in sorted(totals.items(),
                                          key=lambda kv: bin_order(kv[0]))]
        return format_table(["bin", "devices", "share of accepted"], rows,
                            title="Quality bins")

    def total_chips(self) -> int:
        """ICs screened across lots that ran with chip grouping."""
        return sum(r.n_chips for r in self._reports if r.n_chips is not None)

    def total_chips_passed(self) -> int:
        """ICs fully passing across lots that ran with chip grouping."""
        return sum(r.n_chips_passed for r in self._reports
                   if r.n_chips_passed is not None)

    def summary(self) -> str:
        """Multi-line overview of the whole screening campaign."""
        lines = [
            f"lots screened: {len(self)}",
            f"devices screened: {self.total_devices}",
            f"devices accepted: {self.total_accepted} "
            f"({self.overall_accept_fraction:.1%})",
            f"tester time: {self.total_tester_seconds:.3f} s "
            f"({self.overall_devices_per_hour:.0f} devices/hour)",
        ]
        chips = self.total_chips()
        if chips:
            passed = self.total_chips_passed()
            lines.append(f"chips screened: {chips}, fully passing: "
                         f"{passed} ({passed / chips:.1%})")
        return "\n".join(lines)
